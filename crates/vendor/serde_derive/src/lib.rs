//! Derive macros for the offline `serde` stand-in.
//!
//! The hermetic build environment has no `syn`/`quote`, so this crate
//! parses the derive input token stream by hand. It supports exactly the
//! shapes the workspace uses:
//!
//! - structs with named fields → JSON objects keyed by field name,
//! - tuple structs with one field (newtypes) → the inner value,
//! - tuple structs with several fields → JSON arrays,
//! - enums with unit variants → the variant name as a string,
//! - enums with tuple variants → `{"Variant": payload}` (payload is the
//!   single field, or an array for multi-field variants).
//!
//! Generic types are rejected with a compile error (nothing in the
//! workspace derives serde traits on a generic type).

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<(String, usize)>,
    },
}

/// Splits a token slice at top-level commas, treating `<...>` angle-bracket
/// nesting as one level (other brackets are `Group`s and already opaque).
fn split_top_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut angle: i32 = 0;
    for tt in tokens {
        if let TokenTree::Punct(p) = tt {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    out.push(std::mem::take(&mut cur));
                    continue;
                }
                _ => {}
            }
        }
        cur.push(tt.clone());
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Strips leading attributes (`#[...]`) and a visibility qualifier
/// (`pub`, `pub(crate)`, ...) from a token slice.
fn strip_attrs_and_vis(tokens: &[TokenTree]) -> &[TokenTree] {
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 1; // the `[...]` group
                if matches!(tokens.get(i), Some(TokenTree::Group(_))) {
                    i += 1;
                }
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if matches!(
                    tokens.get(i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    i += 1;
                }
            }
            _ => break,
        }
    }
    &tokens[i..]
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let kind = loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    i += 1;
                    break s;
                }
                i += 1;
            }
            Some(_) => i += 1,
            None => return Err("expected `struct` or `enum`".into()),
        }
    };
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected type name".into()),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "the offline serde stand-in cannot derive for generic type `{name}`"
            ));
        }
    }
    if kind == "struct" {
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                let mut names = Vec::new();
                for chunk in split_top_commas(&inner) {
                    let chunk = strip_attrs_and_vis(&chunk);
                    match chunk.first() {
                        Some(TokenTree::Ident(id)) => names.push(id.to_string()),
                        Some(_) => return Err(format!("unsupported field in `{name}`")),
                        None => {}
                    }
                }
                Fields::Named(names)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Fields::Tuple(split_top_commas(&inner).len())
            }
            _ => Fields::Unit,
        };
        Ok(Item::Struct { name, fields })
    } else {
        let body = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
            _ => return Err(format!("expected enum body for `{name}`")),
        };
        let inner: Vec<TokenTree> = body.into_iter().collect();
        let mut variants = Vec::new();
        for chunk in split_top_commas(&inner) {
            let chunk = strip_attrs_and_vis(&chunk);
            let Some(TokenTree::Ident(id)) = chunk.first() else {
                continue;
            };
            let vname = id.to_string();
            let arity = match chunk.get(1) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    split_top_commas(&inner).len()
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    return Err(format!(
                        "the offline serde stand-in cannot derive for struct variant \
                         `{name}::{vname}`"
                    ));
                }
                _ => 0,
            };
            variants.push((vname, arity));
        }
        Ok(Item::Enum { name, variants })
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    let mut body = String::new();
    let name = match &item {
        Item::Struct { name, fields } => {
            match fields {
                Fields::Named(names) => {
                    body.push_str("out.push('{');\n");
                    for (i, f) in names.iter().enumerate() {
                        if i > 0 {
                            body.push_str("out.push(',');\n");
                        }
                        body.push_str(&format!(
                            "out.push_str(\"\\\"{f}\\\":\");\n\
                             serde::Serialize::write_json(&self.{f}, out);\n"
                        ));
                    }
                    body.push_str("out.push('}');\n");
                }
                Fields::Tuple(1) => {
                    body.push_str("serde::Serialize::write_json(&self.0, out);\n");
                }
                Fields::Tuple(n) => {
                    body.push_str("out.push('[');\n");
                    for i in 0..*n {
                        if i > 0 {
                            body.push_str("out.push(',');\n");
                        }
                        body.push_str(&format!("serde::Serialize::write_json(&self.{i}, out);\n"));
                    }
                    body.push_str("out.push(']');\n");
                }
                Fields::Unit => body.push_str("out.push_str(\"null\");\n"),
            }
            name
        }
        Item::Enum { name, variants } => {
            body.push_str("match self {\n");
            for (vname, arity) in variants {
                match arity {
                    0 => body.push_str(&format!(
                        "{name}::{vname} => out.push_str(\"\\\"{vname}\\\"\"),\n"
                    )),
                    1 => body.push_str(&format!(
                        "{name}::{vname}(f0) => {{\n\
                         out.push_str(\"{{\\\"{vname}\\\":\");\n\
                         serde::Serialize::write_json(f0, out);\n\
                         out.push('}}');\n}}\n"
                    )),
                    n => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        body.push_str(&format!(
                            "{name}::{vname}({}) => {{\n\
                             out.push_str(\"{{\\\"{vname}\\\":[\");\n",
                            binds.join(", ")
                        ));
                        for (i, b) in binds.iter().enumerate() {
                            if i > 0 {
                                body.push_str("out.push(',');\n");
                            }
                            body.push_str(&format!("serde::Serialize::write_json({b}, out);\n"));
                        }
                        body.push_str("out.push_str(\"]}\");\n}\n");
                    }
                }
            }
            body.push_str("}\n");
            name
        }
    };
    let out = format!(
        "#[automatically_derived]\n\
         impl serde::Serialize for {name} {{\n\
         fn write_json(&self, out: &mut String) {{\n{body}}}\n}}\n"
    );
    out.parse().unwrap()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    let name = match &item {
        Item::Struct { name, .. } | Item::Enum { name, .. } => name,
    };
    format!("#[automatically_derived]\nimpl serde::Deserialize for {name} {{}}\n")
        .parse()
        .unwrap()
}
