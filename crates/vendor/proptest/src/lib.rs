//! Offline stand-in for the `proptest` crate.
//!
//! The hermetic build environment cannot fetch the real `proptest`, so this
//! crate reimplements the subset of its API the workspace's property suites
//! use, with the same spelling:
//!
//! - the [`proptest!`] macro (functions with `arg in strategy` bindings),
//! - [`prop_assert!`] / [`prop_assert_eq!`],
//! - range strategies (`0u64..100`), [`arbitrary::any`], tuple strategies,
//!   [`collection::vec`], [`prop_oneof!`], [`Just`](strategy::Just), and
//!   [`Strategy::prop_map`](strategy::Strategy::prop_map),
//! - a `prelude` module (including the `prop` alias for nested paths like
//!   `prop::collection::vec`).
//!
//! Differences from real proptest, by design:
//!
//! - **No shrinking.** A failing case panics with the generated inputs via
//!   the normal assertion message; it is not minimized.
//! - **Deterministic seeding.** Each test's RNG stream is seeded from the
//!   test's own name, so failures reproduce exactly across runs and
//!   machines (set `PROPTEST_CASES` to change the case count, default 64).

/// Number of random cases each `proptest!` test runs by default.
pub const DEFAULT_CASES: usize = 64;

/// Resolves the per-test case count (honors `PROPTEST_CASES`).
pub fn cases() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_CASES)
}

/// Per-block configuration, set with `#![proptest_config(..)]` inside
/// [`proptest!`]. Only `cases` is meaningful to the stand-in.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Accepted for source compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: DEFAULT_CASES as u32,
            max_shrink_iters: 0,
        }
    }
}

pub mod test_runner {
    /// SplitMix64-based deterministic RNG for generating test cases.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds a stream from an arbitrary label (e.g. the test name), so
        /// every property test draws from its own reproducible stream.
        pub fn deterministic(label: &str) -> Self {
            // FNV-1a over the label.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in label.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform draw in `[0, n)` for `n > 0`.
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of test-case values (no shrinking in this stand-in).
    pub trait Strategy {
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f` (mirrors proptest's
        /// `Strategy::prop_map`).
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (mirrors `Strategy::boxed`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy, as produced by [`Strategy::boxed`].
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniformly picks one of several boxed strategies per case (the
    /// expansion of [`prop_oneof!`](crate::prop_oneof)).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let ix = rng.below(self.arms.len() as u64) as usize;
            self.arms[ix].generate(rng)
        }
    }

    macro_rules! uint_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u128;
                    let x = (u128::from(rng.next_u64()) % span) as $t;
                    self.start + x
                }
            }
        )*};
    }
    uint_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! sint_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let x = (u128::from(rng.next_u64()) % span) as i128;
                    (self.start as i128 + x) as $t
                }
            }
        )*};
    }
    sint_range_strategy!(i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let x = self.start + rng.next_f64() as $t * (self.end - self.start);
                    // Float rounding (f64→f32 casts, inexact spans) can land
                    // exactly on the exclusive upper bound; keep it half-open.
                    if x >= self.end {
                        // Largest value strictly below `end`.
                        self.end.next_down().max(self.start)
                    } else {
                        x
                    }
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($n:tt $s:ident),+)),* $(,)?) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy!(
        (0 A),
        (0 A, 1 B),
        (0 A, 1 B, 2 C),
        (0 A, 1 B, 2 C, 3 D),
        (0 A, 1 B, 2 C, 3 D, 4 E),
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F),
    );
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_uint {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.next_f64()
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// `any::<T>()` — any value of `T` (uniform over the representation).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::ops::Range;

    /// Strategy for `Vec`s with length drawn from `len` and elements from
    /// `element` (mirrors `proptest::collection::vec`).
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over [`cases()`] generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {$(
        $(#[$meta])*
        fn $name() {
            let mut rng =
                $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            let __cases = ($cfg).cases as usize;
            for _case in 0..__cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                $body
            }
        }
    )*};
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let mut rng =
                $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for _case in 0..$crate::cases() {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                $body
            }
        }
    )*};
}

/// Asserts a condition inside a property test (panics on failure; this
/// stand-in does not shrink).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniformly chooses among several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($s)),+])
    };
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Nested-path access (`prop::collection::vec`), mirroring
    /// `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 10u64..20, y in -5i32..5, f in 0.5f64..1.5) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((0.5..1.5).contains(&f));
        }

        #[test]
        fn vec_lengths_in_range(v in prop::collection::vec(0u32..100, 2..8)) {
            prop_assert!((2..8).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn oneof_and_map_cover_arms(x in prop_oneof![
            (0u32..10).prop_map(|v| v as u64),
            Just(99u64),
        ]) {
            prop_assert!(x < 10 || x == 99);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::deterministic("x");
        let mut b = crate::test_runner::TestRng::deterministic("x");
        for _ in 0..16 {
            assert_eq!((0u64..1000).generate(&mut a), (0u64..1000).generate(&mut b));
        }
    }
}
