//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace's benches use — `Criterion`,
//! `benchmark_group`/`bench_with_input`/`bench_function`, `BenchmarkId`,
//! `criterion_group!`/`criterion_main!`, and `black_box` — backed by a
//! simple wall-clock timing loop instead of criterion's statistical
//! machinery. Each benchmark warms up briefly, then runs enough iterations
//! to cover ~100 ms and reports the mean time per iteration.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const WARMUP_ITERS: u64 = 3;
const TARGET: Duration = Duration::from_millis(100);
const MAX_ITERS: u64 = 1_000_000;

/// Identifies one parameterized benchmark case.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `BenchmarkId::from_parameter(8)` → case labeled `"8"`.
    pub fn from_parameter<D: Display>(p: D) -> Self {
        BenchmarkId {
            label: p.to_string(),
        }
    }

    /// `BenchmarkId::new("f", 8)` → case labeled `"f/8"`.
    pub fn new<D: Display>(function: &str, p: D) -> Self {
        BenchmarkId {
            label: format!("{function}/{p}"),
        }
    }
}

/// Drives timed iterations of one benchmark body.
pub struct Bencher {
    /// Mean wall-clock time per iteration, filled in by [`Bencher::iter`].
    mean: Duration,
}

impl Bencher {
    /// Times `f`, storing the mean per-iteration duration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..WARMUP_ITERS {
            black_box(f());
        }
        // Estimate per-iteration cost, then size the measured batch.
        let probe = Instant::now();
        black_box(f());
        let once = probe.elapsed().max(Duration::from_nanos(1));
        let iters = (TARGET.as_nanos() / once.as_nanos()).clamp(1, u128::from(MAX_ITERS)) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.mean = start.elapsed() / iters as u32;
    }
}

fn run_case(name: &str, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        mean: Duration::ZERO,
    };
    f(&mut b);
    println!("bench {name:<40} {:>12.3?}/iter", b.mean);
}

/// A named group of related benchmark cases.
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    /// Benchmarks `f` against one parameter value.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_case(&format!("{}/{}", self.name, id.label), |b| f(b, input));
    }

    /// Benchmarks an unparameterized case within the group.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_case(&format!("{}/{}", self.name, id), |b| f(b));
    }

    pub fn finish(self) {}
}

/// Top-level benchmark driver (stand-in for `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Mirrors `Criterion::configure_from_args`; CLI filtering is not
    /// supported by the stand-in, so this is the identity.
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_case(name, |b| f(b));
        self
    }
}

/// Bundles benchmark functions into one group runner, like criterion's.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
