//! Offline stand-in for `serde_json`.
//!
//! Provides the one entry point the workspace uses —
//! [`to_string_pretty`] — on top of the offline [`serde`] stand-in's
//! compact JSON writer, plus a string-aware re-indenting pretty printer.

use std::fmt;

/// Error type mirroring `serde_json::Error`'s role in signatures.
///
/// The stand-in serializer is infallible, so this is never constructed; it
/// exists so `Result<String, Error>`-shaped call sites keep compiling.
#[derive(Debug)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("json serialization error")
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_json())
}

/// Serializes `value` as pretty-printed JSON (2-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(pretty(&value.to_json()))
}

/// Re-indents compact JSON produced by the stand-in serializer.
///
/// Walks the text with string-literal awareness, so braces and commas
/// inside string values never trigger layout changes.
fn pretty(compact: &str) -> String {
    let mut out = String::with_capacity(compact.len() * 2);
    let mut depth = 0usize;
    let mut in_str = false;
    let mut escaped = false;
    let mut chars = compact.chars().peekable();
    let indent = |out: &mut String, depth: usize| {
        out.push('\n');
        for _ in 0..depth {
            out.push_str("  ");
        }
    };
    while let Some(c) = chars.next() {
        if in_str {
            out.push(c);
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '"' => {
                in_str = true;
                out.push(c);
            }
            '{' | '[' => {
                out.push(c);
                // Keep empty containers on one line.
                let close = if c == '{' { '}' } else { ']' };
                if chars.peek() == Some(&close) {
                    out.push(chars.next().unwrap());
                } else {
                    depth += 1;
                    indent(&mut out, depth);
                }
            }
            '}' | ']' => {
                depth = depth.saturating_sub(1);
                indent(&mut out, depth);
                out.push(c);
            }
            ',' => {
                out.push(c);
                indent(&mut out, depth);
            }
            ':' => {
                out.push_str(": ");
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_prints_nested() {
        let s = pretty("{\"a\":[1,2],\"b\":\"x,{y}\"}");
        assert_eq!(
            s,
            "{\n  \"a\": [\n    1,\n    2\n  ],\n  \"b\": \"x,{y}\"\n}"
        );
    }

    #[test]
    fn empty_containers_stay_inline() {
        assert_eq!(pretty("[]"), "[]");
        assert_eq!(pretty("{\"a\":{}}"), "{\n  \"a\": {}\n}");
    }
}
