//! Offline stand-in for the `serde` crate.
//!
//! This workspace builds in a hermetic environment with no access to
//! crates.io, so the real `serde` cannot be vendored. The simulation only
//! needs one serialization capability — dumping experiment results as JSON
//! under `results/` — so this crate provides exactly that surface:
//!
//! - [`Serialize`]: a trait that writes the value as JSON text. Implemented
//!   for the primitives, strings, tuples, arrays, `Vec`, `Option`, and map
//!   types the experiment records use, and derivable for structs and enums
//!   via `#[derive(Serialize)]` (re-exported from `serde_derive`).
//! - [`Deserialize`]: a marker trait (nothing in the workspace reads JSON
//!   back in yet); `#[derive(Deserialize)]` emits the marker impl.
//!
//! If the workspace ever gains network access, swapping this out for the
//! real `serde` requires only changing `[workspace.dependencies]` — the
//! derive attribute surface (`#[derive(Serialize, Deserialize)]`) is
//! identical.

// Let the derive-generated `serde::...` paths resolve inside this crate's
// own tests too.
extern crate self as serde;

pub use serde_derive::{Deserialize, Serialize};

/// Types that can write themselves as JSON text.
///
/// This is a deliberately minimal stand-in for `serde::Serialize`: instead
/// of the visitor-based data model, implementors append their JSON encoding
/// directly to an output buffer.
pub trait Serialize {
    /// Appends this value's JSON encoding to `out`.
    fn write_json(&self, out: &mut String);

    /// Renders this value as a compact JSON string.
    fn to_json(&self) -> String {
        let mut s = String::new();
        self.write_json(&mut s);
        s
    }
}

/// Marker for types that could be read back from serialized form.
///
/// The workspace never deserializes anything today; the derive macro emits
/// an empty impl so `#[derive(Deserialize)]` keeps compiling against this
/// stand-in exactly as it would against real serde.
pub trait Deserialize: Sized {}

/// Escapes and writes a JSON string literal.
pub fn write_json_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

macro_rules! impl_serialize_int {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn write_json(&self, out: &mut String) {
                out.push_str(&self.to_string());
            }
        }
        impl Deserialize for $t {}
    )*};
}

impl_serialize_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

macro_rules! impl_serialize_float {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn write_json(&self, out: &mut String) {
                if self.is_finite() {
                    out.push_str(&self.to_string());
                } else {
                    // JSON has no NaN/Infinity literals.
                    out.push_str("null");
                }
            }
        }
        impl Deserialize for $t {}
    )*};
}

impl_serialize_float!(f32, f64);

impl Serialize for bool {
    fn write_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}
impl Deserialize for bool {}

impl Serialize for char {
    fn write_json(&self, out: &mut String) {
        write_json_str(&self.to_string(), out);
    }
}
impl Deserialize for char {}

impl Serialize for str {
    fn write_json(&self, out: &mut String) {
        write_json_str(self, out);
    }
}

impl Serialize for String {
    fn write_json(&self, out: &mut String) {
        write_json_str(self, out);
    }
}
impl Deserialize for String {}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn write_json(&self, out: &mut String) {
        (**self).write_json(out);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn write_json(&self, out: &mut String) {
        match self {
            Some(v) => v.write_json(out),
            None => out.push_str("null"),
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {}

fn write_json_seq<'a, T: Serialize + 'a>(items: impl IntoIterator<Item = &'a T>, out: &mut String) {
    out.push('[');
    for (i, v) in items.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        v.write_json(out);
    }
    out.push(']');
}

impl<T: Serialize> Serialize for [T] {
    fn write_json(&self, out: &mut String) {
        write_json_seq(self, out);
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn write_json(&self, out: &mut String) {
        write_json_seq(self, out);
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn write_json(&self, out: &mut String) {
        write_json_seq(self, out);
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {}

macro_rules! impl_serialize_tuple {
    ($(($($n:tt $t:ident),+)),* $(,)?) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn write_json(&self, out: &mut String) {
                out.push('[');
                let mut first = true;
                $(
                    if !first {
                        out.push(',');
                    }
                    first = false;
                    self.$n.write_json(out);
                )+
                let _ = first;
                out.push(']');
            }
        }
    )*};
}

impl_serialize_tuple!(
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
    (0 A, 1 B, 2 C, 3 D, 4 E),
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F),
);

impl<K: std::fmt::Display, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn write_json(&self, out: &mut String) {
        out.push('{');
        for (i, (k, v)) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_str(&k.to_string(), out);
            out.push(':');
            v.write_json(out);
        }
        out.push('}');
    }
}

impl<K: std::fmt::Display, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    fn write_json(&self, out: &mut String) {
        // Sort by rendered key: HashMap iteration order is nondeterministic,
        // and the workspace guarantees byte-identical output per seed.
        let mut entries: Vec<(String, &V)> = self.iter().map(|(k, v)| (k.to_string(), v)).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        out.push('{');
        for (i, (k, v)) in entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_str(k, out);
            out.push(':');
            v.write_json(out);
        }
        out.push('}');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_and_containers() {
        assert_eq!(42u32.to_json(), "42");
        assert_eq!((-3i64).to_json(), "-3");
        assert_eq!(1.5f64.to_json(), "1.5");
        assert_eq!(f64::NAN.to_json(), "null");
        assert_eq!(true.to_json(), "true");
        assert_eq!("a\"b".to_string().to_json(), "\"a\\\"b\"");
        assert_eq!(vec![1u8, 2, 3].to_json(), "[1,2,3]");
        assert_eq!((1u32, 2.5f64).to_json(), "[1,2.5]");
        assert_eq!(Option::<u32>::None.to_json(), "null");
        assert_eq!(Some(7u32).to_json(), "7");
    }

    #[test]
    fn derive_struct_and_enum() {
        #[derive(Serialize)]
        struct Point {
            x: f64,
            y: f64,
        }
        #[derive(Serialize)]
        struct Id(u64);
        #[derive(Serialize)]
        enum Kind {
            Unit,
            Tagged(u32),
        }
        assert_eq!(Point { x: 1.0, y: 2.0 }.to_json(), "{\"x\":1,\"y\":2}");
        assert_eq!(Id(9).to_json(), "9");
        assert_eq!(Kind::Unit.to_json(), "\"Unit\"");
        assert_eq!(Kind::Tagged(3).to_json(), "{\"Tagged\":3}");
    }
}
