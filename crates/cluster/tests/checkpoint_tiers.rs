//! End-to-end behaviour of the tiered checkpoint hierarchy through the
//! full event loop: tier promotion across instance churn, the shared
//! loading channel under contention, HBM hits, and cache loss on node
//! failure — all driven by a minimal policy so only `World` semantics are
//! under test.

use cluster::checkpoint::CheckpointConfig;
use cluster::{ClusterSpec, NodeId, Policy, RunMetrics, Simulation, World, WorldConfig};
use engine::request::RunningRequest;
use hwmodel::{ModelSpec, NoiseModel};
use simcore::time::{SimDuration, SimTime};
use workload::request::{ModelId, Request, RequestId, SloClass, Trace};

const GB: u64 = 1_000_000_000;

/// Minimal policy: admit to an existing instance of the model when one is
/// active (unless `always_fresh`), otherwise cold-start a new instance on
/// the first schedulable node that fits; FIFO most-urgent execution and
/// the trait-default keep-alive reclaim.
struct Minimal {
    always_fresh: bool,
}

impl Policy for Minimal {
    fn name(&self) -> &str {
        "minimal-tier-test"
    }

    fn on_arrival(&mut self, w: &mut World, rr: RunningRequest) {
        let model = rr.req.model;
        if !self.always_fresh {
            if let Some(&inst) = w.instances_of_model(model).first() {
                w.admit(inst, rr);
                return;
            }
        }
        let spec = w.model_spec(model).clone();
        let grant = 4 * GB;
        let nodes: Vec<NodeId> = w.node_ids().collect();
        for node in nodes {
            if !w.node_schedulable(node) || !w.node_hw(node).can_serve(&spec) {
                continue;
            }
            if w.node_available_bytes(node) < spec.weights_bytes() + grant {
                continue;
            }
            let slot = (0..w.slot_count(node))
                .min_by_key(|&s| w.instances_on_slot(node, s).len())
                .expect("a slot");
            if let Ok(inst) = w.create_instance(model, node, slot, grant) {
                w.admit(inst, rr);
                return;
            }
        }
        w.drop_request(&rr);
    }

    fn on_slot_free(&mut self, w: &mut World, node: NodeId, slot: usize) {
        let now = w.now();
        let slo = w.slo();
        for inst in w.instances_on_slot(node, slot) {
            let Some(i) = w.instance(inst) else { continue };
            if !i.has_work() || w.instance_group_busy(inst) {
                continue;
            }
            if let Some((_, kind)) = i.most_urgent(now, &slo) {
                let _ = w.start_iteration(inst, kind);
                return;
            }
        }
    }
}

fn trace(reqs: Vec<(u64, u32)>) -> Trace {
    let n_models = reqs.iter().map(|&(_, m)| m).max().unwrap_or(0) + 1;
    let requests = reqs
        .into_iter()
        .enumerate()
        .map(|(i, (ms, m))| Request {
            id: RequestId(i as u64),
            model: ModelId(m),
            arrival: SimTime::from_millis(ms),
            input_len: 256,
            output_len: 4,
            class: SloClass::default(),
            session: Default::default(),
        })
        .collect();
    Trace::new(requests, n_models, SimDuration::from_secs(60))
}

fn run(
    cluster: ClusterSpec,
    n_models: usize,
    ckpt: CheckpointConfig,
    t: &Trace,
    always_fresh: bool,
) -> RunMetrics {
    let models: Vec<ModelSpec> = (0..n_models)
        .map(|i| ModelSpec::llama2_7b().replica(i))
        .collect();
    let cfg = WorldConfig {
        noise: NoiseModel::off(),
        checkpoints: ckpt,
        ..WorldConfig::default()
    };
    Simulation::new(&cluster, models, cfg, Minimal { always_fresh }).run(t)
}

/// 7B weights over a tier's bandwidth, seconds.
fn load_s(bw_gbps: f64) -> f64 {
    ModelSpec::llama2_7b().weights_bytes() as f64 / (bw_gbps * 1e9)
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 0.02 * b.max(1e-9)
}

#[test]
fn ssd_load_then_dram_hit_across_instance_churn() {
    // Finite DRAM cache, SSD-local checkpoints. The first cold start
    // streams from SSD and promotes the checkpoint into DRAM; after the
    // instance is keep-alive-reclaimed, the second cold start of the same
    // model is a DRAM hit — an order-of-magnitude cheaper.
    let ckpt = CheckpointConfig::tiered(30 * GB, None);
    let t = trace(vec![(0, 0), (8_000, 0)]);
    let m = run(ClusterSpec::heterogeneous(0, 1), 1, ckpt, &t, false);
    assert_eq!(m.cold_starts, 2, "keep-alive must have reclaimed");
    assert_eq!(m.cold_tier_loads, [0, 1, 1, 0]);
    let ssd = load_s(6.0);
    let dram = load_s(14.0);
    assert!(close(m.records[0].grace.as_secs_f64(), ssd));
    assert!(close(m.records[1].grace.as_secs_f64(), dram));
    assert!(close(m.cold_start_seconds_total(), ssd + dram));
}

#[test]
fn remote_fetch_when_no_local_copy_exists() {
    // SSD tier disabled: the first load is a full registry fetch.
    let ckpt = CheckpointConfig::tiered(30 * GB, Some(0));
    let t = trace(vec![(0, 0)]);
    let m = run(ClusterSpec::heterogeneous(0, 1), 1, ckpt, &t, false);
    assert_eq!(m.cold_tier_loads, [0, 0, 0, 1]);
    assert!(close(m.records[0].grace.as_secs_f64(), load_s(1.25)));
}

#[test]
fn concurrent_loads_share_the_channel() {
    // Two different models cold-start simultaneously on one node: each
    // sees bw/2 for the whole overlap, so both take exactly twice the
    // uncontended DRAM load time.
    let contended = CheckpointConfig {
        contention: true,
        ..CheckpointConfig::flat()
    };
    let t = trace(vec![(0, 0), (0, 1)]);
    let m = run(ClusterSpec::heterogeneous(0, 1), 2, contended, &t, false);
    assert_eq!(m.cold_tier_loads, [0, 2, 0, 0]);
    let dram = load_s(14.0);
    for rec in &m.records {
        assert!(
            close(rec.grace.as_secs_f64(), 2.0 * dram),
            "contended load {:?} vs expected {}",
            rec.grace,
            2.0 * dram
        );
    }
    // The flat default does not contend: same trace, solo-speed loads.
    let t2 = trace(vec![(0, 0), (0, 1)]);
    let flat = run(
        ClusterSpec::heterogeneous(0, 1),
        2,
        CheckpointConfig::flat(),
        &t2,
        false,
    );
    for rec in &flat.records {
        assert!(close(rec.grace.as_secs_f64(), dram));
    }
}

#[test]
fn straggler_speeds_up_when_neighbour_finishes() {
    // Load A starts alone; B joins 500 ms in. A finishes first (it had a
    // head start), B's tail runs uncontended again. Total durations are
    // pinned by the processor-sharing schedule:
    //   A: 0.5 s alone + shared window until its work is done.
    let contended = CheckpointConfig {
        contention: true,
        ..CheckpointConfig::flat()
    };
    let t = trace(vec![(0, 0), (500, 1)]);
    let m = run(ClusterSpec::heterogeneous(0, 1), 2, contended, &t, false);
    let w = load_s(14.0); // uncontended work per load, seconds
    let a = m.records[0].grace.as_secs_f64();
    let b = m.records[1].grace.as_secs_f64();
    // A: 0.5 alone, remaining (w - 0.5) at half speed.
    assert!(close(a, 0.5 + 2.0 * (w - 0.5)), "A {a}");
    // B: shares until A ends (A's tail lasts 2(w-0.5)), then finishes
    // its own remaining work at full speed. The two durations coincide —
    // A's solo head start exactly mirrors B's solo tail.
    let shared = 2.0 * (w - 0.5);
    assert!(close(b, shared + (w - shared / 2.0)), "B {b}");
    assert!(close(a, b), "staggered symmetric overlap: {a} vs {b}");
    assert!(b < 2.0 * w, "partial overlap beats full 2x stretching");
}

#[test]
fn hbm_hit_for_co_resident_model() {
    // Same model, second instance forced onto the same node while the
    // first is active: the weights are already in serving memory, so the
    // second cold start is a near-free device copy.
    let ckpt = CheckpointConfig {
        hbm_hits: true,
        ..CheckpointConfig::flat()
    };
    let mut cfg_trace = trace(vec![(0, 0), (3_000, 0)]);
    cfg_trace.requests[1].input_len = 256;
    let models = vec![ModelSpec::llama2_7b()];
    let cfg = WorldConfig {
        noise: NoiseModel::off(),
        keep_alive: SimDuration::from_secs(30),
        checkpoints: ckpt,
        ..WorldConfig::default()
    };
    let m = Simulation::new(
        &ClusterSpec::heterogeneous(0, 1),
        models,
        cfg,
        Minimal { always_fresh: true },
    )
    .run(&cfg_trace);
    assert_eq!(m.cold_starts, 2);
    assert_eq!(m.cold_tier_loads, [1, 1, 0, 0]);
    assert!(close(m.records[0].grace.as_secs_f64(), load_s(14.0)));
    assert!(close(m.records[1].grace.as_secs_f64(), load_s(1300.0)));
}

#[test]
fn node_fail_mid_load_refetches_remotely_elsewhere() {
    // The checkpoint was being fetched on node 0 when the node died: the
    // in-flight load is cancelled (its completion event goes stale), the
    // displaced request re-places on node 1, and — caches being per-node
    // and node 0's store dying with it — the refetch is remote again.
    let ckpt = CheckpointConfig::tiered(30 * GB, Some(100 * GB));
    let t = trace(vec![(0, 0)]);
    let models = vec![ModelSpec::llama2_7b()];
    let cfg = WorldConfig {
        noise: NoiseModel::off(),
        checkpoints: ckpt,
        ..WorldConfig::default()
    };
    let mut sim = Simulation::new(
        &ClusterSpec::heterogeneous(0, 2),
        models,
        cfg,
        Minimal {
            always_fresh: false,
        },
    );
    sim.world.push_cluster_event(
        SimTime::from_secs(5),
        cluster::ClusterEvent::NodeFail(NodeId(0)),
    );
    let m = sim.run(&t);
    assert_eq!(m.node_failures, 1);
    assert_eq!(
        m.cold_tier_loads,
        [0, 0, 0, 2],
        "both fetches remote: the warm state died with node 0"
    );
    assert!(
        m.records[0].completed.is_some(),
        "request finishes on node 1"
    );
    // Only the second load completed; the first died mid-flight, so
    // completed load-seconds cover exactly one remote fetch.
    assert!(close(m.cold_start_seconds_total(), load_s(1.25)));
}
