//! Direct unit tests of the `World` API: placement queries, memory ledger
//! transitions, estimation helpers, and the operation lifecycle — below the
//! driver, above the engine.

use cluster::{ClusterSpec, MemError, NodeId, World, WorldConfig};
use engine::instance::InstanceId;
use engine::request::RunningRequest;
use hwmodel::{HardwareKind, ModelSpec, NoiseModel};
use simcore::time::SimTime;
use workload::request::{ModelId, Request, RequestId, SloClass};

const GB: u64 = 1_000_000_000;

fn world() -> World {
    let cfg = WorldConfig {
        noise: NoiseModel::off(),
        ..WorldConfig::default()
    };
    World::new(
        &ClusterSpec::heterogeneous(1, 1),
        vec![ModelSpec::llama2_7b(), ModelSpec::codellama_34b()],
        cfg,
    )
}

fn rr(id: u64, model: u32) -> RunningRequest {
    RunningRequest::new(Request {
        id: RequestId(id),
        model: ModelId(model),
        arrival: SimTime::ZERO,
        input_len: 256,
        output_len: 8,
        class: SloClass::default(),
        session: Default::default(),
    })
}

#[test]
fn node_views_and_kinds() {
    let w = world();
    assert_eq!(w.node_count(), 2);
    assert_eq!(w.nodes_of_kind(HardwareKind::CpuAccel), vec![NodeId(0)]);
    assert_eq!(w.nodes_of_kind(HardwareKind::Gpu), vec![NodeId(1)]);
    assert_eq!(w.slot_count(NodeId(0)), 1);
    assert_eq!(w.slot_share(NodeId(0), 0), 1.0);
    assert_eq!(w.node_available_bytes(NodeId(1)), 80 * GB);
}

#[test]
fn create_commits_and_unload_releases() {
    let mut w = world();
    let before = w.node_available_bytes(NodeId(1));
    let inst = w
        .create_instance(ModelId(0), NodeId(1), 0, 4 * GB)
        .expect("fits");
    let weights = ModelSpec::llama2_7b().weights_bytes();
    assert_eq!(w.node_available_bytes(NodeId(1)), before - weights - 4 * GB);
    assert_eq!(w.instances_on_node(NodeId(1)), vec![inst]);
    assert_eq!(w.instances_of_model(ModelId(0)), vec![inst]);
    assert_eq!(w.instance_placement(inst), Some((NodeId(1), 0)));
    // Unloading returns every committed byte.
    w.unload_instance(inst);
    assert_eq!(w.node_available_bytes(NodeId(1)), before);
    assert!(w.instance(inst).is_none());
}

#[test]
fn unservable_models_are_rejected_up_front() {
    let mut w = world();
    // 34B on the AMX CPU: §IV-A2 says no.
    let err = w.create_instance(ModelId(1), NodeId(0), 0, GB).unwrap_err();
    assert_eq!(err, MemError::Unservable);
    // And the ledger is untouched.
    assert_eq!(w.node_available_bytes(NodeId(0)), 192 * GB);
}

#[test]
fn scale_up_commits_at_issue_scale_down_at_completion() {
    let mut w = world();
    let inst = w
        .create_instance(ModelId(0), NodeId(1), 0, 4 * GB)
        .expect("fits");
    let after_create = w.node_available_bytes(NodeId(1));
    // Scale up 4 → 8 GB: the delta is committed immediately.
    w.start_kv_scale(inst, 8 * GB).expect("scale up");
    assert_eq!(w.node_available_bytes(NodeId(1)), after_create - 4 * GB);
    // Grant only changes when the op completes (driver applies it); here we
    // verify the engine still reports the old capacity mid-flight.
    assert_eq!(w.instance(inst).unwrap().kv_capacity_bytes(), 4 * GB);
    assert!(w.instance(inst).unwrap().scaling);
}

#[test]
fn oversized_scale_up_is_rejected_and_counted() {
    let mut w = world();
    let inst = w
        .create_instance(ModelId(0), NodeId(1), 0, 4 * GB)
        .expect("fits");
    let err = w.start_kv_scale(inst, 200 * GB).unwrap_err();
    assert!(matches!(err, MemError::WouldOom { .. }));
    assert_eq!(w.metrics.oom_incidents, 1);
    // No partial commit on rejection.
    let weights = ModelSpec::llama2_7b().weights_bytes();
    assert_eq!(
        w.node_available_bytes(NodeId(1)),
        80 * GB - weights - 4 * GB
    );
}

#[test]
fn estimates_are_noiseless_and_placement_aware() {
    let mut w = world();
    let cpu_inst = w
        .create_instance(ModelId(0), NodeId(0), 0, 4 * GB)
        .expect("fits");
    let gpu_inst = w
        .create_instance(ModelId(0), NodeId(1), 0, 4 * GB)
        .expect("fits");
    let cpu_t = w.estimate_prefill_s(cpu_inst, 1024);
    let gpu_t = w.estimate_prefill_s(gpu_inst, 1024);
    assert!(
        cpu_t > gpu_t * 3.0,
        "CPU prefill far slower: {cpu_t} vs {gpu_t}"
    );
    // Repeated estimates are identical (no noise).
    assert_eq!(cpu_t, w.estimate_prefill_s(cpu_inst, 1024));
    // Decode estimate grows with batch.
    assert!(w.estimate_decode_s(gpu_inst, 8, 8192) > w.estimate_decode_s(gpu_inst, 1, 1024));
    // Load estimate matches the loader bandwidth ballpark.
    let load = w.estimate_load_s(ModelId(0), NodeId(1));
    assert!((0.8..1.2).contains(&load), "7B GPU load {load}");
}

#[test]
fn kv_transfer_delay_scales_with_context() {
    let w = world();
    let d1 = w.kv_transfer_delay(ModelId(0), 1024);
    let d2 = w.kv_transfer_delay(ModelId(0), 4096);
    // 1024 tokens × 0.5 MiB = 0.54 GB over 12.5 GB/s ≈ 43 ms.
    assert!((0.03..0.06).contains(&d1.as_secs_f64()), "{d1}");
    assert!(d2.as_micros() > 3 * d1.as_micros());
}

#[test]
fn admit_decoding_respects_scaling_and_capacity() {
    let mut w = world();
    let inst = w
        .create_instance(ModelId(0), NodeId(1), 0, GB)
        .expect("fits");
    // While a rescale is in flight, handoffs are refused.
    w.start_kv_scale(inst, 2 * GB).expect("scale");
    let mut moved = rr(1, 0);
    moved.phase = engine::request::ReqPhase::Decoding;
    moved.tokens_out = 4;
    assert!(!w.admit_decoding(inst, moved.clone()));
    // Normal admission works.
    let inst2 = w
        .create_instance(ModelId(0), NodeId(0), 0, GB)
        .expect("fits");
    assert!(w.admit_decoding(inst2, moved));
    assert_eq!(w.instance(inst2).unwrap().live_count(), 1);
}

#[test]
#[should_panic(expected = "unloading a non-idle instance")]
fn unload_with_live_requests_panics() {
    let mut w = world();
    let inst = w
        .create_instance(ModelId(0), NodeId(1), 0, GB)
        .expect("fits");
    w.admit(inst, rr(1, 0));
    w.unload_instance(inst);
}

#[test]
fn drop_request_resolves_once() {
    let mut w = world();
    let r = rr(9, 0);
    // Build records for one request so drop bookkeeping has a target.
    w.metrics = cluster::RunMetrics::for_trace(&[Request {
        id: RequestId(0),
        model: ModelId(0),
        arrival: SimTime::ZERO,
        input_len: 16,
        output_len: 1,
        class: SloClass::default(),
        session: Default::default(),
    }]);
    let mut r0 = r;
    r0.req.id = RequestId(0);
    w.drop_request(&r0);
    w.drop_request(&r0); // idempotent
    assert_eq!(w.metrics.dropped, 1);
    assert!(w.metrics.records[0].dropped);
}

#[test]
fn tp_groups_claim_and_release_slot_sets() {
    use cluster::NodeSpec;
    use engine::instance::IterationKind;
    use hwmodel::HardwareSpec;
    let cfg = WorldConfig {
        noise: NoiseModel::off(),
        ..WorldConfig::default()
    };
    let cluster = ClusterSpec {
        nodes: vec![NodeSpec::multi_accel(HardwareSpec::a100_80g(), 4)],
    };
    let mut w = World::new(
        &cluster,
        vec![ModelSpec::llama2_13b().with_tp(2), ModelSpec::llama2_7b()],
        cfg,
    );
    let before = w.node_available_bytes(NodeId(0));
    let tp2 = w
        .create_instance_group(ModelId(0), NodeId(0), &[0, 1], 8 * GB)
        .expect("group fits");
    // Placement views: primary slot + full group, on every spanned slot.
    assert_eq!(w.instance_placement(tp2), Some((NodeId(0), 0)));
    assert_eq!(w.instance_slots(tp2), Some(&[0usize, 1][..]));
    assert_eq!(w.instances_on_slot(NodeId(0), 0), vec![tp2]);
    assert_eq!(w.instances_on_slot(NodeId(0), 1), vec![tp2]);
    assert!(w.instances_on_slot(NodeId(0), 2).is_empty());
    assert!((w.instance_share(tp2) - 0.5).abs() < 1e-12);
    // One footprint on the node ledger, not one per slot.
    let weights = ModelSpec::llama2_13b().weights_bytes();
    assert_eq!(w.node_available_bytes(NodeId(0)), before - weights - 8 * GB);
    // Iterations occupy the whole group.
    w.instance_mut(tp2).unwrap().activate(SimTime::ZERO);
    w.admit(tp2, rr(0, 0));
    // (give the ledger a record table so token accounting has a target)
    w.metrics = cluster::RunMetrics::for_trace(&[Request {
        id: RequestId(0),
        model: ModelId(0),
        arrival: SimTime::ZERO,
        input_len: 256,
        output_len: 8,
        class: SloClass::default(),
        session: Default::default(),
    }]);
    w.start_iteration(tp2, IterationKind::Prefill(RequestId(0)))
        .expect("group free");
    assert!(w.slot_busy(NodeId(0), 0) && w.slot_busy(NodeId(0), 1));
    assert!(!w.slot_busy(NodeId(0), 2));
    assert!(w.instance_group_busy(tp2));
    // A second iteration on the same group is refused, not started.
    assert_eq!(
        w.start_iteration(tp2, IterationKind::Decode).unwrap_err(),
        cluster::world::StartError::GroupBusy
    );
}

#[test]
fn tp_group_estimates_pay_the_interconnect() {
    use cluster::NodeSpec;
    use hwmodel::HardwareSpec;
    let cfg = WorldConfig {
        noise: NoiseModel::off(),
        ..WorldConfig::default()
    };
    let cluster = ClusterSpec {
        nodes: vec![NodeSpec::multi_accel(HardwareSpec::a100_80g(), 4)],
    };
    let mut w = World::new(
        &cluster,
        vec![
            ModelSpec::llama2_13b(),
            ModelSpec::llama2_13b().with_tp(2).replica(1),
        ],
        cfg,
    );
    let one = w
        .create_instance_group(ModelId(0), NodeId(0), &[0], 4 * GB)
        .expect("fits");
    let two = w
        .create_instance_group(ModelId(1), NodeId(0), &[1, 2], 4 * GB)
        .expect("fits");
    let t1 = w.estimate_prefill_s(one, 2048);
    let t2 = w.estimate_prefill_s(two, 2048);
    // Two devices are faster than one, but sublinearly: the all-reduce
    // term discounts the doubled compute.
    assert!(t2 < t1, "TP=2 must beat TP=1: {t2} vs {t1}");
    assert!(t2 > t1 / 2.0, "TP=2 must be under 2x: {t2} vs {t1}");
    let d1 = w.estimate_decode_s(one, 16, 16 * 1024);
    let d2 = w.estimate_decode_s(two, 16, 16 * 1024);
    assert!(d2 < d1 && d2 > d1 / 2.0, "decode discount: {d2} vs {d1}");
}

#[test]
#[should_panic(expected = "slot group size must match")]
fn mismatched_group_size_panics() {
    let mut w = world();
    // llama2_7b deploys at TP=1; a 1-slot node can't even express 2 slots,
    // but the degree check fires first.
    let _ = w.create_instance_group(ModelId(0), NodeId(1), &[0, 0], GB);
}

#[test]
fn instance_ids_are_unique_and_ordered() {
    let mut w = world();
    let a = w.create_instance(ModelId(0), NodeId(0), 0, GB).unwrap();
    let b = w.create_instance(ModelId(0), NodeId(1), 0, GB).unwrap();
    assert!(b > a);
    assert_eq!(w.instance_ids(), vec![a, b]);
    assert_ne!(a, InstanceId(0), "ids start at 1");
}
