//! The deterministic event loop.
//!
//! [`Simulation`] pairs a [`World`] with one [`Policy`], replays a
//! [`Trace`], and returns [`RunMetrics`]. All systems in the paper's
//! evaluation run under this one driver — only the policy differs — so any
//! difference in the output metrics is attributable to scheduling, exactly
//! like the paper's "all systems use the same inference engines" fairness
//! rule (§IX-A).
//!
//! A run is a pure function of `(cluster, models, cfg, trace)`: all
//! randomness flows from `cfg.seed` and no global state is consulted, so
//! the `bench` sweep driver can replay independent cells concurrently on
//! worker threads and still collect byte-identical results in any order.
//! Construction is cheap relative to a run (a `World` is vectors and an
//! empty event heap), so workers build each simulation from scratch.

use engine::instance::IterationKind;
use engine::request::RunningRequest;
use hwmodel::ModelSpec;
use simcore::time::SimTime;
use workload::request::Trace;

use crate::metrics::RunMetrics;
use crate::node::ClusterSpec;
use crate::policy::Policy;
use crate::world::{ClusterEvent, Event, World, WorldConfig};

/// A policy bound to a world, ready to replay a trace.
pub struct Simulation<P: Policy> {
    /// Cluster state.
    pub world: World,
    /// System under test.
    pub policy: P,
}

impl<P: Policy> Simulation<P> {
    /// Builds a simulation over `cluster` with the given model registry.
    pub fn new(cluster: &ClusterSpec, models: Vec<ModelSpec>, cfg: WorldConfig, policy: P) -> Self {
        Simulation {
            world: World::new(cluster, models, cfg),
            policy,
        }
    }

    /// Replays `trace` to completion (or until the drain grace expires) and
    /// returns the metrics.
    ///
    /// # Panics
    /// Panics if a request references a model outside the registry.
    pub fn run(mut self, trace: &Trace) -> RunMetrics {
        let w = &mut self.world;
        w.metrics = RunMetrics::for_trace(&trace.requests);
        w.metrics.usage_stride = w.cfg.usage_sample_stride;
        w.outstanding = trace.len();
        for r in &trace.requests {
            assert!(
                (r.model.0 as usize) < w.model_count(),
                "request references unregistered model {}",
                r.model.0
            );
        }
        for (i, r) in trace.requests.iter().enumerate() {
            w.events.push(r.arrival, Event::Arrival(i));
        }
        w.events.push(SimTime::ZERO, Event::Sample);
        let last_arrival = trace
            .requests
            .last()
            .map(|r| r.arrival)
            .unwrap_or(SimTime::ZERO);
        let hard_stop = last_arrival + w.cfg.drain_grace;
        let mut arrivals_left = trace.len();

        while let Some((t, ev)) = self.world.events.pop() {
            if t > hard_stop {
                break;
            }
            self.world.set_now(t);
            if self.world.outstanding == 0 && arrivals_left == 0 {
                break;
            }
            self.dispatch(ev, &mut arrivals_left, trace);
            self.drain_wakes();
        }
        let end = self.world.now();
        self.world.finalize_lifetimes();
        self.world.metrics.finish(end);
        // Anything unresolved at the hard stop counts as dropped.
        for rec in &mut self.world.metrics.records {
            if rec.completed.is_none() && !rec.dropped {
                rec.dropped = true;
                self.world.metrics.dropped += 1;
            }
        }
        std::mem::take(&mut self.world.metrics)
    }

    fn dispatch(&mut self, ev: Event, arrivals_left: &mut usize, trace: &Trace) {
        let w = &mut self.world;
        match ev {
            Event::Arrival(idx) => {
                *arrivals_left -= 1;
                let rr = RunningRequest::new(trace.requests[idx]);
                self.policy.on_arrival(w, rr);
            }
            Event::IterationDone {
                inst,
                kind,
                elapsed,
            } => {
                // The instance may have been destroyed by a NodeFail while
                // this iteration was in flight; its work is simply lost.
                if w.instance(inst).is_none() {
                    return;
                }
                let now = w.now();
                match kind {
                    IterationKind::Prefill(req) => {
                        let (tokens_out, finished) = w
                            .instance_mut(inst)
                            // detlint::allow(D005, "the event dispatch above already dropped stale IterationDone events for unloaded instances")
                            .expect("checked above")
                            .finish_prefill(req, now, elapsed);
                        w.count_decode_tokens(inst, 1);
                        let slo = w.slo_for_id(req);
                        w.metrics.on_token(req, tokens_out, now, &slo);
                        if let Some(rr) = finished {
                            w.outstanding = w.outstanding.saturating_sub(1);
                            w.note_request_parked(inst, &rr);
                            self.policy.on_request_done(w, inst, &rr);
                        } else {
                            self.policy.on_prefill_done(w, inst, req);
                        }
                    }
                    IterationKind::Decode => {
                        let outcome = w
                            .instance_mut(inst)
                            // detlint::allow(D005, "the event dispatch above already dropped stale IterationDone events for unloaded instances")
                            .expect("checked above")
                            .finish_decode(now, elapsed);
                        w.count_decode_tokens(inst, outcome.produced.len() as u64);
                        for &(id, tokens_out, _) in &outcome.produced {
                            let slo = w.slo_for_id(id);
                            w.metrics.on_token(id, tokens_out, now, &slo);
                        }
                        for rr in &outcome.finished {
                            w.outstanding = w.outstanding.saturating_sub(1);
                            w.note_request_parked(inst, rr);
                            self.policy.on_request_done(w, inst, rr);
                        }
                        for &id in &outcome.alloc_failures {
                            self.policy.on_alloc_failure(w, inst, id);
                        }
                    }
                }
                w.schedule_keepalive(inst);
                w.release_slot(inst);
                self.sweep_draining(inst);
            }
            Event::LoadDone {
                inst,
                elapsed,
                epoch,
            } => {
                // Contended loads are rescheduled whenever their node's
                // loading channel changes membership; only the event
                // matching the channel's current epoch completes the load.
                let Some(elapsed) = w.resolve_load_done(inst, elapsed, epoch) else {
                    return;
                };
                w.apply_load_done(inst, elapsed);
                self.policy.on_load_done(w, inst);
                self.sweep_draining(inst);
            }
            Event::ScaleDone {
                inst,
                from_bytes,
                to_bytes,
                elapsed,
            } => {
                w.apply_scale_done(inst, from_bytes, to_bytes, elapsed);
                self.policy.on_scale_done(w, inst);
                self.sweep_draining(inst);
            }
            Event::Cluster(ev) => {
                let displaced = w.apply_cluster_event(&ev);
                self.policy.on_node_event(w, &ev, displaced);
            }
            Event::KeepAlive { inst, marker } => {
                let still_idle = w
                    .instance(inst)
                    .map(|i| i.idle_since == Some(marker))
                    .unwrap_or(false);
                if still_idle {
                    if w.keepalive_defer(inst) {
                        // Cache-aware keep-alive: evicting the fleet's last
                        // warm copy is deferred one more period (same idle
                        // marker, so activity still cancels the timer).
                        let at = w.now() + w.cfg.keep_alive;
                        w.events.push(at, Event::KeepAlive { inst, marker });
                    } else {
                        self.policy.on_keepalive(w, inst);
                    }
                }
            }
            Event::Timer(payload) => self.policy.on_timer(w, payload),
            Event::Sample => {
                w.take_sample();
                if w.outstanding > 0 || *arrivals_left > 0 {
                    let period = w.cfg.sample_period;
                    let at = w.now() + period;
                    w.events.push(at, Event::Sample);
                }
            }
        }
    }

    /// If `inst` sits on a draining node and just went idle, unload it and
    /// hand its requests back to the policy — the deferred half of a
    /// [`ClusterEvent::NodeDrain`].
    fn sweep_draining(&mut self, inst: engine::instance::InstanceId) {
        let Some((node, _)) = self.world.instance_placement(inst) else {
            return;
        };
        if self.world.node_health(node) != crate::world::NodeHealth::Draining {
            return;
        }
        let displaced = self.world.drain_idle_instances(node);
        if !displaced.is_empty() {
            self.policy
                .on_node_event(&mut self.world, &ClusterEvent::NodeDrain(node), displaced);
        }
    }

    fn drain_wakes(&mut self) {
        // One policy poke per woken slot; policies decline by not starting
        // anything, which leaves the slot free until the next event.
        while let Some((node, slot)) = self.world.wake.pop() {
            if self.world.slot_busy(node, slot) {
                continue;
            }
            let has_work = self.world.slot_instances(node, slot).iter().any(|&i| {
                self.world
                    .instance(i)
                    .map(|x| x.has_work())
                    .unwrap_or(false)
            });
            if has_work {
                self.policy.on_slot_free(&mut self.world, node, slot);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeId;
    use engine::instance::InstanceId;
    use hwmodel::NoiseModel;
    use simcore::time::SimDuration;
    use workload::request::{ModelId, Request, RequestId, SloClass};

    /// A one-node, one-model greedy policy used to exercise the driver: it
    /// creates a single instance on node 0 and runs everything FIFO.
    struct Greedy {
        inst: Option<InstanceId>,
        grant: u64,
    }

    impl Policy for Greedy {
        fn name(&self) -> &str {
            "greedy-test"
        }

        fn on_arrival(&mut self, w: &mut World, rr: RunningRequest) {
            let inst = match self.inst {
                Some(i) if w.instance(i).is_some() => i,
                _ => {
                    let id = w
                        .create_instance(rr.req.model, NodeId(0), 0, self.grant)
                        .expect("node 0 fits");
                    w.note_cold_start_request(rr.req.id);
                    self.inst = Some(id);
                    id
                }
            };
            w.admit(inst, rr);
        }

        fn on_slot_free(&mut self, w: &mut World, node: NodeId, slot: usize) {
            let slo = w.slo();
            let now = w.now();
            for inst in w.instances_on_slot(node, slot) {
                let Some(i) = w.instance(inst) else { continue };
                if !i.has_work() {
                    continue;
                }
                if let Some((_, kind)) = i.most_urgent(now, &slo) {
                    let _ = w.start_iteration(inst, kind);
                    return;
                }
            }
        }
    }

    fn small_trace(n: u64) -> Trace {
        let reqs = (0..n)
            .map(|i| Request {
                id: RequestId(i),
                model: ModelId(0),
                arrival: SimTime::from_secs(i),
                input_len: 256,
                output_len: 5,
                class: SloClass::default(),
                session: Default::default(),
            })
            .collect();
        Trace::new(reqs, 1, SimDuration::from_secs(n))
    }

    fn sim() -> Simulation<Greedy> {
        let cluster = ClusterSpec::heterogeneous(0, 1);
        let cfg = WorldConfig {
            noise: NoiseModel::off(),
            ..WorldConfig::default()
        };
        Simulation::new(
            &cluster,
            vec![ModelSpec::llama2_7b()],
            cfg,
            Greedy {
                inst: None,
                grant: 8 * 1_000_000_000,
            },
        )
    }

    #[test]
    fn all_requests_complete() {
        let trace = small_trace(10);
        let m = sim().run(&trace);
        assert_eq!(m.total(), 10);
        assert_eq!(
            m.records.iter().filter(|r| r.completed.is_some()).count(),
            10
        );
        assert_eq!(m.dropped, 0);
        // Every request produced its 5 tokens.
        assert_eq!(m.gpu_decode_tokens, 50);
        assert_eq!(m.cold_starts, 1);
    }

    #[test]
    fn cold_start_grace_applies_to_first_request() {
        let trace = small_trace(1);
        let m = sim().run(&trace);
        let rec = &m.records[0];
        assert!(rec.cold_start);
        // 7B at 14 GB/s loads in ~1 s.
        assert!(
            (rec.grace.as_secs_f64() - 0.96).abs() < 0.1,
            "{:?}",
            rec.grace
        );
        assert!(rec.slo_met(), "grace should cover the cold start");
    }

    #[test]
    fn slo_violations_detected_under_load() {
        // 100 near-simultaneous short requests on one GPU: the prefill storm
        // (~3.5 s of back-to-back prefills against a 0.5 s TTFT floor) must
        // violate some SLOs but not all.
        let reqs = (0..100u64)
            .map(|i| Request {
                id: RequestId(i),
                model: ModelId(0),
                arrival: SimTime::from_millis(i),
                input_len: 256,
                output_len: 20,
                class: SloClass::default(),
                session: Default::default(),
            })
            .collect();
        let trace = Trace::new(reqs, 1, SimDuration::from_secs(1));
        let mut s = sim();
        s.policy.grant = 40 * 1_000_000_000;
        let m = s.run(&trace);
        assert!(m.slo_met() < 100, "one node cannot absorb this burst");
        // Without admission control the prefill storm starves decodes —
        // the very failure mode SLINFER's shadow validation exists to avoid.
        let violated = m
            .records
            .iter()
            .filter(|r| r.ttft_violated || r.tpot_violated)
            .count();
        assert!(violated > 50, "storm should violate many SLOs: {violated}");
        // But nothing is lost: every request still completes eventually.
        assert_eq!(m.dropped, 0);
        assert!(m.records.iter().all(|r| r.completed.is_some()));
    }

    #[test]
    fn deterministic_across_runs() {
        let trace = small_trace(20);
        let a = sim().run(&trace);
        let b = sim().run(&trace);
        assert_eq!(a.slo_met(), b.slo_met());
        let ta: Vec<_> = a.records.iter().map(|r| r.first_token).collect();
        let tb: Vec<_> = b.records.iter().map(|r| r.first_token).collect();
        assert_eq!(ta, tb);
    }

    #[test]
    fn empty_trace_is_fine() {
        let trace = Trace::new(vec![], 1, SimDuration::from_secs(1));
        let m = sim().run(&trace);
        assert_eq!(m.total(), 0);
        assert_eq!(m.slo_rate(), 1.0);
    }

    #[test]
    fn keepalive_reclaims_idle_instance() {
        let trace = small_trace(1);
        let mut s = sim();
        s.world.cfg.keep_alive = SimDuration::from_secs(1);
        let m = s.run(&trace);
        // After completion + keep-alive, the instance unloads; its lifetime
        // was accounted.
        assert!(m.instance_lifetime_s > 0.0);
    }
}
