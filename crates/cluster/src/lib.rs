//! Heterogeneous cluster abstraction and the event-driven serving simulator.
//!
//! SLINFER "abstracts heterogeneous hardware into CPU/GPU nodes" (§V); this
//! crate provides that abstraction plus the simulation driver every serving
//! policy runs under:
//!
//! - [`node`] — [`NodeSpec`]/[`ClusterSpec`]: nodes with execution *slots*
//!   (full-node for SLINFER and the exclusive baselines; two half-node slots
//!   for `sllm+c+s` static sharing) and a physical memory ledger.
//! - [`world`] — [`World`]: the live cluster state (instances, committed
//!   memory, clock, RNG, event queue) and the *only* API policies may use to
//!   act: admit requests, start iterations, create/unload instances, issue
//!   KV rescales, set timers. Physical memory is enforced here — an
//!   uncoordinated scale-up that would overflow a node is rejected and
//!   counted as an OOM incident (§VII-C's hazard).
//! - [`policy`] — the [`Policy`] trait: the callback surface (arrivals,
//!   slot-free, load/scale completions, keep-alive, timers) that SLINFER and
//!   all baselines implement.
//! - [`driver`] — [`Simulation`]: the deterministic event loop.
//! - [`metrics`] — [`RunMetrics`]: per-request SLO records, time-weighted
//!   node usage, memory/batch samples, and the summary queries the
//!   experiment harness prints (SLO-met requests, TTFT CDF, decode speed
//!   per node, average nodes used, …).

pub mod driver;
pub mod metrics;
pub mod node;
pub mod policy;
pub mod world;

pub use driver::Simulation;
pub use metrics::{RequestRecord, RunMetrics};
pub use node::{ClusterSpec, NodeId, NodeSpec};
pub use policy::Policy;
pub use world::{MemError, World, WorldConfig};
