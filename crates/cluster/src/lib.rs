//! Heterogeneous cluster abstraction and the event-driven serving simulator.
//!
//! SLINFER "abstracts heterogeneous hardware into CPU/GPU nodes" (§V); this
//! crate provides that abstraction plus the simulation driver every serving
//! policy runs under:
//!
//! - [`node`] — [`NodeSpec`]/[`ClusterSpec`]: nodes with execution *slots*
//!   (full-node for SLINFER and the exclusive baselines; two half-node slots
//!   for `sllm+c+s` static sharing) and a physical memory ledger.
//! - [`checkpoint`] — [`CheckpointConfig`]/[`CheckpointStore`]: the
//!   per-node tiered checkpoint cache (HBM/DRAM/SSD/remote) behind
//!   locality-aware cold starts; the default configuration reproduces the
//!   flat legacy loader bit for bit.
//! - [`world`] — [`World`]: the live cluster state (instances, committed
//!   memory, clock, RNG, event queue) and the *only* API policies may use to
//!   act: admit requests, start iterations, create/unload instances, issue
//!   KV rescales, set timers. Physical memory is enforced here — an
//!   uncoordinated scale-up that would overflow a node is rejected and
//!   counted as an OOM incident (§VII-C's hazard).
//! - [`policy`] — the [`Policy`] trait: the callback surface (arrivals,
//!   slot-free, load/scale completions, keep-alive, timers) that SLINFER and
//!   all baselines implement.
//! - [`driver`] — [`Simulation`]: the deterministic event loop, including
//!   cluster-lifecycle events (node drain/fail/join) and their policy hook.
//! - [`scenario`] — [`Scenario`]: composable run construction over four
//!   axes (fleet, SLO-classed workload segments, a timed [`ClusterEvent`]
//!   schedule, and the policy the run is handed to).
//! - [`sessions`] — [`SessionConfig`]: multi-turn prefix reuse — parked
//!   per-session KV, affinity routing with a stickiness knob, and priced
//!   cross-instance KV migration; off by default.
//! - [`metrics`] — [`RunMetrics`]: per-request SLO records, time-weighted
//!   node usage, memory/batch samples, and the summary queries the
//!   experiment harness prints (SLO-met requests, TTFT CDF, decode speed
//!   per node, average nodes used, …).

#![forbid(unsafe_code)]

pub mod checkpoint;
pub mod dist;
pub mod driver;
pub mod metrics;
pub mod node;
pub mod policy;
pub mod scenario;
pub mod sessions;
pub mod world;

pub use checkpoint::{CheckpointConfig, CheckpointStore};
pub use dist::{CheckpointDirectory, DistConfig, TransferPlan, TransferSource};
pub use driver::Simulation;
pub use hwmodel::CheckpointTier;
pub use metrics::{RequestRecord, RunMetrics};
pub use node::{ClusterSpec, NodeId, NodeSpec};
pub use policy::Policy;
pub use scenario::Scenario;
pub use sessions::SessionConfig;
pub use world::{ClusterEvent, MemError, NodeHealth, World, WorldConfig};

// The bench sweep driver fans independent simulations out across worker
// threads: each cell's Simulation (world + policy) is built and consumed
// on one worker and only the RunMetrics travel back to the collector.
// These checks keep that contract: a non-Send field (Rc, RefCell, raw
// pointer) sneaking into the world or metrics would stop the whole figure
// suite from parallelizing.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<RunMetrics>();
    assert_send::<World>();
    assert_send::<ClusterSpec>();
    assert_send::<WorldConfig>();
};

/// Compile-time witness that a simulation over any `Send` policy can move
/// to a worker thread.
#[allow(dead_code)]
fn simulation_is_send<P: Policy + Send>(s: Simulation<P>) -> impl Send {
    s
}
