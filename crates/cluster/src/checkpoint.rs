//! Per-node tiered checkpoint storage (ServerlessLLM-style).
//!
//! Every cold start used to cost a flat `weights / load_bw` regardless of
//! where the checkpoint lived. In real serverless LLM clusters checkpoint
//! *placement* is the dominant cold-start lever: ServerlessLLM keeps a
//! multi-tier checkpoint cache (GPU memory → host DRAM → local SSD →
//! remote registry) and schedules onto the node with the lowest estimated
//! startup time, and λScale distributes models across nodes to dodge the
//! remote fetch entirely. This module models that hierarchy:
//!
//! - [`CheckpointConfig`] — the per-run knobs: DRAM/SSD cache capacities,
//!   whether concurrent loads contend on the node's shared loading
//!   channel, and whether co-resident weights short-circuit to an HBM
//!   copy. The default reproduces the flat legacy loader **bit for bit**
//!   (infinite pre-staged DRAM, no contention, no HBM shortcut), which is
//!   what keeps all pre-existing experiment goldens byte-identical.
//! - [`CheckpointStore`] — one node's cache state machine: deterministic
//!   LRU lists for the DRAM and SSD tiers. Checkpoints are promoted into
//!   DRAM when a load fetches them, demoted to SSD when DRAM evicts them,
//!   dropped when SSD evicts them, and the whole store is dropped on a
//!   `NodeFail` (a drain leaves it intact, so a drained node re-joining
//!   the schedulable set still has its warm tiers).
//!
//! [`crate::World`] owns one store per node and layers the HBM tier on
//! top (HBM residency is derived from the live instance table, not
//! cached here).

use hwmodel::CheckpointTier;
use workload::request::ModelId;

/// Run-level configuration of the checkpoint storage hierarchy.
///
/// The default ([`CheckpointConfig::flat`]) models the legacy flat loader:
/// an unbounded DRAM cache with every checkpoint pre-staged, no loading
/// contention, and no HBM shortcut — every cold start costs exactly
/// `weights / load_bw`, reproducing pre-hierarchy runs byte-identically.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointConfig {
    /// Per-node DRAM checkpoint-cache capacity in bytes. `None` models an
    /// unbounded, pre-staged cache: every checkpoint is always a DRAM hit
    /// and nothing is tracked or evicted (the flat legacy loader).
    /// `Some(cap)` tracks an LRU cache: misses fall through to the SSD
    /// tier and evictions demote there.
    pub dram_capacity_bytes: Option<u64>,
    /// Per-node SSD capacity in bytes. `None` models checkpoints stored on
    /// every node's local SSD (the ServerlessLLM deployment assumption);
    /// `Some(cap)` tracks an LRU cache whose misses are remote registry
    /// fetches (`Some(0)` disables the SSD tier outright). Irrelevant
    /// while the DRAM tier is unbounded.
    pub ssd_capacity_bytes: Option<u64>,
    /// Model the node's shared loading channel: `k` concurrent cold
    /// starts on one node each see `1/k` of their tier bandwidth, and
    /// in-flight loads speed up when a neighbour finishes. Off in the
    /// flat configuration.
    pub contention: bool,
    /// Serve a cold start of a model that already has an *active*
    /// instance on the node from HBM (device-to-device copy at serving
    /// memory bandwidth) instead of re-loading from the cache hierarchy.
    /// Off in the flat configuration.
    pub hbm_hits: bool,
}

impl CheckpointConfig {
    /// The flat legacy loader (see struct docs). This is the default.
    pub fn flat() -> Self {
        CheckpointConfig {
            dram_capacity_bytes: None,
            ssd_capacity_bytes: None,
            contention: false,
            hbm_hits: false,
        }
    }

    /// The full hierarchy: a finite LRU DRAM cache, an SSD tier
    /// (`None` = every checkpoint SSD-local), loading contention, and HBM
    /// hits — the ServerlessLLM-style configuration the `cold_start`
    /// experiment sweeps.
    pub fn tiered(dram_capacity_bytes: u64, ssd_capacity_bytes: Option<u64>) -> Self {
        CheckpointConfig {
            dram_capacity_bytes: Some(dram_capacity_bytes),
            ssd_capacity_bytes,
            contention: true,
            hbm_hits: true,
        }
    }
}

impl Default for CheckpointConfig {
    fn default() -> Self {
        CheckpointConfig::flat()
    }
}

/// One LRU-tracked cache tier: entries ordered coldest-first, byte-capped.
#[derive(Debug, Clone, Default)]
struct LruTier {
    /// `(model, bytes)` in recency order — front is next to evict.
    entries: Vec<(ModelId, u64)>,
    used: u64,
}

impl LruTier {
    fn contains(&self, model: ModelId) -> bool {
        self.entries.iter().any(|&(m, _)| m == model)
    }

    /// Refreshes recency if present.
    fn touch(&mut self, model: ModelId) {
        if let Some(ix) = self.entries.iter().position(|&(m, _)| m == model) {
            let e = self.entries.remove(ix);
            self.entries.push(e);
        }
    }

    /// Inserts (or refreshes) `model`, evicting coldest-first down to
    /// `cap`; returns the evicted entries in eviction order. A checkpoint
    /// larger than the whole tier is not cached at all (it would evict
    /// everything and then itself).
    fn insert(&mut self, model: ModelId, bytes: u64, cap: u64) -> Vec<(ModelId, u64)> {
        if self.contains(model) {
            self.touch(model);
            return Vec::new();
        }
        if bytes > cap {
            return Vec::new();
        }
        self.entries.push((model, bytes));
        self.used += bytes;
        let mut evicted = Vec::new();
        while self.used > cap {
            let victim = self.entries.remove(0);
            debug_assert!(victim.0 != model, "capacity check above");
            self.used -= victim.1;
            evicted.push(victim);
        }
        evicted
    }

    fn clear(&mut self) {
        self.entries.clear();
        self.used = 0;
    }

    fn models(&self) -> Vec<ModelId> {
        self.entries.iter().map(|&(m, _)| m).collect()
    }
}

/// One node's checkpoint cache state machine (DRAM + SSD tiers; the HBM
/// tier is derived from the live instance table by [`crate::World`]).
/// Fully deterministic: recency lists, no hashing.
#[derive(Debug, Clone, Default)]
pub struct CheckpointStore {
    dram: LruTier,
    ssd: LruTier,
}

impl CheckpointStore {
    /// A store with both tiers empty.
    pub fn new() -> Self {
        CheckpointStore::default()
    }

    /// The warmest tier currently holding `model`'s checkpoint, without
    /// touching any recency state (scheduling estimates use this).
    pub fn peek_tier(&self, model: ModelId, cfg: &CheckpointConfig) -> CheckpointTier {
        match cfg.dram_capacity_bytes {
            None => return CheckpointTier::Dram,
            Some(_) if self.dram.contains(model) => return CheckpointTier::Dram,
            Some(_) => {}
        }
        match cfg.ssd_capacity_bytes {
            None => CheckpointTier::Ssd,
            Some(_) if self.ssd.contains(model) => CheckpointTier::Ssd,
            Some(_) => CheckpointTier::Remote,
        }
    }

    /// Fetches `model`'s checkpoint for a cold start: returns the tier it
    /// was served from and promotes it through the hierarchy — into the
    /// DRAM LRU (evictions demote to SSD), and remote fetches persist to
    /// the SSD tier on the way in.
    pub fn fetch(&mut self, model: ModelId, bytes: u64, cfg: &CheckpointConfig) -> CheckpointTier {
        let tier = self.peek_tier(model, cfg);
        if let Some(ssd_cap) = cfg.ssd_capacity_bytes {
            if tier == CheckpointTier::Remote {
                // Write-through: the downloaded checkpoint lands on disk.
                let _ = self.ssd.insert(model, bytes, ssd_cap);
            } else {
                self.ssd.touch(model);
            }
        }
        if let Some(dram_cap) = cfg.dram_capacity_bytes {
            for (victim, victim_bytes) in self.dram.insert(model, bytes, dram_cap) {
                // Demote on eviction; beyond-SSD spills are dropped.
                if let Some(ssd_cap) = cfg.ssd_capacity_bytes {
                    let _ = self.ssd.insert(victim, victim_bytes, ssd_cap);
                }
            }
        }
        tier
    }

    /// Refreshes `model`'s recency without a fetch (HBM hits read the
    /// co-resident copy, but the checkpoint is clearly hot).
    pub fn touch(&mut self, model: ModelId) {
        self.dram.touch(model);
        self.ssd.touch(model);
    }

    /// Drops everything — the `NodeFail` path (DRAM contents die with the
    /// host, and a failed node's disk never rejoins the fleet).
    pub fn clear(&mut self) {
        self.dram.clear();
        self.ssd.clear();
    }

    /// Models currently DRAM-cached, coldest first (empty while the DRAM
    /// tier is unbounded — nothing is tracked).
    pub fn dram_models(&self) -> Vec<ModelId> {
        self.dram.models()
    }

    /// Models currently on the SSD tier, coldest first.
    pub fn ssd_models(&self) -> Vec<ModelId> {
        self.ssd.models()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GB: u64 = 1_000_000_000;

    fn tiered(dram_gb: u64, ssd_gb: Option<u64>) -> CheckpointConfig {
        CheckpointConfig::tiered(dram_gb * GB, ssd_gb.map(|g| g * GB))
    }

    #[test]
    fn flat_config_is_always_a_dram_hit() {
        let cfg = CheckpointConfig::flat();
        let mut s = CheckpointStore::new();
        for m in 0..100 {
            assert_eq!(s.peek_tier(ModelId(m), &cfg), CheckpointTier::Dram);
            assert_eq!(s.fetch(ModelId(m), 500 * GB, &cfg), CheckpointTier::Dram);
        }
        assert!(s.dram_models().is_empty(), "unbounded tier tracks nothing");
    }

    #[test]
    fn finite_dram_misses_fall_to_ssd_then_promote() {
        // 30 GB DRAM, SSD-local checkpoints (ssd = None → infinite).
        let cfg = tiered(30, None);
        let mut s = CheckpointStore::new();
        let m = ModelId(0);
        assert_eq!(s.fetch(m, 14 * GB, &cfg), CheckpointTier::Ssd);
        // Promoted: the next cold start is a DRAM hit.
        assert_eq!(s.fetch(m, 14 * GB, &cfg), CheckpointTier::Dram);
    }

    #[test]
    fn lru_evicts_coldest_and_demotes_to_ssd() {
        // 30 GB DRAM + 100 GB SSD, three 14 GB models: the third insert
        // evicts the coldest (model 0), which demotes to SSD.
        let cfg = tiered(30, Some(100));
        let mut s = CheckpointStore::new();
        for m in 0..3 {
            assert_eq!(s.fetch(ModelId(m), 14 * GB, &cfg), CheckpointTier::Remote);
        }
        assert_eq!(s.dram_models(), vec![ModelId(1), ModelId(2)]);
        assert_eq!(s.peek_tier(ModelId(0), &cfg), CheckpointTier::Ssd);
        // Touching model 1 protects it: model 2 is now the next victim.
        s.touch(ModelId(1));
        assert_eq!(s.fetch(ModelId(3), 14 * GB, &cfg), CheckpointTier::Remote);
        assert_eq!(s.dram_models(), vec![ModelId(1), ModelId(3)]);
        assert_eq!(s.peek_tier(ModelId(2), &cfg), CheckpointTier::Ssd);
    }

    #[test]
    fn ssd_evictions_drop_entirely() {
        // 14 GB DRAM + 28 GB SSD: filling the SSD pushes the coldest
        // checkpoint out of the cluster's reach — back to Remote.
        let cfg = tiered(14, Some(28));
        let mut s = CheckpointStore::new();
        for m in 0..4 {
            s.fetch(ModelId(m), 14 * GB, &cfg);
        }
        assert_eq!(s.peek_tier(ModelId(0), &cfg), CheckpointTier::Remote);
    }

    #[test]
    fn oversized_checkpoints_stream_through_uncached() {
        let cfg = tiered(10, Some(10));
        let mut s = CheckpointStore::new();
        assert_eq!(s.fetch(ModelId(0), 14 * GB, &cfg), CheckpointTier::Remote);
        // Still remote: nothing could hold it.
        assert_eq!(s.fetch(ModelId(0), 14 * GB, &cfg), CheckpointTier::Remote);
        assert!(s.dram_models().is_empty() && s.ssd_models().is_empty());
    }

    #[test]
    fn clear_drops_both_tiers() {
        let cfg = tiered(30, Some(100));
        let mut s = CheckpointStore::new();
        s.fetch(ModelId(0), 14 * GB, &cfg);
        s.clear();
        assert_eq!(s.peek_tier(ModelId(0), &cfg), CheckpointTier::Remote);
    }

    #[test]
    fn no_ssd_tier_means_remote_misses() {
        let cfg = CheckpointConfig::tiered(30 * GB, Some(0));
        let mut s = CheckpointStore::new();
        assert_eq!(s.fetch(ModelId(0), 14 * GB, &cfg), CheckpointTier::Remote);
        // DRAM-promoted, but an eviction has nowhere to demote to.
        assert_eq!(s.peek_tier(ModelId(0), &cfg), CheckpointTier::Dram);
        s.fetch(ModelId(1), 14 * GB, &cfg);
        s.fetch(ModelId(2), 14 * GB, &cfg);
        assert_eq!(s.peek_tier(ModelId(0), &cfg), CheckpointTier::Remote);
    }
}
