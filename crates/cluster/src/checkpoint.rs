//! Per-node tiered checkpoint storage (ServerlessLLM-style).
//!
//! Every cold start used to cost a flat `weights / load_bw` regardless of
//! where the checkpoint lived. In real serverless LLM clusters checkpoint
//! *placement* is the dominant cold-start lever: ServerlessLLM keeps a
//! multi-tier checkpoint cache (GPU memory → host DRAM → local SSD →
//! remote registry) and schedules onto the node with the lowest estimated
//! startup time, and λScale distributes models across nodes to dodge the
//! remote fetch entirely. This module models that hierarchy:
//!
//! - [`CheckpointConfig`] — the per-run knobs: DRAM/SSD cache capacities,
//!   whether concurrent loads contend on the node's shared loading
//!   channel, and whether co-resident weights short-circuit to an HBM
//!   copy. The default reproduces the flat legacy loader **bit for bit**
//!   (infinite pre-staged DRAM, no contention, no HBM shortcut), which is
//!   what keeps all pre-existing experiment goldens byte-identical.
//! - [`CheckpointStore`] — one node's cache state machine: deterministic
//!   LRU lists for the DRAM and SSD tiers. Checkpoints are promoted into
//!   DRAM when a load fetches them, demoted to SSD when DRAM evicts them,
//!   dropped when SSD evicts them, and the whole store is dropped on a
//!   `NodeFail` (a drain leaves it intact, so a drained node re-joining
//!   the schedulable set still has its warm tiers).
//!
//! [`crate::World`] owns one store per node and layers the HBM tier on
//! top (HBM residency is derived from the live instance table, not
//! cached here).

use hwmodel::CheckpointTier;
use workload::request::ModelId;

/// Run-level configuration of the checkpoint storage hierarchy.
///
/// The default ([`CheckpointConfig::flat`]) models the legacy flat loader:
/// an unbounded DRAM cache with every checkpoint pre-staged, no loading
/// contention, and no HBM shortcut — every cold start costs exactly
/// `weights / load_bw`, reproducing pre-hierarchy runs byte-identically.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointConfig {
    /// Per-node DRAM checkpoint-cache capacity in bytes. `None` models an
    /// unbounded, pre-staged cache: every checkpoint is always a DRAM hit
    /// and nothing is tracked or evicted (the flat legacy loader).
    /// `Some(cap)` tracks an LRU cache: misses fall through to the SSD
    /// tier and evictions demote there.
    pub dram_capacity_bytes: Option<u64>,
    /// Per-node SSD capacity in bytes. `None` models checkpoints stored on
    /// every node's local SSD (the ServerlessLLM deployment assumption);
    /// `Some(cap)` tracks an LRU cache whose misses are remote registry
    /// fetches (`Some(0)` disables the SSD tier outright). Irrelevant
    /// while the DRAM tier is unbounded.
    pub ssd_capacity_bytes: Option<u64>,
    /// Model the node's shared loading channel: `k` concurrent cold
    /// starts on one node each see `1/k` of their tier bandwidth, and
    /// in-flight loads speed up when a neighbour finishes. Off in the
    /// flat configuration.
    pub contention: bool,
    /// Serve a cold start of a model that already has an *active*
    /// instance on the node from HBM (device-to-device copy at serving
    /// memory bandwidth) instead of re-loading from the cache hierarchy.
    /// Off in the flat configuration.
    pub hbm_hits: bool,
}

impl CheckpointConfig {
    /// The flat legacy loader (see struct docs). This is the default.
    pub fn flat() -> Self {
        CheckpointConfig {
            dram_capacity_bytes: None,
            ssd_capacity_bytes: None,
            contention: false,
            hbm_hits: false,
        }
    }

    /// The full hierarchy: a finite LRU DRAM cache, an SSD tier
    /// (`None` = every checkpoint SSD-local), loading contention, and HBM
    /// hits — the ServerlessLLM-style configuration the `cold_start`
    /// experiment sweeps.
    pub fn tiered(dram_capacity_bytes: u64, ssd_capacity_bytes: Option<u64>) -> Self {
        CheckpointConfig {
            dram_capacity_bytes: Some(dram_capacity_bytes),
            ssd_capacity_bytes,
            contention: true,
            hbm_hits: true,
        }
    }
}

impl Default for CheckpointConfig {
    fn default() -> Self {
        CheckpointConfig::flat()
    }
}

/// One LRU-tracked cache tier: entries ordered coldest-first, byte-capped.
#[derive(Debug, Clone, Default)]
struct LruTier {
    /// `(model, bytes)` in recency order — front is next to evict.
    entries: Vec<(ModelId, u64)>,
    used: u64,
}

impl LruTier {
    fn contains(&self, model: ModelId) -> bool {
        self.entries.iter().any(|&(m, _)| m == model)
    }

    /// Refreshes recency if present.
    fn touch(&mut self, model: ModelId) {
        if let Some(ix) = self.entries.iter().position(|&(m, _)| m == model) {
            let e = self.entries.remove(ix);
            self.entries.push(e);
        }
    }

    /// Inserts (or refreshes) `model`, evicting coldest-first down to
    /// `cap`; returns the evicted entries in eviction order. A checkpoint
    /// larger than the whole tier is not cached at all (it would evict
    /// everything and then itself).
    fn insert(&mut self, model: ModelId, bytes: u64, cap: u64) -> Vec<(ModelId, u64)> {
        self.insert_ranked(model, bytes, cap, &[])
    }

    /// [`LruTier::insert`] with cache-aware victim selection: each resident
    /// model may carry an eviction rank (lower = cheaper to re-load if
    /// evicted = evicted first); ties and unranked models fall back to LRU
    /// order. An empty `ranks` slice is exactly plain LRU.
    fn insert_ranked(
        &mut self,
        model: ModelId,
        bytes: u64,
        cap: u64,
        ranks: &[(ModelId, u8)],
    ) -> Vec<(ModelId, u64)> {
        if self.contains(model) {
            self.touch(model);
            return Vec::new();
        }
        if bytes > cap {
            return Vec::new();
        }
        self.entries.push((model, bytes));
        self.used += bytes;
        let rank_of = |m: ModelId| {
            ranks
                .iter()
                .find(|&&(rm, _)| rm == m)
                .map(|&(_, r)| r)
                .unwrap_or(0)
        };
        let mut evicted = Vec::new();
        while self.used > cap {
            // The just-inserted entry sits at the back and is never the
            // victim (`bytes <= cap` guarantees someone else fits the bill).
            let vix = self.entries[..self.entries.len() - 1]
                .iter()
                .enumerate()
                .min_by_key(|&(ix, &(m, _))| (rank_of(m), ix))
                .map(|(ix, _)| ix)
                .expect("used > cap implies an older entry exists");
            let victim = self.entries.remove(vix);
            debug_assert!(victim.0 != model, "capacity check above");
            self.used -= victim.1;
            evicted.push(victim);
        }
        evicted
    }

    fn clear(&mut self) {
        self.entries.clear();
        self.used = 0;
    }

    fn models(&self) -> Vec<ModelId> {
        self.entries.iter().map(|&(m, _)| m).collect()
    }
}

/// One node's checkpoint cache state machine (DRAM + SSD tiers; the HBM
/// tier is derived from the live instance table by [`crate::World`]).
/// Fully deterministic: recency lists, no hashing.
#[derive(Debug, Clone, Default)]
pub struct CheckpointStore {
    dram: LruTier,
    ssd: LruTier,
}

impl CheckpointStore {
    /// A store with both tiers empty.
    pub fn new() -> Self {
        CheckpointStore::default()
    }

    /// The warmest tier currently holding `model`'s checkpoint, without
    /// touching any recency state (scheduling estimates use this).
    pub fn peek_tier(&self, model: ModelId, cfg: &CheckpointConfig) -> CheckpointTier {
        match cfg.dram_capacity_bytes {
            None => return CheckpointTier::Dram,
            Some(_) if self.dram.contains(model) => return CheckpointTier::Dram,
            Some(_) => {}
        }
        match cfg.ssd_capacity_bytes {
            None => CheckpointTier::Ssd,
            Some(_) if self.ssd.contains(model) => CheckpointTier::Ssd,
            Some(_) => CheckpointTier::Remote,
        }
    }

    /// Fetches `model`'s checkpoint for a cold start: returns the tier it
    /// was served from and promotes it through the hierarchy — into the
    /// DRAM LRU (evictions demote to SSD), and remote fetches persist to
    /// the SSD tier on the way in.
    pub fn fetch(&mut self, model: ModelId, bytes: u64, cfg: &CheckpointConfig) -> CheckpointTier {
        self.fetch_ranked(model, bytes, cfg, &[])
    }

    /// [`CheckpointStore::fetch`] with cache-aware DRAM victim selection:
    /// `dram_ranks` scores resident models by how cheap they are to recover
    /// if evicted (lower = evicted first; see [`crate::dist`]). Ties and an
    /// empty slice degrade to plain LRU. The SSD tier deliberately stays
    /// LRU — a cache-aware SSD tier is an open ROADMAP item.
    pub fn fetch_ranked(
        &mut self,
        model: ModelId,
        bytes: u64,
        cfg: &CheckpointConfig,
        dram_ranks: &[(ModelId, u8)],
    ) -> CheckpointTier {
        let tier = self.peek_tier(model, cfg);
        if let Some(ssd_cap) = cfg.ssd_capacity_bytes {
            if tier == CheckpointTier::Remote {
                // Write-through: the downloaded checkpoint lands on disk.
                let _ = self.ssd.insert(model, bytes, ssd_cap);
            } else {
                self.ssd.touch(model);
            }
        }
        self.admit_dram(model, bytes, cfg, dram_ranks);
        tier
    }

    /// Admits a checkpoint that arrived over the peer-to-peer fabric: it
    /// lands straight in the DRAM cache (demotions as usual) but does
    /// *not* write through to the SSD tier — a fabric transfer is a
    /// DRAM-to-DRAM stream that never touches the disk, unlike a registry
    /// download.
    pub fn admit_fabric(
        &mut self,
        model: ModelId,
        bytes: u64,
        cfg: &CheckpointConfig,
        dram_ranks: &[(ModelId, u8)],
    ) {
        self.ssd.touch(model);
        self.admit_dram(model, bytes, cfg, dram_ranks);
    }

    /// Inserts into the DRAM LRU (rank-aware), demoting evictions to SSD.
    fn admit_dram(
        &mut self,
        model: ModelId,
        bytes: u64,
        cfg: &CheckpointConfig,
        dram_ranks: &[(ModelId, u8)],
    ) {
        if let Some(dram_cap) = cfg.dram_capacity_bytes {
            for (victim, victim_bytes) in
                self.dram.insert_ranked(model, bytes, dram_cap, dram_ranks)
            {
                // Demote on eviction; beyond-SSD spills are dropped.
                if let Some(ssd_cap) = cfg.ssd_capacity_bytes {
                    let _ = self.ssd.insert(victim, victim_bytes, ssd_cap);
                }
            }
        }
    }

    /// Refreshes `model`'s recency without a fetch (HBM hits read the
    /// co-resident copy, but the checkpoint is clearly hot).
    pub fn touch(&mut self, model: ModelId) {
        self.dram.touch(model);
        self.ssd.touch(model);
    }

    /// Drops everything — the `NodeFail` path (DRAM contents die with the
    /// host, and a failed node's disk never rejoins the fleet).
    pub fn clear(&mut self) {
        self.dram.clear();
        self.ssd.clear();
    }

    /// Models currently DRAM-cached, coldest first (empty while the DRAM
    /// tier is unbounded — nothing is tracked).
    pub fn dram_models(&self) -> Vec<ModelId> {
        self.dram.models()
    }

    /// Models currently on the SSD tier, coldest first.
    pub fn ssd_models(&self) -> Vec<ModelId> {
        self.ssd.models()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GB: u64 = 1_000_000_000;

    fn tiered(dram_gb: u64, ssd_gb: Option<u64>) -> CheckpointConfig {
        CheckpointConfig::tiered(dram_gb * GB, ssd_gb.map(|g| g * GB))
    }

    #[test]
    fn flat_config_is_always_a_dram_hit() {
        let cfg = CheckpointConfig::flat();
        let mut s = CheckpointStore::new();
        for m in 0..100 {
            assert_eq!(s.peek_tier(ModelId(m), &cfg), CheckpointTier::Dram);
            assert_eq!(s.fetch(ModelId(m), 500 * GB, &cfg), CheckpointTier::Dram);
        }
        assert!(s.dram_models().is_empty(), "unbounded tier tracks nothing");
    }

    #[test]
    fn finite_dram_misses_fall_to_ssd_then_promote() {
        // 30 GB DRAM, SSD-local checkpoints (ssd = None → infinite).
        let cfg = tiered(30, None);
        let mut s = CheckpointStore::new();
        let m = ModelId(0);
        assert_eq!(s.fetch(m, 14 * GB, &cfg), CheckpointTier::Ssd);
        // Promoted: the next cold start is a DRAM hit.
        assert_eq!(s.fetch(m, 14 * GB, &cfg), CheckpointTier::Dram);
    }

    #[test]
    fn lru_evicts_coldest_and_demotes_to_ssd() {
        // 30 GB DRAM + 100 GB SSD, three 14 GB models: the third insert
        // evicts the coldest (model 0), which demotes to SSD.
        let cfg = tiered(30, Some(100));
        let mut s = CheckpointStore::new();
        for m in 0..3 {
            assert_eq!(s.fetch(ModelId(m), 14 * GB, &cfg), CheckpointTier::Remote);
        }
        assert_eq!(s.dram_models(), vec![ModelId(1), ModelId(2)]);
        assert_eq!(s.peek_tier(ModelId(0), &cfg), CheckpointTier::Ssd);
        // Touching model 1 protects it: model 2 is now the next victim.
        s.touch(ModelId(1));
        assert_eq!(s.fetch(ModelId(3), 14 * GB, &cfg), CheckpointTier::Remote);
        assert_eq!(s.dram_models(), vec![ModelId(1), ModelId(3)]);
        assert_eq!(s.peek_tier(ModelId(2), &cfg), CheckpointTier::Ssd);
    }

    #[test]
    fn ssd_evictions_drop_entirely() {
        // 14 GB DRAM + 28 GB SSD: filling the SSD pushes the coldest
        // checkpoint out of the cluster's reach — back to Remote.
        let cfg = tiered(14, Some(28));
        let mut s = CheckpointStore::new();
        for m in 0..4 {
            s.fetch(ModelId(m), 14 * GB, &cfg);
        }
        assert_eq!(s.peek_tier(ModelId(0), &cfg), CheckpointTier::Remote);
    }

    #[test]
    fn oversized_checkpoints_stream_through_uncached() {
        let cfg = tiered(10, Some(10));
        let mut s = CheckpointStore::new();
        assert_eq!(s.fetch(ModelId(0), 14 * GB, &cfg), CheckpointTier::Remote);
        // Still remote: nothing could hold it.
        assert_eq!(s.fetch(ModelId(0), 14 * GB, &cfg), CheckpointTier::Remote);
        assert!(s.dram_models().is_empty() && s.ssd_models().is_empty());
    }

    /// Mixed sizes: admitting a mid-size model into a DRAM tier filled by
    /// one large model must demote the large one to SSD *before* the new
    /// checkpoint is counted as resident — never overcommit the tier.
    #[test]
    fn large_model_demotes_before_mixed_size_admission() {
        let cfg = tiered(30, Some(100));
        let mut s = CheckpointStore::new();
        assert_eq!(s.fetch(ModelId(0), 26 * GB, &cfg), CheckpointTier::Remote);
        assert_eq!(s.dram_models(), vec![ModelId(0)]);
        // 26 + 14 > 30: the large model must make way.
        assert_eq!(s.fetch(ModelId(1), 14 * GB, &cfg), CheckpointTier::Remote);
        assert_eq!(s.dram_models(), vec![ModelId(1)]);
        assert!(s.ssd_models().contains(&ModelId(0)), "demoted, not dropped");
        assert_eq!(s.peek_tier(ModelId(0), &cfg), CheckpointTier::Ssd);
        // A small model then coexists with the mid-size one (14 + 7 ≤ 30).
        s.fetch(ModelId(2), 7 * GB, &cfg);
        assert_eq!(s.dram_models(), vec![ModelId(1), ModelId(2)]);
    }

    /// The oversized-streaming path must not perturb the LRU order of the
    /// resident mix: a checkpoint bigger than the tier streams through
    /// uncached and evicts nothing.
    #[test]
    fn oversized_streaming_leaves_lru_order_untouched() {
        let cfg = tiered(30, Some(100));
        let mut s = CheckpointStore::new();
        s.fetch(ModelId(0), 14 * GB, &cfg);
        s.fetch(ModelId(1), 7 * GB, &cfg);
        let before_dram = s.dram_models();
        let before_ssd = s.ssd_models();
        // 40 GB > 30 GB DRAM: streams through, cached on SSD only (write-
        // through), and the DRAM recency order is exactly as it was.
        assert_eq!(s.fetch(ModelId(9), 40 * GB, &cfg), CheckpointTier::Remote);
        assert_eq!(s.dram_models(), before_dram);
        assert_eq!(
            s.ssd_models(),
            before_ssd
                .iter()
                .copied()
                .chain([ModelId(9)])
                .collect::<Vec<_>>()
        );
        // Repeat fetches of the oversized model keep streaming from SSD
        // without ever entering (or reordering) the DRAM LRU.
        assert_eq!(s.fetch(ModelId(9), 40 * GB, &cfg), CheckpointTier::Ssd);
        assert_eq!(s.dram_models(), before_dram);
        // Model 0 is still the LRU victim — the stream never refreshed
        // anyone's recency.
        s.fetch(ModelId(2), 14 * GB, &cfg);
        assert_eq!(s.dram_models(), vec![ModelId(1), ModelId(2)]);
        assert_eq!(s.peek_tier(ModelId(0), &cfg), CheckpointTier::Ssd);
    }

    /// Rank-aware eviction: a higher-ranked (more precious) resident
    /// survives even when it is the coldest; unranked/tied entries keep
    /// LRU order exactly.
    #[test]
    fn ranked_eviction_overrides_lru_and_ties_degrade_to_lru() {
        let cfg = tiered(30, Some(100));
        let mut s = CheckpointStore::new();
        s.fetch(ModelId(0), 14 * GB, &cfg); // coldest, but precious
        s.fetch(ModelId(1), 14 * GB, &cfg);
        // Rank model 0 expensive to recover (2), model 1 cheap (0).
        let ranks = [(ModelId(0), 2u8), (ModelId(1), 0u8)];
        s.fetch_ranked(ModelId(2), 14 * GB, &cfg, &ranks);
        assert_eq!(s.dram_models(), vec![ModelId(0), ModelId(2)]);
        assert_eq!(s.peek_tier(ModelId(1), &cfg), CheckpointTier::Ssd);

        // Uniform ranks are plain LRU: same store shape, no ranks.
        let mut lru = CheckpointStore::new();
        lru.fetch(ModelId(0), 14 * GB, &cfg);
        lru.fetch(ModelId(1), 14 * GB, &cfg);
        lru.fetch_ranked(
            ModelId(2),
            14 * GB,
            &cfg,
            &[(ModelId(0), 1), (ModelId(1), 1)],
        );
        assert_eq!(lru.dram_models(), vec![ModelId(1), ModelId(2)]);
    }

    /// A fabric admission lands in DRAM without the SSD write-through a
    /// registry download gets.
    #[test]
    fn fabric_admission_skips_ssd_write_through() {
        let cfg = tiered(30, Some(100));
        let mut s = CheckpointStore::new();
        s.admit_fabric(ModelId(0), 14 * GB, &cfg, &[]);
        assert_eq!(s.dram_models(), vec![ModelId(0)]);
        assert!(s.ssd_models().is_empty(), "no disk copy from a DRAM stream");
        // If DRAM later evicts it, the demotion path still lands on SSD.
        s.fetch(ModelId(1), 14 * GB, &cfg);
        s.fetch(ModelId(2), 14 * GB, &cfg);
        assert_eq!(s.peek_tier(ModelId(0), &cfg), CheckpointTier::Ssd);
    }

    #[test]
    fn clear_drops_both_tiers() {
        let cfg = tiered(30, Some(100));
        let mut s = CheckpointStore::new();
        s.fetch(ModelId(0), 14 * GB, &cfg);
        s.clear();
        assert_eq!(s.peek_tier(ModelId(0), &cfg), CheckpointTier::Remote);
    }

    #[test]
    fn no_ssd_tier_means_remote_misses() {
        let cfg = CheckpointConfig::tiered(30 * GB, Some(0));
        let mut s = CheckpointStore::new();
        assert_eq!(s.fetch(ModelId(0), 14 * GB, &cfg), CheckpointTier::Remote);
        // DRAM-promoted, but an eviction has nowhere to demote to.
        assert_eq!(s.peek_tier(ModelId(0), &cfg), CheckpointTier::Dram);
        s.fetch(ModelId(1), 14 * GB, &cfg);
        s.fetch(ModelId(2), 14 * GB, &cfg);
        assert_eq!(s.peek_tier(ModelId(0), &cfg), CheckpointTier::Remote);
    }
}
