//! Composable run construction: the [`Scenario`] builder.
//!
//! A simulation run has four independent axes, and every experiment used to
//! wire them together by hand (`cluster` + `models` + `WorldConfig` +
//! `trace` threaded through ad-hoc plumbing). `Scenario` names the axes and
//! composes them:
//!
//! - **fleet** — the [`ClusterSpec`] and model registry the run starts on;
//! - **workload** — one or more [`Trace`] segments, each optionally bound
//!   to an [`SloClass`] (interactive, relaxed, ...) and interleaved by
//!   arrival time into one request stream;
//! - **environment** — a timed [`ClusterEvent`] schedule (node drains,
//!   failures, joins) injected through the deterministic event loop;
//! - **system** — the [`Policy`] the run is handed to ([`Scenario::run`]);
//!   the `bench` crate's `System` enum dispatches here.
//!
//! A scenario with one untagged segment and no events reduces *exactly* to
//! `Simulation::new(..).run(&trace)`: the merge is the identity on a single
//! segment and the event schedule is empty, so the paper's stock
//! experiments replay byte-identically through this API.

use hwmodel::ModelSpec;
use simcore::time::SimTime;
use workload::request::{Slo, SloClass, Trace};

use crate::driver::Simulation;
use crate::metrics::RunMetrics;
use crate::node::{ClusterSpec, NodeId, NodeSpec};
use crate::policy::Policy;
use crate::world::{ClusterEvent, WorldConfig};

/// A declarative description of one simulation run. See module docs.
///
/// ```
/// use cluster::{ClusterSpec, Scenario};
/// use simcore::time::SimTime;
/// use workload::request::Slo;
/// use workload::serverless::TraceSpec;
///
/// let models = vec![hwmodel::ModelSpec::llama2_7b()];
/// let mut sc = Scenario::new(ClusterSpec::heterogeneous(1, 1), models);
/// let relaxed = sc.slo_class(Slo::relaxed());
/// let sc = sc
///     .seed(7)
///     .workload(TraceSpec::azure_like(1, 7).with_load_scale(0.1).generate())
///     .classed_workload(
///         TraceSpec::azure_like(1, 8).with_load_scale(0.1).generate(),
///         relaxed,
///     )
///     .drain_at(SimTime::from_secs(600), cluster::NodeId(1));
/// let trace = sc.merged_trace();
/// assert!(trace.requests.iter().any(|r| r.class == relaxed));
/// ```
pub struct Scenario {
    cluster: ClusterSpec,
    models: Vec<ModelSpec>,
    cfg: WorldConfig,
    segments: Vec<Trace>,
    events: Vec<(SimTime, ClusterEvent)>,
}

impl Scenario {
    /// Starts a scenario on the given fleet hosting `models`
    /// (`ModelId(i)` ↦ `models[i]`), with a default [`WorldConfig`].
    pub fn new(cluster: ClusterSpec, models: Vec<ModelSpec>) -> Self {
        Scenario {
            cluster,
            models,
            cfg: WorldConfig::default(),
            segments: Vec::new(),
            events: Vec::new(),
        }
    }

    // ------------------------------------------------------------------
    // System-parameter axis
    // ------------------------------------------------------------------

    /// Replaces the world configuration (seed, default SLO, noise, ...).
    /// Class SLOs already registered via [`Scenario::slo_class`] are
    /// carried over.
    ///
    /// # Panics
    /// Panics if classes were registered *and* the incoming config carries
    /// its own `class_slos`: the registered [`SloClass`] handles index the
    /// builder's table, so silently merging the two would rebind them to
    /// unrelated SLOs. Register classes on one side only.
    pub fn config(mut self, cfg: WorldConfig) -> Self {
        let classes = std::mem::take(&mut self.cfg.class_slos);
        self.cfg = cfg;
        if classes.is_empty() {
            return self;
        }
        assert!(
            self.cfg.class_slos.is_empty(),
            "config() would clobber {} registered SLO class(es): register classes \
             via Scenario::slo_class or supply them in WorldConfig, not both",
            classes.len()
        );
        self.cfg.class_slos = classes;
        self
    }

    /// Sets the root seed (shorthand for patching the config).
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Sets the checkpoint storage hierarchy (shorthand for patching the
    /// config): per-node DRAM/SSD cache capacities, loading contention,
    /// HBM hits. The default is the flat legacy loader.
    pub fn checkpoints(mut self, ckpt: crate::checkpoint::CheckpointConfig) -> Self {
        self.cfg.checkpoints = ckpt;
        self
    }

    /// Sets the cross-node checkpoint distribution mode (shorthand for
    /// patching the config): peer fetch, multicast relays, cache-aware
    /// eviction/keep-alive. The default is [`crate::dist::DistConfig::off`].
    pub fn dist(mut self, dist: crate::dist::DistConfig) -> Self {
        self.cfg.dist = dist;
        self
    }

    /// Turns on the per-activation log (`RunMetrics::activations`), used
    /// by time-to-N-replicas measurements.
    pub fn record_activations(mut self) -> Self {
        self.cfg.record_activations = true;
        self
    }

    /// Sets the multi-turn session prefix-reuse mode (shorthand for
    /// patching the config): parked per-session KV, affinity routing,
    /// priced KV migration. The default is [`crate::SessionConfig::off`].
    pub fn sessions(mut self, sessions: crate::sessions::SessionConfig) -> Self {
        self.cfg.sessions = sessions;
        self
    }

    // ------------------------------------------------------------------
    // Workload axis
    // ------------------------------------------------------------------

    /// Registers a service class with its own SLO and returns its id;
    /// pass it to [`Scenario::classed_workload`]. Class 0 is always the
    /// config's default SLO and needs no registration.
    pub fn slo_class(&mut self, slo: Slo) -> SloClass {
        self.cfg.class_slos.push(slo);
        SloClass(self.cfg.class_slos.len() as u16)
    }

    /// Adds a workload segment under the default SLO class, keeping any
    /// class tags the trace already carries.
    pub fn workload(mut self, trace: Trace) -> Self {
        self.segments.push(trace);
        self
    }

    /// Adds a workload segment with every request bound to `class`.
    pub fn classed_workload(mut self, trace: Trace, class: SloClass) -> Self {
        self.segments.push(trace.with_class(class));
        self
    }

    // ------------------------------------------------------------------
    // Environment axis
    // ------------------------------------------------------------------

    /// Schedules a cluster-lifecycle event at absolute simulated time `at`.
    pub fn event(mut self, at: SimTime, ev: ClusterEvent) -> Self {
        self.events.push((at, ev));
        self
    }

    /// Schedules a graceful node drain.
    pub fn drain_at(self, at: SimTime, node: NodeId) -> Self {
        self.event(at, ClusterEvent::NodeDrain(node))
    }

    /// Schedules a hard node failure.
    pub fn fail_at(self, at: SimTime, node: NodeId) -> Self {
        self.event(at, ClusterEvent::NodeFail(node))
    }

    /// Schedules a node join.
    pub fn join_at(self, at: SimTime, spec: NodeSpec) -> Self {
        self.event(at, ClusterEvent::NodeJoin(spec))
    }

    // ------------------------------------------------------------------
    // Inspection and execution
    // ------------------------------------------------------------------

    /// The fleet this scenario starts on.
    pub fn cluster(&self) -> &ClusterSpec {
        &self.cluster
    }

    /// The model registry.
    pub fn models(&self) -> &[ModelSpec] {
        &self.models
    }

    /// The world configuration (including the class-SLO table).
    pub fn cfg(&self) -> &WorldConfig {
        &self.cfg
    }

    /// The scheduled environment events, in registration order.
    pub fn events(&self) -> &[(SimTime, ClusterEvent)] {
        &self.events
    }

    /// The merged workload this scenario will replay (segments interleaved
    /// by arrival, ids renumbered densely; a single segment is passed
    /// through untouched).
    pub fn merged_trace(&self) -> Trace {
        Trace::merge(self.segments.clone())
    }

    /// Runs the scenario under `policy` (the system axis) and returns its
    /// metrics, per-SLO-class attainment included.
    ///
    /// # Panics
    /// Panics if no workload segment was added, the cluster spec is
    /// invalid, or the model registry is empty.
    pub fn run<P: Policy>(self, policy: P) -> RunMetrics {
        assert!(
            !self.segments.is_empty(),
            "scenario needs at least one workload segment"
        );
        let trace = Trace::merge(self.segments);
        let mut sim = Simulation::new(&self.cluster, self.models, self.cfg, policy);
        for (at, ev) in self.events {
            sim.world.push_cluster_event(at, ev);
        }
        sim.run(&trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::NodeHealth;
    use engine::instance::InstanceId;
    use engine::request::RunningRequest;
    use simcore::time::SimDuration;
    use workload::request::{ModelId, Request, RequestId};

    /// The driver-test Greedy policy, re-stated: one instance on node 0.
    struct Greedy {
        inst: Option<InstanceId>,
    }

    impl Policy for Greedy {
        fn name(&self) -> &str {
            "greedy-scenario-test"
        }

        fn on_arrival(&mut self, w: &mut crate::World, rr: RunningRequest) {
            let inst = match self.inst {
                Some(i) if w.instance(i).is_some() => i,
                _ => {
                    let target = w
                        .node_ids()
                        .find(|&n| w.node_schedulable(n))
                        .expect("a schedulable node");
                    let id = w
                        .create_instance(rr.req.model, target, 0, 8_000_000_000)
                        .expect("fits");
                    self.inst = Some(id);
                    id
                }
            };
            w.admit(inst, rr);
        }

        fn on_slot_free(&mut self, w: &mut crate::World, node: NodeId, slot: usize) {
            let now = w.now();
            let slo = w.slo();
            for inst in w.instances_on_slot(node, slot) {
                let Some(i) = w.instance(inst) else { continue };
                if !i.has_work() {
                    continue;
                }
                if let Some((_, kind)) = i.most_urgent(now, &slo) {
                    let _ = w.start_iteration(inst, kind);
                    return;
                }
            }
        }
    }

    fn segment(ids: std::ops::Range<u64>, start_s: u64, class: SloClass) -> Trace {
        let reqs = ids
            .clone()
            .map(|i| Request {
                id: RequestId(i - ids.start),
                model: ModelId(0),
                arrival: SimTime::from_secs(start_s + 2 * (i - ids.start)),
                input_len: 128,
                output_len: 2,
                class,
                session: Default::default(),
            })
            .collect();
        Trace::new(reqs, 1, SimDuration::from_secs(60))
    }

    #[test]
    fn single_segment_passes_through_unchanged() {
        let t = segment(0..5, 0, SloClass::DEFAULT);
        let sc = Scenario::new(ClusterSpec::heterogeneous(0, 1), vec![]).workload(t.clone());
        let merged = sc.merged_trace();
        assert_eq!(
            format!("{:?}", merged.requests),
            format!("{:?}", t.requests)
        );
    }

    #[test]
    fn segments_interleave_and_renumber() {
        let mut sc = Scenario::new(ClusterSpec::heterogeneous(0, 1), vec![]);
        let relaxed = sc.slo_class(Slo::relaxed());
        let sc = sc
            .workload(segment(0..3, 0, SloClass::DEFAULT))
            .classed_workload(segment(0..3, 1, SloClass::DEFAULT), relaxed);
        let merged = sc.merged_trace();
        assert_eq!(merged.len(), 6);
        // Dense ids in arrival order; classes preserved through the merge.
        for (i, r) in merged.requests.iter().enumerate() {
            assert_eq!(r.id.0 as usize, i);
        }
        let classes: Vec<u16> = merged.requests.iter().map(|r| r.class.0).collect();
        assert_eq!(classes, vec![0, 1, 0, 1, 0, 1]);
    }

    #[test]
    fn class_table_resolves_in_world() {
        let mut sc = Scenario::new(
            ClusterSpec::heterogeneous(0, 1),
            vec![hwmodel::ModelSpec::llama2_7b()],
        );
        let relaxed = sc.slo_class(Slo::relaxed());
        let sc = sc.classed_workload(segment(0..2, 0, SloClass::DEFAULT), relaxed);
        assert_eq!(sc.cfg().class_slos.len(), 1);
        let m = sc.run(Greedy { inst: None });
        assert_eq!(m.total(), 2);
        assert_eq!(m.classes(), vec![relaxed]);
        let (met, total) = m.class_counts(relaxed);
        assert_eq!(total, 2);
        assert!(met <= 2);
    }

    #[test]
    fn config_keeps_registered_classes() {
        let mut sc = Scenario::new(ClusterSpec::heterogeneous(0, 1), vec![]);
        let c = sc.slo_class(Slo::tight());
        let sc = sc.config(WorldConfig {
            seed: 9,
            ..WorldConfig::default()
        });
        assert_eq!(sc.cfg().seed, 9);
        assert_eq!(sc.cfg().class_slos.len(), usize::from(c.0));
    }

    #[test]
    fn node_fail_recovers_onto_survivor() {
        // Two GPU nodes; node 0 fails mid-run. Greedy re-creates its
        // instance on the survivor and the remaining requests complete.
        let sc = Scenario::new(
            ClusterSpec::heterogeneous(0, 2),
            vec![hwmodel::ModelSpec::llama2_7b()],
        )
        .workload(segment(0..8, 0, SloClass::DEFAULT))
        .fail_at(SimTime::from_millis(4_500), NodeId(0));
        let m = sc.run(Greedy { inst: None });
        assert_eq!(m.node_failures, 1);
        assert!(m.cold_starts >= 2, "a replacement instance must start");
        let done = m.records.iter().filter(|r| r.completed.is_some()).count();
        assert!(done >= 6, "late requests must finish elsewhere: {done}");
    }

    #[test]
    fn node_drain_unloads_and_reroutes() {
        let sc = Scenario::new(
            ClusterSpec::heterogeneous(0, 2),
            vec![hwmodel::ModelSpec::llama2_7b()],
        )
        .workload(segment(0..8, 0, SloClass::DEFAULT))
        .drain_at(SimTime::from_millis(4_500), NodeId(0));
        let m = sc.run(Greedy { inst: None });
        assert_eq!(m.node_drains, 1);
        assert!(
            m.records.iter().all(|r| r.completed.is_some()),
            "drain must not lose requests"
        );
    }

    #[test]
    fn node_join_becomes_schedulable() {
        let spec = NodeSpec::whole(hwmodel::HardwareSpec::a100_80g());
        let mut sim = Simulation::new(
            &ClusterSpec::heterogeneous(0, 1),
            vec![hwmodel::ModelSpec::llama2_7b()],
            WorldConfig::default(),
            Greedy { inst: None },
        );
        sim.world
            .push_cluster_event(SimTime::from_secs(1), ClusterEvent::NodeJoin(spec));
        let t = segment(0..3, 0, SloClass::DEFAULT);
        let m = sim.run(&t);
        assert_eq!(m.node_joins, 1);
        assert_eq!(m.total(), 3);
    }

    #[test]
    fn drained_node_refuses_placement() {
        let mut sim = Simulation::new(
            &ClusterSpec::heterogeneous(0, 1),
            vec![hwmodel::ModelSpec::llama2_7b()],
            WorldConfig::default(),
            Greedy { inst: None },
        );
        sim.world
            .push_cluster_event(SimTime::ZERO, ClusterEvent::NodeDrain(NodeId(0)));
        let w = &mut sim.world;
        w.push_cluster_event(SimTime::ZERO, ClusterEvent::NodeDrain(NodeId(0)));
        let displaced = w.apply_cluster_event(&ClusterEvent::NodeDrain(NodeId(0)));
        assert!(displaced.is_empty());
        assert_eq!(w.node_health(NodeId(0)), NodeHealth::Draining);
        assert!(!w.node_schedulable(NodeId(0)));
        let err = w
            .create_instance(ModelId(0), NodeId(0), 0, 1_000_000)
            .unwrap_err();
        assert!(matches!(err, crate::MemError::NodeUnavailable(_)));
    }

    #[test]
    #[should_panic(expected = "at least one workload segment")]
    fn empty_scenario_panics() {
        let _ = Scenario::new(
            ClusterSpec::heterogeneous(0, 1),
            vec![hwmodel::ModelSpec::llama2_7b()],
        )
        .run(Greedy { inst: None });
    }
}
