//! The live cluster: the only surface through which policies act.
//!
//! [`World`] owns nodes (with their physical memory ledgers), all hosted
//! instances, the clock, the event queue, the RNG, and the metrics recorder.
//! Policies receive `&mut World` in their callbacks and use its methods to
//! admit requests, start iterations, create/unload instances, rescale KV
//! grants, and set timers. Ground-truth execution times come from the
//! calibrated [`AnalyticPerf`] model perturbed by [`NoiseModel`] — policies
//! can *estimate* (noiseless) but never observe a duration before it
//! finishes, exactly like a real control plane.
//!
//! Physical memory is enforced at operation-issue time: a scale-up or
//! instance creation that does not fit the node's remaining bytes fails with
//! [`MemError::WouldOom`] and is counted in
//! [`RunMetrics::oom_incidents`](crate::metrics::RunMetrics::oom_incidents).
//! SLINFER's orchestrator (§VII-C) exists to keep that counter at zero.

use std::collections::BTreeMap;

use engine::instance::{Instance, InstanceId, InstanceState, IterationKind};
use engine::request::RunningRequest;
use hwmodel::{
    AnalyticPerf, CheckpointTier, HardwareKind, HardwareSpec, ModelSpec, NoiseModel, PerfOracle,
};
use simcore::events::EventQueue;
use simcore::rng::SimRng;
use simcore::time::{SimDuration, SimTime};
use workload::request::{ModelId, RequestId, Slo};

use crate::checkpoint::{CheckpointConfig, CheckpointStore};
use crate::dist::{CheckpointDirectory, DistConfig, ReplicaState, TransferPlan, TransferSource};
use crate::metrics::RunMetrics;
use crate::node::{ClusterSpec, NodeId, NodeSpec};
use crate::sessions::SessionConfig;
use workload::request::{Request, SloClass};

/// Tunable run parameters shared by every policy.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// Request SLOs (§IX-A formula by default). This is SLO class 0.
    pub slo: Slo,
    /// SLOs of the additional service classes: class `k ≥ 1` resolves to
    /// `class_slos[k - 1]`. Empty in every single-class run, in which case
    /// all requests are held to [`WorldConfig::slo`].
    pub class_slos: Vec<Slo>,
    /// Keep-alive threshold before idle instances are reclaimed (1 s).
    pub keep_alive: SimDuration,
    /// Execution-time jitter.
    pub noise: NoiseModel,
    /// Root seed for all stochastic behaviour in the run.
    pub seed: u64,
    /// Occupancy sampling period.
    pub sample_period: SimDuration,
    /// Extra simulated time allowed after the last arrival before the run
    /// is force-terminated and unresolved requests are dropped.
    pub drain_grace: SimDuration,
    /// Cross-node KV transfer bandwidth for PD disaggregation, GB/s
    /// (§IX-G uses 100 Gbps ⇒ 12.5 GB/s).
    pub kv_transfer_gbps: f64,
    /// The checkpoint storage hierarchy (per-node DRAM/SSD caches, loading
    /// contention, HBM hits). The default, [`CheckpointConfig::flat`],
    /// reproduces the legacy flat loader bit for bit.
    pub checkpoints: CheckpointConfig,
    /// Keep every `n`-th occupancy sample in
    /// [`RunMetrics::usage_timeline`](crate::metrics::RunMetrics). The
    /// time-weighted node-busy integrals still see every tick, so summary
    /// numbers are unchanged; only the plotted timeline thins. The default
    /// of 1 keeps everything (byte-identical to the historical behaviour);
    /// fleet-scale runs raise it so a day-long trace does not carry a
    /// 100k-point timeline per cell. 0 is treated as 1.
    pub usage_sample_stride: usize,
    /// Cross-node checkpoint distribution (peer-to-peer fabric fetch,
    /// multicast relay trees, cache-aware keep-alive/demotion). The
    /// default, [`DistConfig::off`], disables everything and replays
    /// pre-distribution runs byte-identically.
    pub dist: DistConfig,
    /// Record `(model, activation time)` for every instance that finishes
    /// its cold start in
    /// [`RunMetrics::activations`](crate::metrics::RunMetrics::activations)
    /// — what flash-crowd experiments compute time-to-N-replicas from.
    /// Off by default so fleet-scale runs don't grow an unbounded log.
    pub record_activations: bool,
    /// Multi-turn session prefix reuse (parked per-session KV, affinity
    /// routing, priced KV migration). The default, [`SessionConfig::off`],
    /// disables everything and replays sessionless runs byte-identically.
    pub sessions: SessionConfig,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            slo: Slo::paper(),
            class_slos: Vec::new(),
            keep_alive: SimDuration::from_secs(1),
            noise: NoiseModel::default(),
            seed: 0,
            sample_period: SimDuration::from_secs(1),
            drain_grace: SimDuration::from_secs(900),
            kv_transfer_gbps: 12.5,
            checkpoints: CheckpointConfig::flat(),
            usage_sample_stride: 1,
            dist: DistConfig::off(),
            record_activations: false,
            sessions: SessionConfig::off(),
        }
    }
}

/// Memory-operation failures.
#[derive(Debug, Clone, PartialEq)]
pub enum MemError {
    /// The node cannot physically hold the requested bytes.
    WouldOom {
        /// Node that would overflow.
        node: NodeId,
        /// Bytes the operation needed.
        needed: u64,
        /// Bytes actually available.
        available: u64,
    },
    /// A shrink below the live KV block set was requested.
    BelowLiveSet,
    /// The node's hardware cannot serve this model (§IV-A2 limits).
    Unservable,
    /// The node is draining or down and accepts no new instances.
    NodeUnavailable(NodeId),
}

impl std::fmt::Display for MemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemError::WouldOom {
                node,
                needed,
                available,
            } => write!(
                f,
                "node {} would OOM: need {} bytes, {} available",
                node.0, needed, available
            ),
            MemError::BelowLiveSet => write!(f, "cannot shrink KV below live blocks"),
            MemError::Unservable => write!(f, "hardware cannot serve this model"),
            MemError::NodeUnavailable(node) => {
                write!(f, "node {} is draining or down", node.0)
            }
        }
    }
}

impl std::error::Error for MemError {}

/// Iteration-start failures.
#[derive(Debug, Clone, PartialEq)]
pub enum StartError {
    /// The KV grant cannot hold the prompt of the request to prefill.
    KvExhausted(RequestId),
    /// Another slot of the instance's tensor-parallel group is still
    /// running an iteration; the caller should skip this instance until a
    /// later slot-free poke. Single-slot instances never hit this — the
    /// driver only pokes free slots.
    GroupBusy,
}

/// Lifecycle state of a node.
///
/// Scheduling is only allowed on [`NodeHealth::Up`] nodes; a draining node
/// keeps running its in-flight iterations but accepts no new instances, and
/// a down node has lost everything it hosted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeHealth {
    /// Serving normally.
    Up,
    /// Being emptied for maintenance: existing iterations finish, new
    /// placements are refused, hosted requests are rerouted.
    Draining,
    /// Failed or drained away: hosts nothing and accepts nothing.
    Down,
}

/// A timed cluster-lifecycle event, injected through the simulation event
/// loop by [`crate::scenario::Scenario`] (or mid-run by tests via
/// [`World::push_cluster_event`]).
#[derive(Debug, Clone)]
pub enum ClusterEvent {
    /// Gracefully empty a node: no new placements; idle instances unload
    /// immediately and their queued requests are handed back to the policy;
    /// busy instances are swept up as their iterations finish.
    NodeDrain(NodeId),
    /// Hard-fail a node: every hosted instance is lost instantly (weights,
    /// KV, in-flight iterations); surviving requests are handed back to the
    /// policy to re-place — they re-prefill elsewhere, like any migration.
    NodeFail(NodeId),
    /// A new node joins the fleet and becomes schedulable at once.
    NodeJoin(NodeSpec),
}

/// Events processed by the driver.
#[derive(Debug)]
pub(crate) enum Event {
    /// Request `trace[idx]` arrives.
    Arrival(usize),
    /// An iteration completes.
    IterationDone {
        inst: InstanceId,
        kind: IterationKind,
        elapsed: SimDuration,
    },
    /// A cold-start load completes. `epoch` is 0 for fixed-duration
    /// (uncontended) loads; contended loads are rescheduled whenever the
    /// node's loading channel changes membership, and only the event
    /// matching the channel's current epoch is live — stale ones are
    /// skipped by [`World::resolve_load_done`].
    LoadDone {
        inst: InstanceId,
        elapsed: SimDuration,
        epoch: u64,
    },
    /// A KV rescale completes.
    ScaleDone {
        inst: InstanceId,
        from_bytes: u64,
        to_bytes: u64,
        elapsed: SimDuration,
    },
    /// Keep-alive check for an instance idle since `marker`.
    KeepAlive { inst: InstanceId, marker: SimTime },
    /// Policy-requested timer.
    Timer(u64),
    /// Periodic metrics sample.
    Sample,
    /// A scheduled cluster-lifecycle event fires.
    Cluster(ClusterEvent),
}

/// One in-flight cold start on a node's shared loading channel.
#[derive(Debug, Clone)]
struct ActiveLoad {
    /// Seconds of work remaining at the load's *uncontended* tier
    /// bandwidth (noise already folded in); the channel divides progress
    /// by the number of concurrent loads.
    remaining_s: f64,
    /// The load's original uncontended work, seconds. `remaining_s /
    /// work_s` is the fraction still to transfer — what a mid-flight
    /// reroute re-prices from a new source after its peer died.
    work_s: f64,
    /// When the load began (completion reports `now - started`).
    started: SimTime,
}

struct NodeState {
    hw: HardwareSpec,
    slot_shares: Vec<f64>,
    slot_busy: Vec<bool>,
    committed: u64,
    health: NodeHealth,
    /// Tiered checkpoint cache (DRAM/SSD LRU state machine).
    store: CheckpointStore,
    /// In-flight contended loads sharing this node's loading channel.
    loads: BTreeMap<InstanceId, ActiveLoad>,
    /// Last time `loads` progress was settled.
    loads_settled_at: SimTime,
    /// Bumped on every channel-membership change; live `LoadDone` events
    /// carry the current value.
    load_epoch: u64,
}

impl NodeState {
    fn new(spec: &NodeSpec) -> Self {
        NodeState {
            hw: spec.hw.clone(),
            slot_shares: spec.slot_shares.clone(),
            slot_busy: vec![false; spec.slot_shares.len()],
            committed: 0,
            health: NodeHealth::Up,
            store: CheckpointStore::new(),
            loads: BTreeMap::new(),
            loads_settled_at: SimTime::ZERO,
            load_epoch: 0,
        }
    }
}

/// An instance plus its placement.
pub struct Hosted {
    /// The engine-level instance.
    pub inst: Instance,
    /// Node it resides on.
    pub node: NodeId,
    /// The full slot group this instance spans, ascending. One entry for
    /// plain instances; `tp` entries for tensor-parallel placements, all
    /// on [`Hosted::node`]. Iterations occupy every slot of the group.
    pub slots: Vec<usize>,
    /// The checkpoint tier this instance's cold start loaded from.
    pub load_tier: CheckpointTier,
    /// For a peer fabric fetch: the *source* node whose loading channel
    /// the transfer contends on (`None` = the load runs on the instance's
    /// own node, the classic path).
    pub load_channel: Option<NodeId>,
    /// True when the cold start streams over the peer-to-peer fabric
    /// (its seconds are accounted to
    /// [`RunMetrics::peer_fetch_seconds`](crate::metrics::RunMetrics::peer_fetch_seconds),
    /// not the local tier table).
    pub fabric: bool,
    /// Keep-alive periods this instance has already deferred because it
    /// held the fleet's last warm copy of its checkpoint (cache-aware
    /// keep-alive; bounded by `DistConfig::keepalive_defer_max`).
    pub keepalive_defers: u32,
}

impl Hosted {
    /// Primary slot (the first of the group) — the single-slot address
    /// legacy queries use.
    pub fn slot(&self) -> usize {
        self.slots[0]
    }
}

/// Secondary indexes over [`World::instances`], maintained on every
/// create / unload / node-fail / node-join.
///
/// The hot loop asks "who is on this slot", "who is on this node" and
/// "where does this model run" once or more per event; at fleet scale the
/// full-map scans behind those queries were the profile top. Every list
/// stays ascending by instance id — ids are handed out monotonically, so
/// inserts append — which preserves the exact iteration order of the
/// `BTreeMap` scans the index replaces (runs stay byte-identical).
#[derive(Default)]
struct InstanceIndex {
    /// `[node]` → hosted instance ids (ascending).
    by_node: Vec<Vec<InstanceId>>,
    /// `[node][slot]` → ids of instances whose slot group covers the slot
    /// (a tensor-parallel instance appears under every slot it spans).
    by_slot: Vec<Vec<Vec<InstanceId>>>,
    /// `[model]` → instance ids (ascending); sized to the model registry.
    by_model: Vec<Vec<InstanceId>>,
    /// Nodes with ≥ 1 resident instance, by hardware kind. Occupancy
    /// sampling reads these counters instead of scanning the fleet.
    used_cpu_nodes: u32,
    used_gpu_nodes: u32,
}

impl InstanceIndex {
    fn new(slots_per_node: &[usize], n_models: usize) -> Self {
        InstanceIndex {
            by_node: vec![Vec::new(); slots_per_node.len()],
            by_slot: slots_per_node
                .iter()
                .map(|&n| vec![Vec::new(); n])
                .collect(),
            by_model: vec![Vec::new(); n_models],
            used_cpu_nodes: 0,
            used_gpu_nodes: 0,
        }
    }

    /// Registers a node that joined mid-run.
    fn add_node(&mut self, n_slots: usize) {
        self.by_node.push(Vec::new());
        self.by_slot.push(vec![Vec::new(); n_slots]);
    }

    /// Files `id` at the given position, keeping every list sorted.
    fn insert(
        &mut self,
        id: InstanceId,
        node: usize,
        slots: &[usize],
        model: usize,
        kind: HardwareKind,
    ) {
        if self.by_node[node].is_empty() {
            match kind {
                HardwareKind::Gpu => self.used_gpu_nodes += 1,
                _ => self.used_cpu_nodes += 1,
            }
        }
        Self::sorted_insert(&mut self.by_node[node], id);
        for &s in slots {
            Self::sorted_insert(&mut self.by_slot[node][s], id);
        }
        Self::sorted_insert(&mut self.by_model[model], id);
    }

    /// Unfiles `id`; the caller passes the placement it was filed under.
    fn remove(
        &mut self,
        id: InstanceId,
        node: usize,
        slots: &[usize],
        model: usize,
        kind: HardwareKind,
    ) {
        Self::sorted_remove(&mut self.by_node[node], id);
        if self.by_node[node].is_empty() {
            match kind {
                HardwareKind::Gpu => self.used_gpu_nodes -= 1,
                _ => self.used_cpu_nodes -= 1,
            }
        }
        for &s in slots {
            Self::sorted_remove(&mut self.by_slot[node][s], id);
        }
        Self::sorted_remove(&mut self.by_model[model], id);
    }

    fn sorted_insert(list: &mut Vec<InstanceId>, id: InstanceId) {
        // Instance ids are monotone, so this is an append in practice.
        match list.binary_search(&id) {
            Ok(_) => debug_assert!(false, "instance indexed twice"),
            Err(pos) => list.insert(pos, id),
        }
    }

    fn sorted_remove(list: &mut Vec<InstanceId>, id: InstanceId) {
        if let Ok(pos) = list.binary_search(&id) {
            list.remove(pos);
        } else {
            debug_assert!(false, "removing an unindexed instance");
        }
    }
}

/// The live cluster state. See module docs.
pub struct World {
    /// Run configuration.
    pub cfg: WorldConfig,
    clock: SimTime,
    pub(crate) events: EventQueue<Event>,
    nodes: Vec<NodeState>,
    instances: BTreeMap<InstanceId, Hosted>,
    /// Indexed views of `instances` (per node / slot / model), maintained
    /// incrementally so hot-path lookups avoid full-map scans.
    index: InstanceIndex,
    next_instance: u64,
    models: Vec<ModelSpec>,
    perf: AnalyticPerf,
    rng: SimRng,
    /// Fleet-wide checkpoint replica directory (only maintained while
    /// `cfg.dist` is enabled; empty otherwise).
    dir: CheckpointDirectory,
    /// World-global loading-channel epoch counter. Epoch values only ever
    /// matter by equality, but a reroute can move a load *between*
    /// channels — globally unique epochs make a stale event from the old
    /// channel unable to collide with the new channel's current epoch.
    next_load_epoch: u64,
    /// Session id → instance holding the session's parked KV. Only
    /// maintained while `cfg.sessions` is enabled; entries are validated
    /// lazily (the home may have unloaded or evicted the session since).
    session_home: BTreeMap<u64, InstanceId>,
    /// Metrics recorder (public: the driver and summaries read it).
    pub metrics: RunMetrics,
    pub(crate) outstanding: usize,
    pub(crate) wake: Vec<(NodeId, usize)>,
}

impl World {
    /// Builds a world over `cluster` hosting the given model registry
    /// (`ModelId(i)` ↦ `models[i]`).
    ///
    /// # Panics
    /// Panics if the cluster spec is invalid or `models` is empty.
    pub fn new(cluster: &ClusterSpec, models: Vec<ModelSpec>, cfg: WorldConfig) -> Self {
        // detlint::allow(D005, "constructor precondition, documented under # Panics: World::new refuses malformed specs before any event runs")
        cluster.validate().expect("invalid cluster");
        assert!(!models.is_empty(), "model registry is empty");
        let nodes: Vec<NodeState> = cluster.nodes.iter().map(NodeState::new).collect();
        let slots_per_node: Vec<usize> = nodes.iter().map(|n| n.slot_shares.len()).collect();
        let index = InstanceIndex::new(&slots_per_node, models.len());
        let rng = SimRng::new(cfg.seed).split(0xC1A5);
        World {
            cfg,
            clock: SimTime::ZERO,
            events: EventQueue::new(),
            nodes,
            instances: BTreeMap::new(),
            index,
            next_instance: 1,
            models,
            perf: AnalyticPerf::new(),
            rng,
            dir: CheckpointDirectory::new(),
            next_load_epoch: 0,
            session_home: BTreeMap::new(),
            metrics: RunMetrics::default(),
            outstanding: 0,
            wake: Vec::new(),
        }
    }

    // ------------------------------------------------------------------
    // Read-only views
    // ------------------------------------------------------------------

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    pub(crate) fn set_now(&mut self, t: SimTime) {
        debug_assert!(t >= self.clock);
        self.clock = t;
    }

    /// The run's default SLO (class 0).
    pub fn slo(&self) -> Slo {
        self.cfg.slo
    }

    /// The SLO a service class is held to. Unregistered classes fall back
    /// to the default, so a trace tagged for a richer scenario still runs
    /// under a plain config.
    pub fn slo_of(&self, class: SloClass) -> Slo {
        if class.0 == 0 {
            return self.cfg.slo;
        }
        self.cfg
            .class_slos
            .get(class.0 as usize - 1)
            .copied()
            .unwrap_or(self.cfg.slo)
    }

    /// The SLO of one request (via its class tag).
    pub fn slo_for(&self, req: &Request) -> Slo {
        self.slo_of(req.class)
    }

    /// The SLO of a request identified by id (via its metrics record).
    pub fn slo_for_id(&self, id: RequestId) -> Slo {
        self.slo_of(self.metrics.records[id.0 as usize].class)
    }

    /// Lifecycle state of a node.
    pub fn node_health(&self, node: NodeId) -> NodeHealth {
        self.nodes[node.0 as usize].health
    }

    /// True while a node accepts new instances (healthy, not draining).
    pub fn node_schedulable(&self, node: NodeId) -> bool {
        self.nodes[node.0 as usize].health == NodeHealth::Up
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// All node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Node ids of the given hardware kind.
    pub fn nodes_of_kind(&self, kind: HardwareKind) -> Vec<NodeId> {
        self.node_ids()
            .filter(|&n| self.node_hw(n).kind == kind)
            .collect()
    }

    /// Hardware of a node.
    pub fn node_hw(&self, node: NodeId) -> &HardwareSpec {
        &self.nodes[node.0 as usize].hw
    }

    /// Bytes not yet committed on a node.
    pub fn node_available_bytes(&self, node: NodeId) -> u64 {
        let n = &self.nodes[node.0 as usize];
        n.hw.mem_bytes.saturating_sub(n.committed)
    }

    /// Bytes committed on a node (weights + KV grants + in-flight growth).
    pub fn node_committed_bytes(&self, node: NodeId) -> u64 {
        self.nodes[node.0 as usize].committed
    }

    /// Number of slots on a node.
    pub fn slot_count(&self, node: NodeId) -> usize {
        self.nodes[node.0 as usize].slot_shares.len()
    }

    /// Compute share of a slot.
    pub fn slot_share(&self, node: NodeId, slot: usize) -> f64 {
        self.nodes[node.0 as usize].slot_shares[slot]
    }

    /// True while an iteration runs on the slot.
    pub fn slot_busy(&self, node: NodeId, slot: usize) -> bool {
        self.nodes[node.0 as usize].slot_busy[slot]
    }

    /// The model registry entry for `model`.
    ///
    /// # Panics
    /// Panics if the id is out of range.
    pub fn model_spec(&self, model: ModelId) -> &ModelSpec {
        &self.models[model.0 as usize]
    }

    /// Number of registered models.
    pub fn model_count(&self) -> usize {
        self.models.len()
    }

    /// The instance, if it exists.
    pub fn instance(&self, id: InstanceId) -> Option<&Instance> {
        self.instances.get(&id).map(|h| &h.inst)
    }

    /// Mutable instance access (policies use it for migration draining).
    pub fn instance_mut(&mut self, id: InstanceId) -> Option<&mut Instance> {
        self.instances.get_mut(&id).map(|h| &mut h.inst)
    }

    /// Placement of an instance: its node and *primary* slot. Use
    /// [`World::instance_slots`] for the full tensor-parallel group.
    pub fn instance_placement(&self, id: InstanceId) -> Option<(NodeId, usize)> {
        self.instances.get(&id).map(|h| (h.node, h.slot()))
    }

    /// The full slot group an instance spans (ascending; length 1 for
    /// plain instances, `tp` for tensor-parallel placements).
    pub fn instance_slots(&self, id: InstanceId) -> Option<&[usize]> {
        self.instances.get(&id).map(|h| h.slots.as_slice())
    }

    /// Aggregate compute share of an instance's slot group — what the
    /// performance model sees (a TP instance's group share plus its
    /// interconnect discount replaces the single slot share).
    pub fn instance_share(&self, id: InstanceId) -> f64 {
        let h = &self.instances[&id];
        h.slots
            .iter()
            .map(|&s| self.nodes[h.node.0 as usize].slot_shares[s])
            .sum()
    }

    /// True while any slot of the instance's group runs an iteration.
    /// Policies skip group-busy instances when reacting to a slot-free
    /// poke — another slot of the group may still be occupied.
    pub fn instance_group_busy(&self, id: InstanceId) -> bool {
        let h = &self.instances[&id];
        h.slots
            .iter()
            .any(|&s| self.nodes[h.node.0 as usize].slot_busy[s])
    }

    /// Picks a `k`-slot group on `node` for a new instance, or `None` if
    /// the node has fewer than `k` slots: the least-populated slots win
    /// (ties by index), so instances spread across a multi-accelerator
    /// node before they stack — single-device instances included. On
    /// single-slot nodes this degenerates to slot 0, the only placement
    /// the stock experiments ever see. Deterministic by construction.
    pub fn slot_group_for(&self, node: NodeId, k: usize) -> Option<Vec<usize>> {
        let n_slots = self.nodes[node.0 as usize].slot_shares.len();
        if k == 0 || k > n_slots {
            return None;
        }
        let mut ranked: Vec<(usize, usize)> = (0..n_slots)
            .map(|s| (self.index.by_slot[node.0 as usize][s].len(), s))
            .collect();
        ranked.sort();
        let mut group: Vec<usize> = ranked.into_iter().take(k).map(|(_, s)| s).collect();
        group.sort_unstable();
        Some(group)
    }

    /// All instance ids (ascending).
    pub fn instance_ids(&self) -> Vec<InstanceId> {
        self.instances.keys().cloned().collect()
    }

    /// Instances hosted on `node`.
    pub fn instances_on_node(&self, node: NodeId) -> Vec<InstanceId> {
        self.node_instances(node).to_vec()
    }

    /// Borrowed view of the instances hosted on `node` (ascending ids) —
    /// the allocation-free form of [`World::instances_on_node`].
    pub fn node_instances(&self, node: NodeId) -> &[InstanceId] {
        &self.index.by_node[node.0 as usize]
    }

    /// Instances whose slot group includes `slot` (a tensor-parallel
    /// instance appears on every slot it spans).
    pub fn instances_on_slot(&self, node: NodeId, slot: usize) -> Vec<InstanceId> {
        self.slot_instances(node, slot).to_vec()
    }

    /// Borrowed view of the instances on a slot (ascending ids) — the
    /// allocation-free form of [`World::instances_on_slot`], for hot paths
    /// that only inspect the list.
    pub fn slot_instances(&self, node: NodeId, slot: usize) -> &[InstanceId] {
        &self.index.by_slot[node.0 as usize][slot]
    }

    /// All instances of a model, across the cluster.
    pub fn instances_of_model(&self, model: ModelId) -> Vec<InstanceId> {
        self.model_instances(model).to_vec()
    }

    /// Borrowed view of a model's instances (ascending ids) — the
    /// allocation-free form of [`World::instances_of_model`].
    pub fn model_instances(&self, model: ModelId) -> &[InstanceId] {
        &self.index.by_model[model.0 as usize]
    }

    // ------------------------------------------------------------------
    // Estimation (noiseless; what a control plane can know)
    // ------------------------------------------------------------------

    /// The ground-truth analytic model, for policies that profile offline
    /// (SLINFER's quantifier samples this like it would a real node).
    pub fn perf(&self) -> &AnalyticPerf {
        &self.perf
    }

    /// Noiseless prefill estimate for an instance's placement (group share
    /// and tensor-parallel overhead included).
    pub fn estimate_prefill_s(&self, inst: InstanceId, len: u32) -> f64 {
        let share = self.instance_share(inst);
        let h = &self.instances[&inst];
        self.perf.prefill_time_tp(
            &h.inst.spec,
            self.node_hw(h.node),
            len.max(1),
            share,
            h.inst.tp,
        )
    }

    /// Noiseless decode estimate for an instance's placement (group share
    /// and tensor-parallel overhead included).
    pub fn estimate_decode_s(&self, inst: InstanceId, batch: u32, total_ctx: u64) -> f64 {
        let share = self.instance_share(inst);
        let h = &self.instances[&inst];
        self.perf.decode_time_tp(
            &h.inst.spec,
            self.node_hw(h.node),
            batch,
            total_ctx,
            share,
            h.inst.tp,
        )
    }

    /// True when a cold start of `model` on `node` would be served from
    /// HBM: the config enables HBM hits and an *active* instance of the
    /// model already holds the weights in serving memory (a loading
    /// neighbour's weights are not there yet). The estimate path and the
    /// actual load must agree on this predicate, so both use it.
    fn hbm_resident(&self, model: ModelId, node: NodeId) -> bool {
        self.cfg.checkpoints.hbm_hits
            && self.index.by_node[node.0 as usize].iter().any(|id| {
                let h = &self.instances[id];
                h.inst.model == model && h.inst.state == InstanceState::Active
            })
    }

    /// The warmest checkpoint tier holding `model` on `node`: HBM when an
    /// active instance of the model is co-resident (and the config enables
    /// HBM hits), else whatever the node's DRAM/SSD cache state says.
    /// Read-only — recency is untouched, so estimates never perturb runs.
    pub fn checkpoint_tier(&self, model: ModelId, node: NodeId) -> CheckpointTier {
        if self.hbm_resident(model, node) {
            return CheckpointTier::Hbm;
        }
        self.nodes[node.0 as usize]
            .store
            .peek_tier(model, &self.cfg.checkpoints)
    }

    /// Models currently in `node`'s DRAM checkpoint cache, coldest first
    /// (empty while the DRAM tier is unbounded — nothing is tracked).
    pub fn checkpoint_dram_models(&self, node: NodeId) -> Vec<ModelId> {
        self.nodes[node.0 as usize].store.dram_models()
    }

    /// Models currently on `node`'s SSD checkpoint tier, coldest first.
    pub fn checkpoint_ssd_models(&self, node: NodeId) -> Vec<ModelId> {
        self.nodes[node.0 as usize].store.ssd_models()
    }

    /// Cold starts currently sharing `node`'s loading channel.
    pub fn loads_in_flight(&self, node: NodeId) -> usize {
        self.nodes[node.0 as usize].loads.len()
    }

    /// Cold-start duration estimate for a model on a node: ServerlessLLM's
    /// startup-time estimate, from the checkpoint's warmest tier on that
    /// node, accounting for the loads it would share the loading channel
    /// with. Placement, feasibility, and the scale-up path all score
    /// candidate nodes with this. Under the flat default configuration it
    /// degenerates to `weights / load_bw`, the legacy estimate. With
    /// checkpoint distribution enabled the estimate is peer-aware: when a
    /// fabric fetch from another node's cache beats the local hierarchy,
    /// the peer estimate is returned — so startup-time-estimated placement
    /// (SLINFER and both baselines) sees the fabric.
    pub fn estimate_load_s(&self, model: ModelId, node: NodeId) -> f64 {
        let local = self.local_estimate_load_s(model, node);
        if !self.cfg.dist.fetch_enabled() {
            return local;
        }
        match self.plan_transfer(model, node) {
            Some(plan) => plan.est_s,
            None => local,
        }
    }

    /// The PR 5 local-hierarchy estimate (warmest local tier, destination
    /// channel share) — the dist-off `estimate_load_s`, and the bar a peer
    /// transfer has to beat.
    fn local_estimate_load_s(&self, model: ModelId, node: NodeId) -> f64 {
        let tier = self.checkpoint_tier(model, node);
        let concurrent = if self.cfg.checkpoints.contention && tier != CheckpointTier::Hbm {
            self.nodes[node.0 as usize].loads.len() as u32 + 1
        } else {
            1
        };
        self.perf
            .load_time(self.model_spec(model), self.node_hw(node), tier, concurrent)
    }

    /// Plans the cheapest peer transfer of `model` to `dest`, or `None`
    /// when the local hierarchy wins (or no usable replica exists). Shared
    /// by [`World::estimate_load_s`] and the create path, so estimates and
    /// actual transfers always agree on the source. Deterministic: replicas
    /// are scanned in node order and ties break toward the lower node id;
    /// no RNG is consulted.
    fn plan_transfer(&self, model: ModelId, dest: NodeId) -> Option<TransferPlan> {
        let dist = self.cfg.dist;
        if !dist.fetch_enabled() {
            return None;
        }
        let bytes = self.model_spec(model).weights_bytes();
        let dest_hw = self.node_hw(dest);
        let mut best: Option<TransferPlan> = None;
        for rep in self.dir.replicas(model) {
            if rep.node == dest || !self.node_schedulable(rep.node) {
                continue;
            }
            let relay = rep.state == ReplicaState::Arriving;
            if relay && !dist.multicast {
                continue;
            }
            let src_hw = self.node_hw(rep.node);
            // A fabric stream is bounded by the receiver's fabric port and
            // the source's tier read path.
            let rate = dest_hw.fabric_bw_gbps.min(src_hw.tier_bw_gbps(rep.tier));
            if rate <= 0.0 {
                continue;
            }
            let mut work = bytes as f64 / (rate * 1e9);
            if relay {
                // A relay pipelines behind its parent's inbound stream: the
                // hop cannot finish before the parent's own tail arrives.
                work = work.max(self.inbound_remaining_s(model, rep.node));
            }
            work += dest_hw.fabric_latency_s;
            // The transfer joins the *source's* loading channel.
            let k = if self.cfg.checkpoints.contention {
                self.nodes[rep.node.0 as usize].loads.len() as f64 + 1.0
            } else {
                1.0
            };
            let est = work * k;
            let better = match &best {
                None => true,
                Some(b) => {
                    let b_node = match b.source {
                        TransferSource::Peer { node, .. } => node,
                        TransferSource::Local(_) => unreachable!("planner only picks peers"),
                    };
                    (est, rep.node) < (b.est_s, b_node)
                }
            };
            if better {
                best = Some(TransferPlan {
                    source: TransferSource::Peer {
                        node: rep.node,
                        relay,
                    },
                    work_s: work,
                    est_s: est,
                });
            }
        }
        let plan = best?;
        if plan.est_s < self.local_estimate_load_s(model, dest) {
            Some(plan)
        } else {
            None
        }
    }

    /// Settled seconds remaining on the in-flight load bringing `model`
    /// to `holder`, read-only (no channel state is touched). Zero when no
    /// tracked inbound load exists — fixed-duration (uncontended) loads
    /// are not observable, so relays price them optimistically.
    fn inbound_remaining_s(&self, model: ModelId, holder: NodeId) -> f64 {
        let mut worst = 0.0f64;
        for &id in self.model_instances(model) {
            let h = &self.instances[&id];
            if h.node != holder || h.inst.state != InstanceState::Loading {
                continue;
            }
            let ch = h.load_channel.unwrap_or(h.node).0 as usize;
            let n = &self.nodes[ch];
            if let Some(l) = n.loads.get(&id) {
                let k = n.loads.len() as f64;
                let elapsed = self.clock.since(n.loads_settled_at).as_secs_f64();
                worst = worst.max((l.remaining_s - elapsed / k).max(0.0));
            }
        }
        worst
    }

    /// Eviction ranks of `node`'s DRAM-resident checkpoints for
    /// cache-aware demotion: 0 = an SSD copy sits right below (cheapest to
    /// recover, evicted first), 1 = a ready fleet replica exists elsewhere
    /// (a fabric fetch away), 2 = this DRAM entry is the last copy short
    /// of the registry. Ties fall back to LRU order inside the store.
    fn dram_eviction_ranks(&self, node: NodeId) -> Vec<(ModelId, u8)> {
        let store = &self.nodes[node.0 as usize].store;
        store
            .dram_models()
            .into_iter()
            .map(|m| {
                let rank = if store.ssd_models().contains(&m) {
                    0
                } else if self.dir.ready_replicas_elsewhere(m, node) > 0 {
                    1
                } else {
                    2
                };
                (m, rank)
            })
            .collect()
    }

    /// Re-syncs the directory's view of `node` from its store (call after
    /// any store mutation while distribution is enabled).
    fn refresh_directory(&mut self, node: NodeId) {
        if !self.cfg.dist.enabled() {
            return;
        }
        let store = &self.nodes[node.0 as usize].store;
        let (dram, ssd) = (store.dram_models(), store.ssd_models());
        self.dir.refresh_node(node, &dram, &ssd);
    }

    /// Re-sources a fabric transfer whose source node just failed: the
    /// remaining fraction of the checkpoint restarts from the best *ready*
    /// replica (a relay chain rooted at the failed node lost its feed, so
    /// mid-flight peers are not eligible), falling back to a registry
    /// resume over the destination's own remote link. Deterministic — the
    /// event-application path consults no RNG, and the fresh channel epoch
    /// keeps the dead channel's LoadDone events stale.
    fn reroute_transfer(
        &mut self,
        inst: InstanceId,
        remaining_s: f64,
        work_s: f64,
        started: SimTime,
    ) {
        let (model, dest) = {
            let h = &self.instances[&inst];
            (h.inst.model, h.node)
        };
        let frac = if work_s > 0.0 {
            (remaining_s / work_s).clamp(0.0, 1.0)
        } else {
            0.0
        };
        let bytes_left = self.model_spec(model).weights_bytes() as f64 * frac;
        let dest_hw = self.node_hw(dest);
        let fabric_lat = dest_hw.fabric_latency_s;
        let dest_fabric = dest_hw.fabric_bw_gbps;
        let remote_bw = dest_hw.remote_bw_gbps;
        let mut best: Option<(f64, NodeId, f64)> = None; // (est, src, hop seconds)
        for rep in self.dir.replicas(model) {
            if rep.node == dest
                || rep.state != ReplicaState::Ready
                || !self.node_schedulable(rep.node)
            {
                continue;
            }
            let rate = dest_fabric.min(self.node_hw(rep.node).tier_bw_gbps(rep.tier));
            if rate <= 0.0 {
                continue;
            }
            let t = bytes_left / (rate * 1e9) + fabric_lat;
            let k = if self.cfg.checkpoints.contention {
                self.nodes[rep.node.0 as usize].loads.len() as f64 + 1.0
            } else {
                1.0
            };
            let est = t * k;
            let better = match best {
                None => true,
                Some((be, bn, _)) => (est, rep.node) < (be, bn),
            };
            if better {
                best = Some((est, rep.node, t));
            }
        }
        let (channel, t) = match best {
            Some((_, src, t)) => (src, t),
            None => (dest, bytes_left / (remote_bw * 1e9)),
        };
        self.instances
            .get_mut(&inst)
            // detlint::allow(D005, "reroute only runs for instances the failing node's loading list still names; absence is directory corruption")
            .expect("reroute target exists")
            .load_channel = (channel != dest).then_some(channel);
        let ch = channel.0 as usize;
        if self.cfg.checkpoints.contention {
            self.settle_loads(ch);
            self.nodes[ch].loads.insert(
                inst,
                ActiveLoad {
                    remaining_s: t,
                    work_s: t,
                    started,
                },
            );
            self.reschedule_loads(ch);
        } else {
            let finish = self.clock + SimDuration::from_secs_f64(t);
            self.events.push(
                finish,
                Event::LoadDone {
                    inst,
                    elapsed: finish.since(started),
                    epoch: 0,
                },
            );
        }
    }

    /// Cache-aware keep-alive: returns true when unloading this idle
    /// instance should be deferred one more keep-alive period because it
    /// would send the fleet's *last* warm copy of the model back to the
    /// registry. Bounded by `keepalive_defer_max` deferrals so a cooling
    /// fleet still drains. No-op (always false) unless `dist.cache_aware`.
    pub(crate) fn keepalive_defer(&mut self, inst: InstanceId) -> bool {
        if !self.cfg.dist.cache_aware {
            return false;
        }
        let (model, node, defers) = match self.instances.get(&inst) {
            Some(h) => (h.inst.model, h.node, h.keepalive_defers),
            None => return false,
        };
        if defers >= self.cfg.dist.keepalive_defer_max {
            return false;
        }
        // Another live instance of the model keeps the weights hot
        // regardless of what happens to this one.
        if self.model_instances(model).iter().any(|&id| id != inst) {
            return false;
        }
        if self.dir.ready_replicas_elsewhere(model, node) > 0 {
            return false;
        }
        // Only defer when eviction would truly fall back to the registry:
        // a local DRAM/SSD copy below the instance's HBM residency makes
        // the next cold start cheap anyway.
        if self.nodes[node.0 as usize]
            .store
            .peek_tier(model, &self.cfg.checkpoints)
            != CheckpointTier::Remote
        {
            return false;
        }
        self.instances
            .get_mut(&inst)
            // detlint::allow(D005, "the same map was read a few lines up; between the two lookups nothing can remove the instance")
            .expect("checked above")
            .keepalive_defers += 1;
        true
    }

    /// [`World::estimate_load_s`] as an integer-nanosecond sort key — the
    /// startup-time score SLINFER and the baselines order placement
    /// candidates by. One definition, so the scheduling signal cannot
    /// drift between policies; integer so `(rank, score, …)` tuples keep
    /// a deterministic total order, with ties falling back to each
    /// caller's legacy ordering (which is what makes the flat default
    /// configuration replay byte-identically).
    pub fn startup_score_ns(&self, model: ModelId, node: NodeId) -> u64 {
        (self.estimate_load_s(model, node) * 1e9).round() as u64
    }

    /// KV-transfer delay for PD disaggregation: `tokens · C / bandwidth`.
    pub fn kv_transfer_delay(&self, model: ModelId, tokens: u32) -> SimDuration {
        let bytes = tokens as u64 * self.model_spec(model).kv_bytes_per_token();
        SimDuration::from_secs_f64(bytes as f64 / (self.cfg.kv_transfer_gbps * 1e9))
    }

    // ------------------------------------------------------------------
    // Mutation API (policies)
    // ------------------------------------------------------------------

    /// Creates an instance of `model` on `(node, slot)` with an initial KV
    /// grant, committing `weights + grant` bytes and starting the cold-start
    /// load. Single-slot shorthand for [`World::create_instance_group`].
    pub fn create_instance(
        &mut self,
        model: ModelId,
        node: NodeId,
        slot: usize,
        kv_grant_bytes: u64,
    ) -> Result<InstanceId, MemError> {
        self.create_instance_group(model, node, &[slot], kv_grant_bytes)
    }

    /// Creates an instance of `model` spanning the slot group `slots` of
    /// one node (a tensor-parallel placement when `slots.len() > 1`). The
    /// grant and weight bytes commit against the node's single ledger —
    /// the group shards one footprint, it does not multiply it.
    ///
    /// # Panics
    /// Panics if `slots` is empty, out of range, or holds duplicates, or
    /// if its length does not match the model's deployed TP degree.
    pub fn create_instance_group(
        &mut self,
        model: ModelId,
        node: NodeId,
        slots: &[usize],
        kv_grant_bytes: u64,
    ) -> Result<InstanceId, MemError> {
        if !self.node_schedulable(node) {
            return Err(MemError::NodeUnavailable(node));
        }
        let spec = self.model_spec(model).clone();
        assert!(!slots.is_empty(), "an instance needs at least one slot");
        assert_eq!(
            slots.len() as u32,
            spec.tp_degree.max(1),
            "slot group size must match the model's TP degree"
        );
        let mut slots: Vec<usize> = slots.to_vec();
        slots.sort_unstable();
        let n_slots = self.slot_count(node);
        assert!(
            slots.iter().all(|&s| s < n_slots),
            "slot out of range for node {}",
            node.0
        );
        assert!(
            slots.windows(2).all(|w| w[0] != w[1]),
            "slot group holds duplicate slots"
        );
        if !self.node_hw(node).can_serve(&spec) {
            return Err(MemError::Unservable);
        }
        let needed = spec.weights_bytes() + kv_grant_bytes;
        let available = self.node_available_bytes(node);
        if needed > available {
            self.metrics.oom_incidents += 1;
            return Err(MemError::WouldOom {
                node,
                needed,
                available,
            });
        }
        self.nodes[node.0 as usize].committed += needed;
        let id = InstanceId(self.next_instance);
        self.next_instance += 1;
        // Fetch the checkpoint from its warmest tier, promoting it through
        // the node's cache hierarchy. HBM hits copy the co-resident weights
        // device-to-device and only refresh cache recency. With checkpoint
        // distribution enabled, a peer's cached copy (or an in-flight relay
        // under multicast) can beat the local hierarchy: the weights then
        // stream over the fabric into DRAM, contending on the *source*
        // node's loading channel instead of the local one.
        let ix = node.0 as usize;
        let ckpt = self.cfg.checkpoints.clone();
        let hbm = self.hbm_resident(model, node);
        let plan = if self.cfg.dist.fetch_enabled() && !hbm {
            self.plan_transfer(model, node)
        } else {
            None
        };
        let ranks = if self.cfg.dist.cache_aware {
            self.dram_eviction_ranks(node)
        } else {
            Vec::new()
        };
        let (tier, peer) = if hbm {
            self.nodes[ix].store.touch(model);
            (CheckpointTier::Hbm, None)
        } else if let Some(TransferPlan {
            source: TransferSource::Peer { node: src, relay },
            work_s,
            ..
        }) = plan
        {
            self.nodes[ix]
                .store
                .admit_fabric(model, spec.weights_bytes(), &ckpt, &ranks);
            (CheckpointTier::Dram, Some((src, relay, work_s)))
        } else if self.cfg.dist.cache_aware {
            let t = self.nodes[ix]
                .store
                .fetch_ranked(model, spec.weights_bytes(), &ckpt, &ranks);
            (t, None)
        } else {
            let t = self.nodes[ix]
                .store
                .fetch(model, spec.weights_bytes(), &ckpt);
            (t, None)
        };
        if self.cfg.dist.enabled() {
            self.refresh_directory(node);
            if peer.is_some() || tier == CheckpointTier::Remote {
                self.dir.mark_arriving(model, node);
            }
        }
        let mut inst = Instance::new(id, model, spec.clone(), kv_grant_bytes, self.clock);
        inst.retain_sessions = self.cfg.sessions.enabled;
        self.index
            .insert(id, ix, &slots, model.0 as usize, self.nodes[ix].hw.kind);
        self.instances.insert(
            id,
            Hosted {
                inst,
                node,
                slots,
                load_tier: tier,
                load_channel: None,
                fabric: peer.is_some(),
                keepalive_defers: 0,
            },
        );
        self.metrics.cold_starts += 1;
        match peer {
            Some((_, relay, _)) => {
                self.metrics.peer_fetches += 1;
                if relay {
                    self.metrics.multicast_relays += 1;
                }
            }
            None => self.metrics.cold_tier_loads[tier.index()] += 1,
        }
        let hw = self.nodes[ix].hw.clone();
        let base = match peer {
            Some((_, _, work_s)) => work_s,
            None => self.perf.load_time(&spec, &hw, tier, 1),
        };
        let work = self.cfg.noise.apply(base, &mut self.rng);
        let channel = match peer {
            // A fabric stream shares the source's loading channel with the
            // source's own cold starts.
            Some((src, _, _)) if ckpt.contention => Some(src.0 as usize),
            None if ckpt.contention && tier != CheckpointTier::Hbm => Some(ix),
            _ => None,
        };
        if let Some(ch) = channel {
            // Join the shared loading channel: everyone slows down to bw/k
            // and the whole channel is rescheduled.
            if ch != ix {
                self.instances
                    .get_mut(&id)
                    // detlint::allow(D005, "this function inserted `id` into the map earlier in the same call")
                    .expect("just inserted")
                    .load_channel = Some(NodeId(ch as u32));
            }
            self.settle_loads(ch);
            self.nodes[ch].loads.insert(
                id,
                ActiveLoad {
                    remaining_s: work,
                    work_s: work,
                    started: self.clock,
                },
            );
            self.reschedule_loads(ch);
        } else {
            let dur = SimDuration::from_secs_f64(work);
            self.events.push(
                self.clock + dur,
                Event::LoadDone {
                    inst: id,
                    elapsed: dur,
                    epoch: 0,
                },
            );
        }
        Ok(id)
    }

    // ------------------------------------------------------------------
    // Shared loading channel (contended cold starts)
    // ------------------------------------------------------------------

    /// Advances every in-flight load on a node to `now`: with `k` loads
    /// sharing the channel, each completes `1/k` units of work per second.
    fn settle_loads(&mut self, node_ix: usize) {
        let now = self.clock;
        let n = &mut self.nodes[node_ix];
        let k = n.loads.len();
        if k > 0 {
            let elapsed = now.since(n.loads_settled_at).as_secs_f64();
            if elapsed > 0.0 {
                let rate = 1.0 / k as f64;
                for l in n.loads.values_mut() {
                    l.remaining_s = (l.remaining_s - elapsed * rate).max(0.0);
                }
            }
        }
        n.loads_settled_at = now;
    }

    /// Reschedules every in-flight load on a node after a membership
    /// change (a load joined, finished, or was cancelled): each load's
    /// completion lands at `now + remaining · k`, under a fresh epoch so
    /// previously pushed events go stale.
    fn reschedule_loads(&mut self, node_ix: usize) {
        // Epochs come from a world-global counter: a load that migrates
        // between channels (source-node failure reroute) can then never be
        // confirmed by a stale event that happens to carry the new
        // channel's current per-node count. Only equality is ever checked,
        // so the switch from per-node counters is behavior-neutral.
        self.next_load_epoch += 1;
        let n = &mut self.nodes[node_ix];
        n.load_epoch = self.next_load_epoch;
        let epoch = n.load_epoch;
        let k = n.loads.len();
        if k == 0 {
            return;
        }
        let now = self.clock;
        let pending: Vec<(SimTime, InstanceId, SimTime)> = n
            .loads
            .iter()
            .map(|(&inst, l)| {
                let finish = now + SimDuration::from_secs_f64(l.remaining_s * k as f64);
                (finish, inst, l.started)
            })
            .collect();
        for (finish, inst, started) in pending {
            self.events.push(
                finish,
                Event::LoadDone {
                    inst,
                    elapsed: finish.since(started),
                    epoch,
                },
            );
        }
    }

    /// Removes a (possibly absent) in-flight contended load, speeding the
    /// survivors back up. Used when a loading instance is unloaded (drain)
    /// or preempted before its cold start finished.
    fn cancel_load(&mut self, inst: InstanceId, node_ix: usize) {
        if self.nodes[node_ix].loads.contains_key(&inst) {
            self.settle_loads(node_ix);
            self.nodes[node_ix].loads.remove(&inst);
            self.reschedule_loads(node_ix);
        }
    }

    /// Validates a `LoadDone` event against the loading channel. Returns
    /// the load's true elapsed duration, or `None` for a stale event (the
    /// channel was rescheduled after it was pushed, or the instance is
    /// gone). Fixed-duration loads (epoch 0) pass through unchanged.
    pub(crate) fn resolve_load_done(
        &mut self,
        inst: InstanceId,
        elapsed: SimDuration,
        epoch: u64,
    ) -> Option<SimDuration> {
        if epoch == 0 {
            return Some(elapsed);
        }
        let node_ix = match self.instances.get(&inst) {
            // A peer fetch lives on the *source* node's channel.
            Some(h) => h.load_channel.unwrap_or(h.node).0 as usize,
            // The instance died (NodeFail / drain unload) with its load.
            None => return None,
        };
        if epoch != self.nodes[node_ix].load_epoch || !self.nodes[node_ix].loads.contains_key(&inst)
        {
            return None;
        }
        self.settle_loads(node_ix);
        self.nodes[node_ix].loads.remove(&inst);
        self.reschedule_loads(node_ix);
        Some(elapsed)
    }

    /// Admits a request to an instance. If the instance is still loading,
    /// the request is marked cold-start and will receive the §IX-A grace.
    ///
    /// # Panics
    /// Panics if the instance does not exist.
    pub fn admit(&mut self, inst: InstanceId, rr: RunningRequest) {
        // detlint::allow(D005, "documented # Panics contract: callers admit only to instances they just placed or looked up")
        let h = self.instances.get_mut(&inst).expect("unknown instance");
        let node = h.node;
        let group = h.slots.clone();
        h.inst.admit(rr);
        for s in group {
            self.wake.push((node, s));
        }
    }

    /// Admits a request that finished prefill elsewhere (PD disaggregation,
    /// §IX-G): it joins the decode batch directly if the KV grant holds its
    /// shipped cache. Returns false (without waking) otherwise.
    ///
    /// # Panics
    /// Panics if the instance does not exist.
    #[must_use]
    pub fn admit_decoding(&mut self, inst: InstanceId, rr: RunningRequest) -> bool {
        // detlint::allow(D005, "documented # Panics contract: PD handoff targets are validated by the policy before the ship")
        let h = self.instances.get_mut(&inst).expect("unknown instance");
        if h.inst.scaling {
            // The block array is being rebuilt; admitting now could push
            // live usage past an in-flight shrink target.
            return false;
        }
        let node = h.node;
        let group = h.slots.clone();
        if h.inst.admit_decoding(rr) {
            for s in group {
                self.wake.push((node, s));
            }
            true
        } else {
            false
        }
    }

    /// Starts an iteration on an instance, occupying its whole slot group.
    /// Returns its (noisy) duration, or [`StartError::GroupBusy`] if
    /// another slot of a tensor-parallel group is still running.
    ///
    /// # Panics
    /// Panics if the instance has no such work or is loading/scaling.
    pub fn start_iteration(
        &mut self,
        inst: InstanceId,
        kind: IterationKind,
    ) -> Result<SimDuration, StartError> {
        // detlint::allow(D005, "documented # Panics contract: iteration starts name instances the caller holds")
        let (node, _) = self.instance_placement(inst).expect("unknown instance");
        if self.instance_group_busy(inst) {
            return Err(StartError::GroupBusy);
        }
        let share = self.instance_share(inst);
        let hw = self.nodes[node.0 as usize].hw.clone();
        // Session KV migration pre-pass: if the prefill about to start is a
        // follow-up turn whose parked KV sits on a *different* instance and
        // migration is on, pull the entry over before `begin_prefill` runs so
        // the cached prefix is discounted here too. Runs entirely before the
        // mutable borrow of the target instance below.
        let mut migrated: Option<(u64, u32)> = None;
        if self.cfg.sessions.enabled && self.cfg.sessions.migrate_kv {
            if let IterationKind::Prefill(req) = kind {
                if let Some(tag) = self.instances[&inst].inst.queued_session(req) {
                    if tag.is_followup() && !self.instances[&inst].inst.has_session(tag.id) {
                        if let Some(&home) = self.session_home.get(&tag.id) {
                            if home != inst {
                                if let Some(tokens) = self
                                    .instances
                                    .get_mut(&home)
                                    .and_then(|hh| hh.inst.evict_session(tag.id))
                                {
                                    migrated = Some((tag.id, tokens));
                                }
                            }
                        }
                    }
                }
            }
        }
        // detlint::allow(D005, "same instance re-fetched after the immutable borrows above released; nothing removed it in between")
        let h = self.instances.get_mut(&inst).expect("unknown instance");
        if let Some((sid, tokens)) = migrated {
            h.inst.import_session(sid, tokens);
        }
        let tp = h.inst.tp;
        let base = match kind {
            IterationKind::Prefill(req) => {
                let ps = match h.inst.begin_prefill(req) {
                    Some(ps) => ps,
                    None => return Err(StartError::KvExhausted(req)),
                };
                let mut base =
                    self.perf
                        .prefill_time_tp(&h.inst.spec, &hw, ps.compute_tokens, share, tp);
                if ps.cached_tokens > 0 {
                    self.metrics.record_mut(req).prefix_cached = ps.cached_tokens;
                    match migrated {
                        // A migrated prefix pays fabric transfer time instead
                        // of the prefill tail it skipped.
                        Some((_, tokens)) => {
                            let bytes = tokens as u64 * h.inst.spec.kv_bytes_per_token();
                            self.metrics.kv_migrations += 1;
                            self.metrics.kv_migration_bytes += bytes;
                            base += bytes as f64 / (self.cfg.kv_transfer_gbps * 1e9);
                        }
                        None => self.metrics.prefix_hit_tokens += ps.cached_tokens as u64,
                    }
                }
                base
            }
            IterationKind::Decode => {
                let (bs, ctx) = h.inst.begin_decode();
                self.perf
                    .decode_time_tp(&h.inst.spec, &hw, bs, ctx, share, tp)
            }
        };
        let dur = SimDuration::from_secs_f64(self.cfg.noise.apply(base, &mut self.rng));
        let group = self.instances[&inst].slots.clone();
        for &s in &group {
            self.nodes[node.0 as usize].slot_busy[s] = true;
        }
        self.events.push(
            self.clock + dur,
            Event::IterationDone {
                inst,
                kind,
                elapsed: dur,
            },
        );
        Ok(dur)
    }

    /// Issues a KV rescale to `to_bytes`. Scale-ups commit the delta
    /// immediately (the new blocks are allocated up front); scale-downs
    /// release their delta only on completion — the asymmetry behind the
    /// §VII-C hazard.
    pub fn start_kv_scale(&mut self, inst: InstanceId, to_bytes: u64) -> Result<(), MemError> {
        // detlint::allow(D005, "documented # Panics contract: rescales name instances the policy holds")
        let (node, _) = self.instance_placement(inst).expect("unknown instance");
        let h = &self.instances[&inst];
        assert!(!h.inst.scaling, "rescale already in flight");
        assert!(!h.inst.busy, "cannot rescale mid-iteration");
        let from_bytes = h.inst.kv_capacity_bytes();
        if to_bytes == from_bytes {
            return Ok(());
        }
        if to_bytes < from_bytes && h.inst.kv_used_bytes() > to_bytes {
            // Parked session KV is reclaimable under capacity pressure: try
            // shedding idle sessions (coldest first) before refusing the
            // shrink on behalf of the truly live set.
            // detlint::allow(D005, "same instance re-fetched mutably; nothing removed it in between")
            let h = self.instances.get_mut(&inst).expect("unknown instance");
            h.inst.evict_sessions_to_fit(to_bytes);
            if h.inst.kv_used_bytes() > to_bytes {
                return Err(MemError::BelowLiveSet);
            }
        }
        let h = &self.instances[&inst];
        if to_bytes > from_bytes {
            let delta = to_bytes - from_bytes;
            let available = self.node_available_bytes(node);
            if delta > available {
                self.metrics.oom_incidents += 1;
                return Err(MemError::WouldOom {
                    node,
                    needed: delta,
                    available,
                });
            }
            self.nodes[node.0 as usize].committed += delta;
        }
        let hw = self.nodes[node.0 as usize].hw.clone();
        let used = h.inst.kv_used_bytes();
        let base = self.perf.kv_scale_time(&hw, from_bytes, to_bytes, used);
        let dur = SimDuration::from_secs_f64(self.cfg.noise.apply(base, &mut self.rng));
        // detlint::allow(D005, "same instance re-fetched mutably after the perf-model reads; nothing removed it in between")
        let h = self.instances.get_mut(&inst).expect("unknown instance");
        h.inst.scaling = true;
        self.events.push(
            self.clock + dur,
            Event::ScaleDone {
                inst,
                from_bytes,
                to_bytes,
                elapsed: dur,
            },
        );
        Ok(())
    }

    /// Unloads an idle instance, releasing its committed memory.
    ///
    /// # Panics
    /// Panics if the instance still has live requests, is mid-iteration, or
    /// is mid-rescale.
    pub fn unload_instance(&mut self, inst: InstanceId) {
        // detlint::allow(D005, "documented # Panics contract: unloads name instances the policy holds")
        let h = self.instances.remove(&inst).expect("unknown instance");
        assert!(
            !h.inst.has_live_requests() && !h.inst.busy && !h.inst.scaling,
            "unloading a non-idle instance"
        );
        self.index.remove(
            inst,
            h.node.0 as usize,
            &h.slots,
            h.inst.model.0 as usize,
            self.nodes[h.node.0 as usize].hw.kind,
        );
        let freed = h.inst.spec.weights_bytes() + h.inst.kv_capacity_bytes();
        // A still-loading instance leaves the shared loading channel, and
        // any co-loading survivors speed back up. A peer fetch lives on
        // the *source* node's channel.
        let channel = h.load_channel.unwrap_or(h.node);
        self.cancel_load(inst, channel.0 as usize);
        if self.cfg.dist.enabled() {
            // Drop any arriving marker. The tier entry stays: the store
            // keeps admitted-but-cancelled checkpoints (PR 5 semantics),
            // so the directory keeps reporting the copy too.
            self.dir.mark_ready(h.inst.model, h.node);
        }
        let node = &mut self.nodes[h.node.0 as usize];
        node.committed = node.committed.saturating_sub(freed);
        self.metrics.instance_lifetime_s += self.clock.since(h.inst.created_at).as_secs_f64();
        // Unloading discards the instance's parked session KV with it.
        if self.cfg.sessions.enabled {
            for sid in h.inst.session_ids() {
                if self.session_home.get(&sid) == Some(&inst) {
                    self.session_home.remove(&sid);
                }
            }
        }
        for &s in &h.slots {
            self.wake.push((h.node, s));
        }
    }

    /// Schedules a policy timer.
    pub fn set_timer(&mut self, delay: SimDuration, payload: u64) {
        self.events.push(self.clock + delay, Event::Timer(payload));
    }

    /// Schedules the keep-alive check for an instance that just went idle.
    /// Driver and policies call this after observing `idle_since` change.
    pub fn schedule_keepalive(&mut self, inst: InstanceId) {
        if let Some(h) = self.instances.get(&inst) {
            if let Some(marker) = h.inst.idle_since {
                self.events.push(
                    marker + self.cfg.keep_alive,
                    Event::KeepAlive { inst, marker },
                );
            }
        }
    }

    /// Drops a request the policy gave up on (queue timeout): records it and
    /// resolves it.
    pub fn drop_request(&mut self, rr: &RunningRequest) {
        let rec = self.metrics.record_mut(rr.req.id);
        if !rec.dropped && rec.completed.is_none() {
            rec.dropped = true;
            self.metrics.dropped += 1;
            self.outstanding = self.outstanding.saturating_sub(1);
        }
    }

    /// Records a preemption (for the consolidator's accounting).
    pub fn note_preemption(&mut self) {
        self.metrics.preemptions += 1;
    }

    /// Records `n` request migrations and stamps their records.
    pub fn note_migration(&mut self, ids: &[RequestId]) {
        self.metrics.migrations += ids.len() as u64;
        for &id in ids {
            self.metrics.record_mut(id).migrations += 1;
        }
    }

    /// Records a shadow validation (accepted or rejected).
    pub fn note_shadow_validation(&mut self) {
        self.metrics.shadow_validations += 1;
    }

    /// Marks the record of a cold-start-triggering request.
    pub fn note_cold_start_request(&mut self, id: RequestId) {
        self.metrics.record_mut(id).cold_start = true;
    }

    // ------------------------------------------------------------------
    // Session affinity (multi-turn prefix reuse)
    // ------------------------------------------------------------------

    /// Where a follow-up turn's parked prefix KV lives, if the session
    /// subsystem is on and the home instance is still worth sticking to.
    ///
    /// Policies call this *before* their normal placement scan and treat a
    /// `Some` as a preferred candidate (still subject to their own admission
    /// checks). Returns `None` — fall back to normal placement — when
    /// sessions are off, stickiness is zero, the request is not a follow-up
    /// turn, the home has unloaded or shed the session's KV, the home's node
    /// is unschedulable, or the home is already loaded past the
    /// stickiness-scaled in-flight cap ([`SessionConfig::stickiness`]).
    pub fn session_affinity_target(&self, req: &Request) -> Option<InstanceId> {
        let sc = &self.cfg.sessions;
        if !sc.enabled || sc.stickiness <= 0.0 || !req.session.is_followup() {
            return None;
        }
        let home = *self.session_home.get(&req.session.id)?;
        let h = self.instances.get(&home)?;
        if h.inst.model != req.model || !h.inst.has_session(req.session.id) {
            return None;
        }
        if !self.node_schedulable(h.node) {
            return None;
        }
        let cap = ((sc.stickiness * sc.affinity_max_inflight as f64).floor() as u32).max(1);
        if h.inst.live_count() >= cap {
            return None;
        }
        Some(home)
    }

    /// Records where a finished session turn parked its KV. The driver calls
    /// this when a request completes, before the policy's `on_request_done`
    /// hook, so the next turn's affinity lookup sees the fresh home.
    pub(crate) fn note_request_parked(&mut self, inst: InstanceId, rr: &RunningRequest) {
        if !self.cfg.sessions.enabled || !rr.req.session.is_session() {
            return;
        }
        let parked = self
            .instances
            .get(&inst)
            .is_some_and(|h| h.inst.has_session(rr.req.session.id));
        if parked {
            self.session_home.insert(rr.req.session.id, inst);
        }
    }

    // ------------------------------------------------------------------
    // Cluster lifecycle (drain / fail / join)
    // ------------------------------------------------------------------

    /// Schedules a cluster-lifecycle event at absolute simulated time `at`.
    /// [`crate::scenario::Scenario`] uses this for its environment axis;
    /// tests may call it directly before `Simulation::run`.
    pub fn push_cluster_event(&mut self, at: SimTime, ev: ClusterEvent) {
        self.events.push(at, Event::Cluster(ev));
    }

    /// Applies a lifecycle event and returns the requests it displaced
    /// (drained from unloaded instances, or surviving a node failure). The
    /// driver hands these to [`crate::policy::Policy::on_node_event`] for
    /// re-placement; each displaced request restarts as a migration
    /// (it re-prefills its full context elsewhere).
    pub(crate) fn apply_cluster_event(&mut self, ev: &ClusterEvent) -> Vec<RunningRequest> {
        match ev {
            ClusterEvent::NodeDrain(node) => {
                if self.nodes[node.0 as usize].health == NodeHealth::Up {
                    self.nodes[node.0 as usize].health = NodeHealth::Draining;
                    self.metrics.node_drains += 1;
                }
                self.drain_idle_instances(*node)
            }
            ClusterEvent::NodeFail(node) => {
                if self.nodes[node.0 as usize].health != NodeHealth::Down {
                    self.nodes[node.0 as usize].health = NodeHealth::Down;
                    self.metrics.node_failures += 1;
                }
                // Fabric transfers streaming *out* of this node (peer
                // fetches whose destination survives) must be rerouted
                // before the channel dies: settle them and remember how
                // much of each stream is left.
                let mut rerouted: Vec<(InstanceId, f64, f64, SimTime)> = Vec::new();
                if self.cfg.dist.enabled() {
                    self.settle_loads(node.0 as usize);
                    for (&id, l) in &self.nodes[node.0 as usize].loads {
                        if let Some(h) = self.instances.get(&id) {
                            if h.node != *node {
                                rerouted.push((id, l.remaining_s, l.work_s, l.started));
                            }
                        }
                    }
                }
                let n = &mut self.nodes[node.0 as usize];
                n.committed = 0;
                for b in &mut n.slot_busy {
                    *b = false;
                }
                // The checkpoint cache dies with the host (DRAM is gone and
                // the disk never rejoins the fleet), and so do in-flight
                // loads — their LoadDone events go stale with the entries.
                n.store.clear();
                n.loads.clear();
                self.dir.clear_node(*node);
                // Everything hosted is gone; salvage the request states.
                let lost: Vec<InstanceId> = self.instances_on_node(*node);
                let now = self.clock;
                let mut displaced = Vec::new();
                for inst in lost {
                    // detlint::allow(D005, "`lost` was enumerated from this map in this match arm; no removal happens in between")
                    let mut h = self.instances.remove(&inst).expect("listed");
                    // A cold start streaming *into* this node over a
                    // surviving peer's channel leaves that channel, so the
                    // survivors there speed back up.
                    if let Some(ch) = h.load_channel {
                        if ch != *node {
                            self.cancel_load(inst, ch.0 as usize);
                        }
                    }
                    self.index.remove(
                        inst,
                        h.node.0 as usize,
                        &h.slots,
                        h.inst.model.0 as usize,
                        self.nodes[h.node.0 as usize].hw.kind,
                    );
                    let moved = h.inst.drain_for_preemption(now);
                    let ids: Vec<RequestId> = moved.iter().map(|r| r.req.id).collect();
                    self.note_migration(&ids);
                    self.metrics.instance_lifetime_s += now.since(h.inst.created_at).as_secs_f64();
                    displaced.extend(moved);
                }
                for (id, rem, work, started) in rerouted {
                    self.reroute_transfer(id, rem, work, started);
                    self.metrics.transfer_reroutes += 1;
                }
                displaced
            }
            ClusterEvent::NodeJoin(spec) => {
                // detlint::allow(D005, "scenario precondition: a NodeJoin event carrying a malformed spec is a bug in the experiment definition")
                spec.validate().expect("invalid joining node");
                self.nodes.push(NodeState::new(spec));
                self.index.add_node(spec.slot_shares.len());
                self.metrics.node_joins += 1;
                Vec::new()
            }
        }
    }

    /// Unloads every instance on `node` that is not mid-iteration or
    /// mid-rescale, returning the requests they were holding. Used when a
    /// drain starts and again by the driver as busy instances finish their
    /// in-flight iterations on a draining node.
    pub(crate) fn drain_idle_instances(&mut self, node: NodeId) -> Vec<RunningRequest> {
        if self.nodes[node.0 as usize].health != NodeHealth::Draining {
            return Vec::new();
        }
        let now = self.clock;
        let mut displaced = Vec::new();
        for inst in self.instances_on_node(node) {
            // detlint::allow(D005, "instances_on_node reads the same map; nothing is removed between the index read and this fetch")
            let h = self.instances.get_mut(&inst).expect("listed");
            if h.inst.busy || h.inst.scaling {
                continue; // swept up when the iteration/rescale completes
            }
            let moved = h.inst.drain_for_preemption(now);
            let ids: Vec<RequestId> = moved.iter().map(|r| r.req.id).collect();
            self.note_migration(&ids);
            displaced.extend(moved);
            self.unload_instance(inst);
        }
        displaced
    }

    // ------------------------------------------------------------------
    // Driver support
    // ------------------------------------------------------------------

    pub(crate) fn release_slot(&mut self, inst: InstanceId) {
        if let Some(h) = self.instances.get(&inst) {
            let node = h.node;
            let group = h.slots.clone();
            for &s in &group {
                self.nodes[node.0 as usize].slot_busy[s] = false;
                self.wake.push((node, s));
            }
        }
    }

    pub(crate) fn apply_scale_done(
        &mut self,
        inst: InstanceId,
        from_bytes: u64,
        to_bytes: u64,
        elapsed: SimDuration,
    ) {
        let h = match self.instances.get_mut(&inst) {
            Some(h) => h,
            None => return,
        };
        h.inst.scaling = false;
        // Live usage may legitimately have grown since the shrink was
        // planned (e.g. a PD handoff raced the issue); clamp the target so
        // the resize never cuts under the live block set.
        let final_to = if to_bytes < from_bytes {
            to_bytes.max(h.inst.kv_used_bytes()).min(from_bytes)
        } else {
            to_bytes
        };
        let ok = h.inst.apply_kv_resize(final_to, elapsed);
        debug_assert!(ok, "resize below live set slipped through");
        let node = h.node;
        let group = h.slots.clone();
        if final_to < from_bytes {
            let delta = from_bytes - final_to;
            let n = &mut self.nodes[node.0 as usize];
            n.committed = n.committed.saturating_sub(delta);
        }
        self.metrics.scale_ops += 1;
        self.metrics.scale_blocked_s += elapsed.as_secs_f64();
        for s in group {
            self.wake.push((node, s));
        }
    }

    pub(crate) fn apply_load_done(&mut self, inst: InstanceId, elapsed: SimDuration) {
        let now = self.clock;
        let mut graced: Vec<(RequestId, SimDuration)> = Vec::new();
        if let Some(h) = self.instances.get(&inst) {
            let (model, node, fabric, tier) = (h.inst.model, h.node, h.fabric, h.load_tier);
            if fabric {
                self.metrics.peer_fetch_seconds += elapsed.as_secs_f64();
            } else {
                self.metrics.cold_tier_seconds[tier.index()] += elapsed.as_secs_f64();
            }
            if self.cfg.dist.enabled() {
                self.dir.mark_ready(model, node);
            }
            if self.cfg.record_activations {
                self.metrics.activations.push((model, now.as_secs_f64()));
            }
        }
        if let Some(h) = self.instances.get_mut(&inst) {
            h.inst.activate(now);
            for r in h.inst.requests_mut() {
                if r.grace.is_zero() {
                    r.grace = elapsed;
                    graced.push((r.req.id, elapsed));
                }
            }
            let node = h.node;
            let group = h.slots.clone();
            for s in group {
                self.wake.push((node, s));
            }
        }
        for (id, grace) in graced {
            let rec = self.metrics.record_mut(id);
            rec.grace = grace;
            rec.cold_start = true;
        }
    }

    /// Samples occupancy and per-instance gauges.
    pub(crate) fn take_sample(&mut self) {
        let t = self.clock.as_secs_f64();
        // Maintained on every instance create/unload, so sampling is O(1)
        // in fleet size instead of an O(nodes × instances) residency scan.
        let cpu_used = self.index.used_cpu_nodes;
        let gpu_used = self.index.used_gpu_nodes;
        self.metrics.sample_usage(t, cpu_used, gpu_used);
        for h in self.instances.values() {
            if h.inst.state != InstanceState::Active {
                continue;
            }
            if h.inst.has_live_requests() {
                let used = h.inst.spec.weights_bytes() + h.inst.kv_used_bytes();
                let util = used as f64 / h.inst.footprint_bytes().max(1) as f64;
                match self.nodes[h.node.0 as usize].hw.kind {
                    HardwareKind::Gpu => self.metrics.mem_util_gpu.add(util),
                    _ => self.metrics.mem_util_cpu.add(util),
                }
                let bs = h.inst.batch_size();
                if bs > 0 {
                    self.metrics.batch_sizes.add(bs as f64);
                    if self.nodes[h.node.0 as usize].hw.kind == HardwareKind::Gpu {
                        self.metrics.batch_sizes_gpu.add(bs as f64);
                    }
                }
                self.metrics.kv_util.add(h.inst.kv_utilization());
            }
        }
    }

    pub(crate) fn count_decode_tokens(&mut self, inst: InstanceId, tokens: u64) {
        if let Some(h) = self.instances.get(&inst) {
            match self.nodes[h.node.0 as usize].hw.kind {
                HardwareKind::Gpu => self.metrics.gpu_decode_tokens += tokens,
                _ => self.metrics.cpu_decode_tokens += tokens,
            }
        }
    }

    /// Adds remaining instance lifetimes at end of run.
    pub(crate) fn finalize_lifetimes(&mut self) {
        let now = self.clock;
        let total: f64 = self
            .instances
            .values()
            .map(|h| now.since(h.inst.created_at).as_secs_f64())
            .sum();
        self.metrics.instance_lifetime_s += total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::ClusterSpec;

    const GB: u64 = 1_000_000_000;

    fn tiered_world(nodes: ClusterSpec, models: Vec<ModelSpec>) -> World {
        let cfg = WorldConfig {
            noise: NoiseModel::off(),
            checkpoints: CheckpointConfig::tiered(30 * GB, Some(100 * GB)),
            ..WorldConfig::default()
        };
        World::new(&nodes, models, cfg)
    }

    #[test]
    fn node_fail_drops_cache_and_inflight_loads() {
        let mut w = tiered_world(
            ClusterSpec::heterogeneous(0, 2),
            vec![ModelSpec::llama2_7b()],
        );
        w.create_instance(ModelId(0), NodeId(0), 0, 4 * GB)
            .expect("fits");
        assert_eq!(w.checkpoint_dram_models(NodeId(0)), vec![ModelId(0)]);
        assert_eq!(w.checkpoint_ssd_models(NodeId(0)), vec![ModelId(0)]);
        assert_eq!(w.loads_in_flight(NodeId(0)), 1);
        let displaced = w.apply_cluster_event(&ClusterEvent::NodeFail(NodeId(0)));
        assert!(displaced.is_empty(), "nothing admitted yet");
        // DRAM died with the host; the disk never rejoins the fleet.
        assert!(w.checkpoint_dram_models(NodeId(0)).is_empty());
        assert!(w.checkpoint_ssd_models(NodeId(0)).is_empty());
        assert_eq!(w.loads_in_flight(NodeId(0)), 0);
        assert_eq!(
            w.checkpoint_tier(ModelId(0), NodeId(0)),
            CheckpointTier::Remote
        );
        // The untouched node is still cold too — caches are per-node.
        assert_eq!(
            w.checkpoint_tier(ModelId(0), NodeId(1)),
            CheckpointTier::Remote
        );
    }

    #[test]
    fn node_drain_preserves_cache() {
        let mut w = tiered_world(
            ClusterSpec::heterogeneous(0, 1),
            vec![ModelSpec::llama2_7b()],
        );
        w.create_instance(ModelId(0), NodeId(0), 0, 4 * GB)
            .expect("fits");
        let _ = w.apply_cluster_event(&ClusterEvent::NodeDrain(NodeId(0)));
        // A drained node keeps its warm tiers: if it rejoins the
        // schedulable set, the checkpoint is still DRAM-local.
        assert_eq!(w.checkpoint_dram_models(NodeId(0)), vec![ModelId(0)]);
        assert_eq!(
            w.checkpoint_tier(ModelId(0), NodeId(0)),
            CheckpointTier::Dram
        );
    }

    fn session_world(sessions: SessionConfig, gpu_nodes: usize) -> World {
        let cfg = WorldConfig {
            noise: NoiseModel::off(),
            sessions,
            ..WorldConfig::default()
        };
        World::new(
            &ClusterSpec::heterogeneous(0, gpu_nodes),
            vec![ModelSpec::llama2_7b()],
            cfg,
        )
    }

    fn session_req(id: u64, turn: u32) -> Request {
        use workload::request::SessionTag;
        Request {
            id: RequestId(id),
            model: ModelId(0),
            arrival: SimTime::ZERO,
            input_len: 700,
            output_len: 8,
            class: SloClass::default(),
            session: SessionTag::new(7, turn),
        }
    }

    #[test]
    fn session_kv_migrates_to_the_landing_instance() {
        let mut w = session_world(SessionConfig::reuse(1.0), 2);
        let a = w
            .create_instance(ModelId(0), NodeId(0), 0, 4 * GB)
            .expect("fits");
        let b = w
            .create_instance(ModelId(0), NodeId(1), 0, 4 * GB)
            .expect("fits");
        w.instance_mut(a).unwrap().activate(SimTime::ZERO);
        w.instance_mut(b).unwrap().activate(SimTime::ZERO);
        // Turn 0 parked 600 prefix tokens on `a`; turn 1 lands on `b`.
        w.instance_mut(a).unwrap().import_session(7, 600);
        w.session_home.insert(7, a);
        let req = session_req(0, 1);
        w.metrics = RunMetrics::for_trace(std::slice::from_ref(&req));
        w.admit(b, RunningRequest::new(req));
        w.start_iteration(b, IterationKind::Prefill(RequestId(0)))
            .expect("starts");
        let bytes = 600 * w.model_spec(ModelId(0)).kv_bytes_per_token();
        assert_eq!(w.metrics.kv_migrations, 1);
        assert_eq!(w.metrics.kv_migration_bytes, bytes);
        assert_eq!(
            w.metrics.prefix_hit_tokens, 0,
            "migrated tokens are transfers, not local hits"
        );
        assert_eq!(w.metrics.record_mut(RequestId(0)).prefix_cached, 600);
        assert!(
            !w.instance(a).unwrap().has_session(7),
            "the parked copy moved to the landing instance"
        );
    }

    #[test]
    fn affinity_target_respects_turn_stickiness_and_load() {
        let sessions = SessionConfig {
            affinity_max_inflight: 4, // cap = floor(0.5 * 4) = 2
            ..SessionConfig::reuse(0.5)
        };
        let mut w = session_world(sessions, 1);
        let a = w
            .create_instance(ModelId(0), NodeId(0), 0, 4 * GB)
            .expect("fits");
        w.instance_mut(a).unwrap().activate(SimTime::ZERO);
        w.instance_mut(a).unwrap().import_session(7, 100);
        w.session_home.insert(7, a);
        // Opener turns never stick; follow-up turns do.
        assert_eq!(w.session_affinity_target(&session_req(0, 0)), None);
        assert_eq!(w.session_affinity_target(&session_req(0, 1)), Some(a));
        // The stickiness-scaled in-flight cap closes the door at 2 live.
        w.admit(a, RunningRequest::new(session_req(1, 1)));
        assert_eq!(w.session_affinity_target(&session_req(0, 1)), Some(a));
        w.admit(a, RunningRequest::new(session_req(2, 1)));
        assert_eq!(w.session_affinity_target(&session_req(0, 1)), None);
    }

    #[test]
    fn unload_clears_the_session_home_directory() {
        let mut w = session_world(SessionConfig::reuse(1.0), 1);
        let a = w
            .create_instance(ModelId(0), NodeId(0), 0, 4 * GB)
            .expect("fits");
        w.instance_mut(a).unwrap().activate(SimTime::ZERO);
        w.instance_mut(a).unwrap().import_session(7, 100);
        w.session_home.insert(7, a);
        w.unload_instance(a);
        assert!(
            w.session_home.is_empty(),
            "unload retires the home directory entries it hosted"
        );
        assert_eq!(w.session_affinity_target(&session_req(0, 1)), None);
    }

    #[test]
    fn tp_group_is_one_load_on_the_channel() {
        // A TP=2 instance loads its shards as ONE aggregate stream — it
        // must never count as `tp` separate contenders on the channel.
        let nodes = ClusterSpec {
            nodes: vec![NodeSpec::multi_accel(HardwareSpec::a100_80g(), 4)],
        };
        let tp_model = ModelSpec::llama2_13b().with_tp(2);
        let mut w = tiered_world(nodes, vec![tp_model, ModelSpec::llama2_7b()]);
        w.create_instance_group(ModelId(0), NodeId(0), &[0, 1], 8 * GB)
            .expect("fits");
        assert_eq!(w.loads_in_flight(NodeId(0)), 1);
        // A second model's estimate sees exactly 2-way contention (itself
        // plus the TP group), not 1 + tp.
        let est = w.estimate_load_s(ModelId(1), NodeId(0));
        let gang = w.node_hw(NodeId(0)).clone();
        let alone = w
            .perf()
            .load_time(w.model_spec(ModelId(1)), &gang, CheckpointTier::Remote, 1);
        assert!(
            (est - 2.0 * alone).abs() / (2.0 * alone) < 1e-9,
            "estimate {est} vs 2x uncontended {alone}"
        );
    }

    #[test]
    fn estimate_tracks_warmest_tier() {
        let mut w = tiered_world(
            ClusterSpec::heterogeneous(0, 1),
            vec![ModelSpec::llama2_7b(), ModelSpec::llama2_7b().replica(1)],
        );
        let spec = w.model_spec(ModelId(0)).clone();
        let hw = w.node_hw(NodeId(0)).clone();
        let remote = w.perf().load_time(&spec, &hw, CheckpointTier::Remote, 1);
        let dram = w.perf().load_time(&spec, &hw, CheckpointTier::Dram, 1);
        assert_eq!(w.estimate_load_s(ModelId(0), NodeId(0)), remote);
        // Loading the checkpoint promotes it: estimates now price a DRAM
        // hit — but with the load still in flight, a newcomer would share
        // the channel 2-ways.
        let inst = w
            .create_instance(ModelId(0), NodeId(0), 0, 4 * GB)
            .expect("fits");
        assert_eq!(w.estimate_load_s(ModelId(0), NodeId(0)), 2.0 * dram);
        // Once the channel clears the estimate is the plain DRAM hit.
        w.unload_instance(inst);
        assert_eq!(w.estimate_load_s(ModelId(0), NodeId(0)), dram);
        assert_eq!(w.loads_in_flight(NodeId(0)), 0);
    }

    /// Rebuilds every index list by brute force over the instance map and
    /// asserts the incrementally maintained `InstanceIndex` matches.
    fn assert_index_consistent(w: &World) {
        for (i, n) in w.nodes.iter().enumerate() {
            let node = NodeId(i as u32);
            let expect_node: Vec<InstanceId> = w
                .instances
                .iter()
                .filter(|(_, h)| h.node == node)
                .map(|(&id, _)| id)
                .collect();
            assert_eq!(w.node_instances(node), expect_node, "node {i} list");
            for s in 0..n.slot_shares.len() {
                let expect_slot: Vec<InstanceId> = w
                    .instances
                    .iter()
                    .filter(|(_, h)| h.node == node && h.slots.contains(&s))
                    .map(|(&id, _)| id)
                    .collect();
                assert_eq!(w.slot_instances(node, s), expect_slot, "node {i} slot {s}");
            }
        }
        for m in 0..w.model_count() {
            let model = ModelId(m as u32);
            let expect: Vec<InstanceId> = w
                .instances
                .iter()
                .filter(|(_, h)| h.inst.model == model)
                .map(|(&id, _)| id)
                .collect();
            assert_eq!(w.model_instances(model), expect, "model {m} list");
        }
        let (mut cpu, mut gpu) = (0u32, 0u32);
        for (i, n) in w.nodes.iter().enumerate() {
            if w.instances.values().any(|h| h.node == NodeId(i as u32)) {
                match n.hw.kind {
                    HardwareKind::Gpu => gpu += 1,
                    _ => cpu += 1,
                }
            }
        }
        assert_eq!((w.index.used_cpu_nodes, w.index.used_gpu_nodes), (cpu, gpu));
    }

    /// The instance index must track the brute-force definition through
    /// every mutation path: create (plain and TP group), unload, node
    /// failure (bulk removal), node join (fresh lists), and re-creation.
    #[test]
    fn instance_index_matches_brute_force() {
        let nodes = ClusterSpec {
            nodes: vec![
                NodeSpec::multi_accel(HardwareSpec::a100_80g(), 4),
                NodeSpec::multi_accel(HardwareSpec::a100_80g(), 2),
            ],
        };
        let tp_model = ModelSpec::llama2_13b().with_tp(2);
        let mut w = tiered_world(nodes, vec![tp_model, ModelSpec::llama2_7b()]);
        assert_index_consistent(&w);

        let a = w
            .create_instance_group(ModelId(0), NodeId(0), &[0, 1], 4 * GB)
            .expect("fits");
        let b = w
            .create_instance(ModelId(1), NodeId(0), 2, GB)
            .expect("fits");
        let c = w
            .create_instance(ModelId(1), NodeId(1), 0, GB)
            .expect("fits");
        assert_index_consistent(&w);
        assert_eq!(w.instances_on_node(NodeId(0)), vec![a, b]);
        assert_eq!(w.instances_on_slot(NodeId(0), 1), vec![a]);
        assert_eq!(w.instances_of_model(ModelId(1)), vec![b, c]);

        w.unload_instance(b);
        assert_index_consistent(&w);

        // Node failure removes everything hosted in one sweep.
        w.apply_cluster_event(&ClusterEvent::NodeFail(NodeId(0)));
        assert_index_consistent(&w);
        assert!(w.instances_on_node(NodeId(0)).is_empty());

        // A joining node gets fresh (empty) lists and indexes new creates.
        w.apply_cluster_event(&ClusterEvent::NodeJoin(NodeSpec::multi_accel(
            HardwareSpec::a100_80g(),
            3,
        )));
        assert_index_consistent(&w);
        let d = w
            .create_instance(ModelId(1), NodeId(2), 1, GB)
            .expect("fits");
        assert_index_consistent(&w);
        assert_eq!(w.instances_on_slot(NodeId(2), 1), vec![d]);
        assert_eq!(w.instances_of_model(ModelId(1)), vec![c, d]);
    }

    #[test]
    fn flat_default_is_the_legacy_flat_loader() {
        // The default configuration must price every cold start at
        // exactly weights / load_bw — bit for bit, tier and churn blind.
        let mut w = World::new(
            &ClusterSpec::heterogeneous(1, 1),
            vec![ModelSpec::llama2_7b()],
            WorldConfig {
                noise: NoiseModel::off(),
                ..WorldConfig::default()
            },
        );
        for node in [NodeId(0), NodeId(1)] {
            let spec = w.model_spec(ModelId(0)).clone();
            let legacy = spec.weights_bytes() as f64 / (w.node_hw(node).load_bw_gbps * 1e9);
            assert_eq!(w.estimate_load_s(ModelId(0), node), legacy);
            assert_eq!(w.checkpoint_tier(ModelId(0), node), CheckpointTier::Dram);
        }
        // Cold starts never join the loading channel in flat mode.
        w.create_instance(ModelId(0), NodeId(1), 0, 4 * GB)
            .expect("fits");
        assert_eq!(w.loads_in_flight(NodeId(1)), 0);
        assert_eq!(w.metrics.cold_tier_loads, [0, 1, 0, 0]);
    }

    fn dist_world(nodes: ClusterSpec, models: Vec<ModelSpec>, dist: DistConfig) -> World {
        let cfg = WorldConfig {
            noise: NoiseModel::off(),
            checkpoints: CheckpointConfig::tiered(30 * GB, Some(100 * GB)),
            dist,
            ..WorldConfig::default()
        };
        World::new(&nodes, models, cfg)
    }

    /// Parks a warm copy of `model` in `node`'s DRAM cache: the create
    /// fetches the checkpoint, the unload cancels the in-flight load and
    /// marks the directory replica ready (the cache entry survives).
    fn warm(w: &mut World, model: ModelId, node: NodeId) {
        let inst = w.create_instance(model, node, 0, GB).expect("fits");
        w.unload_instance(inst);
    }

    #[test]
    fn peer_fetch_prices_fabric_and_joins_source_channel() {
        let mut w = dist_world(
            ClusterSpec::heterogeneous(0, 2),
            vec![ModelSpec::llama2_7b()],
            DistConfig::peer(),
        );
        warm(&mut w, ModelId(0), NodeId(0));
        assert_eq!(w.loads_in_flight(NodeId(0)), 0);

        let spec = w.model_spec(ModelId(0)).clone();
        let dest = w.node_hw(NodeId(1)).clone();
        let src = w.node_hw(NodeId(0)).clone();
        let rate = dest
            .fabric_bw_gbps
            .min(src.tier_bw_gbps(CheckpointTier::Dram));
        let fabric = spec.weights_bytes() as f64 / (rate * 1e9) + dest.fabric_latency_s;
        let remote = w.perf().load_time(&spec, &dest, CheckpointTier::Remote, 1);
        assert!(fabric < remote, "fabric {fabric} must beat remote {remote}");
        assert_eq!(w.estimate_load_s(ModelId(0), NodeId(1)), fabric);

        w.create_instance(ModelId(0), NodeId(1), 0, GB)
            .expect("fits");
        // The transfer rides the *source* node's loading channel.
        assert_eq!(w.loads_in_flight(NodeId(0)), 1);
        assert_eq!(w.loads_in_flight(NodeId(1)), 0);
        assert_eq!(w.metrics.cold_starts, 2);
        assert_eq!(w.metrics.peer_fetches, 1);
        assert_eq!(w.metrics.multicast_relays, 0);
        // The fabric admit lands in DRAM with no SSD write-through.
        assert_eq!(w.checkpoint_dram_models(NodeId(1)), vec![ModelId(0)]);
        assert!(w.checkpoint_ssd_models(NodeId(1)).is_empty());
    }

    #[test]
    fn multicast_attaches_relays_to_arriving_copies() {
        let nodes = ClusterSpec::heterogeneous(0, 3);
        let models = vec![ModelSpec::llama2_7b()];
        // Peer-only: every scale-out streams from the ready seed, piling
        // onto its channel.
        let mut w = dist_world(nodes.clone(), models.clone(), DistConfig::peer());
        warm(&mut w, ModelId(0), NodeId(0));
        w.create_instance(ModelId(0), NodeId(1), 0, GB)
            .expect("fits");
        w.create_instance(ModelId(0), NodeId(2), 0, GB)
            .expect("fits");
        assert_eq!(w.metrics.peer_fetches, 2);
        assert_eq!(w.metrics.multicast_relays, 0);
        assert_eq!(w.loads_in_flight(NodeId(0)), 2);

        // Multicast: the second scale-out relays off node 1's still
        // arriving copy instead of doubling up on the seed's channel.
        let mut w = dist_world(nodes, models, DistConfig::full());
        warm(&mut w, ModelId(0), NodeId(0));
        w.create_instance(ModelId(0), NodeId(1), 0, GB)
            .expect("fits");
        w.create_instance(ModelId(0), NodeId(2), 0, GB)
            .expect("fits");
        assert_eq!(w.metrics.peer_fetches, 2);
        assert_eq!(w.metrics.multicast_relays, 1);
        assert_eq!(w.loads_in_flight(NodeId(0)), 1);
        assert_eq!(w.loads_in_flight(NodeId(1)), 1);
    }

    #[test]
    fn source_failure_reroutes_transfer_to_ready_replica() {
        let mut w = dist_world(
            ClusterSpec::heterogeneous(0, 3),
            vec![ModelSpec::llama2_7b()],
            DistConfig::peer(),
        );
        warm(&mut w, ModelId(0), NodeId(0));
        warm(&mut w, ModelId(0), NodeId(2));
        let inst = w
            .create_instance(ModelId(0), NodeId(1), 0, GB)
            .expect("fits");
        // Equal-cost sources tie-break toward the lower node id.
        assert_eq!(w.loads_in_flight(NodeId(0)), 1);
        w.apply_cluster_event(&ClusterEvent::NodeFail(NodeId(0)));
        // The survivor re-sources from node 2's ready copy; the instance
        // itself (on the untouched node 1) lives on.
        assert_eq!(w.metrics.transfer_reroutes, 1);
        assert_eq!(w.loads_in_flight(NodeId(2)), 1);
        assert_eq!(w.loads_in_flight(NodeId(1)), 0);
        assert!(w.instance(inst).is_some());
    }

    #[test]
    fn source_failure_falls_back_to_registry_resume() {
        let mut w = dist_world(
            ClusterSpec::heterogeneous(0, 2),
            vec![ModelSpec::llama2_7b()],
            DistConfig::peer(),
        );
        warm(&mut w, ModelId(0), NodeId(0));
        let inst = w
            .create_instance(ModelId(0), NodeId(1), 0, GB)
            .expect("fits");
        w.apply_cluster_event(&ClusterEvent::NodeFail(NodeId(0)));
        // No ready replica is left anywhere: the remainder resumes from
        // the registry over the destination's own channel.
        assert_eq!(w.metrics.transfer_reroutes, 1);
        assert_eq!(w.loads_in_flight(NodeId(1)), 1);
        assert!(w.instance(inst).is_some());
    }

    #[test]
    fn cache_aware_keepalive_defers_last_warm_copy() {
        let models = vec![ModelSpec::llama2_7b(), ModelSpec::llama2_7b().replica(1)];
        let weights = models[0].weights_bytes();
        let cfg = WorldConfig {
            noise: NoiseModel::off(),
            // DRAM holds exactly one checkpoint and there is no SSD tier:
            // eviction sends a model all the way back to the registry.
            checkpoints: CheckpointConfig::tiered(weights + GB, Some(0)),
            dist: DistConfig::full(),
            ..WorldConfig::default()
        };
        let mut w = World::new(&ClusterSpec::heterogeneous(0, 1), models, cfg);
        let a = w
            .create_instance(ModelId(0), NodeId(0), 0, GB)
            .expect("fits");
        // While the checkpoint is DRAM-cached, reclaiming is cheap: no
        // deferral.
        assert!(!w.keepalive_defer(a));
        // A second model's fetch evicts it from the one-checkpoint DRAM.
        w.create_instance(ModelId(1), NodeId(0), 0, GB)
            .expect("fits");
        assert_eq!(w.checkpoint_dram_models(NodeId(0)), vec![ModelId(1)]);
        // `a` now hosts the fleet's last warm copy: defer, up to the bound.
        assert!(w.keepalive_defer(a));
        assert!(w.keepalive_defer(a));
        assert!(w.keepalive_defer(a));
        assert!(!w.keepalive_defer(a), "defer bound reached");
    }
}
