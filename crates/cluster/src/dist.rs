//! Cross-node checkpoint distribution (λScale-style).
//!
//! PR 5's tiered store still prices every DRAM/SSD miss as a remote
//! registry fetch, but in a real fleet the checkpoint is usually sitting
//! in a *peer's* DRAM a fabric hop away. λScale (PAPERS.md) shows the
//! dominant cold-start win is exactly that peer fetch, plus multicasting
//! the checkpoint along a dynamically built tree during scale-out bursts
//! — interior nodes of the tree begin serving (and relaying) while their
//! own transfer is still in flight. jito-solana's gossip/turbine
//! broadcast stages are the working Rust reference for this kind of
//! tree-structured dissemination; here the tree is implicit: every
//! transfer picks the cheapest ready (or, under multicast, arriving)
//! source at issue time, and source-channel contention fans new readers
//! out across the fleet, which is how binomial-ish trees emerge.
//!
//! Three pieces live here:
//!
//! - [`DistConfig`] — the run-level knobs. The default ([`DistConfig::off`])
//!   disables everything and replays pre-distribution runs **byte for
//!   byte**; [`DistConfig::full`] turns on peer fetch, multicast relays,
//!   and cache-aware eviction together.
//! - [`CheckpointDirectory`] — fleet-wide replica locations per tier:
//!   which nodes hold which checkpoints, and whether each copy is ready
//!   or still arriving (an in-flight transfer that multicast relays may
//!   attach to). Maintained by [`crate::World`] alongside each node's
//!   [`crate::CheckpointStore`]; all state is ordered (BTree) so lookups
//!   are deterministic.
//! - [`TransferPlan`] — the priced decision for one cold start: serve
//!   from the local hierarchy, or stream from a peer (possibly a relay).
//!   [`crate::World::estimate_load_s`] and the create path share the same
//!   planner, so startup-time-estimated placement sees the fabric.
//!
//! # Example
//!
//! ```
//! use cluster::{DistConfig, WorldConfig};
//!
//! // Default: distribution off — bit-identical to pre-fabric runs.
//! let cfg = WorldConfig::default();
//! assert_eq!(cfg.dist, DistConfig::off());
//! assert!(!cfg.dist.enabled());
//!
//! // Flash-crowd configuration: peer fetch + multicast relay trees +
//! // cache-aware keep-alive/demotion.
//! let cfg = WorldConfig {
//!     dist: DistConfig::full(),
//!     ..WorldConfig::default()
//! };
//! assert!(cfg.dist.peer_fetch && cfg.dist.multicast && cfg.dist.cache_aware);
//!
//! // Peer fetch alone (no relay trees, plain LRU eviction).
//! let peer_only = DistConfig::peer();
//! assert!(peer_only.fetch_enabled() && !peer_only.multicast);
//! ```

use std::collections::{BTreeMap, BTreeSet};

use hwmodel::CheckpointTier;
use workload::request::ModelId;

use crate::node::NodeId;

/// Run-level configuration of cross-node checkpoint distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DistConfig {
    /// Allow cold starts to stream the checkpoint from a peer node's
    /// cache over the fabric when that beats the local hierarchy. The
    /// transfer contends on the *source* node's loading channel, sharing
    /// bandwidth with the source's own cold starts.
    pub peer_fetch: bool,
    /// Allow transfers to attach to a peer whose own copy is still
    /// *arriving* (a relay): k simultaneous creates of one model form a
    /// λScale-style dissemination tree whose interior nodes serve
    /// mid-transfer. Implies peer sourcing for the relayed hops.
    pub multicast: bool,
    /// Make eviction cache-aware: DRAM demotion victims are scored by
    /// (re-load tier if evicted, fleet replica count) instead of bare
    /// LRU, and keep-alive defers unloading the last warm copy of a
    /// checkpoint in the fleet.
    pub cache_aware: bool,
    /// How many keep-alive periods the last warm copy of a model may
    /// defer its unload (bounds the cache-aware keep-alive so an idle
    /// fleet still converges to empty). Only read when `cache_aware`.
    pub keepalive_defer_max: u32,
}

impl DistConfig {
    /// Distribution fully off — the default. Replays pre-distribution
    /// runs byte-identically: no directory is maintained, no planner
    /// runs, no extra RNG draws happen.
    pub fn off() -> Self {
        DistConfig {
            peer_fetch: false,
            multicast: false,
            cache_aware: false,
            keepalive_defer_max: 0,
        }
    }

    /// Peer-to-peer fetch only: no relay trees, plain LRU eviction.
    pub fn peer() -> Self {
        DistConfig {
            peer_fetch: true,
            ..DistConfig::off()
        }
    }

    /// Everything on: peer fetch, multicast relays, cache-aware
    /// keep-alive/demotion (up to 3 deferred keep-alive periods).
    pub fn full() -> Self {
        DistConfig {
            peer_fetch: true,
            multicast: true,
            cache_aware: true,
            keepalive_defer_max: 3,
        }
    }

    /// Any feature on (the world maintains the directory at all).
    pub fn enabled(&self) -> bool {
        self.peer_fetch || self.multicast || self.cache_aware
    }

    /// Peer sourcing on (the transfer planner runs at all).
    pub fn fetch_enabled(&self) -> bool {
        self.peer_fetch || self.multicast
    }
}

impl Default for DistConfig {
    fn default() -> Self {
        DistConfig::off()
    }
}

/// State of one fleet replica of a checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicaState {
    /// The bytes are fully resident in the holder's cache hierarchy.
    Ready,
    /// The copy is still streaming in; only multicast relays may read it.
    Arriving,
}

/// One known fleet replica of a checkpoint.
#[derive(Debug, Clone, Copy)]
pub struct Replica {
    /// Node holding (or receiving) the copy.
    pub node: NodeId,
    /// Warmest cache tier of the copy on that node (DRAM or SSD; HBM
    /// residency is derived from the live instance table, not tracked
    /// here).
    pub tier: CheckpointTier,
    /// Ready, or still arriving over the fabric/registry.
    pub state: ReplicaState,
}

/// Fleet-wide checkpoint replica locations, per model and tier.
///
/// The authoritative cache state lives in each node's
/// [`crate::CheckpointStore`]; the directory is the cluster-level view
/// the transfer planner and cache-aware eviction read. [`crate::World`]
/// refreshes a node's entries whenever its store mutates, marks
/// destinations of in-flight fabric/registry transfers as
/// [`ReplicaState::Arriving`], and drops a node's entries when it fails.
#[derive(Debug, Clone, Default)]
pub struct CheckpointDirectory {
    /// `(model, node) → warmest cached tier` for every tracked replica.
    tiers: BTreeMap<(ModelId, NodeId), CheckpointTier>,
    /// `(model, node)` pairs whose copy is still streaming in.
    arriving: BTreeSet<(ModelId, NodeId)>,
}

impl CheckpointDirectory {
    /// An empty directory.
    pub fn new() -> Self {
        CheckpointDirectory::default()
    }

    /// Replaces `node`'s tracked replicas with its current store contents
    /// (DRAM entries shadow SSD entries — the directory keeps the warmest
    /// tier). Arriving markers are managed separately and survive.
    pub fn refresh_node(&mut self, node: NodeId, dram: &[ModelId], ssd: &[ModelId]) {
        self.tiers.retain(|&(_, n), _| n != node);
        for &m in ssd {
            self.tiers.insert((m, node), CheckpointTier::Ssd);
        }
        for &m in dram {
            self.tiers.insert((m, node), CheckpointTier::Dram);
        }
    }

    /// Marks `model`'s copy on `node` as still arriving.
    pub fn mark_arriving(&mut self, model: ModelId, node: NodeId) {
        self.arriving.insert((model, node));
    }

    /// Marks `model`'s copy on `node` as fully resident.
    pub fn mark_ready(&mut self, model: ModelId, node: NodeId) {
        self.arriving.remove(&(model, node));
    }

    /// Drops every replica (ready or arriving) tracked on `node` — the
    /// `NodeFail` path.
    pub fn clear_node(&mut self, node: NodeId) {
        self.tiers.retain(|&(_, n), _| n != node);
        self.arriving.retain(|&(_, n)| n != node);
    }

    /// All tracked replicas of `model`, in node order.
    pub fn replicas(&self, model: ModelId) -> Vec<Replica> {
        self.tiers
            .range((model, NodeId(0))..=(model, NodeId(u32::MAX)))
            .map(|(&(m, node), &tier)| Replica {
                node,
                tier,
                state: if self.arriving.contains(&(m, node)) {
                    ReplicaState::Arriving
                } else {
                    ReplicaState::Ready
                },
            })
            .collect()
    }

    /// Number of *ready* fleet replicas of `model` outside `exclude`.
    pub fn ready_replicas_elsewhere(&self, model: ModelId, exclude: NodeId) -> usize {
        self.tiers
            .range((model, NodeId(0))..=(model, NodeId(u32::MAX)))
            .filter(|(&(m, node), _)| node != exclude && !self.arriving.contains(&(m, node)))
            .count()
    }

    /// Whether `model` has a ready SSD-or-warmer copy on `node`.
    pub fn holds(&self, model: ModelId, node: NodeId) -> bool {
        self.tiers.contains_key(&(model, node)) && !self.arriving.contains(&(model, node))
    }
}

/// Where one planned transfer sources its bytes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TransferSource {
    /// Serve from the destination's own hierarchy (the PR 5 path).
    Local(CheckpointTier),
    /// Stream from a peer's cache over the fabric, contending on the
    /// source node's loading channel.
    Peer {
        /// Source node.
        node: NodeId,
        /// True when the source's own copy is still arriving — this hop
        /// is a multicast relay and must wait out the tail of its
        /// parent's transfer.
        relay: bool,
    },
}

/// The priced decision for one cold-start transfer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferPlan {
    /// Chosen source.
    pub source: TransferSource,
    /// Uncontended seconds of work the transfer will occupy its loading
    /// channel with (what the in-flight load is priced from).
    pub work_s: f64,
    /// Estimated completion seconds including present channel contention
    /// (what placement scoring compares).
    pub est_s: f64,
}

/// Number of dissemination rounds a binomial multicast tree needs to
/// reach `replicas` copies from one seed: each round every holder streams
/// to one new node, doubling coverage — `ceil(log2(replicas + 1))`.
///
/// The simulator never schedules rounds explicitly (trees emerge from
/// per-transfer source selection under channel contention); this is the
/// analytic yardstick the `scale_burst` experiment reports against.
pub fn binomial_rounds(replicas: usize) -> u32 {
    let mut rounds = 0u32;
    let mut covered = 1usize;
    while covered < replicas + 1 {
        covered *= 2;
        rounds += 1;
    }
    rounds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_is_default_and_fully_disabled() {
        assert_eq!(DistConfig::default(), DistConfig::off());
        assert!(!DistConfig::off().enabled());
        assert!(DistConfig::peer().enabled() && DistConfig::peer().fetch_enabled());
        assert!(!DistConfig::peer().cache_aware);
        let full = DistConfig::full();
        assert!(full.enabled() && full.fetch_enabled() && full.cache_aware);
    }

    #[test]
    fn directory_tracks_warmest_tier_and_arrivals() {
        let mut dir = CheckpointDirectory::new();
        let (m, a, b) = (ModelId(3), NodeId(0), NodeId(1));
        dir.refresh_node(a, &[m], &[m]); // DRAM shadows SSD
        dir.refresh_node(b, &[], &[m]);
        let reps = dir.replicas(m);
        assert_eq!(reps.len(), 2);
        assert_eq!(reps[0].tier, CheckpointTier::Dram);
        assert_eq!(reps[1].tier, CheckpointTier::Ssd);
        assert!(dir.holds(m, a) && dir.holds(m, b));
        assert_eq!(dir.ready_replicas_elsewhere(m, a), 1);

        // An arriving copy is tracked but not ready.
        let c = NodeId(2);
        dir.refresh_node(c, &[m], &[]);
        dir.mark_arriving(m, c);
        assert!(!dir.holds(m, c));
        assert_eq!(dir.ready_replicas_elsewhere(m, a), 1);
        let state = dir.replicas(m).last().unwrap().state;
        assert_eq!(state, ReplicaState::Arriving);
        dir.mark_ready(m, c);
        assert!(dir.holds(m, c));

        // Refresh replaces exactly one node's entries.
        dir.refresh_node(a, &[], &[]);
        assert!(!dir.holds(m, a) && dir.holds(m, b) && dir.holds(m, c));

        // NodeFail drops ready and arriving alike.
        dir.mark_arriving(m, c);
        dir.clear_node(c);
        assert_eq!(dir.replicas(m).len(), 1);
        assert_eq!(dir.ready_replicas_elsewhere(m, NodeId(99)), 1);
    }

    #[test]
    fn directory_separates_models() {
        let mut dir = CheckpointDirectory::new();
        dir.refresh_node(NodeId(0), &[ModelId(1)], &[ModelId(2)]);
        assert_eq!(dir.replicas(ModelId(1)).len(), 1);
        assert_eq!(dir.replicas(ModelId(2)).len(), 1);
        assert!(dir.replicas(ModelId(3)).is_empty());
    }

    #[test]
    fn binomial_rounds_doubles_coverage() {
        assert_eq!(binomial_rounds(0), 0);
        assert_eq!(binomial_rounds(1), 1);
        assert_eq!(binomial_rounds(3), 2);
        assert_eq!(binomial_rounds(7), 3);
        assert_eq!(binomial_rounds(8), 4);
    }
}
