//! Node and cluster specifications.

use hwmodel::{HardwareKind, HardwareSpec};
use serde::{Deserialize, Serialize};

/// Identifies one node in the cluster.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct NodeId(pub u32);

/// Specification of one node: its hardware and the execution slots the
/// scheduler is allowed to use.
///
/// A *slot* is a compute partition that runs one iteration at a time.
/// SLINFER and the exclusive baselines use a single full-node slot; the
/// `sllm+c+s` baseline statically splits each node into two half-share slots
/// (§IX-A).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeSpec {
    /// Node hardware.
    pub hw: HardwareSpec,
    /// Compute share of each slot; must sum to ≤ 1.
    pub slot_shares: Vec<f64>,
}

impl NodeSpec {
    /// A node with a single full slot.
    pub fn whole(hw: HardwareSpec) -> Self {
        NodeSpec {
            hw,
            slot_shares: vec![1.0],
        }
    }

    /// A node statically partitioned into `n` equal slots.
    ///
    /// # Panics
    /// Panics if `n` is zero.
    pub fn split(hw: HardwareSpec, n: usize) -> Self {
        assert!(n > 0, "a node needs at least one slot");
        NodeSpec {
            hw,
            slot_shares: vec![1.0 / n as f64; n],
        }
    }

    /// A node built from `n` identical accelerators (a multi-GPU server):
    /// the aggregate hardware envelope ([`HardwareSpec::ganged`]) with one
    /// equal-share slot per device, so a tensor-parallel instance of degree
    /// `k ≤ n` can claim a `k`-slot group while single-device instances
    /// keep using one slot each.
    ///
    /// # Panics
    /// Panics if `n` is zero.
    pub fn multi_accel(hw: HardwareSpec, n: usize) -> Self {
        assert!(n > 0, "a node needs at least one accelerator");
        NodeSpec {
            hw: hw.ganged(n as u32),
            slot_shares: vec![1.0 / n as f64; n],
        }
    }

    /// Validates the slot configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.slot_shares.is_empty() {
            return Err("node has no slots".into());
        }
        let sum: f64 = self.slot_shares.iter().sum();
        if sum > 1.0 + 1e-9 {
            return Err(format!("slot shares sum to {sum} > 1"));
        }
        if self.slot_shares.iter().any(|&s| s <= 0.0) {
            return Err("slot share must be positive".into());
        }
        Ok(())
    }
}

/// The whole cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct ClusterSpec {
    /// All nodes; [`NodeId`] indexes this list.
    pub nodes: Vec<NodeSpec>,
}

impl ClusterSpec {
    /// The paper's testbed (§IX-A): 4 × 32-core AMX Xeon CPU nodes and
    /// 4 × A100-80GB GPU nodes, whole-node slots.
    pub fn paper_testbed() -> Self {
        Self::heterogeneous(4, 4)
    }

    /// `n_cpu` AMX CPU nodes followed by `n_gpu` A100 nodes (whole slots).
    pub fn heterogeneous(n_cpu: usize, n_gpu: usize) -> Self {
        let mut nodes = Vec::new();
        for _ in 0..n_cpu {
            nodes.push(NodeSpec::whole(HardwareSpec::xeon4_amx_32c()));
        }
        for _ in 0..n_gpu {
            nodes.push(NodeSpec::whole(HardwareSpec::a100_80g()));
        }
        ClusterSpec { nodes }
    }

    /// Same testbed but with every node split into two half-share slots, as
    /// configured for `sllm+c+s`. 13B-class CPU instances still take a full
    /// node in that baseline; the policy handles that by claiming both slots.
    pub fn statically_shared(n_cpu: usize, n_gpu: usize) -> Self {
        let mut spec = Self::heterogeneous(n_cpu, n_gpu);
        for node in &mut spec.nodes {
            *node = NodeSpec::split(node.hw.clone(), 2);
        }
        spec
    }

    /// Appends `count` fractional "harvested-cores" CPU nodes — `cores` of a
    /// 32-core AMX CPU carved out of GPU hosts (§IX-I3).
    pub fn with_harvested_cpus(mut self, count: usize, cores: u32) -> Self {
        if cores == 0 {
            return self;
        }
        let share = (cores as f64 / 32.0).min(1.0);
        for _ in 0..count {
            self.nodes.push(NodeSpec::whole(
                HardwareSpec::xeon4_amx_32c().fraction(share),
            ));
        }
        self
    }

    /// Number of nodes of the given kind.
    pub fn count_kind(&self, kind: HardwareKind) -> usize {
        self.nodes.iter().filter(|n| n.hw.kind == kind).count()
    }

    /// Validates every node.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes.is_empty() {
            return Err("cluster has no nodes".into());
        }
        for (i, n) in self.nodes.iter().enumerate() {
            n.validate().map_err(|e| format!("node {i}: {e}"))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_shape() {
        let c = ClusterSpec::paper_testbed();
        assert_eq!(c.nodes.len(), 8);
        assert_eq!(c.count_kind(HardwareKind::CpuAccel), 4);
        assert_eq!(c.count_kind(HardwareKind::Gpu), 4);
        assert!(c.validate().is_ok());
        assert!(c.nodes.iter().all(|n| n.slot_shares == vec![1.0]));
    }

    #[test]
    fn static_sharing_splits_slots() {
        let c = ClusterSpec::statically_shared(4, 4);
        assert!(c.validate().is_ok());
        for n in &c.nodes {
            assert_eq!(n.slot_shares, vec![0.5, 0.5]);
        }
    }

    #[test]
    fn harvested_cpus_are_fractional() {
        let c = ClusterSpec::heterogeneous(0, 4).with_harvested_cpus(4, 16);
        assert_eq!(c.nodes.len(), 8);
        let frac = &c.nodes[7].hw;
        assert_eq!(frac.kind, HardwareKind::CpuAccel);
        assert_eq!(frac.cores, 16);
        // Zero harvested cores adds nothing.
        let c0 = ClusterSpec::heterogeneous(0, 4).with_harvested_cpus(4, 0);
        assert_eq!(c0.nodes.len(), 4);
    }

    #[test]
    fn multi_accel_nodes_gang_hardware_per_slot() {
        let n = NodeSpec::multi_accel(HardwareSpec::a100_80g(), 4);
        assert!(n.validate().is_ok());
        assert_eq!(n.slot_shares, vec![0.25; 4]);
        assert_eq!(n.hw.mem_bytes, 4 * 80 * 1_000_000_000);
        // One slot's share of the gang is exactly one device.
        let one = HardwareSpec::a100_80g();
        assert!((n.hw.prefill_tflops * 0.25 - one.prefill_tflops).abs() < 1e-9);
    }

    #[test]
    fn validation_rejects_bad_slots() {
        let mut n = NodeSpec::whole(HardwareSpec::a100_80g());
        n.slot_shares = vec![0.7, 0.7];
        assert!(n.validate().is_err());
        n.slot_shares = vec![];
        assert!(n.validate().is_err());
        n.slot_shares = vec![-0.5];
        assert!(n.validate().is_err());
    }
}
