//! Run metrics: per-request SLO records plus cluster-level time series.
//!
//! Everything the paper's evaluation plots is derived from this structure:
//! SLO-met request counts and TTFT CDFs (Fig. 22), average nodes used and
//! per-node decode speed (Fig. 22), memory-utilization and batch-size CDFs
//! (Figs. 5 and 25), GPU-usage timelines (Fig. 23), scaling overhead
//! (Fig. 31), and OOM/preemption/migration counters.

use hwmodel::HardwareKind;
use serde::{Deserialize, Serialize};
use simcore::stats::{Summary, TimeWeighted};
use simcore::time::{SimDuration, SimTime};
use workload::request::{ModelId, Request, RequestId, SessionTag, Slo, SloClass};

/// Outcome record of one request.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RequestRecord {
    /// Request id (index into [`RunMetrics::records`]).
    pub id: RequestId,
    /// Model invoked.
    pub model: ModelId,
    /// Arrival time.
    pub arrival: SimTime,
    /// Prompt tokens.
    pub input_len: u32,
    /// Expected completion tokens.
    pub output_len: u32,
    /// Service class the request is held to (class 0 = run default).
    pub class: SloClass,
    /// When the first output token was produced.
    pub first_token: Option<SimTime>,
    /// When the last output token was produced.
    pub completed: Option<SimTime>,
    /// True if the system gave up on the request (queue timeout).
    pub dropped: bool,
    /// True if the first token missed the (grace-adjusted) TTFT SLO.
    pub ttft_violated: bool,
    /// True if any later token missed its TPOT deadline.
    pub tpot_violated: bool,
    /// Cold-start grace granted (§IX-A fairness rule).
    pub grace: SimDuration,
    /// Times this request was migrated/rescheduled.
    pub migrations: u32,
    /// True if this request triggered an instance cold start.
    pub cold_start: bool,
    /// Session membership (`SessionTag::NONE` for sessionless traffic).
    pub session: SessionTag,
    /// Prefix tokens served from parked session KV instead of recomputed
    /// (locally cached or migrated over the fabric).
    pub prefix_cached: u32,
}

impl RequestRecord {
    fn new(req: &Request) -> Self {
        RequestRecord {
            id: req.id,
            model: req.model,
            arrival: req.arrival,
            input_len: req.input_len,
            output_len: req.output_len,
            class: req.class,
            first_token: None,
            completed: None,
            dropped: false,
            ttft_violated: false,
            tpot_violated: false,
            grace: SimDuration::ZERO,
            migrations: 0,
            cold_start: false,
            session: req.session,
            prefix_cached: 0,
        }
    }

    /// Time to first token, if one was produced.
    pub fn ttft(&self) -> Option<SimDuration> {
        self.first_token.map(|t| t.since(self.arrival))
    }

    /// Mean time per output token after the first, if the request completed
    /// and produced more than one token.
    pub fn tpot(&self) -> Option<f64> {
        let first = self.first_token?;
        let done = self.completed?;
        if self.output_len <= 1 {
            return None;
        }
        Some(done.since(first).as_secs_f64() / (self.output_len - 1) as f64)
    }

    /// True for a session follow-up turn (turn ≥ 1) — the requests whose
    /// prefix can be served from parked KV.
    pub fn is_warm_turn(&self) -> bool {
        self.session.is_followup()
    }

    /// A request meets its SLO iff it completed with no TTFT or TPOT
    /// violation (§IX-A).
    pub fn slo_met(&self) -> bool {
        !self.dropped && self.completed.is_some() && !self.ttft_violated && !self.tpot_violated
    }
}

/// One sample of cluster occupancy, taken every sampling tick.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct UsageSample {
    /// Sample time, seconds.
    pub t: f64,
    /// CPU nodes with at least one resident instance.
    pub cpu_nodes_used: u32,
    /// GPU nodes with at least one resident instance.
    pub gpu_nodes_used: u32,
}

/// All measurements from one simulation run.
///
/// `Clone` so the bench harness can memoize identical sweep cells: a
/// cached clone presents byte-identically to a fresh run.
#[derive(Debug, Default, Clone)]
pub struct RunMetrics {
    /// Per-request outcomes, indexed by `RequestId.0`.
    pub records: Vec<RequestRecord>,
    /// Occupancy timeline (Fig. 23). Thinned by [`Self::usage_stride`];
    /// the time-weighted integrators below still see every tick.
    pub usage_timeline: Vec<UsageSample>,
    /// Keep every `n`-th occupancy sample in the timeline (0 acts as 1,
    /// the keep-everything historical default). Set from
    /// [`WorldConfig::usage_sample_stride`](crate::world::WorldConfig).
    pub usage_stride: usize,
    /// Occupancy ticks seen so far (drives the stride phase).
    usage_ticks: u64,
    /// Per-node-kind time-weighted "nodes used" integrators.
    cpu_nodes_used: TimeWeighted,
    gpu_nodes_used: TimeWeighted,
    /// Node-seconds during which ≥1 instance was resident, per kind.
    pub cpu_node_busy_s: f64,
    /// See [`Self::cpu_node_busy_s`].
    pub gpu_node_busy_s: f64,
    /// Decode tokens produced per kind.
    pub cpu_decode_tokens: u64,
    /// See [`Self::cpu_decode_tokens`].
    pub gpu_decode_tokens: u64,
    /// Per-instance memory-utilization samples, per kind.
    pub mem_util_cpu: Summary,
    /// See [`Self::mem_util_cpu`].
    pub mem_util_gpu: Summary,
    /// Batch-size samples over active instances (Fig. 25 right).
    pub batch_sizes: Summary,
    /// Batch-size samples over active GPU instances only (Fig. 25 is a GPU
    /// efficiency figure; CPU micro-instances would dilute it).
    pub batch_sizes_gpu: Summary,
    /// KV-pool utilization samples (Fig. 31).
    pub kv_util: Summary,
    /// Cold starts (instance loads) performed.
    pub cold_starts: u64,
    /// Cold starts begun, by checkpoint source tier — indexed by
    /// [`hwmodel::CheckpointTier::index`] (`[hbm, dram, ssd, remote]`).
    /// Under the flat default loader every load counts as a DRAM hit.
    pub cold_tier_loads: [u64; 4],
    /// Seconds of completed cold-start loading, by checkpoint source tier
    /// (same indexing as [`Self::cold_tier_loads`]). Contended loads
    /// report their stretched wall-clock duration.
    pub cold_tier_seconds: [f64; 4],
    /// Cold starts served over the peer-to-peer fabric (checkpoint
    /// distribution, [`crate::dist`]). These do *not* appear in
    /// [`Self::cold_tier_loads`]: `cold_starts == cold_tier_loads.sum() +
    /// peer_fetches` once distribution is on.
    pub peer_fetches: u64,
    /// Seconds of completed fabric loading (peer-fetch counterpart of
    /// [`Self::cold_tier_seconds`]).
    pub peer_fetch_seconds: f64,
    /// Peer fetches sourced from a peer that was itself still receiving
    /// the checkpoint — interior edges of a multicast relay tree.
    pub multicast_relays: u64,
    /// Fabric transfers re-sourced because their source node failed
    /// mid-stream.
    pub transfer_reroutes: u64,
    /// Instance activation log `(model, completed-at seconds)`, recorded
    /// only when [`crate::world::WorldConfig::record_activations`] is set
    /// (time-to-N-replicas in the `scale_burst` experiment).
    pub activations: Vec<(ModelId, f64)>,
    /// KV rescale operations completed.
    pub scale_ops: u64,
    /// Seconds instances spent blocked on KV rescales.
    pub scale_blocked_s: f64,
    /// Instance-lifetime seconds (for scaling-overhead ratios).
    pub instance_lifetime_s: f64,
    /// Rejected memory operations that would have overflowed a node
    /// (§VII-C hazards; a correct orchestrator keeps this at zero).
    pub oom_incidents: u64,
    /// Proactive consolidation preemptions executed (§VIII-A).
    pub preemptions: u64,
    /// Requests migrated/rescheduled (eviction §VII-D + preemption §VIII-A).
    pub migrations: u64,
    /// Requests dropped from admission queues.
    pub dropped: u64,
    /// Shadow validations performed (accepted + rejected), policy-reported.
    pub shadow_validations: u64,
    /// Node drains that started (scenario environment axis).
    pub node_drains: u64,
    /// Node failures injected.
    pub node_failures: u64,
    /// Nodes that joined mid-run.
    pub node_joins: u64,
    /// Prefix tokens served from parked session KV on the instance that
    /// already held them (no transfer paid). See [`crate::sessions`].
    pub prefix_hit_tokens: u64,
    /// Parked session KV entries migrated between instances over the fabric.
    pub kv_migrations: u64,
    /// Bytes of parked session KV shipped by those migrations.
    pub kv_migration_bytes: u64,
    /// Final simulated time.
    pub end_time: SimTime,
}

impl RunMetrics {
    /// Initializes records for every request in the trace.
    pub fn for_trace(requests: &[Request]) -> Self {
        let m = RunMetrics {
            records: requests.iter().map(RequestRecord::new).collect(),
            ..Default::default()
        };
        // RequestIds must index the record table.
        for (i, r) in m.records.iter().enumerate() {
            assert_eq!(r.id.0 as usize, i, "trace ids must be dense");
        }
        m
    }

    /// Mutable record lookup.
    pub fn record_mut(&mut self, id: RequestId) -> &mut RequestRecord {
        &mut self.records[id.0 as usize]
    }

    /// Records a produced token, updating TTFT/TPOT violation flags against
    /// `slo` (deadlines include the stored grace).
    pub fn on_token(&mut self, id: RequestId, tokens_out: u32, now: SimTime, slo: &Slo) {
        let rec = &mut self.records[id.0 as usize];
        let deadline = slo.token_deadline(rec.arrival + rec.grace, rec.input_len, tokens_out - 1);
        if tokens_out == 1 {
            rec.first_token = Some(now);
            if now > deadline {
                rec.ttft_violated = true;
            }
        } else if now > deadline {
            rec.tpot_violated = true;
        }
        if tokens_out >= rec.output_len {
            rec.completed = Some(now);
        }
    }

    /// Records occupancy at `t` seconds.
    pub fn sample_usage(&mut self, t: f64, cpu_used: u32, gpu_used: u32) {
        let stride = self.usage_stride.max(1) as u64;
        if self.usage_ticks.is_multiple_of(stride) {
            self.usage_timeline.push(UsageSample {
                t,
                cpu_nodes_used: cpu_used,
                gpu_nodes_used: gpu_used,
            });
        }
        self.usage_ticks += 1;
        self.cpu_nodes_used.record(t, cpu_used as f64);
        self.gpu_nodes_used.record(t, gpu_used as f64);
        // Integrate node-busy seconds via the same samples (1-sample hold).
    }

    /// Closes the time-weighted integrators at `t` seconds.
    pub fn finish(&mut self, t: SimTime) {
        self.end_time = t;
        let secs = t.as_secs_f64();
        self.cpu_node_busy_s = self.cpu_nodes_used.finish(secs) * secs;
        self.gpu_node_busy_s = self.gpu_nodes_used.finish(secs) * secs;
    }

    /// Number of requests meeting their SLO.
    pub fn slo_met(&self) -> usize {
        self.records.iter().filter(|r| r.slo_met()).count()
    }

    /// Total requests.
    pub fn total(&self) -> usize {
        self.records.len()
    }

    /// SLO attainment rate in `[0, 1]`.
    pub fn slo_rate(&self) -> f64 {
        if self.records.is_empty() {
            return 1.0;
        }
        self.slo_met() as f64 / self.total() as f64
    }

    /// TTFT samples (seconds) over requests that produced a first token.
    pub fn ttft_summary(&self) -> Summary {
        self.records
            .iter()
            .filter_map(|r| r.ttft().map(|d| d.as_secs_f64()))
            .collect()
    }

    /// Fraction of requests with TTFT ≤ `secs` (CDF point, counting dropped
    /// requests as never-responding, which is how the paper's CDFs flatten
    /// below 1).
    pub fn ttft_cdf_at(&self, secs: f64) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        let ok = self
            .records
            .iter()
            .filter(|r| r.ttft().map(|d| d.as_secs_f64() <= secs).unwrap_or(false))
            .count();
        ok as f64 / self.records.len() as f64
    }

    /// Time-weighted average of nodes used, per kind.
    pub fn avg_nodes_used(&self, kind: HardwareKind) -> f64 {
        let secs = self.end_time.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        match kind {
            HardwareKind::Gpu => self.gpu_node_busy_s / secs,
            _ => self.cpu_node_busy_s / secs,
        }
    }

    /// Decode throughput per used node, tokens/(node·s) (Fig. 22).
    pub fn decode_speed_per_node(&self, kind: HardwareKind) -> f64 {
        let (tokens, busy) = match kind {
            HardwareKind::Gpu => (self.gpu_decode_tokens, self.gpu_node_busy_s),
            _ => (self.cpu_decode_tokens, self.cpu_node_busy_s),
        };
        if busy <= 0.0 {
            0.0
        } else {
            tokens as f64 / busy
        }
    }

    /// Mean memory utilization of active instances of the given kind.
    pub fn mem_util_mean(&self, kind: HardwareKind) -> f64 {
        match kind {
            HardwareKind::Gpu => self.mem_util_gpu.mean(),
            _ => self.mem_util_cpu.mean(),
        }
    }

    /// Total seconds spent cold-start loading, across every tier.
    pub fn cold_start_seconds_total(&self) -> f64 {
        self.cold_tier_seconds.iter().sum()
    }

    /// Fraction of instance lifetime spent blocked on KV rescales (Fig. 31).
    pub fn scaling_overhead_fraction(&self) -> f64 {
        if self.instance_lifetime_s <= 0.0 {
            0.0
        } else {
            self.scale_blocked_s / self.instance_lifetime_s
        }
    }

    /// Count of requests whose record shows at least one migration.
    pub fn migrated_requests(&self) -> usize {
        self.records.iter().filter(|r| r.migrations > 0).count()
    }

    // ------------------------------------------------------------------
    // Per-SLO-class attainment (scenario workload axis)
    // ------------------------------------------------------------------

    /// The service classes present in this run, ascending (single-class
    /// runs report just `SloClass::DEFAULT`).
    pub fn classes(&self) -> Vec<SloClass> {
        let mut cs: Vec<SloClass> = self.records.iter().map(|r| r.class).collect();
        cs.sort_unstable();
        cs.dedup();
        if cs.is_empty() {
            cs.push(SloClass::DEFAULT);
        }
        cs
    }

    /// SLO-met and total request counts of one class.
    pub fn class_counts(&self, class: SloClass) -> (usize, usize) {
        let mut met = 0;
        let mut total = 0;
        for r in &self.records {
            if r.class == class {
                total += 1;
                met += usize::from(r.slo_met());
            }
        }
        (met, total)
    }

    /// SLO attainment rate of one class in `[0, 1]` (1.0 when the class is
    /// absent, matching [`Self::slo_rate`] on an empty run).
    pub fn class_slo_rate(&self, class: SloClass) -> f64 {
        let (met, total) = self.class_counts(class);
        if total == 0 {
            1.0
        } else {
            met as f64 / total as f64
        }
    }

    /// Attainment of every class present, ascending by class: the per-class
    /// breakdown reported alongside the aggregate [`Self::slo_rate`].
    pub fn class_attainment(&self) -> Vec<(SloClass, usize, usize)> {
        self.classes()
            .into_iter()
            .map(|c| {
                let (met, total) = self.class_counts(c);
                (c, met, total)
            })
            .collect()
    }

    /// TTFT samples (seconds) of one class's responding requests.
    pub fn class_ttft_summary(&self, class: SloClass) -> Summary {
        self.records
            .iter()
            .filter(|r| r.class == class)
            .filter_map(|r| r.ttft().map(|d| d.as_secs_f64()))
            .collect()
    }

    // ------------------------------------------------------------------
    // Session turns (multi-turn prefix reuse)
    // ------------------------------------------------------------------

    /// TTFT samples (seconds) of *warm* turns — session follow-ups, the
    /// requests prefix reuse can shorten. Untagged and first-turn requests
    /// are the cold side ([`Self::cold_ttft_summary`]).
    pub fn warm_ttft_summary(&self) -> Summary {
        self.records
            .iter()
            .filter(|r| r.is_warm_turn())
            .filter_map(|r| r.ttft().map(|d| d.as_secs_f64()))
            .collect()
    }

    /// TTFT samples (seconds) of cold requests: session openers (turn 0)
    /// and sessionless traffic.
    pub fn cold_ttft_summary(&self) -> Summary {
        self.records
            .iter()
            .filter(|r| !r.is_warm_turn())
            .filter_map(|r| r.ttft().map(|d| d.as_secs_f64()))
            .collect()
    }

    /// Mean TPOT (seconds/token) over completed warm turns, or 0.0 when no
    /// warm turn produced more than one token.
    pub fn warm_tpot_mean(&self) -> f64 {
        let s: Summary = self
            .records
            .iter()
            .filter(|r| r.is_warm_turn())
            .filter_map(|r| r.tpot())
            .collect();
        if s.count() == 0 {
            0.0
        } else {
            s.mean()
        }
    }

    /// Warm turns whose prefill skipped at least one cached prefix token.
    pub fn prefix_hits(&self) -> usize {
        self.records.iter().filter(|r| r.prefix_cached > 0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload::request::{Request, SloClass};

    fn requests(n: u64) -> Vec<Request> {
        (0..n)
            .map(|i| Request {
                id: RequestId(i),
                model: ModelId(0),
                arrival: SimTime::from_secs(i),
                input_len: 1024,
                output_len: 2,
                class: SloClass::default(),
                session: Default::default(),
            })
            .collect()
    }

    #[test]
    fn token_recording_flags_violations() {
        let slo = Slo::paper();
        let reqs = requests(1);
        let mut m = RunMetrics::for_trace(&reqs);
        // TTFT SLO = 2 s. First token at 1.5 s: fine.
        m.on_token(RequestId(0), 1, SimTime::from_millis(1_500), &slo);
        assert!(!m.records[0].ttft_violated);
        // Second token deadline = 0 + 2 + 0.25 = 2.25 s. Produce at 3 s: late.
        m.on_token(RequestId(0), 2, SimTime::from_secs(3), &slo);
        assert!(m.records[0].tpot_violated);
        assert!(m.records[0].completed.is_some(), "output_len=2 reached");
        assert!(!m.records[0].slo_met());
    }

    #[test]
    fn grace_relaxes_ttft() {
        let slo = Slo::paper();
        let reqs = requests(1);
        let mut m = RunMetrics::for_trace(&reqs);
        m.record_mut(RequestId(0)).grace = SimDuration::from_secs(1);
        m.record_mut(RequestId(0)).cold_start = true;
        // 2.5 s TTFT would violate the plain 2 s SLO but not 2+1 s.
        m.on_token(RequestId(0), 1, SimTime::from_millis(2_500), &slo);
        assert!(!m.records[0].ttft_violated);
    }

    #[test]
    fn slo_rate_counts_drops() {
        let slo = Slo::paper();
        let reqs = requests(2);
        let mut m = RunMetrics::for_trace(&reqs);
        m.on_token(RequestId(0), 1, SimTime::from_millis(500), &slo);
        m.on_token(RequestId(0), 2, SimTime::from_millis(700), &slo);
        m.record_mut(RequestId(1)).dropped = true;
        assert_eq!(m.slo_met(), 1);
        assert_eq!(m.slo_rate(), 0.5);
    }

    #[test]
    fn ttft_cdf_flattens_below_one_with_drops() {
        let slo = Slo::paper();
        let reqs = requests(4);
        let mut m = RunMetrics::for_trace(&reqs);
        for i in 0..2u64 {
            m.on_token(
                RequestId(i),
                1,
                SimTime::from_secs(i) + SimDuration::from_millis(100),
                &slo,
            );
        }
        m.record_mut(RequestId(2)).dropped = true;
        m.record_mut(RequestId(3)).dropped = true;
        assert_eq!(m.ttft_cdf_at(10.0), 0.5);
    }

    #[test]
    fn usage_integration() {
        let reqs = requests(1);
        let mut m = RunMetrics::for_trace(&reqs);
        m.sample_usage(0.0, 2, 4);
        m.sample_usage(50.0, 2, 0);
        m.finish(SimTime::from_secs(100));
        assert!((m.avg_nodes_used(HardwareKind::CpuAccel) - 2.0).abs() < 1e-9);
        assert!((m.avg_nodes_used(HardwareKind::Gpu) - 2.0).abs() < 1e-9);
        // Decode speed: 1000 tokens over the GPU node-busy seconds.
        m.gpu_decode_tokens = 1000;
        let speed = m.decode_speed_per_node(HardwareKind::Gpu);
        assert!((speed - 1000.0 / 200.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "dense")]
    fn non_dense_trace_ids_rejected() {
        let mut reqs = requests(2);
        reqs[1].id = RequestId(7);
        let _ = RunMetrics::for_trace(&reqs);
    }
}
