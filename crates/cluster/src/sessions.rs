//! Session prefix-reuse and affinity-routing configuration.
//!
//! Multi-turn traffic (see `workload::sessions`) re-submits a growing prefix
//! each turn. When this subsystem is enabled, an instance *parks* a finished
//! turn's KV blocks instead of freeing them (`engine::instance::Instance`
//! with `retain_sessions`), and the world tracks each session's *home* — the
//! instance holding its parked KV. Three forces then interact:
//!
//! - **Affinity** — policies ask
//!   [`World::session_affinity_target`](crate::World::session_affinity_target)
//!   before their normal placement scan, so a turn lands where its prefix
//!   KV already sits and its prefill computes only the uncached tail.
//! - **Elasticity** — the home declines when it is gone (keep-alive unload,
//!   drain, node failure), on an unschedulable node, or already loaded past
//!   the stickiness-scaled in-flight cap; the turn then falls back to the
//!   normal placement path.
//! - **Migration** — an off-home turn can still skip recompute by shipping
//!   the parked KV over the node fabric ([`SessionConfig::migrate_kv`]),
//!   paying `tokens · C / kv_transfer_gbps` of transfer delay instead of
//!   the prefill tail (`RunMetrics::kv_migration_bytes` accounts it).
//!
//! [`SessionConfig::off`] — the default — disables everything and replays
//! sessionless runs byte-for-byte: no entry is ever parked, no RNG draw is
//! added or removed, and the prefill length the performance model sees is
//! unchanged.

use serde::{Deserialize, Serialize};

/// Session prefix-reuse knobs. See the module docs for the model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionConfig {
    /// Master switch: park finished session turns' KV and route follow-up
    /// turns by affinity. Off replays sessionless behavior bit-for-bit.
    pub enabled: bool,
    /// Affinity strength in `[0, 1]`: a follow-up turn sticks to its home
    /// instance only while the home's in-flight request count is below
    /// `stickiness · affinity_max_inflight` (at least 1 when positive).
    /// `0.0` never sticks — every turn takes the normal placement path;
    /// `1.0` sticks up to the full cap. Deterministic by construction (a
    /// load threshold, not a coin flip).
    pub stickiness: f64,
    /// In-flight cap scaled by `stickiness` above.
    pub affinity_max_inflight: u32,
    /// When a follow-up turn lands off-home anyway, ship the parked KV over
    /// the fabric (priced at `WorldConfig::kv_transfer_gbps`) instead of
    /// recomputing the prefix. Off: off-home turns re-prefill from scratch.
    pub migrate_kv: bool,
}

impl SessionConfig {
    /// Sessions disabled (the default): byte-identical to pre-session runs.
    pub fn off() -> Self {
        SessionConfig {
            enabled: false,
            stickiness: 0.0,
            affinity_max_inflight: 16,
            migrate_kv: false,
        }
    }

    /// Prefix reuse with the given stickiness and KV migration on — the
    /// configuration the `session_reuse` experiment sweeps.
    pub fn reuse(stickiness: f64) -> Self {
        SessionConfig {
            enabled: true,
            stickiness,
            affinity_max_inflight: 16,
            migrate_kv: true,
        }
    }
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig::off()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_is_default_and_inert() {
        assert_eq!(SessionConfig::default(), SessionConfig::off());
        assert!(!SessionConfig::off().enabled);
        assert!(!SessionConfig::off().migrate_kv);
    }

    #[test]
    fn reuse_enables_migration() {
        let c = SessionConfig::reuse(0.5);
        assert!(c.enabled && c.migrate_kv);
        assert_eq!(c.stickiness, 0.5);
    }
}
