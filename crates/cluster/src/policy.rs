//! The scheduling-policy callback surface.
//!
//! SLINFER and every baseline implement [`Policy`]. The driver invokes the
//! callbacks as events fire; policies act exclusively through the
//! [`World`] API. Policies own their admission queues —
//! the driver never queues requests itself (systems differ precisely in how
//! they queue, §III-C).

use engine::instance::InstanceId;
use engine::request::RunningRequest;
use workload::request::RequestId;

use crate::node::NodeId;
use crate::world::{ClusterEvent, World};

/// A serving system under test.
pub trait Policy {
    /// Display name for experiment tables (e.g. `"sllm+c+s"`).
    fn name(&self) -> &str;

    /// A request has arrived. The policy must eventually admit it to an
    /// instance, queue it, or [`World::drop_request`] it.
    fn on_arrival(&mut self, w: &mut World, rr: RunningRequest);

    /// A slot became free (or received new work while free). The policy may
    /// start at most one iteration on it via [`World::start_iteration`].
    fn on_slot_free(&mut self, w: &mut World, node: NodeId, slot: usize);

    /// An instance finished its cold start.
    fn on_load_done(&mut self, _w: &mut World, _inst: InstanceId) {}

    /// A KV rescale completed (scale-downs have now released their memory —
    /// the reservation-station notification point of §VII-C).
    fn on_scale_done(&mut self, _w: &mut World, _inst: InstanceId) {}

    /// A request produced its first token (prefill finished). PD policies
    /// hand the request off to a decode instance here (§IX-G).
    fn on_prefill_done(&mut self, _w: &mut World, _inst: InstanceId, _req: RequestId) {}

    /// A request completed all its output tokens.
    fn on_request_done(&mut self, _w: &mut World, _inst: InstanceId, _rr: &RunningRequest) {}

    /// A decoding request could not obtain a KV block (memory
    /// underestimation, §VII-D). The policy must resolve it (scale up, evict,
    /// or migrate) or the request will stall forever.
    fn on_alloc_failure(&mut self, _w: &mut World, _inst: InstanceId, _req: RequestId) {}

    /// An instance has been idle for the keep-alive threshold. The default
    /// reclaims it.
    fn on_keepalive(&mut self, w: &mut World, inst: InstanceId) {
        let idle = w
            .instance(inst)
            .map(|i| !i.has_live_requests() && !i.busy && !i.scaling)
            .unwrap_or(false);
        if idle {
            w.unload_instance(inst);
        }
    }

    /// A timer set via [`World::set_timer`] fired.
    fn on_timer(&mut self, _w: &mut World, _payload: u64) {}

    /// A cluster-lifecycle event was applied (node drain/fail/join).
    /// `displaced` holds the requests evicted from unloaded or lost
    /// instances, already reset for migration (they must re-prefill).
    ///
    /// The default re-offers every displaced request through
    /// [`Policy::on_arrival`], which gives baselines a sane
    /// evict-and-requeue behavior without policy-specific state; policies
    /// with internal placement state (parked scale-ops, per-node budgets)
    /// should override this, clean up, and then re-place.
    fn on_node_event(&mut self, w: &mut World, _ev: &ClusterEvent, displaced: Vec<RunningRequest>) {
        for rr in displaced {
            self.on_arrival(w, rr);
        }
    }
}
