//! Top-level harness crate for the SLINFER reproduction workspace.
//!
//! This package owns the cross-crate integration suites under `tests/`
//! (`end_to_end`, `cross_system`, `memory_safety`, `trace_replay`,
//! `determinism`) and the runnable `examples/`. The library itself just
//! re-exports the workspace crates so examples and downstream tooling can
//! reach everything through one dependency.

#![forbid(unsafe_code)]

pub use ::bench;
pub use baselines;
pub use cluster;
pub use engine;
pub use hwmodel;
pub use simcore;
pub use slinfer;
pub use workload;
