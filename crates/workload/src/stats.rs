//! Trace characterization (Figures 21, 12, 9, 34).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::request::{ModelId, Trace};

/// Aggregate statistics of one trace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceStats {
    /// Requests per model, indexed by model id.
    pub per_model_counts: Vec<usize>,
    /// Arrival timestamps (seconds) per model, sorted.
    per_model_arrivals: Vec<Vec<f64>>,
    /// Trace window in minutes.
    pub window_minutes: f64,
    /// Total requests.
    pub total: usize,
}

impl TraceStats {
    /// Computes statistics for `trace`.
    pub fn from_trace(trace: &Trace) -> Self {
        let n = trace.n_models as usize;
        let mut per_model_counts = vec![0usize; n];
        let mut per_model_arrivals = vec![Vec::new(); n];
        for r in &trace.requests {
            let m = r.model.0 as usize;
            per_model_counts[m] += 1;
            per_model_arrivals[m].push(r.arrival.as_secs_f64());
        }
        TraceStats {
            per_model_counts,
            per_model_arrivals,
            window_minutes: trace.duration.as_secs_f64() / 60.0,
            total: trace.len(),
        }
    }

    /// Average requests-per-minute of each model, ascending.
    pub fn model_rpms_sorted(&self) -> Vec<f64> {
        let mut v: Vec<f64> = self
            .per_model_counts
            .iter()
            .map(|&c| c as f64 / self.window_minutes.max(1e-9))
            .collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v
    }

    /// Median per-model RPM.
    pub fn median_model_rpm(&self) -> f64 {
        let v = self.model_rpms_sorted();
        if v.is_empty() {
            0.0
        } else {
            v[v.len() / 2]
        }
    }

    /// Aggregate requests per minute.
    pub fn aggregate_rpm(&self) -> f64 {
        self.total as f64 / self.window_minutes.max(1e-9)
    }

    /// Fraction of all requests contributed by the hottest
    /// `ceil(frac · n_models)` models (§IV-C's "top 1% contributes 26%").
    pub fn top_models_share(&self, frac: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let k = ((self.per_model_counts.len() as f64 * frac).ceil() as usize).max(1);
        let mut counts = self.per_model_counts.clone();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        counts.iter().take(k).sum::<usize>() as f64 / self.total as f64
    }

    /// The most-invoked model.
    pub fn hottest_model(&self) -> ModelId {
        let (i, _) = self
            .per_model_counts
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .expect("trace has models");
        ModelId(i as u32)
    }

    /// The least-invoked model that still received at least one request.
    pub fn coldest_nonempty_model(&self) -> ModelId {
        let (i, _) = self
            .per_model_counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .min_by_key(|(_, &c)| c)
            .expect("trace has a non-empty model");
        ModelId(i as u32)
    }

    /// Peak in-flight concurrency of `model` assuming each request resides
    /// for `service_s` seconds (the Fig. 12 estimator).
    pub fn peak_concurrency(&self, model: ModelId, service_s: f64) -> usize {
        let arrivals = &self.per_model_arrivals[model.0 as usize];
        let mut peak = 0usize;
        let mut start = 0usize;
        for (end, &t) in arrivals.iter().enumerate() {
            while arrivals[start] + service_s < t {
                start += 1;
            }
            peak = peak.max(end - start + 1);
        }
        peak
    }

    /// Concurrency time-series of `model` (one point per arrival) under the
    /// fixed-residency assumption. Used by the Fig. 9 footprint experiment.
    pub fn concurrency_series(&self, model: ModelId, service_s: f64) -> Vec<(f64, usize)> {
        let arrivals = &self.per_model_arrivals[model.0 as usize];
        let mut out = Vec::with_capacity(arrivals.len());
        let mut start = 0usize;
        for (end, &t) in arrivals.iter().enumerate() {
            while arrivals[start] + service_s < t {
                start += 1;
            }
            out.push((t, end - start + 1));
        }
        out
    }

    /// Requests per minute-bucket over the window (Fig. 21 timelines).
    pub fn timeline_rpm(&self) -> Vec<usize> {
        let buckets = self.window_minutes.ceil() as usize;
        let mut v = vec![0usize; buckets.max(1)];
        for arrivals in &self.per_model_arrivals {
            for &t in arrivals {
                let b = ((t / 60.0) as usize).min(v.len() - 1);
                v[b] += 1;
            }
        }
        v
    }

    /// Models ranked by request count, descending — `(model, count)` pairs.
    pub fn ranking(&self) -> Vec<(ModelId, usize)> {
        let mut v: Vec<(ModelId, usize)> = self
            .per_model_counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (ModelId(i as u32), c))
            .collect();
        v.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
        v
    }

    /// The model whose popularity rank places it at the given top-percentile
    /// (e.g. `1.0` → the P99 "top 1%" function of Fig. 9).
    pub fn model_at_top_percent(&self, percent: f64) -> ModelId {
        let ranked = self.ranking();
        let idx = ((percent / 100.0) * ranked.len() as f64).floor() as usize;
        ranked[idx.min(ranked.len() - 1)].0
    }
}

/// A histogram of request counts per model-popularity bucket, handy for
/// printing Fig. 21-style CDF tables.
pub fn rpm_cdf_table(stats: &TraceStats, thresholds: &[f64]) -> BTreeMap<String, f64> {
    let rpms = stats.model_rpms_sorted();
    let n = rpms.len().max(1) as f64;
    thresholds
        .iter()
        .map(|&t| {
            let frac = rpms.iter().filter(|&&r| r <= t).count() as f64 / n;
            (format!("rpm<={t}"), frac)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{Request, RequestId, SloClass};
    use simcore::time::{SimDuration, SimTime};

    fn mk_trace() -> Trace {
        // Model 0: burst of 5 at t=0..4s; model 1: two spread requests.
        let mut reqs = Vec::new();
        for i in 0..5u64 {
            reqs.push(Request {
                id: RequestId(i),
                model: ModelId(0),
                arrival: SimTime::from_secs(i),
                input_len: 100,
                output_len: 10,
                class: SloClass::default(),
                session: Default::default(),
            });
        }
        for (j, t) in [(5u64, 100u64), (6, 500)] {
            reqs.push(Request {
                id: RequestId(j),
                model: ModelId(1),
                arrival: SimTime::from_secs(t),
                input_len: 100,
                output_len: 10,
                class: SloClass::default(),
                session: Default::default(),
            });
        }
        Trace::new(reqs, 2, SimDuration::from_secs(600))
    }

    #[test]
    fn counts_and_rpm() {
        let s = TraceStats::from_trace(&mk_trace());
        assert_eq!(s.per_model_counts, vec![5, 2]);
        assert_eq!(s.total, 7);
        assert!((s.aggregate_rpm() - 0.7).abs() < 1e-9);
        assert_eq!(s.hottest_model(), ModelId(0));
        assert_eq!(s.coldest_nonempty_model(), ModelId(1));
    }

    #[test]
    fn concurrency_estimator() {
        let s = TraceStats::from_trace(&mk_trace());
        // 60s residency: all 5 burst requests overlap.
        assert_eq!(s.peak_concurrency(ModelId(0), 60.0), 5);
        // 1s residency: at most 2 overlap (1s gaps).
        assert_eq!(s.peak_concurrency(ModelId(0), 1.0), 2);
        // Spread model never overlaps.
        assert_eq!(s.peak_concurrency(ModelId(1), 60.0), 1);
    }

    #[test]
    fn top_share_and_ranking() {
        let s = TraceStats::from_trace(&mk_trace());
        assert!((s.top_models_share(0.5) - 5.0 / 7.0).abs() < 1e-9);
        assert_eq!(s.ranking()[0].0, ModelId(0));
        assert_eq!(s.model_at_top_percent(1.0), ModelId(0));
    }

    #[test]
    fn timeline_buckets() {
        let s = TraceStats::from_trace(&mk_trace());
        let tl = s.timeline_rpm();
        assert_eq!(tl.len(), 10);
        assert_eq!(tl[0], 5); // burst in minute 0
        assert_eq!(tl[1], 1); // t=100s
        assert_eq!(tl[8], 1); // t=500s
    }

    #[test]
    fn cdf_table_monotone() {
        let s = TraceStats::from_trace(&mk_trace());
        let table = rpm_cdf_table(&s, &[0.1, 0.5, 1.0]);
        let vals: Vec<f64> = table.values().cloned().collect();
        for w in vals.windows(2) {
            assert!(w[1] >= w[0] || (w[1] - w[0]).abs() < 1e-9);
        }
    }
}
