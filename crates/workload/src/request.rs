//! Request, trace, and SLO types shared by every scheduler.

use serde::{Deserialize, Serialize};
use simcore::time::{SimDuration, SimTime};

/// Identifies one hosted model (one "serverless function" in the paper's
/// Azure-trace mapping).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ModelId(pub u32);

/// Identifies one inference request.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct RequestId(pub u64);

/// Identifies one service class of a run's SLO-class table.
///
/// Class `0` is always the run's default SLO (`WorldConfig::slo`, the
/// paper's `Slo::paper()` in every stock experiment); further classes are
/// registered through `cluster::Scenario::slo_class` and resolved by the
/// world at token-accounting time. Requests carry their class, so one run
/// can mix interactive and relaxed traffic and still attribute attainment
/// per class.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct SloClass(pub u16);

impl SloClass {
    /// The default class (the run-wide SLO).
    pub const DEFAULT: SloClass = SloClass(0);
}

/// Ties a request to a multi-turn session.
///
/// Session ids are dense and start at `1`; id `0` is the [`SessionTag::NONE`]
/// sentinel carried by independent (sessionless) requests, which is also the
/// `Default`. Turns are numbered from `0` within a session, so `turn > 0`
/// marks a request whose prompt re-submits an accumulated prefix that some
/// instance may still hold KV for.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct SessionTag {
    /// Session id (`0` = not part of a session).
    pub id: u64,
    /// Zero-based turn number within the session.
    pub turn: u32,
}

impl SessionTag {
    /// The sessionless sentinel.
    pub const NONE: SessionTag = SessionTag { id: 0, turn: 0 };

    /// Tags turn `turn` of session `id`.
    ///
    /// # Panics
    /// Panics if `id` is zero (reserved for [`SessionTag::NONE`]).
    pub fn new(id: u64, turn: u32) -> Self {
        assert!(id != 0, "session ids start at 1; 0 is the NONE sentinel");
        SessionTag { id, turn }
    }

    /// True if this request belongs to a session.
    pub fn is_session(&self) -> bool {
        self.id != 0
    }

    /// True for a follow-up turn (one that may find cached prefix KV).
    pub fn is_followup(&self) -> bool {
        self.id != 0 && self.turn > 0
    }
}

/// One inference request: which model, when it arrived, and its token
/// lengths. The output length is pre-drawn by the generator but is hidden
/// from schedulers until tokens are actually produced (the paper's memory
/// estimator must *guess* it, §VII-A).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Unique id.
    pub id: RequestId,
    /// The model this request invokes.
    pub model: ModelId,
    /// Arrival time.
    pub arrival: SimTime,
    /// Prompt length in tokens.
    pub input_len: u32,
    /// Ground-truth completion length in tokens (schedulers must not peek).
    pub output_len: u32,
    /// Service class this request is held to (class 0 = the run default).
    pub class: SloClass,
    /// Session membership ([`SessionTag::NONE`] for independent requests).
    pub session: SessionTag,
}

/// Service-level objectives, following §IX-A:
/// `TTFT ≤ min(max(0.5, L/512), 8)` seconds and `TPOT ≤ 0.25` s.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Slo {
    /// Lower clamp of the TTFT SLO, seconds.
    pub ttft_floor_s: f64,
    /// Upper clamp of the TTFT SLO, seconds.
    pub ttft_cap_s: f64,
    /// Input tokens per second of TTFT allowance.
    pub ttft_tokens_per_s: f64,
    /// Time-per-output-token SLO, seconds.
    pub tpot_s: f64,
}

impl Default for Slo {
    fn default() -> Self {
        Slo {
            ttft_floor_s: 0.5,
            ttft_cap_s: 8.0,
            ttft_tokens_per_s: 512.0,
            tpot_s: 0.25,
        }
    }
}

impl Slo {
    /// The paper's default SLO.
    pub fn paper() -> Self {
        Slo::default()
    }

    /// A tighter interactive SLO (100 ms TPOT) used in §IV-A2's feasibility
    /// discussion.
    pub fn tight() -> Self {
        Slo {
            tpot_s: 0.10,
            ..Slo::default()
        }
    }

    /// A relaxed batch-style SLO: doubled TTFT window and 0.5 s TPOT, for
    /// throughput-oriented traffic in SLO-class mixes.
    pub fn relaxed() -> Self {
        Slo {
            ttft_floor_s: 1.0,
            ttft_cap_s: 16.0,
            ttft_tokens_per_s: 256.0,
            tpot_s: 0.5,
        }
    }

    /// TTFT budget for a request with `input_len` prompt tokens.
    pub fn ttft(&self, input_len: u32) -> SimDuration {
        let s = (input_len as f64 / self.ttft_tokens_per_s)
            .max(self.ttft_floor_s)
            .min(self.ttft_cap_s);
        SimDuration::from_secs_f64(s)
    }

    /// TPOT budget per output token.
    pub fn tpot(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.tpot_s)
    }

    /// The absolute deadline for token number `tokens_done + 1` of a request
    /// that started at `start`: `ST + TTFT_SLO + TPOT_SLO · O` (Eq. 1).
    pub fn token_deadline(&self, start: SimTime, input_len: u32, tokens_done: u32) -> SimTime {
        start + self.ttft(input_len) + self.tpot() * tokens_done as u64
    }

    /// Headroom (Eq. 1): seconds until the next-token deadline; negative
    /// once the SLO is violated.
    pub fn headroom(&self, now: SimTime, start: SimTime, input_len: u32, tokens_done: u32) -> f64 {
        self.token_deadline(start, input_len, tokens_done)
            .signed_secs_since(now)
    }
}

/// A complete workload: requests sorted by arrival plus the model count.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Trace {
    /// Requests in non-decreasing arrival order.
    pub requests: Vec<Request>,
    /// Number of distinct models (functions) in this trace.
    pub n_models: u32,
    /// Nominal duration of the trace window.
    pub duration: SimDuration,
}

impl Trace {
    /// Validates and wraps a request list.
    ///
    /// # Panics
    /// Panics if requests are not sorted by arrival time.
    pub fn new(mut requests: Vec<Request>, n_models: u32, duration: SimDuration) -> Self {
        requests.sort_by_key(|r| (r.arrival, r.id));
        Trace {
            requests,
            n_models,
            duration,
        }
    }

    /// Total number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// True if the trace holds no requests.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Aggregate requests-per-minute over the nominal duration.
    pub fn aggregate_rpm(&self) -> f64 {
        let mins = self.duration.as_secs_f64() / 60.0;
        if mins <= 0.0 {
            0.0
        } else {
            self.requests.len() as f64 / mins
        }
    }

    /// Tags every request with `class` (used by scenario builders to bind a
    /// whole workload segment to one SLO class).
    pub fn with_class(mut self, class: SloClass) -> Trace {
        for r in &mut self.requests {
            r.class = class;
        }
        self
    }

    /// Interleaves several workload segments into one trace: requests merge
    /// by arrival time (stable — ties keep segment order) and are renumbered
    /// densely so [`RequestId`]s index the merged request list. Per-request
    /// [`SloClass`] tags survive the merge.
    ///
    /// A single segment passes through untouched, so building a run through
    /// a one-segment scenario replays exactly the segment's own trace.
    pub fn merge(segments: Vec<Trace>) -> Trace {
        if segments.len() == 1 {
            return segments.into_iter().next().expect("one segment");
        }
        let n_models = segments.iter().map(|t| t.n_models).max().unwrap_or(0);
        let duration = segments
            .iter()
            .map(|t| t.duration)
            .max()
            .unwrap_or(SimDuration::ZERO);
        let mut requests: Vec<Request> = segments.into_iter().flat_map(|t| t.requests).collect();
        requests.sort_by_key(|r| r.arrival);
        for (i, r) in requests.iter_mut().enumerate() {
            r.id = RequestId(i as u64);
        }
        Trace {
            requests,
            n_models,
            duration,
        }
    }

    /// Restricts the trace to requests arriving before `cutoff`.
    pub fn truncated(&self, cutoff: SimTime) -> Trace {
        Trace {
            requests: self
                .requests
                .iter()
                .filter(|r| r.arrival < cutoff)
                .cloned()
                .collect(),
            n_models: self.n_models,
            duration: cutoff - SimTime::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slo_matches_paper_formula() {
        let slo = Slo::paper();
        // min(max(0.5, L/512), 8)
        assert_eq!(slo.ttft(100).as_secs_f64(), 0.5);
        assert_eq!(slo.ttft(1024).as_secs_f64(), 2.0);
        assert_eq!(slo.ttft(8192).as_secs_f64(), 8.0);
        assert_eq!(slo.tpot().as_millis(), 250);
    }

    #[test]
    fn headroom_equation_one() {
        // Figure 14's worked example: TPOT SLO 0.25 s; a request that has
        // produced O tokens has deadline ST + TTFT + 0.25·O.
        let slo = Slo::paper();
        let start = SimTime::from_secs(10);
        let now = SimTime::from_secs(11);
        // input 1024 => TTFT SLO 2 s; after 4 tokens: deadline = 10+2+1 = 13.
        assert_eq!(slo.headroom(now, start, 1024, 4), 2.0);
        // Negative headroom signals violation.
        let late = SimTime::from_secs(14);
        assert_eq!(slo.headroom(late, start, 1024, 4), -1.0);
    }

    #[test]
    fn trace_sorts_requests() {
        let mk = |id: u64, t: u64| Request {
            id: RequestId(id),
            model: ModelId(0),
            arrival: SimTime::from_secs(t),
            input_len: 10,
            output_len: 10,
            class: SloClass::default(),
            session: Default::default(),
        };
        let t = Trace::new(
            vec![mk(2, 5), mk(1, 1), mk(3, 3)],
            1,
            SimDuration::from_secs(10),
        );
        let ids: Vec<u64> = t.requests.iter().map(|r| r.id.0).collect();
        assert_eq!(ids, vec![1, 3, 2]);
    }

    #[test]
    fn aggregate_rpm_and_truncation() {
        let mk = |id: u64, t: u64| Request {
            id: RequestId(id),
            model: ModelId(0),
            arrival: SimTime::from_secs(t),
            input_len: 10,
            output_len: 10,
            class: SloClass::default(),
            session: Default::default(),
        };
        let t = Trace::new(
            (0..120).map(|i| mk(i, i)).collect(),
            1,
            SimDuration::from_secs(120),
        );
        assert_eq!(t.aggregate_rpm(), 60.0);
        let half = t.truncated(SimTime::from_secs(60));
        assert_eq!(half.len(), 60);
    }
}
