//! Token-length distributions for the five evaluation datasets.
//!
//! Figure 34 characterizes each dataset's input/output length CDFs; the
//! paper additionally quotes that 97.9% of conversation and 85.9% of coding
//! inputs in the Azure LLM trace are under 4 K tokens (§IV-A2), that
//! ShareGPT's longer outputs provide more batching opportunity, and that
//! LongBench inputs reach 32 K tokens (§IX-I1). Each dataset here is a
//! clamped log-normal pair fitted to those anchors; the calibration tests at
//! the bottom pin the quantiles.

use serde::{Deserialize, Serialize};
use simcore::dist::lognormal;
use simcore::rng::SimRng;

/// One of the paper's evaluation datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dataset {
    /// Azure LLM inference trace, conversation slice (the default workload).
    AzureConv,
    /// Azure LLM inference trace, code slice.
    AzureCode,
    /// HumanEval programming problems (short prompts, short completions).
    HumanEval,
    /// ShareGPT chat logs (long, chatty outputs).
    ShareGpt,
    /// LongBench long-context suite (up to 32 K-token inputs).
    LongBench,
}

/// Parameters of one clamped log-normal length distribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct LenDist {
    median: f64,
    sigma: f64,
    min: u32,
    max: u32,
}

impl LenDist {
    fn sample(&self, rng: &mut SimRng) -> u32 {
        let x = lognormal(rng, self.median, self.sigma);
        (x.round() as u32).clamp(self.min, self.max)
    }
}

impl Dataset {
    /// All five datasets in the order of Figure 35.
    pub const ALL: [Dataset; 5] = [
        Dataset::HumanEval,
        Dataset::AzureCode,
        Dataset::AzureConv,
        Dataset::LongBench,
        Dataset::ShareGpt,
    ];

    /// Short display name matching the figure labels.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::AzureConv => "AzureConv",
            Dataset::AzureCode => "AzureCode",
            Dataset::HumanEval => "HumanEval",
            Dataset::ShareGpt => "ShareGPT",
            Dataset::LongBench => "LongBench",
        }
    }

    fn input_dist(self) -> LenDist {
        match self {
            // P(<4096) = 97.9% => sigma = ln(4096/median)/z(0.979), z≈2.034.
            Dataset::AzureConv => LenDist {
                median: 1024.0,
                sigma: 0.682,
                min: 16,
                max: 32_768,
            },
            // P(<4096) = 85.9% => z≈1.076 with median 2048 ⇒ sigma 0.644.
            Dataset::AzureCode => LenDist {
                median: 2048.0,
                sigma: 0.644,
                min: 16,
                max: 32_768,
            },
            Dataset::HumanEval => LenDist {
                median: 180.0,
                sigma: 0.45,
                min: 16,
                max: 2_048,
            },
            Dataset::ShareGpt => LenDist {
                median: 600.0,
                sigma: 1.0,
                min: 16,
                max: 16_384,
            },
            Dataset::LongBench => LenDist {
                median: 8_000.0,
                sigma: 0.62,
                min: 512,
                max: 32_768,
            },
        }
    }

    fn output_dist(self) -> LenDist {
        match self {
            Dataset::AzureConv => LenDist {
                median: 128.0,
                sigma: 0.9,
                min: 1,
                max: 1_024,
            },
            Dataset::AzureCode => LenDist {
                median: 40.0,
                sigma: 0.8,
                min: 1,
                max: 512,
            },
            Dataset::HumanEval => LenDist {
                median: 80.0,
                sigma: 0.6,
                min: 1,
                max: 512,
            },
            // "Datasets with longer outputs, such as ShareGPT" (§IX-I1).
            Dataset::ShareGpt => LenDist {
                median: 320.0,
                sigma: 0.9,
                min: 1,
                max: 2_048,
            },
            Dataset::LongBench => LenDist {
                median: 64.0,
                sigma: 0.5,
                min: 1,
                max: 512,
            },
        }
    }

    /// Draws one prompt length.
    pub fn sample_input_len(self, rng: &mut SimRng) -> u32 {
        self.input_dist().sample(rng)
    }

    /// Draws one completion length.
    pub fn sample_output_len(self, rng: &mut SimRng) -> u32 {
        self.output_dist().sample(rng)
    }

    /// Draws an (input, output) pair.
    pub fn sample_lengths(self, rng: &mut SimRng) -> (u32, u32) {
        (self.sample_input_len(rng), self.sample_output_len(rng))
    }

    /// Mean output length of this distribution, estimated by sampling.
    /// Schedulers use historical means, not oracle values (§VII-A).
    pub fn mean_output_len(self, seed: u64) -> f64 {
        let mut rng = SimRng::new(seed).split(0x0u64);
        let n = 4096;
        (0..n)
            .map(|_| self.sample_output_len(&mut rng) as f64)
            .sum::<f64>()
            / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fraction_below(ds: Dataset, threshold: u32, n: usize, input: bool) -> f64 {
        let mut rng = SimRng::new(7);
        let below = (0..n)
            .filter(|_| {
                let x = if input {
                    ds.sample_input_len(&mut rng)
                } else {
                    ds.sample_output_len(&mut rng)
                };
                x < threshold
            })
            .count();
        below as f64 / n as f64
    }

    #[test]
    fn azure_conv_inputs_match_quoted_quantile() {
        // §IV-A2: 97.9% of conversation inputs are under 4 K tokens.
        let f = fraction_below(Dataset::AzureConv, 4096, 50_000, true);
        assert!((f - 0.979).abs() < 0.01, "AzureConv P(<4K) = {f}");
    }

    #[test]
    fn azure_code_inputs_match_quoted_quantile() {
        // §IV-A2: 85.9% of coding inputs are under 4 K tokens.
        let f = fraction_below(Dataset::AzureCode, 4096, 50_000, true);
        assert!((f - 0.859).abs() < 0.015, "AzureCode P(<4K) = {f}");
    }

    #[test]
    fn longbench_reaches_32k() {
        let mut rng = SimRng::new(3);
        let max = (0..20_000)
            .map(|_| Dataset::LongBench.sample_input_len(&mut rng))
            .max()
            .unwrap();
        assert!(max >= 30_000, "LongBench should reach ~32K, max {max}");
        // And its median input must dwarf the conversational datasets.
        let f = fraction_below(Dataset::LongBench, 4096, 20_000, true);
        assert!(f < 0.25, "LongBench P(<4K) = {f}");
    }

    #[test]
    fn sharegpt_outputs_are_longest() {
        let mean = |ds: Dataset| {
            let mut rng = SimRng::new(11);
            (0..20_000)
                .map(|_| ds.sample_output_len(&mut rng) as f64)
                .sum::<f64>()
                / 20_000.0
        };
        let share = mean(Dataset::ShareGpt);
        for ds in [
            Dataset::AzureConv,
            Dataset::AzureCode,
            Dataset::HumanEval,
            Dataset::LongBench,
        ] {
            assert!(share > mean(ds), "ShareGPT outputs should be longest");
        }
    }

    #[test]
    fn lengths_respect_clamps() {
        let mut rng = SimRng::new(5);
        for ds in Dataset::ALL {
            for _ in 0..5_000 {
                let (i, o) = ds.sample_lengths(&mut rng);
                assert!(i >= 16 || ds == Dataset::LongBench);
                assert!(i <= 32_768);
                assert!((1..=2_048).contains(&o));
            }
        }
    }

    #[test]
    fn mean_output_is_deterministic_per_seed() {
        let a = Dataset::AzureConv.mean_output_len(1);
        let b = Dataset::AzureConv.mean_output_len(1);
        assert_eq!(a, b);
        // Log-normal mean > median.
        assert!(a > 128.0 && a < 400.0, "AzureConv mean output {a}");
    }
}
