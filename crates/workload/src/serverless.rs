//! Azure-Serverless-style multi-model invocation generator.
//!
//! The paper maps each hosted LLM to one function of the Azure Serverless
//! trace (§IX-A), keeping three properties this generator reproduces:
//!
//! 1. **Skewed popularity** — "most models have few requests, while top
//!    models have many" (Fig. 21); the top 1% of functions contributes ≈26%
//!    of all requests (§IV-C). Model weights follow a Zipf law.
//! 2. **Burstiness** — hot functions see arrival bursts driving concurrency
//!    from 1 to beyond 128 (Fig. 12). A fraction of each model's requests
//!    arrive in tight bursts whose size scales with popularity.
//! 3. **Volume** — uniformly sampling 32/64/128 functions from the first
//!    30-minute segment yields 2 366 / 4 684 / 9 266 requests (~73.5 requests
//!    per model), aggregate 79/156/309 RPM (Fig. 21).

use serde::{Deserialize, Serialize};
use simcore::dist::{exponential, zipf_weights};
use simcore::rng::SimRng;
use simcore::time::{SimDuration, SimTime};

use crate::datasets::Dataset;
use crate::request::{ModelId, Request, RequestId, SloClass, Trace};

/// Parameters of one synthetic serverless trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceSpec {
    /// Number of hosted models (functions).
    pub n_models: u32,
    /// Trace window length.
    pub duration: SimDuration,
    /// Mean requests per model over the window (the Azure segment averages
    /// ≈73.5).
    pub requests_per_model: f64,
    /// Zipf exponent of the popularity law.
    pub zipf_s: f64,
    /// Fraction of each model's requests that arrive in bursts.
    pub burst_fraction: f64,
    /// Mean intra-burst inter-arrival gap, seconds.
    pub burst_gap_s: f64,
    /// Dataset supplying token lengths.
    pub dataset: Dataset,
    /// Seed; equal specs with equal seeds generate identical traces.
    pub seed: u64,
}

impl TraceSpec {
    /// The paper's §IX-A configuration: a 30-minute Azure-like segment with
    /// the conversation dataset.
    pub fn azure_like(n_models: u32, seed: u64) -> Self {
        TraceSpec {
            n_models,
            duration: SimDuration::from_secs(30 * 60),
            requests_per_model: 73.5,
            zipf_s: 1.05,
            burst_fraction: 0.5,
            burst_gap_s: 0.3,
            dataset: Dataset::AzureConv,
            seed,
        }
    }

    /// Replaces the length dataset (for the §IX-I1 sweep).
    pub fn with_dataset(mut self, dataset: Dataset) -> Self {
        self.dataset = dataset;
        self
    }

    /// Scales the request volume by `factor` (load sweeps).
    pub fn with_load_scale(mut self, factor: f64) -> Self {
        self.requests_per_model *= factor;
        self
    }

    /// Generates the trace.
    ///
    /// # Panics
    /// Panics if `n_models` is zero or `requests_per_model` is not positive.
    pub fn generate(&self) -> Trace {
        assert!(self.n_models > 0, "trace needs at least one model");
        assert!(
            self.requests_per_model > 0.0,
            "requests_per_model must be positive"
        );
        let root = SimRng::new(self.seed);
        let mut pop_rng = root.split(1);
        let mut arrivals_rng = root.split(2);
        let mut len_rng = root.split(3);

        let total = self.requests_per_model * self.n_models as f64;
        let mut weights = zipf_weights(self.n_models as usize, self.zipf_s);
        // Decouple model id from popularity rank.
        let mut ranks: Vec<usize> = (0..self.n_models as usize).collect();
        pop_rng.shuffle(&mut ranks);
        let mut per_model = vec![0usize; self.n_models as usize];
        for (rank, &model) in ranks.iter().enumerate() {
            let lambda = weights[rank] * total;
            // Randomized rounding keeps the expected total exact.
            let floor = lambda.floor();
            per_model[model] = floor as usize + usize::from(pop_rng.next_bool(lambda - floor));
        }
        weights.clear();

        let horizon = self.duration.as_secs_f64();
        let mut requests = Vec::with_capacity(total as usize + 16);
        for (model, &n) in per_model.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let burst_budget = (n as f64 * self.burst_fraction).round() as usize;
            let mean_burst = ((n as f64) / 8.0).clamp(3.0, 150.0);
            let mut placed = 0usize;
            // Bursts: geometric sizes around `mean_burst`, centers uniform.
            while placed < burst_budget {
                let size =
                    sample_burst_size(&mut arrivals_rng, mean_burst).min(burst_budget - placed);
                let start = arrivals_rng.next_f64() * horizon;
                let mut t = start;
                for _ in 0..size {
                    push_request(
                        &mut requests,
                        model as u32,
                        t.min(horizon),
                        self.dataset,
                        &mut len_rng,
                    );
                    t += exponential(&mut arrivals_rng, 1.0 / self.burst_gap_s);
                }
                placed += size;
            }
            // Background arrivals: uniform (Poisson) over the window.
            for _ in placed..n {
                let t = arrivals_rng.next_f64() * horizon;
                push_request(&mut requests, model as u32, t, self.dataset, &mut len_rng);
            }
        }

        let mut trace = Trace::new(requests, self.n_models, self.duration);
        for (i, r) in trace.requests.iter_mut().enumerate() {
            r.id = RequestId(i as u64);
        }
        trace
    }
}

fn sample_burst_size(rng: &mut SimRng, mean: f64) -> usize {
    // Geometric with the given mean, at least 1.
    let p = 1.0 / mean.max(1.0);
    let u = rng.next_f64_open();
    ((u.ln() / (1.0 - p).ln()).ceil() as usize).max(1)
}

fn push_request(
    out: &mut Vec<Request>,
    model: u32,
    at_s: f64,
    dataset: Dataset,
    len_rng: &mut SimRng,
) {
    let (input_len, output_len) = dataset.sample_lengths(len_rng);
    out.push(Request {
        id: RequestId(0), // assigned after the global sort
        model: ModelId(model),
        arrival: SimTime::from_secs_f64(at_s),
        input_len,
        output_len,
        class: SloClass::default(),
        session: Default::default(),
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TraceStats;

    #[test]
    fn volume_matches_figure21() {
        // Fig. 21: 2366 / 4684 / 9266 requests (±15% for synthetic jitter).
        for (n, expect) in [(32u32, 2366.0), (64, 4684.0), (128, 9266.0)] {
            let trace = TraceSpec::azure_like(n, 1).generate();
            let got = trace.len() as f64;
            assert!(
                (got / expect - 1.0).abs() < 0.15,
                "{n} models: {got} requests vs paper {expect}"
            );
        }
    }

    #[test]
    fn aggregate_rpm_matches_figure21() {
        let trace = TraceSpec::azure_like(64, 2).generate();
        let rpm = trace.aggregate_rpm();
        assert!((rpm / 156.0 - 1.0).abs() < 0.15, "64-model RPM {rpm}");
    }

    #[test]
    fn popularity_is_heavily_skewed() {
        let trace = TraceSpec::azure_like(128, 3).generate();
        let stats = TraceStats::from_trace(&trace);
        // §IV-C: the top 1% contributes ~26% of requests.
        let top_share = stats.top_models_share(0.01);
        assert!(
            (0.15..0.40).contains(&top_share),
            "top-1% share {top_share}"
        );
        // Fig. 21: most models have few requests.
        let median_rpm = stats.median_model_rpm();
        assert!(median_rpm < 2.0, "median per-model RPM {median_rpm}");
    }

    #[test]
    fn hot_model_bursts_above_128_concurrent() {
        // Fig. 12: top-percentile functions see concurrency beyond 128
        // (assuming ~60 s request residency).
        let trace = TraceSpec::azure_like(128, 4).generate();
        let stats = TraceStats::from_trace(&trace);
        let hot = stats.hottest_model();
        let peak = stats.peak_concurrency(hot, 60.0);
        assert!(peak > 128, "hot model peak concurrency {peak}");
    }

    #[test]
    fn cold_models_stay_low_concurrency() {
        let trace = TraceSpec::azure_like(128, 5).generate();
        let stats = TraceStats::from_trace(&trace);
        let cold = stats.coldest_nonempty_model();
        let peak = stats.peak_concurrency(cold, 60.0);
        assert!(peak <= 16, "cold model peak concurrency {peak}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = TraceSpec::azure_like(32, 9).generate();
        let b = TraceSpec::azure_like(32, 9).generate();
        assert_eq!(a.requests, b.requests);
        let c = TraceSpec::azure_like(32, 10).generate();
        assert_ne!(a.requests, c.requests);
    }

    #[test]
    fn arrivals_fit_window_and_are_sorted() {
        let spec = TraceSpec::azure_like(32, 11);
        let trace = spec.generate();
        let horizon = spec.duration.as_secs_f64() + 60.0; // bursts may spill a bit
        for w in trace.requests.windows(2) {
            assert!(w[0].arrival <= w[1].arrival);
        }
        assert!(trace
            .requests
            .iter()
            .all(|r| r.arrival.as_secs_f64() <= horizon));
    }

    #[test]
    fn load_scale_scales_volume() {
        let base = TraceSpec::azure_like(32, 12).generate().len() as f64;
        let double = TraceSpec::azure_like(32, 12)
            .with_load_scale(2.0)
            .generate()
            .len() as f64;
        assert!((double / base - 2.0).abs() < 0.2, "{double} vs 2×{base}");
    }
}
