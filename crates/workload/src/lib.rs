//! Synthetic workload generation for the SLINFER reproduction.
//!
//! The paper drives its evaluation with request *lengths* sampled from the
//! Azure LLM inference traces (and four other datasets, §IX-I1) and request
//! *arrivals* sampled from the Azure Serverless trace (one serverless
//! function per model, §IX-A) plus BurstGPT (§IX-I2). None of those traces
//! ship with this repository, so this crate generates synthetic equivalents
//! matched to every statistic the paper prints about them:
//!
//! - [`datasets`] — input/output token-length distributions for
//!   AzureConv, AzureCode, HumanEval, ShareGPT and LongBench, matched to
//!   Figure 34's CDFs and the quoted quantiles (97.9% of conversation and
//!   85.9% of coding inputs under 4 K tokens).
//! - [`serverless`] — the multi-model invocation generator: Zipf-skewed
//!   model popularity, bursty per-model arrivals, calibrated to Figure 21
//!   (2 366 / 4 684 / 9 266 requests over 30 min for 32 / 64 / 128 models)
//!   and Figure 12 (top-1% models see concurrency bursts beyond 128 and
//!   contribute ≈26% of requests).
//! - [`burstgpt`] — a Gamma-interarrival load generator for the §IX-I2
//!   sensitivity sweep.
//! - [`sessions`] — a multi-turn chat/session generator: heavy-tailed
//!   per-user session rates, geometric turn counts, exponential think-time
//!   gaps, and growing per-turn context, with every request tagged by
//!   [`request::SessionTag`] so schedulers can route turns back to the
//!   instance holding the session's KV cache.
//! - [`stats`] — trace characterization used by the Figure 21/12/34
//!   experiment binaries.
//!
//! # Example
//!
//! ```
//! use workload::serverless::TraceSpec;
//!
//! let trace = TraceSpec::azure_like(32, 42).generate();
//! assert_eq!(trace.n_models, 32);
//! // Figure 21: the 32-model trace holds ~2.4 K requests over 30 minutes.
//! assert!((2000..2800).contains(&trace.requests.len()));
//! ```

#![forbid(unsafe_code)]

pub mod burstgpt;
pub mod datasets;
pub mod request;
pub mod serverless;
pub mod sessions;
pub mod stats;

pub use datasets::Dataset;
pub use request::{ModelId, Request, RequestId, SessionTag, Slo, Trace};
pub use sessions::SessionSpec;
