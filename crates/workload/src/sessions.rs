//! Multi-turn chat session generator.
//!
//! All other generators in this crate emit *independent* requests, but real
//! production traffic from millions of users is dominated by *sessions*:
//! multi-turn conversations and agentic loops where each turn re-submits the
//! accumulated conversation prefix plus a few new tokens. That growing prefix
//! is exactly what the engine's prefix cache (see `engine::instance`) can
//! skip re-computing when a turn lands on the instance still holding the
//! session's KV blocks — so this generator tags every request with a
//! [`SessionTag`] tying it to its session and turn number.
//!
//! The shape mirrors the serverless generator's evidence base where the paper
//! gives one (§IV-C popularity skew applies to users as much as models) and
//! common chat-trace observations elsewhere:
//!
//! 1. **Heavy-tailed per-user rates** — per-user session counts follow a
//!    Zipf law, so a few power users contribute a large share of sessions.
//! 2. **Geometric turn counts** — most conversations are short, a tail runs
//!    long (clamped at [`SessionSpec::max_turns`]).
//! 3. **Think-time gaps** — a turn arrives only after the previous response
//!    has streamed out plus an exponential user think time.
//! 4. **Growing context** — turn `t`'s prompt is the accumulated prefix
//!    (previous prompt + previous completion) plus fresh tokens, clamped at
//!    [`SessionSpec::max_context`].
//!
//! Generation is a pure function of the spec (equal specs ⇒ byte-identical
//! traces), and the emitted [`Trace`] composes with [`Trace::merge`] and
//! `cluster::Scenario` segments: merging renumbers [`RequestId`]s but leaves
//! session tags untouched.

use serde::{Deserialize, Serialize};
use simcore::dist::{exponential, zipf_weights};
use simcore::rng::SimRng;
use simcore::time::{SimDuration, SimTime};

use crate::datasets::Dataset;
use crate::request::{ModelId, Request, RequestId, SessionTag, SloClass, Trace};

/// Parameters of one synthetic multi-turn session trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionSpec {
    /// Number of hosted models; each session picks one (Zipf-skewed).
    pub n_models: u32,
    /// Number of users generating sessions.
    pub n_users: u32,
    /// Trace window length (session *starts* fall inside it; late turns of a
    /// session may spill past the nominal end).
    pub duration: SimDuration,
    /// Mean sessions per user over the window.
    pub sessions_per_user: f64,
    /// Zipf exponent shared by user-rate and model-popularity skew.
    pub zipf_s: f64,
    /// Mean turns per session (geometric; at least 1).
    pub mean_turns: f64,
    /// Hard cap on turns per session.
    pub max_turns: u32,
    /// Mean user think time between a response finishing and the next turn,
    /// seconds (exponential).
    pub think_time_s: f64,
    /// Assumed streaming rate when spacing turns, output tokens per second.
    pub stream_tokens_per_s: f64,
    /// Context-length clamp: a turn's prompt never exceeds this.
    pub max_context: u32,
    /// Dataset supplying per-turn fresh-prompt and completion lengths.
    pub dataset: Dataset,
    /// Seed; equal specs with equal seeds generate identical traces.
    pub seed: u64,
}

impl SessionSpec {
    /// A chat-style default: ~8 users per hosted model, short conversations
    /// with a long tail, 30-minute window, conversation-dataset lengths.
    pub fn chat_like(n_models: u32, seed: u64) -> Self {
        SessionSpec {
            n_models,
            n_users: n_models * 8,
            duration: SimDuration::from_secs(30 * 60),
            sessions_per_user: 1.5,
            zipf_s: 1.05,
            mean_turns: 4.0,
            max_turns: 12,
            think_time_s: 30.0,
            stream_tokens_per_s: 20.0,
            max_context: 8192,
            dataset: Dataset::AzureConv,
            seed,
        }
    }

    /// Replaces the length dataset.
    pub fn with_dataset(mut self, dataset: Dataset) -> Self {
        self.dataset = dataset;
        self
    }

    /// Scales the session volume by `factor` (load sweeps).
    pub fn with_load_scale(mut self, factor: f64) -> Self {
        self.sessions_per_user *= factor;
        self
    }

    /// Generates the trace. Session ids are dense starting at 1, in user
    /// order; turns are numbered from 0 within each session.
    ///
    /// # Panics
    /// Panics if `n_models` or `n_users` is zero, or `sessions_per_user`,
    /// `mean_turns`, `think_time_s` or `stream_tokens_per_s` is not positive.
    pub fn generate(&self) -> Trace {
        assert!(self.n_models > 0, "trace needs at least one model");
        assert!(self.n_users > 0, "trace needs at least one user");
        assert!(
            self.sessions_per_user > 0.0,
            "sessions_per_user must be positive"
        );
        assert!(self.mean_turns > 0.0, "mean_turns must be positive");
        assert!(self.think_time_s > 0.0, "think_time_s must be positive");
        assert!(
            self.stream_tokens_per_s > 0.0,
            "stream_tokens_per_s must be positive"
        );

        let root = SimRng::new(self.seed);
        let mut pop_rng = root.split(1);
        let mut sched_rng = root.split(2);
        let mut len_rng = root.split(3);

        // Heavy-tailed per-user session counts (same randomized-rounding
        // idiom as the serverless generator, decoupling id from rank).
        let total = self.sessions_per_user * self.n_users as f64;
        let user_weights = zipf_weights(self.n_users as usize, self.zipf_s);
        let mut user_ranks: Vec<usize> = (0..self.n_users as usize).collect();
        pop_rng.shuffle(&mut user_ranks);
        let mut per_user = vec![0usize; self.n_users as usize];
        for (rank, &user) in user_ranks.iter().enumerate() {
            let lambda = user_weights[rank] * total;
            let floor = lambda.floor();
            per_user[user] = floor as usize + usize::from(pop_rng.next_bool(lambda - floor));
        }

        // Zipf model popularity, shuffled so model id ≠ rank.
        let model_weights = zipf_weights(self.n_models as usize, self.zipf_s);
        let mut model_ranks: Vec<usize> = (0..self.n_models as usize).collect();
        pop_rng.shuffle(&mut model_ranks);
        let mut model_cdf = vec![0.0f64; self.n_models as usize];
        let mut acc = 0.0;
        for (rank, &model) in model_ranks.iter().enumerate() {
            acc += model_weights[rank];
            model_cdf[model] = acc;
        }
        // Guard against float shortfall at the top of the CDF.
        if let Some(last) = model_cdf.last_mut() {
            *last = 1.0;
        }
        let sample_model = |rng: &mut SimRng, cdf: &[f64]| -> u32 {
            let mut hi = cdf.len() - 1;
            let u = rng.next_f64() * cdf[hi];
            let mut lo = 0usize;
            while lo < hi {
                let mid = (lo + hi) / 2;
                if cdf[mid] <= u {
                    lo = mid + 1;
                } else {
                    hi = mid;
                }
            }
            lo as u32
        };

        let horizon = self.duration.as_secs_f64();
        let mut requests = Vec::with_capacity(total as usize * 4 + 16);
        let mut sid = 0u64;
        for &n_sessions in &per_user {
            for _ in 0..n_sessions {
                sid += 1;
                let model = sample_model(&mut sched_rng, &model_cdf);
                let turns = sample_geometric(&mut sched_rng, self.mean_turns)
                    .clamp(1, self.max_turns as usize);
                let mut t = sched_rng.next_f64() * horizon;
                let mut context = 0u32;
                for turn in 0..turns {
                    let (fresh, output_len) = self.dataset.sample_lengths(&mut len_rng);
                    let input_len = context.saturating_add(fresh).min(self.max_context).max(1);
                    requests.push(Request {
                        id: RequestId(0), // assigned after the global sort
                        model: ModelId(model),
                        arrival: SimTime::from_secs_f64(t),
                        input_len,
                        output_len,
                        class: SloClass::default(),
                        session: SessionTag::new(sid, turn as u32),
                    });
                    // Next turn re-submits prompt + completion as its prefix.
                    context = input_len.saturating_add(output_len).min(self.max_context);
                    // Space turns by the streamed response plus a think gap.
                    let stream_s = output_len as f64 / self.stream_tokens_per_s;
                    t += stream_s + exponential(&mut sched_rng, 1.0 / self.think_time_s);
                }
            }
        }

        let mut trace = Trace::new(requests, self.n_models, self.duration);
        for (i, r) in trace.requests.iter_mut().enumerate() {
            r.id = RequestId(i as u64);
        }
        trace
    }
}

fn sample_geometric(rng: &mut SimRng, mean: f64) -> usize {
    let p = 1.0 / mean.max(1.0);
    let u = rng.next_f64_open();
    ((u.ln() / (1.0 - p).ln()).ceil() as usize).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn deterministic_per_seed() {
        let a = SessionSpec::chat_like(8, 7).generate();
        let b = SessionSpec::chat_like(8, 7).generate();
        assert_eq!(a.requests, b.requests);
        let c = SessionSpec::chat_like(8, 8).generate();
        assert_ne!(a.requests, c.requests);
    }

    #[test]
    fn turn_schedules_are_identical_across_regenerations() {
        // Stronger than request equality: the (session, turn) → arrival map
        // must reproduce exactly, which is what affinity routing keys on.
        let sched = |seed: u64| -> BTreeMap<(u64, u32), SimTime> {
            SessionSpec::chat_like(4, seed)
                .generate()
                .requests
                .iter()
                .map(|r| ((r.session.id, r.session.turn), r.arrival))
                .collect()
        };
        assert_eq!(sched(3), sched(3));
    }

    #[test]
    fn sessions_are_dense_with_contiguous_turns() {
        let trace = SessionSpec::chat_like(8, 1).generate();
        let mut turns: BTreeMap<u64, Vec<u32>> = BTreeMap::new();
        let mut models: BTreeMap<u64, ModelId> = BTreeMap::new();
        for r in &trace.requests {
            assert!(r.session.is_session(), "every request carries a session");
            turns.entry(r.session.id).or_default().push(r.session.turn);
            let prev = models.insert(r.session.id, r.model);
            assert!(prev.is_none_or(|m| m == r.model), "one model per session");
        }
        let max_sid = *turns.keys().next_back().expect("nonempty");
        assert_eq!(turns.len() as u64, max_sid, "session ids are dense from 1");
        for (sid, mut ts) in turns {
            ts.sort_unstable();
            let expect: Vec<u32> = (0..ts.len() as u32).collect();
            assert_eq!(ts, expect, "session {sid} turns are contiguous from 0");
        }
    }

    #[test]
    fn context_grows_within_sessions() {
        let trace = SessionSpec::chat_like(8, 2).generate();
        let mut by_session: BTreeMap<u64, Vec<(u32, u32, SimTime)>> = BTreeMap::new();
        for r in &trace.requests {
            by_session.entry(r.session.id).or_default().push((
                r.session.turn,
                r.input_len,
                r.arrival,
            ));
        }
        let spec = SessionSpec::chat_like(8, 2);
        let mut grew = 0usize;
        for turns in by_session.values_mut() {
            turns.sort_unstable_by_key(|&(t, ..)| t);
            for w in turns.windows(2) {
                let (_, prev_len, prev_at) = w[0];
                let (_, next_len, next_at) = w[1];
                assert!(next_at > prev_at, "turns arrive in order");
                assert!(
                    next_len > prev_len || next_len == spec.max_context,
                    "context grows until the clamp: {prev_len} -> {next_len}"
                );
                grew += 1;
            }
        }
        assert!(grew > 50, "multi-turn sessions must exist: {grew}");
    }

    #[test]
    fn volume_and_tail_shape() {
        let spec = SessionSpec::chat_like(8, 5);
        let trace = spec.generate();
        let expect = spec.n_users as f64 * spec.sessions_per_user * spec.mean_turns;
        let got = trace.len() as f64;
        assert!(
            (got / expect - 1.0).abs() < 0.35,
            "{got} requests vs expected ~{expect}"
        );
        // Heavy tail: some session hits the turn cap, most stay short.
        let mut turn_count: BTreeMap<u64, u32> = BTreeMap::new();
        for r in &trace.requests {
            let e = turn_count.entry(r.session.id).or_default();
            *e = (*e).max(r.session.turn + 1);
        }
        let long = turn_count
            .values()
            .filter(|&&t| t >= spec.max_turns)
            .count();
        let short = turn_count.values().filter(|&&t| t <= 2).count();
        assert!(long >= 1, "tail sessions should hit the cap");
        // Geometric at mean 4: P(turns <= 2) ~ 0.44, so 1-2-turn sessions
        // are the largest bucket without being an outright majority.
        assert!(
            short * 3 > turn_count.len(),
            "short sessions dominate the head: {short} of {}",
            turn_count.len()
        );
    }

    #[test]
    fn tags_survive_trace_merge() {
        let a = SessionSpec::chat_like(2, 1).generate();
        let b = SessionSpec::chat_like(2, 2).generate();
        let total = a.len() + b.len();
        let tags_before: usize = a
            .requests
            .iter()
            .chain(&b.requests)
            .filter(|r| r.session.is_session())
            .count();
        let merged = Trace::merge(vec![a, b]);
        assert_eq!(merged.len(), total);
        let tags_after = merged
            .requests
            .iter()
            .filter(|r| r.session.is_session())
            .count();
        assert_eq!(tags_before, tags_after);
        // Ids are renumbered densely even though tags survive.
        for (i, r) in merged.requests.iter().enumerate() {
            assert_eq!(r.id.0 as usize, i);
        }
    }
}
