//! BurstGPT-style load generator (§IX-I2).
//!
//! BurstGPT is a single-endpoint LLM trace with strongly bursty arrivals.
//! The paper redistributes its invocations across 64 models following a
//! Pareto distribution and samples segments at different aggregate RPS
//! (0.5–4). This generator reproduces that construction: Gamma-distributed
//! inter-arrival times (shape < 1 ⇒ over-dispersed, bursty) at a target
//! aggregate rate, with the model of each request drawn from a Pareto-tailed
//! popularity law.

use serde::{Deserialize, Serialize};
use simcore::dist::{discrete, gamma, zipf_weights};
use simcore::rng::SimRng;
use simcore::time::{SimDuration, SimTime};

use crate::datasets::Dataset;
use crate::request::{ModelId, Request, RequestId, SloClass, Trace};

/// Parameters of one BurstGPT-like segment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BurstGptSpec {
    /// Number of models the load is spread over (the paper uses 64).
    pub n_models: u32,
    /// Segment length.
    pub duration: SimDuration,
    /// Target aggregate requests per second.
    pub rps: f64,
    /// Coefficient of variation of inter-arrival times (>1 ⇒ bursty).
    pub burstiness_cv: f64,
    /// Pareto/Zipf exponent of the per-request model choice.
    pub zipf_s: f64,
    /// Dataset supplying token lengths.
    pub dataset: Dataset,
    /// Seed.
    pub seed: u64,
}

impl BurstGptSpec {
    /// The §IX-I2 configuration at the given aggregate RPS.
    pub fn paper(rps: f64, seed: u64) -> Self {
        BurstGptSpec {
            n_models: 64,
            duration: SimDuration::from_secs(30 * 60),
            rps,
            burstiness_cv: 2.0,
            zipf_s: 1.05,
            dataset: Dataset::AzureConv,
            seed,
        }
    }

    /// Generates the segment.
    ///
    /// # Panics
    /// Panics if `rps`, `burstiness_cv` or `n_models` is not positive.
    pub fn generate(&self) -> Trace {
        assert!(self.n_models > 0, "n_models must be positive");
        assert!(self.rps > 0.0, "rps must be positive");
        assert!(self.burstiness_cv > 0.0, "burstiness_cv must be positive");
        let root = SimRng::new(self.seed);
        let mut arr_rng = root.split(1);
        let mut model_rng = root.split(2);
        let mut len_rng = root.split(3);

        // Gamma inter-arrivals: shape k = 1/cv², scale θ = 1/(rps·k)
        // ⇒ mean 1/rps, CV as configured.
        let k = 1.0 / (self.burstiness_cv * self.burstiness_cv);
        let theta = 1.0 / (self.rps * k);
        let weights = zipf_weights(self.n_models as usize, self.zipf_s);

        let horizon = self.duration.as_secs_f64();
        let mut requests = Vec::new();
        let mut t = 0.0;
        loop {
            t += gamma(&mut arr_rng, k, theta);
            if t >= horizon {
                break;
            }
            let model = discrete(&mut model_rng, &weights) as u32;
            let (input_len, output_len) = self.dataset.sample_lengths(&mut len_rng);
            requests.push(Request {
                id: RequestId(requests.len() as u64),
                model: ModelId(model),
                arrival: SimTime::from_secs_f64(t),
                input_len,
                output_len,
                class: SloClass::default(),
                session: Default::default(),
            });
        }
        Trace::new(requests, self.n_models, self.duration)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_matches_target() {
        for rps in [0.5, 1.0, 2.0, 4.0] {
            let trace = BurstGptSpec::paper(rps, 1).generate();
            let got = trace.len() as f64 / trace.duration.as_secs_f64();
            assert!(
                (got / rps - 1.0).abs() < 0.10,
                "target {rps} rps, got {got}"
            );
        }
    }

    #[test]
    fn interarrivals_are_bursty() {
        let trace = BurstGptSpec::paper(2.0, 2).generate();
        let gaps: Vec<f64> = trace
            .requests
            .windows(2)
            .map(|w| w[1].arrival.as_secs_f64() - w[0].arrival.as_secs_f64())
            .collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
        let cv = var.sqrt() / mean;
        assert!(cv > 1.5, "inter-arrival CV {cv} should be bursty (>1.5)");
    }

    #[test]
    fn spread_over_many_models_with_skew() {
        let trace = BurstGptSpec::paper(4.0, 3).generate();
        let mut counts = vec![0usize; 64];
        for r in &trace.requests {
            counts[r.model.0 as usize] += 1;
        }
        let active = counts.iter().filter(|&&c| c > 0).count();
        assert!(active > 48, "most of the 64 models should see traffic");
        let max = *counts.iter().max().unwrap();
        let median = {
            let mut c = counts.clone();
            c.sort();
            c[32]
        };
        assert!(
            max > 5 * median.max(1),
            "popularity skew max {max} median {median}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = BurstGptSpec::paper(1.0, 7).generate();
        let b = BurstGptSpec::paper(1.0, 7).generate();
        assert_eq!(a.requests, b.requests);
    }
}
