//! Property-based tests for `Trace::merge`: the scenario builder's
//! workload axis leans on the merge being a well-behaved interleave —
//! sorted by arrival, densely renumbered, class-preserving, and the
//! identity on a single segment.

use proptest::prelude::*;

use simcore::time::{SimDuration, SimTime};
use workload::request::{ModelId, Request, RequestId, SloClass, Trace};

/// One generated segment: arrival offsets in milliseconds, each with an
/// input/output shape and an SLO class tag. Like every real generator's
/// output, ids are dense in arrival order (the driver's record table
/// requires that of any trace it replays).
fn arb_segment() -> impl Strategy<Value = Trace> {
    prop::collection::vec((0u64..600_000, 1u32..4096, 1u32..256, 0u16..3), 0..40).prop_map(
        |mut reqs| {
            reqs.sort_unstable();
            let requests = reqs
                .into_iter()
                .enumerate()
                .map(|(i, (ms, input, output, class))| Request {
                    id: RequestId(i as u64),
                    model: ModelId((i % 5) as u32),
                    arrival: SimTime::from_millis(ms),
                    input_len: input,
                    output_len: output,
                    class: SloClass(class),
                    session: Default::default(),
                })
                .collect();
            Trace::new(requests, 5, SimDuration::from_secs(600))
        },
    )
}

/// The multiset of payloads (everything but the renumbered id), sorted.
fn payloads(t: &Trace) -> Vec<(u64, u32, u32, u32, u16)> {
    let mut v: Vec<_> = t
        .requests
        .iter()
        .map(|r| {
            (
                r.arrival.as_millis(),
                r.model.0,
                r.input_len,
                r.output_len,
                r.class.0,
            )
        })
        .collect();
    v.sort_unstable();
    v
}

proptest! {
    #[test]
    fn merge_sorts_renumbers_and_preserves_payloads(
        segments in prop::collection::vec(arb_segment(), 1..5)
    ) {
        let mut expected: Vec<(u64, u32, u32, u32, u16)> = Vec::new();
        for s in &segments {
            expected.extend(payloads(s));
        }
        expected.sort_unstable();
        let merged = Trace::merge(segments);
        // Output is sorted by arrival…
        prop_assert!(merged
            .requests
            .windows(2)
            .all(|w| w[0].arrival <= w[1].arrival));
        // …ids are dense after renumbering…
        for (i, r) in merged.requests.iter().enumerate() {
            prop_assert_eq!(r.id.0 as usize, i);
        }
        // …and nothing is lost, duplicated, or rewritten (class tags
        // included) — the payload multiset is exactly the union.
        prop_assert_eq!(payloads(&merged), expected);
    }

    #[test]
    fn merge_is_identity_on_a_single_segment(segment in arb_segment()) {
        let merged = Trace::merge(vec![segment.clone()]);
        prop_assert_eq!(
            format!("{:?}", merged.requests),
            format!("{:?}", segment.requests)
        );
        prop_assert_eq!(merged.n_models, segment.n_models);
        prop_assert_eq!(
            merged.duration.as_millis(),
            segment.duration.as_millis()
        );
    }
}
