//! Execution-time noise.
//!
//! Real iteration times jitter around the analytic curve (interference,
//! allocator behaviour, kernel-launch variance). The simulator perturbs
//! every executed iteration with multiplicative log-normal noise so that
//! (a) SLINFER's interpolating quantifier sees realistic estimation error
//! (the paper reports 5.9% TTFT / 3.9% TPOT average deviation) and (b) the
//! 10% overestimation applied during shadow validation (§VI-C) is actually
//! load-bearing.

use simcore::dist::standard_normal;
use simcore::rng::SimRng;

/// Multiplicative log-normal noise with a configurable coefficient of
/// variation.
///
/// ```
/// use hwmodel::NoiseModel;
/// use simcore::rng::SimRng;
///
/// let noise = NoiseModel::new(0.05);
/// let mut rng = SimRng::new(1);
/// let t = noise.apply(0.100, &mut rng);
/// assert!(t > 0.0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct NoiseModel {
    sigma: f64,
}

impl NoiseModel {
    /// Creates a noise model with the given coefficient of variation
    /// (e.g. `0.05` for ±5% typical jitter). Zero disables noise.
    ///
    /// # Panics
    /// Panics if `cv` is negative or not finite.
    pub fn new(cv: f64) -> Self {
        assert!(cv.is_finite() && cv >= 0.0, "noise cv must be >= 0");
        NoiseModel { sigma: cv }
    }

    /// A disabled noise model (always returns the input unchanged).
    pub fn off() -> Self {
        NoiseModel { sigma: 0.0 }
    }

    /// Perturbs a base duration (seconds), preserving positivity and the
    /// mean up to O(sigma²).
    pub fn apply(&self, base_seconds: f64, rng: &mut SimRng) -> f64 {
        if self.sigma == 0.0 {
            return base_seconds;
        }
        // ln-space mean correction keeps E[noisy] ≈ base.
        let z = standard_normal(rng);
        base_seconds * (self.sigma * z - 0.5 * self.sigma * self.sigma).exp()
    }

    /// The configured coefficient of variation.
    pub fn cv(&self) -> f64 {
        self.sigma
    }
}

impl Default for NoiseModel {
    /// The workspace default: 5% jitter, matching the quantifier-error
    /// magnitudes reported in §VI-B.
    fn default() -> Self {
        NoiseModel::new(0.05)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_is_identity() {
        let mut rng = SimRng::new(1);
        assert_eq!(NoiseModel::off().apply(1.5, &mut rng), 1.5);
    }

    #[test]
    fn preserves_mean_and_positivity() {
        let noise = NoiseModel::new(0.05);
        let mut rng = SimRng::new(2);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let t = noise.apply(0.25, &mut rng);
            assert!(t > 0.0);
            sum += t;
        }
        let mean = sum / n as f64;
        assert!(
            (mean / 0.25 - 1.0).abs() < 0.01,
            "mean ratio {}",
            mean / 0.25
        );
    }

    #[test]
    fn spread_matches_cv() {
        let noise = NoiseModel::new(0.10);
        let mut rng = SimRng::new(3);
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| noise.apply(1.0, &mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        let cv = var.sqrt() / mean;
        assert!((cv - 0.10).abs() < 0.01, "cv {cv}");
    }

    #[test]
    #[should_panic(expected = "noise cv must be >= 0")]
    fn negative_cv_rejected() {
        NoiseModel::new(-0.1);
    }
}
