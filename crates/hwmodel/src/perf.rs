//! The analytic latency model and the oracle trait behind which it hides.
//!
//! `slinfer`'s quantifier (§VI-B) treats hardware as a black box that can be
//! sampled; in this reproduction the black box is [`AnalyticPerf`], accessed
//! through [`PerfOracle`]. The model:
//!
//! - **Prefill** (`TTFT` minus queueing): FLOPs = `2·P·L + 4·L²·hidden·layers`
//!   (dense GEMMs plus quadratic attention), divided by the node's effective
//!   prefill TFLOPs.
//! - **Decode** (one iteration = one token for every running sequence):
//!   `t = weights/BW + B·2P/C_dec + Σctx·kv_per_token/BW` — a weights pass
//!   shared by the whole batch (why batching is sub-linear, Fig. 7), a
//!   per-sequence compute term, and the KV-read term that grows with context.
//! - **Load**: weights / tier bandwidth, where the tier is the warmest
//!   [`CheckpointTier`] holding the checkpoint (HBM co-resident copy, DRAM
//!   cache, local SSD, or a remote registry fetch — ServerlessLLM's
//!   multi-tier loader), divided further by the number of loads sharing
//!   the node's loading channel.
//! - **KV rescale**: `alloc·new + copy·moved` (Fig. 16/17 procedure).
//!
//! INT4 quantization (§X) shrinks the weights pass and load time via
//! [`ModelSpec::weights_bytes`]; compute terms are unchanged (AWQ kernels
//! dequantize on the fly).
//!
//! Every coefficient is validated against the paper in this module's tests.

use crate::hardware::{CheckpointTier, HardwareSpec};
use crate::model::ModelSpec;

/// A source of iteration-time estimates.
///
/// Implemented by [`AnalyticPerf`] (ground truth) and by `slinfer`'s
/// interpolating quantifier; both sides of the estimation-error experiment
/// (§VI-B: 5.9% TTFT / 3.9% TPOT deviation) speak this trait.
pub trait PerfOracle {
    /// Seconds to run a prefill iteration over `input_len` tokens on
    /// hardware `hw` holding a `share` fraction of the node.
    fn prefill_time(&self, model: &ModelSpec, hw: &HardwareSpec, input_len: u32, share: f64)
        -> f64;

    /// Seconds to run one decode iteration for a batch of `batch` sequences
    /// whose contexts total `total_ctx_tokens` tokens.
    fn decode_time(
        &self,
        model: &ModelSpec,
        hw: &HardwareSpec,
        batch: u32,
        total_ctx_tokens: u64,
        share: f64,
    ) -> f64;

    /// [`PerfOracle::prefill_time`] for a tensor-parallel instance of
    /// degree `tp` spanning slots whose shares sum to `share`. The default
    /// ignores the interconnect (degree 1 semantics); [`AnalyticPerf`]
    /// adds the all-reduce term.
    fn prefill_time_tp(
        &self,
        model: &ModelSpec,
        hw: &HardwareSpec,
        input_len: u32,
        share: f64,
        _tp: u32,
    ) -> f64 {
        self.prefill_time(model, hw, input_len, share)
    }

    /// [`PerfOracle::decode_time`] for a tensor-parallel instance of degree
    /// `tp`. See [`PerfOracle::prefill_time_tp`].
    fn decode_time_tp(
        &self,
        model: &ModelSpec,
        hw: &HardwareSpec,
        batch: u32,
        total_ctx_tokens: u64,
        share: f64,
        _tp: u32,
    ) -> f64 {
        self.decode_time(model, hw, batch, total_ctx_tokens, share)
    }

    /// Seconds to cold-start-load the model's weights into serving memory
    /// from checkpoint tier `tier`, while `concurrent` loads (including
    /// this one) share the node's loading channel: `k` simultaneous loads
    /// each see `1/k` of the tier's bandwidth (ServerlessLLM's multi-tier
    /// loader behind one shared staging pipeline). A tensor-parallel
    /// deployment is *one* load here — its shard streams are already
    /// aggregated in [`HardwareSpec::ganged`]'s `load_bw_gbps`, so a TP
    /// group must never be charged as `k` channel contenders.
    ///
    /// With `tier == Dram` and `concurrent <= 1` this is exactly the flat
    /// legacy loader (`weights / load_bw`), bit for bit.
    fn load_time(
        &self,
        model: &ModelSpec,
        hw: &HardwareSpec,
        tier: CheckpointTier,
        concurrent: u32,
    ) -> f64 {
        let k = concurrent.max(1) as f64;
        model.weights_bytes() as f64 / ((hw.tier_bw_gbps(tier) / k) * 1e9)
    }
}

/// The calibrated closed-form model (see module docs).
#[derive(Debug, Clone, Default)]
pub struct AnalyticPerf {
    _private: (),
}

impl AnalyticPerf {
    /// Creates the model. All coefficients come from the [`HardwareSpec`]
    /// and [`ModelSpec`] passed per call, so one instance serves any mix of
    /// hardware.
    pub fn new() -> Self {
        AnalyticPerf { _private: () }
    }

    /// Seconds to rescale a KV cache from `old_bytes` to `new_bytes` when
    /// `used_bytes` of it hold live pages that must be copied.
    ///
    /// Matches Figure 17: scale-*up* is dominated by allocating the enlarged
    /// block array (≈0.03 s/GB on an A100 — 32→64 GB ≈ 1.9 s), scale-*down*
    /// allocates only the small new array (32→16 GB ≈ 0.3 s). The copy moves
    /// `min(used, new)` bytes either way.
    pub fn kv_scale_time(
        &self,
        hw: &HardwareSpec,
        old_bytes: u64,
        new_bytes: u64,
        used_bytes: u64,
    ) -> f64 {
        let moved = used_bytes.min(new_bytes) as f64 / 1e9;
        let alloc = new_bytes as f64 / 1e9;
        let rate = if new_bytes >= old_bytes {
            hw.kv_up_s_per_gb
        } else {
            hw.kv_down_s_per_gb
        };
        rate * alloc + hw.kv_copy_s_per_gb * moved
    }

    /// Seconds of tensor-parallel collective overhead for one iteration
    /// that processes `tokens` tokens (prompt tokens for prefill, one per
    /// decoding sequence for decode) at TP degree `tp`.
    ///
    /// Each transformer layer runs two all-reduces over hidden-size FP16
    /// activations (post-attention and post-MLP): `2 · layers · hidden · 2`
    /// bytes per token, of which a ring all-reduce moves `2(tp−1)/tp` per
    /// device, at the node's effective link bandwidth — plus `2 · layers ·
    /// (tp−1)` latency hops per iteration. Degree 1 costs nothing, so every
    /// single-slot code path is numerically untouched.
    pub fn tp_comm_time(&self, model: &ModelSpec, hw: &HardwareSpec, tp: u32, tokens: u64) -> f64 {
        if tp <= 1 {
            return 0.0;
        }
        let bytes_per_token = 2.0 * model.layers as f64 * model.hidden as f64 * 2.0;
        let ring = 2.0 * (tp as f64 - 1.0) / tp as f64;
        let volume = tokens as f64 * bytes_per_token * ring;
        let hops = 2.0 * model.layers as f64 * (tp as f64 - 1.0);
        volume / (hw.link_bw_gbps * 1e9) + hops * hw.link_latency_s
    }

    /// Largest batch size whose steady-state decode iteration stays within
    /// `tpot_slo` seconds, with every sequence at context length `ctx`.
    ///
    /// Returns 0 when even a single sequence misses the SLO. This solves the
    /// compute side of Table II; callers intersect it with the KV-capacity
    /// bound for the memory side. The model's deployed TP degree is charged
    /// its all-reduce overhead, so the bound matches what the simulation
    /// will actually time (degree 1 is the unchanged legacy path).
    pub fn max_batch_under_tpot(
        &self,
        model: &ModelSpec,
        hw: &HardwareSpec,
        ctx: u32,
        share: f64,
        tpot_slo: f64,
    ) -> u32 {
        let tp = model.tp_degree.max(1);
        let mut lo = 0u32;
        let mut hi = 4096u32;
        while lo < hi {
            let mid = (lo + hi).div_ceil(2);
            let t = self.decode_time_tp(model, hw, mid, mid as u64 * ctx as u64, share, tp);
            if t <= tpot_slo {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        lo
    }
}

impl PerfOracle for AnalyticPerf {
    fn prefill_time(
        &self,
        model: &ModelSpec,
        hw: &HardwareSpec,
        input_len: u32,
        share: f64,
    ) -> f64 {
        assert!(share > 0.0 && share <= 1.0, "share must be in (0,1]");
        let l = input_len as f64;
        let dense = 2.0 * model.params as f64 * l;
        let attn = 4.0 * l * l * model.hidden as f64 * model.layers as f64;
        dense / (hw.prefill_tflops * share * 1e12) + attn / (hw.attn_tflops * share * 1e12)
    }

    fn decode_time(
        &self,
        model: &ModelSpec,
        hw: &HardwareSpec,
        batch: u32,
        total_ctx_tokens: u64,
        share: f64,
    ) -> f64 {
        assert!(share > 0.0 && share <= 1.0, "share must be in (0,1]");
        if batch == 0 {
            return 0.0;
        }
        let bw = hw.mem_bw_gbps * share * 1e9;
        let weights_pass = model.weights_bytes() as f64 / bw;
        let per_seq = 2.0 * model.params as f64 / (hw.decode_tflops * share * 1e12);
        let kv_read = total_ctx_tokens as f64 * model.kv_bytes_per_token() as f64 / bw;
        weights_pass + batch as f64 * per_seq + kv_read
    }

    fn prefill_time_tp(
        &self,
        model: &ModelSpec,
        hw: &HardwareSpec,
        input_len: u32,
        share: f64,
        tp: u32,
    ) -> f64 {
        self.prefill_time(model, hw, input_len, share)
            + self.tp_comm_time(model, hw, tp, input_len as u64)
    }

    fn decode_time_tp(
        &self,
        model: &ModelSpec,
        hw: &HardwareSpec,
        batch: u32,
        total_ctx_tokens: u64,
        share: f64,
        tp: u32,
    ) -> f64 {
        self.decode_time(model, hw, batch, total_ctx_tokens, share)
            + self.tp_comm_time(model, hw, tp, batch as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn within(actual: f64, expected: f64, tol: f64) -> bool {
        (actual - expected).abs() / expected <= tol
    }

    /// Table I, 4th-gen row: TTFT 149 / 567 / 2748 ms at 256 / 1K / 4K.
    #[test]
    fn table1_xeon4_ttft() {
        let p = AnalyticPerf::new();
        let m = ModelSpec::llama2_7b();
        let hw = HardwareSpec::xeon4_amx_32c();
        for (len, expect_ms) in [(256u32, 149.0), (1024, 567.0), (4096, 2748.0)] {
            let t = p.prefill_time(&m, &hw, len, 1.0) * 1e3;
            assert!(within(t, expect_ms, 0.10), "len {len}: {t} vs {expect_ms}");
        }
    }

    /// Table I, 3rd-gen row: TTFT 1003 / 4113 / 18612 ms.
    #[test]
    fn table1_xeon3_ttft() {
        let p = AnalyticPerf::new();
        let m = ModelSpec::llama2_7b();
        let hw = HardwareSpec::xeon3_32c();
        for (len, expect_ms) in [(256u32, 1003.0), (1024, 4113.0), (4096, 18612.0)] {
            let t = p.prefill_time(&m, &hw, len, 1.0) * 1e3;
            assert!(within(t, expect_ms, 0.10), "len {len}: {t} vs {expect_ms}");
        }
    }

    /// Table I TPOT columns, 4th-gen: 71 / 196 / 80 / 459 ms at
    /// {1,32}bs × {1K,4K}.
    #[test]
    fn table1_xeon4_tpot() {
        let p = AnalyticPerf::new();
        let m = ModelSpec::llama2_7b();
        let hw = HardwareSpec::xeon4_amx_32c();
        let cases = [
            (1u32, 1024u64, 71.0),
            (32, 32 * 1024, 196.0),
            (1, 4096, 80.0),
            (32, 32 * 4096, 459.0),
        ];
        for (bs, total, expect_ms) in cases {
            let t = p.decode_time(&m, &hw, bs, total, 1.0) * 1e3;
            assert!(
                within(t, expect_ms, 0.10),
                "bs {bs} total {total}: {t} vs {expect_ms}"
            );
        }
    }

    /// Table I TPOT columns, 3rd-gen: 100 / 338 / 110 / 697 ms.
    #[test]
    fn table1_xeon3_tpot() {
        let p = AnalyticPerf::new();
        let m = ModelSpec::llama2_7b();
        let hw = HardwareSpec::xeon3_32c();
        let cases = [
            (1u32, 1024u64, 100.0),
            (32, 32 * 1024, 338.0),
            (1, 4096, 110.0),
            (32, 32 * 4096, 697.0),
        ];
        for (bs, total, expect_ms) in cases {
            let t = p.decode_time(&m, &hw, bs, total, 1.0) * 1e3;
            assert!(
                within(t, expect_ms, 0.10),
                "bs {bs} total {total}: {t} vs {expect_ms}"
            );
        }
    }

    /// §IX-A: DeepSeek-R1-Distill-Qwen-7B-sized models behave like Llama-2-7B;
    /// and §X: decoding of Llama-3.1-8B takes at least 74 ms on the CPU.
    #[test]
    fn decode_floor_8b_cpu() {
        let p = AnalyticPerf::new();
        let m = ModelSpec::llama3_1_8b();
        let hw = HardwareSpec::xeon4_amx_32c();
        let t = p.decode_time(&m, &hw, 1, 1024, 1.0) * 1e3;
        assert!(within(t, 74.0, 0.15), "8B decode floor {t} ms");
    }

    /// §X: processing 32 K inputs takes ~84 s on the CPU (Llama-3.1-8B).
    #[test]
    fn cpu_32k_prefill_is_about_84s() {
        let p = AnalyticPerf::new();
        let m = ModelSpec::llama3_1_8b();
        let hw = HardwareSpec::xeon4_amx_32c();
        let t = p.prefill_time(&m, &hw, 32_768, 1.0);
        assert!(within(t, 84.0, 0.20), "32K prefill {t} s");
    }

    /// Figure 6 shape: CPU meets the 8 s TTFT SLO for 7B/13B at short inputs,
    /// 34B never on CPU at long inputs; GPU always comfortable.
    #[test]
    fn fig6_slo_feasibility_shape() {
        let p = AnalyticPerf::new();
        let cpu = HardwareSpec::xeon4_amx_32c();
        let gpu = HardwareSpec::a100_80g();
        let slo_8s = 8.0;
        assert!(p.prefill_time(&ModelSpec::llama2_7b(), &cpu, 4096, 1.0) < slo_8s);
        assert!(p.prefill_time(&ModelSpec::llama2_13b(), &cpu, 4096, 1.0) < slo_8s);
        assert!(p.prefill_time(&ModelSpec::codellama_34b(), &cpu, 8192, 1.0) > slo_8s);
        assert!(p.prefill_time(&ModelSpec::codellama_34b(), &gpu, 8192, 1.0) < slo_8s);
    }

    /// §IX-I1: CPUs handle inputs up to ~8.4 K tokens within the 8 s TTFT SLO
    /// (Llama-3.1-8B).
    #[test]
    fn cpu_ttft_crossover_near_8_4k() {
        let p = AnalyticPerf::new();
        let m = ModelSpec::llama3_1_8b();
        let hw = HardwareSpec::xeon4_amx_32c();
        let t_8k = p.prefill_time(&m, &hw, 8400, 1.0);
        assert!(
            within(t_8k, 8.0, 0.25),
            "8.4K prefill should sit near the 8 s SLO, got {t_8k}"
        );
    }

    /// Table II compute side: full-node CPU concurrency limits 27 (7B@2K)
    /// and 15 (7B@4K); halves/thirds/quarters match the paper's pattern.
    #[test]
    fn table2_cpu_limits() {
        let p = AnalyticPerf::new();
        let m = ModelSpec::llama2_7b();
        let hw = HardwareSpec::xeon4_amx_32c();
        let limit = |ctx, share| p.max_batch_under_tpot(&m, &hw, ctx, share, 0.25);
        let full_2k = limit(2048, 1.0);
        let half_2k = limit(2048, 0.5);
        let third_2k = limit(2048, 1.0 / 3.0);
        let quarter_2k = limit(2048, 0.25);
        assert!(
            (25..=29).contains(&full_2k),
            "C-7B-2K full {full_2k} (paper 27)"
        );
        assert!(
            (7..=10).contains(&half_2k),
            "C-7B-2K half {half_2k} (paper 9)"
        );
        assert!(
            (1..=3).contains(&third_2k),
            "C-7B-2K third {third_2k} (paper 2)"
        );
        assert_eq!(quarter_2k, 0, "C-7B-2K quarter infeasible (paper '-')");
        let full_4k = limit(4096, 1.0);
        assert!(
            (13..=17).contains(&full_4k),
            "C-7B-4K full {full_4k} (paper 15)"
        );
        // Fragmentation cost (§IV-C): two halves yield far less than one full.
        assert!(2 * half_2k < full_2k);
    }

    /// Figure 10 shape: A100 decode throughput ~1K+ tokens/s at batch 64.
    #[test]
    fn fig10_gpu_decode_throughput() {
        let p = AnalyticPerf::new();
        let m = ModelSpec::llama2_7b();
        let gpu = HardwareSpec::a100_80g();
        let t = p.decode_time(&m, &gpu, 64, 64 * 1024, 1.0);
        let tput = 64.0 / t;
        assert!(tput > 1000.0, "batch-64 decode throughput {tput} tok/s");
        // And batching is strongly sub-linear: 64× batch < 8× time.
        let t1 = p.decode_time(&m, &gpu, 1, 1024, 1.0);
        assert!(t < 8.0 * t1);
    }

    /// Figure 17: scaling a 32 GB cache down to 16 GB ≈ 0.3 s, up to
    /// 64 GB ≈ 1.9 s (GPU, cache full).
    #[test]
    fn fig17_kv_scale_costs() {
        let p = AnalyticPerf::new();
        let gpu = HardwareSpec::a100_80g();
        let gb = 1_000_000_000u64;
        let down = p.kv_scale_time(&gpu, 32 * gb, 16 * gb, 16 * gb);
        let up = p.kv_scale_time(&gpu, 32 * gb, 64 * gb, 32 * gb);
        assert!(within(down, 0.3, 0.25), "scale-down {down} s (paper 0.3)");
        assert!(within(up, 1.9, 0.25), "scale-up {up} s (paper 1.9)");
    }

    /// §IX-A: cold-start loads a 7B model in about 1 second (DRAM tier —
    /// the ServerlessLLM fast-loader path the flat legacy loader modeled).
    #[test]
    fn sllm_loader_speed() {
        let p = AnalyticPerf::new();
        let t = p.load_time(
            &ModelSpec::llama2_7b(),
            &HardwareSpec::a100_80g(),
            CheckpointTier::Dram,
            1,
        );
        assert!(within(t, 1.0, 0.10), "7B load {t} s");
    }

    /// Tier ordering: an HBM hit is ≈ 0 next to any real load, DRAM beats
    /// SSD beats a remote registry fetch, on both node classes.
    #[test]
    fn tier_load_times_are_ordered() {
        let p = AnalyticPerf::new();
        let m = ModelSpec::llama2_7b();
        for hw in [HardwareSpec::a100_80g(), HardwareSpec::xeon4_amx_32c()] {
            let t = |tier| p.load_time(&m, &hw, tier, 1);
            let (hbm, dram, ssd, remote) = (
                t(CheckpointTier::Hbm),
                t(CheckpointTier::Dram),
                t(CheckpointTier::Ssd),
                t(CheckpointTier::Remote),
            );
            assert!(
                hbm <= 0.1 * dram,
                "{}: HBM hit {hbm} s must be ≈ 0",
                hw.name
            );
            assert!(hbm < dram && dram < ssd && ssd < remote, "{}", hw.name);
            // Exact ratios: each tier is weights over its bandwidth.
            assert!(within(
                remote / dram,
                hw.load_bw_gbps / hw.remote_bw_gbps,
                1e-9
            ));
        }
    }

    /// The shared loading channel: k simultaneous loads each see bw/k, so
    /// per-load time scales exactly k× at any tier.
    #[test]
    fn contention_divides_bandwidth_exactly() {
        let p = AnalyticPerf::new();
        let m = ModelSpec::llama2_13b();
        let hw = HardwareSpec::a100_80g();
        for tier in CheckpointTier::ALL {
            let alone = p.load_time(&m, &hw, tier, 1);
            for k in [2u32, 3, 7] {
                let contended = p.load_time(&m, &hw, tier, k);
                assert!(
                    within(contended, alone * k as f64, 1e-12),
                    "{tier:?} k={k}: {contended} vs {}",
                    alone * k as f64
                );
            }
        }
        // concurrent == 0 is clamped to the uncontended path.
        assert_eq!(
            p.load_time(&m, &hw, CheckpointTier::Dram, 0),
            p.load_time(&m, &hw, CheckpointTier::Dram, 1)
        );
    }

    /// `ganged(n)` scales the DRAM fast-loader path n× (each device
    /// ingests its shard in parallel) but not the host-level SSD/NIC
    /// tiers — and a TP group is one load, so loading a TP=n model on an
    /// n-gang from DRAM costs exactly what one device's full-model load
    /// costs (the shards split n ways across an n× channel).
    #[test]
    fn ganged_load_interacts_with_tiers() {
        let p = AnalyticPerf::new();
        let m = ModelSpec::llama2_13b();
        let one = HardwareSpec::a100_80g();
        let gang = one.ganged(4);
        let dram_one = p.load_time(&m, &one, CheckpointTier::Dram, 1);
        let dram_gang = p.load_time(&m, &gang, CheckpointTier::Dram, 1);
        assert!(within(dram_gang * 4.0, dram_one, 1e-12));
        // SSD/remote fetches are host-bound: no speedup from more devices.
        assert_eq!(
            p.load_time(&m, &one, CheckpointTier::Ssd, 1),
            p.load_time(&m, &gang, CheckpointTier::Ssd, 1)
        );
        assert_eq!(
            p.load_time(&m, &one, CheckpointTier::Remote, 1),
            p.load_time(&m, &gang, CheckpointTier::Remote, 1)
        );
        // Two TP groups loading side by side contend 2-way — not 2·tp-way.
        let two_groups = p.load_time(&m, &gang, CheckpointTier::Dram, 2);
        assert!(within(two_groups, 2.0 * dram_gang, 1e-12));
    }

    /// §IV-A2 tight-SLO limits: at 100 ms TPOT only ≤7B works, batch ≤9 at
    /// 1K and ≤3 at 4K; at 50 ms even 7B is infeasible on CPU.
    #[test]
    fn tight_slo_limits() {
        let p = AnalyticPerf::new();
        let m7 = ModelSpec::llama2_7b();
        let m13 = ModelSpec::llama2_13b();
        let hw = HardwareSpec::xeon4_amx_32c();
        // The paper cites 9 (1K) and 3 (4K); a Table-I-consistent weights
        // pass of ~67 ms leaves a somewhat smaller budget, so we assert the
        // qualitative ordering (small limits, 4K < 1K) — see EXPERIMENTS.md.
        let b_100_1k = p.max_batch_under_tpot(&m7, &hw, 1024, 1.0, 0.10);
        let b_100_4k = p.max_batch_under_tpot(&m7, &hw, 4096, 1.0, 0.10);
        assert!(
            (3..=11).contains(&b_100_1k),
            "100ms/1K batch {b_100_1k} (paper 9)"
        );
        assert!(
            (1..=4).contains(&b_100_4k),
            "100ms/4K batch {b_100_4k} (paper 3)"
        );
        assert!(b_100_4k < b_100_1k);
        assert_eq!(p.max_batch_under_tpot(&m7, &hw, 1024, 1.0, 0.05), 0);
        assert_eq!(p.max_batch_under_tpot(&m13, &hw, 1024, 1.0, 0.10), 0);
    }

    /// Figure 8 shape: 13B on CPU at batch 32 violates the 250 ms TPOT SLO at
    /// 2K context but not at 512.
    #[test]
    fn fig8_13b_cpu_violation_crossover() {
        let p = AnalyticPerf::new();
        let m = ModelSpec::llama2_13b();
        let hw = HardwareSpec::xeon4_amx_32c();
        let t_512 = p.decode_time(&m, &hw, 32, 32 * 512, 1.0);
        let t_2k = p.decode_time(&m, &hw, 32, 32 * 2048, 1.0);
        // The paper's firm claims: the 2K point violates the SLO after a ≈2×
        // growth from the 512 point (which sits right at the SLO boundary).
        assert!(
            t_512 < 0.28,
            "13B bs32 @512 should sit near the SLO: {t_512}"
        );
        assert!(t_2k > 0.25, "13B bs32 @2K should violate SLO: {t_2k}");
        let growth = t_2k / t_512;
        assert!((1.6..2.4).contains(&growth), "≈2× growth: {growth}");
    }

    /// Figure 7 shape: 7B CPU TPOT at batch 4 is only ~14% above batch 1
    /// (1K token length).
    #[test]
    fn fig7_small_batch_penalty() {
        let p = AnalyticPerf::new();
        let m = ModelSpec::llama2_7b();
        let hw = HardwareSpec::xeon4_amx_32c();
        let t1 = p.decode_time(&m, &hw, 1, 1024, 1.0);
        let t4 = p.decode_time(&m, &hw, 4, 4 * 1024, 1.0);
        let growth = t4 / t1 - 1.0;
        assert!((0.08..0.22).contains(&growth), "batch-4 penalty {growth}");
    }

    /// INT4 shrinks the weights pass proportionally (§X).
    #[test]
    fn int4_speeds_decode_floor() {
        use crate::model::Precision;
        let p = AnalyticPerf::new();
        let gpu = HardwareSpec::a100_80g();
        let fp16 = ModelSpec::codestral_22b();
        let int4 = fp16.clone().with_precision(Precision::Int4);
        let t_fp16 = p.decode_time(&fp16, &gpu, 1, 1024, 1.0);
        let t_int4 = p.decode_time(&int4, &gpu, 1, 1024, 1.0);
        assert!(t_int4 < t_fp16);
        let t_load_fp16 = p.load_time(&fp16, &gpu, CheckpointTier::Dram, 1);
        let t_load_int4 = p.load_time(&int4, &gpu, CheckpointTier::Dram, 1);
        assert!(within(t_load_int4 * 4.0, t_load_fp16, 0.01));
    }

    #[test]
    fn zero_batch_decodes_instantly() {
        let p = AnalyticPerf::new();
        let t = p.decode_time(
            &ModelSpec::llama2_7b(),
            &HardwareSpec::a100_80g(),
            0,
            0,
            1.0,
        );
        assert_eq!(t, 0.0);
    }

    #[test]
    #[should_panic(expected = "share must be in (0,1]")]
    fn prefill_rejects_bad_share() {
        AnalyticPerf::new().prefill_time(
            &ModelSpec::llama2_7b(),
            &HardwareSpec::a100_80g(),
            128,
            0.0,
        );
    }

    /// TP degree 1 is the identity: every pre-TP code path is unchanged.
    #[test]
    fn tp_degree_one_is_free() {
        let p = AnalyticPerf::new();
        let m = ModelSpec::llama2_13b();
        let hw = HardwareSpec::a100_80g().ganged(4);
        assert_eq!(p.tp_comm_time(&m, &hw, 1, 4096), 0.0);
        assert_eq!(
            p.prefill_time_tp(&m, &hw, 2048, 0.25, 1),
            p.prefill_time(&m, &hw, 2048, 0.25)
        );
        assert_eq!(
            p.decode_time_tp(&m, &hw, 16, 16 * 1024, 0.25, 1),
            p.decode_time(&m, &hw, 16, 16 * 1024, 0.25)
        );
    }

    /// The interconnect discount: on an n-device gang, a TP=k instance has
    /// k× the compute of a single slot but pays the all-reduce term, so
    /// its speedup over TP=1 is strictly below k (and still above 1).
    #[test]
    fn tp_speedup_is_sublinear() {
        let p = AnalyticPerf::new();
        let m = ModelSpec::llama2_13b();
        let hw = HardwareSpec::a100_80g().ganged(4);
        let decode = |tp: u32| {
            let share = tp as f64 / 4.0;
            p.decode_time_tp(&m, &hw, 16, 16 * 2048, share, tp)
        };
        let prefill = |tp: u32| {
            let share = tp as f64 / 4.0;
            p.prefill_time_tp(&m, &hw, 2048, share, tp)
        };
        for t in [decode(1) / decode(2), prefill(1) / prefill(2)] {
            assert!(t > 1.0 && t < 2.0, "TP=2 speedup {t} must be in (1, 2)");
        }
        for t in [decode(1) / decode(4), prefill(1) / prefill(4)] {
            assert!(t > 1.0 && t < 4.0, "TP=4 speedup {t} must be in (1, 4)");
        }
        // Overhead grows with degree: each extra device adds hops + volume.
        let m2 = p.tp_comm_time(&m, &hw, 2, 16);
        let m4 = p.tp_comm_time(&m, &hw, 4, 16);
        assert!(m4 > m2 && m2 > 0.0);
    }

    /// Monotonicity invariants the schedulers rely on.
    #[test]
    fn monotone_in_inputs() {
        let p = AnalyticPerf::new();
        let m = ModelSpec::llama2_7b();
        let hw = HardwareSpec::xeon4_amx_32c();
        let mut last = 0.0;
        for len in [128u32, 256, 512, 1024, 2048, 4096, 8192] {
            let t = p.prefill_time(&m, &hw, len, 1.0);
            assert!(t > last);
            last = t;
        }
        let mut last = 0.0;
        for bs in [1u32, 2, 4, 8, 16, 32] {
            let t = p.decode_time(&m, &hw, bs, bs as u64 * 1024, 1.0);
            assert!(t > last);
            last = t;
        }
        // Less share => strictly slower.
        let full = p.decode_time(&m, &hw, 8, 8 * 1024, 1.0);
        let half = p.decode_time(&m, &hw, 8, 8 * 1024, 0.5);
        assert!(half > full);
    }
}
