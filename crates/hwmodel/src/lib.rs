//! Calibrated analytic performance and memory models.
//!
//! The SLINFER paper evaluates on real A100-80GB GPUs and 32-core Intel Xeon
//! CPUs (4th-gen, AMX-equipped 6462C and 3rd-gen 8369B). This crate replaces
//! that hardware with analytic latency/memory models whose coefficients are
//! **fitted to the paper's own measurements** (Table I, Figures 6–8, 10, 17,
//! and the Table II concurrency limits):
//!
//! - **Prefill** is compute-bound: `t = FLOPs(L) / effective_tflops`, with
//!   FLOPs linear in input length plus the quadratic attention term.
//! - **Decode** is a weights-pass plus per-sequence compute plus KV reads:
//!   `t = W/BW + B·(2P/C) + ΣL·c_kv/BW` — the same bilinear shape SLINFER's
//!   quantifier interpolates (§VI-B).
//! - **KV-cache rescale** costs allocation plus copy, fitted to Figure 17
//!   (32→16 GB ≈ 0.3 s, 32→64 GB ≈ 1.9 s on an A100).
//! - **Model load** uses the ServerlessLLM fast loader figure (≈1 s for a
//!   7B model, i.e. ~14 GB/s into the GPU).
//!
//! Calibration is verified by unit tests in [`perf`] that compare the model
//! against every number printed in the paper (tolerances noted per test).
//!
//! # Example
//!
//! ```
//! use hwmodel::{AnalyticPerf, HardwareSpec, ModelSpec, PerfOracle};
//!
//! let m = ModelSpec::llama2_7b();
//! let cpu = HardwareSpec::xeon4_amx_32c();
//! let perf = AnalyticPerf::new();
//! // Paper Table I: 7B prefill of a 1K-token input on the AMX Xeon ~ 567 ms.
//! let t = perf.prefill_time(&m, &cpu, 1024, 1.0);
//! assert!((t - 0.567).abs() / 0.567 < 0.10);
//! ```

#![forbid(unsafe_code)]

pub mod hardware;
pub mod model;
pub mod noise;
pub mod perf;

pub use hardware::{CheckpointTier, HardwareKind, HardwareSpec};
pub use model::{ModelSpec, Precision};
pub use noise::NoiseModel;
pub use perf::{AnalyticPerf, PerfOracle};
