//! Hardware node specifications.
//!
//! A [`HardwareSpec`] holds the *effective* (not peak) performance
//! coefficients of one node type, fitted to the paper's measurements. The
//! fitting rationale per preset:
//!
//! - [`HardwareSpec::xeon4_amx_32c`]: Table I gives 7B TTFT 149/567/2748 ms
//!   at 256/1K/4K inputs ⇒ ≈24 effective TFLOPs (vs. 105 peak BF16 — §X).
//!   TPOT 71/196/80/459 ms at {1,32}bs × {1K,4K} decomposes into a 67 ms
//!   weights pass (⇒ ≈200 GB/s effective bandwidth), 1.17 ms/sequence
//!   compute (⇒ ≈11.5 effective TFLOPs at decode batch sizes), and
//!   2.8 µs per cached token.
//! - [`HardwareSpec::xeon3_32c`]: Table I row one (1003/4113/18612 ms TTFT;
//!   100/338/110/697 ms TPOT) ⇒ 3.3 TFLOPs prefill, ~150 GB/s, 3.1 TFLOPs
//!   decode.
//! - [`HardwareSpec::a100_80g`]: 312 TFLOPs peak at ~50% efficiency for
//!   prefill; ~1300 GB/s effective HBM for decode. Figure 10's ≈1.5 K tok/s
//!   at batch 64 and the sub-100 ms TPOT curves of Figures 7–8 follow.

use serde::{Deserialize, Serialize};

use crate::model::ModelSpec;

/// The class of a node, which drives scheduling policy decisions
/// (e.g. SLINFER excludes CPUs without matrix acceleration, §V).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HardwareKind {
    /// A discrete GPU (e.g. A100-80GB).
    Gpu,
    /// A CPU with a built-in matrix accelerator (e.g. Intel AMX).
    CpuAccel,
    /// A CPU without matrix acceleration — unusable for serving (§IV-A2).
    CpuLegacy,
}

impl HardwareKind {
    /// True for either CPU variant.
    pub fn is_cpu(self) -> bool {
        matches!(self, HardwareKind::CpuAccel | HardwareKind::CpuLegacy)
    }
}

/// Where a model checkpoint is resident relative to one node, warmest
/// first. Each tier maps to a loading bandwidth on [`HardwareSpec`]
/// (ServerlessLLM's multi-tier checkpoint loader):
///
/// - [`CheckpointTier::Hbm`] — another live instance already holds the
///   weights in this node's serving memory; a device-to-device copy at
///   `mem_bw_gbps` is all a new instance needs (≈ 0 versus any real load).
/// - [`CheckpointTier::Dram`] — the checkpoint sits in the node's host
///   DRAM cache and streams in at `load_bw_gbps` (the classic
///   ServerlessLLM fast-loader path; this is what the flat legacy loader
///   always modeled).
/// - [`CheckpointTier::Ssd`] — local NVMe holds the checkpoint; the load
///   is bounded by `ssd_bw_gbps`.
/// - [`CheckpointTier::Remote`] — nothing local: a registry fetch over
///   the datacenter network at `remote_bw_gbps`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum CheckpointTier {
    /// Weights already resident in serving memory (co-located instance).
    Hbm,
    /// Host-DRAM checkpoint cache hit.
    Dram,
    /// Local-SSD checkpoint hit.
    Ssd,
    /// Remote registry fetch (cold everywhere).
    Remote,
}

impl CheckpointTier {
    /// All tiers, warmest first (handy for per-tier reporting).
    pub const ALL: [CheckpointTier; 4] = [
        CheckpointTier::Hbm,
        CheckpointTier::Dram,
        CheckpointTier::Ssd,
        CheckpointTier::Remote,
    ];

    /// Dense index into per-tier tables (`ALL[self.index()] == self`).
    pub fn index(self) -> usize {
        match self {
            CheckpointTier::Hbm => 0,
            CheckpointTier::Dram => 1,
            CheckpointTier::Ssd => 2,
            CheckpointTier::Remote => 3,
        }
    }

    /// Short label for tables and JSON dumps.
    pub fn label(self) -> &'static str {
        match self {
            CheckpointTier::Hbm => "hbm",
            CheckpointTier::Dram => "dram",
            CheckpointTier::Ssd => "ssd",
            CheckpointTier::Remote => "remote",
        }
    }
}

/// Effective performance envelope of one node type.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HardwareSpec {
    /// Display name.
    pub name: String,
    /// Node class.
    pub kind: HardwareKind,
    /// Memory available for serving (weights + KV) in bytes.
    pub mem_bytes: u64,
    /// Effective TFLOPs achieved by prefill dense GEMMs.
    pub prefill_tflops: f64,
    /// Effective TFLOPs achieved by the quadratic attention part of prefill
    /// (lower than GEMM efficiency on AMX CPUs — softmax and score matmuls
    /// do not map onto the tile unit as well).
    pub attn_tflops: f64,
    /// Effective TFLOPs achieved by decode-time per-sequence compute.
    pub decode_tflops: f64,
    /// Effective memory bandwidth for weight/KV streaming, GB/s.
    pub mem_bw_gbps: f64,
    /// Weight-loading bandwidth into this node's serving memory from the
    /// host-DRAM checkpoint cache, GB/s ([`CheckpointTier::Dram`]; the
    /// flat legacy loader charged every cold start this rate).
    pub load_bw_gbps: f64,
    /// Checkpoint read bandwidth of the node's local SSD, GB/s
    /// ([`CheckpointTier::Ssd`]). A host-level resource: unlike
    /// `load_bw_gbps` it does *not* scale with [`HardwareSpec::ganged`] —
    /// every device on a multi-accelerator server shares one NVMe array.
    pub ssd_bw_gbps: f64,
    /// Checkpoint fetch bandwidth from the remote model registry, GB/s
    /// ([`CheckpointTier::Remote`]). Host-level like the SSD: the NIC is
    /// shared across the server and does not scale with `ganged`.
    pub remote_bw_gbps: f64,
    /// Peer-to-peer checkpoint fabric bandwidth, GB/s: the rate at which
    /// this host can *receive* a checkpoint streamed out of another node's
    /// checkpoint cache over the cluster fabric (λScale-style RDMA fast
    /// path — far faster than the registry NIC). Host-level like the SSD
    /// and the registry NIC: one fabric port per server, so it does not
    /// scale with [`HardwareSpec::ganged`]. An actual transfer is
    /// additionally bounded by the *source's* tier read bandwidth.
    pub fabric_bw_gbps: f64,
    /// One-way setup latency of a fabric checkpoint transfer, seconds.
    pub fabric_latency_s: f64,
    /// KV rescale: seconds per GB of the enlarged cache (scale-up is
    /// allocation-dominated — Fig. 17's 2× curve).
    pub kv_up_s_per_gb: f64,
    /// KV rescale: seconds per GB of the shrunken cache (Fig. 17's 0.5×
    /// curve; cheaper because the new array is small).
    pub kv_down_s_per_gb: f64,
    /// KV rescale: seconds per GB of live cache pages copied over.
    pub kv_copy_s_per_gb: f64,
    /// Physical cores (CPU) or SM-share granularity; used for harvested-core
    /// scaling in §IX-I3.
    pub cores: u32,
    /// Effective inter-accelerator interconnect bandwidth within a node
    /// (NVLink between GPUs, UPI between CPU sockets), GB/s per device.
    /// Drives the tensor-parallel all-reduce volume term; irrelevant for
    /// single-slot instances.
    pub link_bw_gbps: f64,
    /// Latency of one inter-accelerator collective hop, seconds. Dominates
    /// the tensor-parallel decode overhead, where per-token volume is tiny
    /// but every layer still synchronizes twice.
    pub link_latency_s: f64,
}

impl HardwareSpec {
    /// NVIDIA A100-80GB (the paper's GPU node).
    pub fn a100_80g() -> Self {
        HardwareSpec {
            name: "A100-80GB".into(),
            kind: HardwareKind::Gpu,
            mem_bytes: 80 * GB,
            prefill_tflops: 156.0,
            attn_tflops: 120.0,
            decode_tflops: 100.0,
            mem_bw_gbps: 1300.0,
            load_bw_gbps: 14.0,
            // Local NVMe array ~6 GB/s; registry fetch over a 10 Gbps NIC.
            ssd_bw_gbps: 6.0,
            remote_bw_gbps: 1.25,
            // 200 Gbps RDMA-class fabric between GPU hosts; the effective
            // peer rate is still capped by the source's DRAM read path.
            fabric_bw_gbps: 25.0,
            fabric_latency_s: 5.0e-5,
            kv_up_s_per_gb: 0.027,
            kv_down_s_per_gb: 0.01625,
            kv_copy_s_per_gb: 0.0025,
            cores: 108,
            // NVLink 3: 600 GB/s aggregate per GPU, ~1/3 effective for
            // ring all-reduce traffic; ~10 µs per collective hop.
            link_bw_gbps: 200.0,
            link_latency_s: 1.0e-5,
        }
    }

    /// 32-core 4th-gen Xeon 6462C @3.3 GHz with AMX (the paper's CPU node).
    pub fn xeon4_amx_32c() -> Self {
        HardwareSpec {
            name: "Xeon4-AMX-32c".into(),
            kind: HardwareKind::CpuAccel,
            mem_bytes: 192 * GB,
            prefill_tflops: 25.9,
            attn_tflops: 10.5,
            decode_tflops: 11.5,
            mem_bw_gbps: 200.0,
            load_bw_gbps: 20.0,
            ssd_bw_gbps: 6.0,
            remote_bw_gbps: 1.25,
            // CPU hosts sit on a 100 Gbps fabric port.
            fabric_bw_gbps: 12.5,
            fabric_latency_s: 5.0e-5,
            kv_up_s_per_gb: 0.012,
            kv_down_s_per_gb: 0.008,
            kv_copy_s_per_gb: 0.002,
            cores: 32,
            // UPI cross-socket links are far slower than NVLink.
            link_bw_gbps: 40.0,
            link_latency_s: 2.0e-6,
        }
    }

    /// 32-core 3rd-gen Xeon 8369B @2.7 GHz, no AMX (Table I comparison;
    /// excluded from serving by SLINFER).
    pub fn xeon3_32c() -> Self {
        HardwareSpec {
            name: "Xeon3-32c".into(),
            kind: HardwareKind::CpuLegacy,
            mem_bytes: 192 * GB,
            prefill_tflops: 3.44,
            attn_tflops: 3.44,
            decode_tflops: 3.1,
            mem_bw_gbps: 150.0,
            load_bw_gbps: 20.0,
            ssd_bw_gbps: 6.0,
            remote_bw_gbps: 1.25,
            fabric_bw_gbps: 12.5,
            fabric_latency_s: 5.0e-5,
            kv_up_s_per_gb: 0.012,
            kv_down_s_per_gb: 0.008,
            kv_copy_s_per_gb: 0.002,
            cores: 32,
            link_bw_gbps: 30.0,
            link_latency_s: 2.0e-6,
        }
    }

    /// An `n`-accelerator aggregate of this node type: a multi-GPU server
    /// (or multi-socket CPU host) whose serving memory, compute, memory
    /// bandwidth, and weight-loading bandwidth all scale `n`× — each device
    /// keeps its own HBM and loads its weight shard in parallel, so a
    /// tensor-parallel group's `k` shard streams are one aggregate load,
    /// never `k` separate contenders on the node's loading channel. The
    /// interconnect envelope (`link_bw_gbps`, `link_latency_s`) is
    /// per-device and does not scale, and neither do the host-level
    /// checkpoint media (`ssd_bw_gbps`, `remote_bw_gbps`, `fabric_bw_gbps`):
    /// all devices share one NVMe array, one NIC, and one fabric port.
    ///
    /// Pair with [`crate::ModelSpec::with_tp`] and a node split into `n`
    /// equal slots so tensor-parallel instances can claim `k ≤ n` devices.
    ///
    /// # Panics
    /// Panics if `n` is zero.
    pub fn ganged(&self, n: u32) -> HardwareSpec {
        assert!(n > 0, "a gang needs at least one accelerator");
        HardwareSpec {
            name: format!("{}x{n}", self.name),
            mem_bytes: self.mem_bytes * n as u64,
            prefill_tflops: self.prefill_tflops * n as f64,
            attn_tflops: self.attn_tflops * n as f64,
            decode_tflops: self.decode_tflops * n as f64,
            mem_bw_gbps: self.mem_bw_gbps * n as f64,
            load_bw_gbps: self.load_bw_gbps * n as f64,
            cores: self.cores * n,
            ..self.clone()
        }
    }

    /// A fractional view of this node: `share` of its compute, bandwidth and
    /// cores (used for harvested CPU cores, §IX-I3, and static partitioning).
    ///
    /// Memory is *not* scaled here — partitioned memory is tracked by the
    /// cluster ledger, while harvested-core CPUs still access full DRAM.
    ///
    /// # Panics
    /// Panics if `share` is not in `(0, 1]`.
    pub fn fraction(&self, share: f64) -> HardwareSpec {
        assert!(share > 0.0 && share <= 1.0, "share must be in (0,1]");
        HardwareSpec {
            name: format!("{}×{:.2}", self.name, share),
            prefill_tflops: self.prefill_tflops * share,
            attn_tflops: self.attn_tflops * share,
            decode_tflops: self.decode_tflops * share,
            mem_bw_gbps: self.mem_bw_gbps * share,
            cores: ((self.cores as f64 * share).round() as u32).max(1),
            ..self.clone()
        }
    }

    /// Checkpoint-loading bandwidth from the given storage tier, GB/s.
    ///
    /// HBM hits move device-to-device at the serving memory bandwidth;
    /// DRAM hits use the fast-loader path; SSD and remote fetches are
    /// bounded by the host's NVMe array and NIC respectively.
    pub fn tier_bw_gbps(&self, tier: CheckpointTier) -> f64 {
        match tier {
            CheckpointTier::Hbm => self.mem_bw_gbps,
            CheckpointTier::Dram => self.load_bw_gbps,
            CheckpointTier::Ssd => self.ssd_bw_gbps,
            CheckpointTier::Remote => self.remote_bw_gbps,
        }
    }

    /// Whether this node class can serve the given model at all.
    ///
    /// §IV-A2: CPUs are limited to small models (≤13B class) and require a
    /// matrix accelerator; legacy CPUs are excluded outright.
    pub fn can_serve(&self, model: &ModelSpec) -> bool {
        match self.kind {
            HardwareKind::Gpu => true,
            HardwareKind::CpuAccel => model.params <= 14_000_000_000,
            HardwareKind::CpuLegacy => false,
        }
    }

    /// Memory in GB (for display).
    pub fn mem_gb(&self) -> f64 {
        self.mem_bytes as f64 / 1e9
    }
}

/// One gigabyte (10^9 bytes) — the unit the paper uses throughout.
pub const GB: u64 = 1_000_000_000;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_sane_envelopes() {
        let gpu = HardwareSpec::a100_80g();
        let amx = HardwareSpec::xeon4_amx_32c();
        let old = HardwareSpec::xeon3_32c();
        assert!(gpu.prefill_tflops > amx.prefill_tflops);
        // §X: 4th-gen ≈ 105 peak vs 13 peak on 3rd-gen — effective ratio ~7×.
        let ratio = amx.prefill_tflops / old.prefill_tflops;
        assert!((6.0..9.0).contains(&ratio), "gen speedup {ratio}");
        assert_eq!(gpu.mem_bytes, 80 * GB);
    }

    #[test]
    fn fraction_scales_compute_not_memory() {
        let full = HardwareSpec::xeon4_amx_32c();
        let half = full.fraction(0.5);
        assert!((half.prefill_tflops - full.prefill_tflops / 2.0).abs() < 1e-9);
        assert!((half.mem_bw_gbps - full.mem_bw_gbps / 2.0).abs() < 1e-9);
        assert_eq!(half.mem_bytes, full.mem_bytes);
        assert_eq!(half.cores, 16);
    }

    #[test]
    #[should_panic(expected = "share must be in (0,1]")]
    fn fraction_rejects_zero() {
        HardwareSpec::a100_80g().fraction(0.0);
    }

    #[test]
    fn ganged_scales_everything_but_the_links() {
        let one = HardwareSpec::a100_80g();
        let four = one.ganged(4);
        assert_eq!(four.mem_bytes, 4 * one.mem_bytes);
        assert!((four.prefill_tflops - 4.0 * one.prefill_tflops).abs() < 1e-9);
        assert!((four.mem_bw_gbps - 4.0 * one.mem_bw_gbps).abs() < 1e-9);
        assert!((four.load_bw_gbps - 4.0 * one.load_bw_gbps).abs() < 1e-9);
        assert_eq!(four.cores, 4 * one.cores);
        // The interconnect is per-device: a bigger gang is not a faster link.
        assert_eq!(four.link_bw_gbps, one.link_bw_gbps);
        assert_eq!(four.link_latency_s, one.link_latency_s);
        // Host-level checkpoint media are shared, not per-device: the SSD
        // and the registry NIC do not get faster with more accelerators.
        assert_eq!(four.ssd_bw_gbps, one.ssd_bw_gbps);
        assert_eq!(four.remote_bw_gbps, one.remote_bw_gbps);
        // ... and neither does the peer-to-peer checkpoint fabric port.
        assert_eq!(four.fabric_bw_gbps, one.fabric_bw_gbps);
        assert_eq!(four.fabric_latency_s, one.fabric_latency_s);
        assert_eq!(four.kind, one.kind);
        // A quarter-share slot of the gang is exactly one device's compute.
        let slot = four.fraction(0.25);
        assert!((slot.prefill_tflops - one.prefill_tflops).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one accelerator")]
    fn ganged_rejects_zero() {
        HardwareSpec::a100_80g().ganged(0);
    }

    #[test]
    fn serving_eligibility() {
        let m7 = ModelSpec::llama2_7b();
        let m34 = ModelSpec::codellama_34b();
        assert!(HardwareSpec::a100_80g().can_serve(&m34));
        assert!(HardwareSpec::xeon4_amx_32c().can_serve(&m7));
        // CPUs can only handle small LLMs (≤13B): §IV-A2.
        assert!(!HardwareSpec::xeon4_amx_32c().can_serve(&m34));
        // Legacy CPUs are excluded entirely (§V).
        assert!(!HardwareSpec::xeon3_32c().can_serve(&m7));
    }

    use crate::model::ModelSpec;
}
