//! LLM model specifications.
//!
//! A [`ModelSpec`] carries everything the performance and memory models need:
//! parameter count, transformer shape (layers, KV heads, head size) for
//! KV-cache sizing, context limit, and numeric precision. Presets cover the
//! models used in the paper's evaluation (§IX-A, §IX-I1, §X).

use serde::{Deserialize, Serialize};

/// Numeric precision of the served weights.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Precision {
    /// 16-bit floating point (2 bytes/parameter) — the paper's default.
    Fp16,
    /// 4-bit AWQ-style quantization (0.5 bytes/parameter), §X.
    Int4,
}

impl Precision {
    /// Bytes of storage per parameter.
    pub fn bytes_per_param(self) -> f64 {
        match self {
            Precision::Fp16 => 2.0,
            Precision::Int4 => 0.5,
        }
    }
}

/// Architecture and size of an LLM.
///
/// ```
/// use hwmodel::ModelSpec;
/// let m = ModelSpec::llama2_7b();
/// // 6.7 B parameters at FP16 ≈ 13.5 GB of weights (paper §IV-B: "at least 14 GB").
/// assert!((m.weights_bytes() as f64 / 1e9 - 13.5).abs() < 0.5);
/// // Full-attention Llama-2: 0.5 MiB of KV-cache per token.
/// assert_eq!(m.kv_bytes_per_token(), 524_288);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelSpec {
    /// Human-readable name, e.g. `"Llama-2-7B"`.
    pub name: String,
    /// Total parameter count.
    pub params: u64,
    /// Number of transformer layers.
    pub layers: u32,
    /// Number of key/value heads (equal to attention heads for MHA,
    /// smaller for GQA).
    pub kv_heads: u32,
    /// Dimensionality of each attention head.
    pub head_dim: u32,
    /// Model (hidden) dimension.
    pub hidden: u32,
    /// Maximum supported context length in tokens.
    pub max_context: u32,
    /// Weight precision.
    pub precision: Precision,
    /// Tensor-parallel degree this deployment is served at: the number of
    /// node slots (accelerators) one instance claims. 1 (the default)
    /// means a single-device instance; `k > 1` shards the weights across
    /// `k` devices of one node and pays the inter-device all-reduce
    /// overhead modeled by `AnalyticPerf::tp_comm_time`.
    pub tp_degree: u32,
}

impl ModelSpec {
    /// Llama-3.2-3B (GQA: 8 KV heads), the paper's "3B-sized" model.
    pub fn llama3_2_3b() -> Self {
        ModelSpec {
            name: "Llama-3.2-3B".into(),
            params: 3_210_000_000,
            layers: 28,
            kv_heads: 8,
            head_dim: 128,
            hidden: 3072,
            max_context: 8192,
            precision: Precision::Fp16,
            tp_degree: 1,
        }
    }

    /// Llama-2-7B (full MHA), the paper's primary workhorse.
    pub fn llama2_7b() -> Self {
        ModelSpec {
            name: "Llama-2-7B".into(),
            params: 6_740_000_000,
            layers: 32,
            kv_heads: 32,
            head_dim: 128,
            hidden: 4096,
            max_context: 4096,
            precision: Precision::Fp16,
            tp_degree: 1,
        }
    }

    /// Llama-3.1-8B (GQA, 32 K context) used for the dataset sweep (§IX-I1).
    pub fn llama3_1_8b() -> Self {
        ModelSpec {
            name: "Llama-3.1-8B".into(),
            params: 8_030_000_000,
            layers: 32,
            kv_heads: 8,
            head_dim: 128,
            hidden: 4096,
            max_context: 32_768,
            precision: Precision::Fp16,
            tp_degree: 1,
        }
    }

    /// Llama-2-13B (full MHA).
    pub fn llama2_13b() -> Self {
        ModelSpec {
            name: "Llama-2-13B".into(),
            params: 13_020_000_000,
            layers: 40,
            kv_heads: 40,
            head_dim: 128,
            hidden: 5120,
            max_context: 4096,
            precision: Precision::Fp16,
            tp_degree: 1,
        }
    }

    /// Codestral-22B, used in the quantization discussion (§X).
    pub fn codestral_22b() -> Self {
        ModelSpec {
            name: "Codestral-22B".into(),
            params: 22_200_000_000,
            layers: 56,
            kv_heads: 8,
            head_dim: 128,
            hidden: 6144,
            max_context: 8192,
            precision: Precision::Fp16,
            tp_degree: 1,
        }
    }

    /// CodeLlama-34B (GQA), served with tensor parallelism in §IX-E.
    pub fn codellama_34b() -> Self {
        ModelSpec {
            name: "CodeLlama-34B".into(),
            params: 33_700_000_000,
            layers: 48,
            kv_heads: 8,
            head_dim: 128,
            hidden: 8192,
            max_context: 4096,
            precision: Precision::Fp16,
            tp_degree: 1,
        }
    }

    /// Returns this spec converted to the given precision.
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// Returns this spec deployed at tensor-parallel degree `tp`: one
    /// instance claims `tp` slots (accelerators) of a node and pays the
    /// per-iteration all-reduce overhead. Degree 1 is the plain
    /// single-device deployment.
    ///
    /// # Panics
    /// Panics if `tp` is zero.
    pub fn with_tp(mut self, tp: u32) -> Self {
        assert!(tp > 0, "tensor-parallel degree must be at least 1");
        self.tp_degree = tp;
        self
    }

    /// Returns a renamed clone — used to stamp out the paper's replica
    /// model zoos ("32 replica models generated from Llama-3.2-3B").
    pub fn replica(&self, index: usize) -> Self {
        let mut m = self.clone();
        m.name = format!("{}#{index}", self.name);
        m
    }

    /// Bytes occupied by the model weights at the configured precision.
    pub fn weights_bytes(&self) -> u64 {
        (self.params as f64 * self.precision.bytes_per_param()) as u64
    }

    /// Bytes of KV-cache per token: `2 (K,V) · layers · kv_heads · head_dim ·
    /// 2 bytes` (the cache stays FP16 even for INT4 weights).
    pub fn kv_bytes_per_token(&self) -> u64 {
        2 * self.layers as u64 * self.kv_heads as u64 * self.head_dim as u64 * 2
    }

    /// Parameter count in billions (for display).
    pub fn params_b(&self) -> f64 {
        self.params as f64 / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_match_known_sizes() {
        // Paper §IV-B: 7B and 13B need "at least 14 GB and 26 GB".
        let w7 = ModelSpec::llama2_7b().weights_bytes() as f64 / 1e9;
        let w13 = ModelSpec::llama2_13b().weights_bytes() as f64 / 1e9;
        assert!((13.0..15.0).contains(&w7), "7B weights {w7} GB");
        assert!((25.0..27.0).contains(&w13), "13B weights {w13} GB");
        // §X: 22B weights alone consume 44 GB at FP16.
        let w22 = ModelSpec::codestral_22b().weights_bytes() as f64 / 1e9;
        assert!((43.0..46.0).contains(&w22), "22B weights {w22} GB");
    }

    #[test]
    fn int4_quarters_weights() {
        let fp16 = ModelSpec::codestral_22b();
        let int4 = fp16.clone().with_precision(Precision::Int4);
        assert_eq!(int4.weights_bytes(), fp16.weights_bytes() / 4);
        // KV stays FP16-sized.
        assert_eq!(int4.kv_bytes_per_token(), fp16.kv_bytes_per_token());
    }

    #[test]
    fn kv_bytes_per_token_shapes() {
        // Llama-2-7B MHA: 2*32*32*128*2 = 512 KiB/token.
        assert_eq!(ModelSpec::llama2_7b().kv_bytes_per_token(), 524_288);
        // Llama-2-13B MHA: 2*40*40*128*2 = 800 KiB/token.
        assert_eq!(ModelSpec::llama2_13b().kv_bytes_per_token(), 819_200);
        // GQA models are far cheaper per token.
        assert_eq!(ModelSpec::llama3_1_8b().kv_bytes_per_token(), 131_072);
        assert!(
            ModelSpec::llama3_2_3b().kv_bytes_per_token()
                < ModelSpec::llama2_7b().kv_bytes_per_token() / 4
        );
    }

    #[test]
    fn replicas_share_shape_but_not_name() {
        let base = ModelSpec::llama2_7b();
        let r = base.replica(5);
        assert_ne!(r.name, base.name);
        assert_eq!(r.weights_bytes(), base.weights_bytes());
    }

    #[test]
    fn tp_degree_defaults_to_one_and_survives_replication() {
        let base = ModelSpec::llama2_13b();
        assert_eq!(base.tp_degree, 1);
        let tp2 = base.with_tp(2);
        assert_eq!(tp2.tp_degree, 2);
        assert_eq!(tp2.replica(3).tp_degree, 2);
        // TP shards compute; the total weight/KV footprint is unchanged.
        assert_eq!(tp2.weights_bytes(), ModelSpec::llama2_13b().weights_bytes());
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_tp_rejected() {
        let _ = ModelSpec::llama2_7b().with_tp(0);
    }
}
