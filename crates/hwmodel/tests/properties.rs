//! Property-based tests for the performance model: the monotonicity and
//! scaling laws every scheduler decision relies on.

use proptest::prelude::*;

use hwmodel::{AnalyticPerf, HardwareSpec, ModelSpec, NoiseModel, PerfOracle};
use simcore::rng::SimRng;

fn hardware() -> Vec<HardwareSpec> {
    vec![
        HardwareSpec::a100_80g(),
        HardwareSpec::xeon4_amx_32c(),
        HardwareSpec::xeon3_32c(),
    ]
}

fn models() -> Vec<ModelSpec> {
    vec![
        ModelSpec::llama3_2_3b(),
        ModelSpec::llama2_7b(),
        ModelSpec::llama2_13b(),
    ]
}

proptest! {
    #[test]
    fn prefill_monotone_in_length(
        hw_ix in 0usize..3,
        m_ix in 0usize..3,
        len in 16u32..16_000,
        extra in 1u32..4096,
    ) {
        let perf = AnalyticPerf::new();
        let hw = &hardware()[hw_ix];
        let m = &models()[m_ix];
        let a = perf.prefill_time(m, hw, len, 1.0);
        let b = perf.prefill_time(m, hw, len + extra, 1.0);
        prop_assert!(b > a);
        prop_assert!(a > 0.0);
    }

    #[test]
    fn decode_monotone_in_batch_and_context(
        hw_ix in 0usize..3,
        m_ix in 0usize..3,
        bs in 1u32..128,
        ctx in 128u64..100_000,
    ) {
        let perf = AnalyticPerf::new();
        let hw = &hardware()[hw_ix];
        let m = &models()[m_ix];
        let base = perf.decode_time(m, hw, bs, ctx, 1.0);
        prop_assert!(perf.decode_time(m, hw, bs + 1, ctx, 1.0) > base);
        prop_assert!(perf.decode_time(m, hw, bs, ctx + 512, 1.0) > base);
    }

    #[test]
    fn half_share_is_exactly_twice_as_slow(
        m_ix in 0usize..3,
        len in 64u32..8192,
        bs in 1u32..64,
    ) {
        // Both compute and bandwidth scale with the share, so iteration
        // times are inversely proportional — the Table II fragmentation law.
        let perf = AnalyticPerf::new();
        let hw = HardwareSpec::xeon4_amx_32c();
        let m = &models()[m_ix];
        let full = perf.prefill_time(m, &hw, len, 1.0);
        let half = perf.prefill_time(m, &hw, len, 0.5);
        prop_assert!((half / full - 2.0).abs() < 1e-9);
        let dfull = perf.decode_time(m, &hw, bs, bs as u64 * 512, 1.0);
        let dhalf = perf.decode_time(m, &hw, bs, bs as u64 * 512, 0.5);
        prop_assert!((dhalf / dfull - 2.0).abs() < 1e-9);
    }

    #[test]
    fn batching_is_sublinear(
        hw_ix in 0usize..2,
        m_ix in 0usize..3,
        bs in 2u32..64,
    ) {
        // The economics behind consolidation (§VIII): serving a batch of B
        // costs far less than B separate 1-batches.
        let perf = AnalyticPerf::new();
        let hw = &hardware()[hw_ix];
        let m = &models()[m_ix];
        let one = perf.decode_time(m, hw, 1, 1024, 1.0);
        let batched = perf.decode_time(m, hw, bs, bs as u64 * 1024, 1.0);
        prop_assert!(batched < bs as f64 * one);
    }

    #[test]
    fn bigger_models_are_slower(
        hw_ix in 0usize..2,
        len in 128u32..4096,
    ) {
        let perf = AnalyticPerf::new();
        let hw = &hardware()[hw_ix];
        let ms = models();
        for pair in ms.windows(2) {
            let a = perf.prefill_time(&pair[0], hw, len, 1.0);
            let b = perf.prefill_time(&pair[1], hw, len, 1.0);
            prop_assert!(b > a, "{} should be slower than {}", pair[1].name, pair[0].name);
        }
    }

    #[test]
    fn max_batch_is_the_slo_frontier(
        m_ix in 0usize..2,
        ctx in 256u32..4096,
        slo_ms in 80u32..500,
    ) {
        let perf = AnalyticPerf::new();
        let hw = HardwareSpec::xeon4_amx_32c();
        let m = &models()[m_ix];
        let slo = slo_ms as f64 / 1e3;
        let b = perf.max_batch_under_tpot(m, &hw, ctx, 1.0, slo);
        if b > 0 {
            prop_assert!(perf.decode_time(m, &hw, b, b as u64 * ctx as u64, 1.0) <= slo);
        }
        let over = b + 1;
        prop_assert!(perf.decode_time(m, &hw, over, over as u64 * ctx as u64, 1.0) > slo);
    }

    #[test]
    fn kv_scale_cost_grows_with_size(
        gb in 1u64..64,
    ) {
        let perf = AnalyticPerf::new();
        let hw = HardwareSpec::a100_80g();
        let b = 1_000_000_000u64;
        let up_small = perf.kv_scale_time(&hw, gb * b, 2 * gb * b, gb * b);
        let up_big = perf.kv_scale_time(&hw, 2 * gb * b, 4 * gb * b, 2 * gb * b);
        prop_assert!(up_big > up_small);
        // Scale-down of the same span is cheaper than scale-up (Fig 17).
        let down = perf.kv_scale_time(&hw, 2 * gb * b, gb * b, gb * b);
        prop_assert!(down < up_small);
    }

    #[test]
    fn noise_preserves_positivity_and_scale(
        seed in any::<u64>(),
        base_ms in 1f64..10_000.0,
        cv in 0.0f64..0.3,
    ) {
        let noise = NoiseModel::new(cv);
        let mut rng = SimRng::new(seed);
        for _ in 0..16 {
            let t = noise.apply(base_ms / 1e3, &mut rng);
            prop_assert!(t > 0.0);
            // Log-normal with cv ≤ 0.3: excursions beyond 4× are absurd.
            prop_assert!(t < base_ms / 1e3 * 4.0);
        }
    }

    #[test]
    fn weights_and_kv_scale_with_model(
        m_ix in 0usize..3,
    ) {
        let m = &models()[m_ix];
        prop_assert!(m.weights_bytes() > m.params); // ≥1 byte/param at any precision
        prop_assert!(m.kv_bytes_per_token() > 0);
        let int4 = m.clone().with_precision(hwmodel::Precision::Int4);
        prop_assert_eq!(int4.weights_bytes(), m.weights_bytes() / 4);
    }
}
