//! Property-based tests for the engine substrate: block accounting can
//! never leak or go negative, whatever sequence of operations runs.

use proptest::prelude::*;

use engine::blocks::{BlockPool, BLOCK_TOKENS};
use engine::instance::{Instance, InstanceId};
use engine::request::RunningRequest;
use hwmodel::ModelSpec;
use simcore::time::{SimDuration, SimTime};
use workload::request::{ModelId, Request, RequestId, SloClass};

#[derive(Debug, Clone)]
enum PoolOp {
    Alloc(u64),
    Free(u64),
    Resize(u64),
}

fn arb_op() -> impl Strategy<Value = PoolOp> {
    prop_oneof![
        (1u64..64).prop_map(PoolOp::Alloc),
        (1u64..64).prop_map(PoolOp::Free),
        (0u64..8_000_000_000).prop_map(PoolOp::Resize),
    ]
}

proptest! {
    #[test]
    fn pool_accounting_is_sound(ops in prop::collection::vec(arb_op(), 1..200)) {
        let mut pool = BlockPool::new(524_288, 4_000_000_000);
        let mut live = 0u64;
        for op in ops {
            match op {
                PoolOp::Alloc(n) => {
                    if pool.try_alloc(n) {
                        live += n;
                    }
                }
                PoolOp::Free(n) => {
                    let n = n.min(live);
                    if n > 0 {
                        pool.free(n);
                        live -= n;
                    }
                }
                PoolOp::Resize(bytes) => {
                    let ok = pool.try_resize(bytes);
                    if ok {
                        prop_assert!(pool.capacity_blocks() >= live);
                    }
                }
            }
            prop_assert_eq!(pool.used_blocks(), live);
            prop_assert!(pool.used_blocks() <= pool.capacity_blocks());
            prop_assert!(pool.utilization() <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn blocks_for_tokens_is_ceiling(tokens in 0u32..100_000) {
        let pool = BlockPool::new(1024, 1_000_000);
        let blocks = pool.blocks_for_tokens(tokens);
        prop_assert!(blocks * u64::from(BLOCK_TOKENS) >= u64::from(tokens));
        if blocks > 0 {
            prop_assert!((blocks - 1) * u64::from(BLOCK_TOKENS) < u64::from(tokens));
        }
    }

    /// Any admission order followed by full service drains the instance
    /// back to zero KV usage.
    #[test]
    fn instance_drains_to_zero(
        reqs in prop::collection::vec((16u32..2048, 1u32..16), 1..12),
    ) {
        let spec = ModelSpec::llama2_7b();
        let mut inst = Instance::new(
            InstanceId(1),
            ModelId(0),
            spec,
            64_000_000_000, // plenty of KV
            SimTime::ZERO,
        );
        inst.activate(SimTime::ZERO);
        for (i, &(input, output)) in reqs.iter().enumerate() {
            inst.admit(RunningRequest::new(Request {
                id: RequestId(i as u64),
                model: ModelId(0),
                arrival: SimTime::ZERO,
                input_len: input,
                output_len: output,
                class: SloClass::default(),
                session: Default::default(),
            }));
        }
        // Serve: prefill everything, then decode until empty.
        let now = SimTime::from_secs(1);
        let waiting: Vec<RequestId> = inst
            .requests()
            .iter()
            .map(|r| r.req.id)
            .collect();
        for id in waiting {
            prop_assert!(inst.begin_prefill(id).is_some());
            inst.finish_prefill(id, now, SimDuration::from_millis(10));
        }
        let mut guard = 0;
        while inst.batch_size() > 0 {
            inst.begin_decode();
            let out = inst.finish_decode(now, SimDuration::from_millis(10));
            prop_assert!(out.alloc_failures.is_empty(), "KV was oversized");
            guard += 1;
            prop_assert!(guard < 64, "decode loop must terminate");
        }
        prop_assert_eq!(inst.live_count(), 0);
        prop_assert_eq!(inst.kv_used_bytes(), 0, "all KV returned");
        prop_assert!(inst.idle_since.is_some());
        // Token accounting: prefill produced 1 token per request, decode the
        // rest.
        let expected: u64 = reqs.iter().map(|&(_, o)| o as u64).sum();
        prop_assert_eq!(inst.decode_tokens, expected);
    }

    /// Migration at any point conserves requests and frees exactly their KV.
    #[test]
    fn migration_conserves_requests(
        n in 1usize..8,
        migrate_ix in 0usize..8,
    ) {
        let spec = ModelSpec::llama2_7b();
        let mut inst = Instance::new(
            InstanceId(1),
            ModelId(0),
            spec,
            64_000_000_000,
            SimTime::ZERO,
        );
        inst.activate(SimTime::ZERO);
        for i in 0..n {
            inst.admit(RunningRequest::new(Request {
                id: RequestId(i as u64),
                model: ModelId(0),
                arrival: SimTime::ZERO,
                input_len: 256,
                output_len: 32,
                class: SloClass::default(),
                session: Default::default(),
            }));
        }
        let victim = RequestId((migrate_ix % n) as u64);
        let before = inst.live_count();
        let moved = inst.remove_for_migration(victim, SimTime::from_secs(1));
        prop_assert_eq!(inst.live_count(), before - 1);
        prop_assert_eq!(moved.req.id, victim);
        prop_assert_eq!(moved.kv_blocks, 0);
        prop_assert_eq!(moved.migrations, 1);
    }

    /// Eq. 2 is monotone in load and respects the L_min floor.
    #[test]
    fn kv_required_monotone(
        loads in prop::collection::vec(64u32..4096, 0..10),
        avg in 1f64..1024.0,
        lmin in 1u32..8192,
    ) {
        let spec = ModelSpec::llama2_7b();
        let c = spec.kv_bytes_per_token();
        let mut inst = Instance::new(
            InstanceId(1),
            ModelId(0),
            spec,
            1_000_000_000,
            SimTime::ZERO,
        );
        inst.activate(SimTime::ZERO);
        let mut last = inst.kv_required_bytes(avg, lmin);
        prop_assert!(last >= (lmin as u64) * c);
        for (i, &input) in loads.iter().enumerate() {
            inst.admit(RunningRequest::new(Request {
                id: RequestId(i as u64),
                model: ModelId(0),
                arrival: SimTime::ZERO,
                input_len: input,
                output_len: 8,
                class: SloClass::default(),
                session: Default::default(),
            }));
            let next = inst.kv_required_bytes(avg, lmin);
            prop_assert!(next >= last, "Eq.2 must grow with admissions");
            last = next;
        }
    }
}
