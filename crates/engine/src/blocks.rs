//! Paged-attention KV block pool.
//!
//! vLLM allocates KV cache in fixed-size token blocks (16 tokens by
//! default); a sequence of `n` context tokens occupies `ceil(n/16)` blocks.
//! The pool's *capacity* is set by the bytes the scheduler has granted the
//! instance, and rescaling the grant (§VII-B) changes the capacity without
//! touching live blocks — shrinking below the live block count is rejected,
//! which is exactly the hazard SLINFER's orchestrator must avoid.

use serde::{Deserialize, Serialize};

/// Tokens per KV block (vLLM's default).
pub const BLOCK_TOKENS: u32 = 16;

/// A fixed-block KV-cache allocator for one instance.
///
/// ```
/// use engine::blocks::BlockPool;
/// // 7B-sized KV: 0.5 MiB/token, granted 1 GB.
/// let mut pool = BlockPool::new(524_288, 1_000_000_000);
/// let blocks = pool.blocks_for_tokens(100); // ceil(100/16) = 7
/// assert_eq!(blocks, 7);
/// assert!(pool.try_alloc(blocks));
/// assert_eq!(pool.used_blocks(), 7);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlockPool {
    kv_bytes_per_token: u64,
    capacity_bytes: u64,
    used_blocks: u64,
}

impl BlockPool {
    /// Creates a pool for a model whose KV costs `kv_bytes_per_token`,
    /// granted `capacity_bytes` of memory.
    ///
    /// # Panics
    /// Panics if `kv_bytes_per_token` is zero.
    pub fn new(kv_bytes_per_token: u64, capacity_bytes: u64) -> Self {
        assert!(kv_bytes_per_token > 0, "kv_bytes_per_token must be > 0");
        BlockPool {
            kv_bytes_per_token,
            capacity_bytes,
            used_blocks: 0,
        }
    }

    /// Bytes of one block (`16 · kv_bytes_per_token`).
    pub fn block_bytes(&self) -> u64 {
        self.kv_bytes_per_token * BLOCK_TOKENS as u64
    }

    /// Blocks needed to hold `tokens` context tokens.
    pub fn blocks_for_tokens(&self, tokens: u32) -> u64 {
        tokens.div_ceil(BLOCK_TOKENS) as u64
    }

    /// Total blocks representable under the current grant.
    pub fn capacity_blocks(&self) -> u64 {
        self.capacity_bytes / self.block_bytes()
    }

    /// Blocks currently allocated to live sequences.
    pub fn used_blocks(&self) -> u64 {
        self.used_blocks
    }

    /// Bytes currently held by live sequences.
    pub fn used_bytes(&self) -> u64 {
        self.used_blocks * self.block_bytes()
    }

    /// Bytes granted to this pool.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// Free blocks remaining.
    pub fn free_blocks(&self) -> u64 {
        self.capacity_blocks().saturating_sub(self.used_blocks)
    }

    /// Attempts to allocate `blocks`; returns false (allocating nothing) if
    /// the grant is insufficient.
    #[must_use]
    pub fn try_alloc(&mut self, blocks: u64) -> bool {
        if self.free_blocks() >= blocks {
            self.used_blocks += blocks;
            true
        } else {
            false
        }
    }

    /// Releases `blocks` back to the pool.
    ///
    /// # Panics
    /// Panics if more blocks are freed than are in use (an accounting bug).
    pub fn free(&mut self, blocks: u64) {
        assert!(
            blocks <= self.used_blocks,
            "freeing {blocks} blocks but only {} in use",
            self.used_blocks
        );
        self.used_blocks -= blocks;
    }

    /// Applies a completed rescale to `new_capacity_bytes`.
    ///
    /// Returns false (leaving the grant unchanged) if the new capacity could
    /// not hold the blocks currently in use — the OOM hazard of §VII-C.
    #[must_use]
    pub fn try_resize(&mut self, new_capacity_bytes: u64) -> bool {
        let new_blocks = new_capacity_bytes / self.block_bytes();
        if new_blocks < self.used_blocks {
            return false;
        }
        self.capacity_bytes = new_capacity_bytes;
        true
    }

    /// Utilization of the grant by live blocks, in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        if self.capacity_blocks() == 0 {
            return 0.0;
        }
        self.used_blocks as f64 / self.capacity_blocks() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool_1gb() -> BlockPool {
        BlockPool::new(524_288, 1_000_000_000)
    }

    #[test]
    fn block_math() {
        let p = pool_1gb();
        assert_eq!(p.block_bytes(), 8_388_608); // 16 × 0.5 MiB
        assert_eq!(p.blocks_for_tokens(0), 0);
        assert_eq!(p.blocks_for_tokens(1), 1);
        assert_eq!(p.blocks_for_tokens(16), 1);
        assert_eq!(p.blocks_for_tokens(17), 2);
        assert_eq!(p.capacity_blocks(), 119);
    }

    #[test]
    fn alloc_free_roundtrip() {
        let mut p = pool_1gb();
        assert!(p.try_alloc(100));
        assert_eq!(p.free_blocks(), 19);
        assert!(!p.try_alloc(20), "over-allocation must fail");
        assert_eq!(p.used_blocks(), 100, "failed alloc must not leak");
        p.free(50);
        assert!(p.try_alloc(20));
        assert_eq!(p.used_blocks(), 70);
    }

    #[test]
    #[should_panic(expected = "freeing")]
    fn double_free_panics() {
        let mut p = pool_1gb();
        assert!(p.try_alloc(5));
        p.free(6);
    }

    #[test]
    fn resize_guards_live_blocks() {
        let mut p = pool_1gb();
        assert!(p.try_alloc(100));
        // Shrinking below 100 live blocks must be refused.
        assert!(!p.try_resize(100 * p.block_bytes() - 1));
        assert_eq!(p.capacity_bytes(), 1_000_000_000);
        // Shrinking to exactly the live set is fine.
        assert!(p.try_resize(100 * p.block_bytes()));
        assert_eq!(p.free_blocks(), 0);
        // Growing always works.
        assert!(p.try_resize(4_000_000_000));
        assert!(p.free_blocks() > 0);
    }

    #[test]
    fn utilization_range() {
        let mut p = pool_1gb();
        assert_eq!(p.utilization(), 0.0);
        assert!(p.try_alloc(p.capacity_blocks()));
        assert!((p.utilization() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_capacity_pool_is_inert() {
        let mut p = BlockPool::new(1024, 0);
        assert_eq!(p.capacity_blocks(), 0);
        assert!(!p.try_alloc(1));
        assert_eq!(p.utilization(), 0.0);
    }
}
