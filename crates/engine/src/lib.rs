//! Simulated LLM inference-engine substrate.
//!
//! The paper runs vLLM (GPU) and OpenVINO (CPU) under every scheduler; this
//! crate is their stand-in. It models exactly the engine behaviours the
//! schedulers interact with:
//!
//! - [`blocks`] — a paged-attention block pool ([`BlockPool`]): KV memory is
//!   allocated in fixed 16-token blocks, so capacity and fragmentation are
//!   block-granular like vLLM's (§III-A, \[37\]).
//! - [`request`] — the per-request state machine
//!   (waiting → prefill → decode → finished) with token-deadline tracking.
//! - [`instance`] — a model [`Instance`]: continuous batch, waiting queue,
//!   KV pool, loading/active lifecycle, and the bookkeeping (busy time,
//!   token counters) the metrics layer reads. With `retain_sessions` set,
//!   an instance also *parks* finished session turns' KV so a follow-up
//!   turn's prefill skips the cached prefix (`begin_prefill` returns the
//!   compute/cached token split; parked entries are evicted coldest-first
//!   under capacity pressure).
//!
//! An instance is *passive*: it never decides when to run. The cluster
//! driver asks it to begin/finish iterations, and scheduling policies
//! (SLINFER, the baselines) decide which instance runs next. That split
//! mirrors the paper's separation between the inference engine and the
//! SLINFER control plane.

#![forbid(unsafe_code)]

pub mod blocks;
pub mod instance;
pub mod request;

pub use blocks::BlockPool;
pub use instance::{Instance, InstanceId, InstanceState, IterationKind};
pub use request::{ReqPhase, RunningRequest};
