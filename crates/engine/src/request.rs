//! Per-request execution state.

use serde::{Deserialize, Serialize};
use simcore::time::{SimDuration, SimTime};
use workload::request::{Request, Slo};

/// Lifecycle phase of a request inside an instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReqPhase {
    /// Admitted; prefill has not run yet.
    Waiting,
    /// Prefill iteration currently executing.
    Prefilling,
    /// In the continuous batch, producing one token per decode iteration.
    Decoding,
    /// All output tokens produced.
    Finished,
}

/// A request bound to an instance, with its SLO clock.
///
/// The SLO clock starts at *arrival* (queueing counts against TTFT), plus a
/// grace window for cold starts: the paper relaxes TTFT by the cold-start
/// duration for requests that triggered a load (§IX-A).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunningRequest {
    /// The underlying workload request.
    pub req: Request,
    /// Current phase.
    pub phase: ReqPhase,
    /// Output tokens produced so far (the first comes from prefill).
    pub tokens_out: u32,
    /// Cold-start grace added to every deadline (§IX-A fairness rule).
    pub grace: SimDuration,
    /// KV blocks currently held in the instance pool.
    pub kv_blocks: u64,
    /// Time the first output token was produced, if any.
    pub first_token_at: Option<SimTime>,
    /// Number of migrations this request has survived (§VII-D eviction /
    /// §VIII-A preemption reschedule both re-prefill elsewhere).
    pub migrations: u32,
}

impl RunningRequest {
    /// Wraps an arriving request.
    pub fn new(req: Request) -> Self {
        RunningRequest {
            req,
            phase: ReqPhase::Waiting,
            tokens_out: 0,
            grace: SimDuration::ZERO,
            kv_blocks: 0,
            first_token_at: None,
            migrations: 0,
        }
    }

    /// Context tokens currently in the KV cache once decoding
    /// (prompt + produced tokens).
    pub fn context_tokens(&self) -> u32 {
        self.req.input_len + self.tokens_out
    }

    /// True once every output token has been produced.
    pub fn is_finished(&self) -> bool {
        self.tokens_out >= self.req.output_len
    }

    /// Absolute deadline of the *next* token under `slo`, including the
    /// cold-start grace.
    pub fn next_deadline(&self, slo: &Slo) -> SimTime {
        slo.token_deadline(
            self.req.arrival + self.grace,
            self.req.input_len,
            self.tokens_out,
        )
    }

    /// Headroom (Eq. 1) at `now`: seconds until the next-token deadline.
    pub fn headroom(&self, now: SimTime, slo: &Slo) -> f64 {
        self.next_deadline(slo).signed_secs_since(now)
    }

    /// Prefill length this request needs. After a migration the *entire
    /// context* (prompt + already-produced tokens) must be recomputed on the
    /// new instance.
    pub fn prefill_len(&self) -> u32 {
        self.context_tokens().max(1)
    }

    /// Marks the request as migrated: KV is dropped, phase returns to
    /// waiting, and the produced-token count is retained (users already
    /// streamed those tokens; only the cache must be rebuilt).
    pub fn begin_migration(&mut self) {
        self.phase = ReqPhase::Waiting;
        self.kv_blocks = 0;
        self.migrations += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload::request::{ModelId, RequestId, SloClass};

    fn req(input: u32, output: u32) -> RunningRequest {
        RunningRequest::new(Request {
            id: RequestId(1),
            model: ModelId(0),
            arrival: SimTime::from_secs(100),
            input_len: input,
            output_len: output,
            class: SloClass::default(),
            session: Default::default(),
        })
    }

    #[test]
    fn lifecycle_counters() {
        let mut r = req(1024, 3);
        assert_eq!(r.context_tokens(), 1024);
        assert!(!r.is_finished());
        r.tokens_out = 3;
        assert!(r.is_finished());
        assert_eq!(r.context_tokens(), 1027);
    }

    #[test]
    fn deadline_includes_grace() {
        let slo = Slo::paper();
        let mut r = req(1024, 10);
        // TTFT SLO = 2 s; first-token deadline at 102 s.
        assert_eq!(r.next_deadline(&slo), SimTime::from_secs(102));
        r.grace = SimDuration::from_secs(1);
        assert_eq!(r.next_deadline(&slo), SimTime::from_secs(103));
        r.tokens_out = 4;
        // + 4 × 0.25 s.
        assert_eq!(r.next_deadline(&slo), SimTime::from_secs(104));
    }

    #[test]
    fn headroom_sign() {
        let slo = Slo::paper();
        let r = req(1024, 10);
        assert!(r.headroom(SimTime::from_secs(101), &slo) > 0.0);
        assert!(r.headroom(SimTime::from_secs(103), &slo) < 0.0);
    }

    #[test]
    fn migration_rebuilds_context() {
        let mut r = req(100, 50);
        r.tokens_out = 20;
        r.phase = ReqPhase::Decoding;
        r.kv_blocks = 8;
        r.begin_migration();
        assert_eq!(r.phase, ReqPhase::Waiting);
        assert_eq!(r.kv_blocks, 0);
        assert_eq!(r.migrations, 1);
        // Re-prefill must cover prompt + the 20 already-produced tokens.
        assert_eq!(r.prefill_len(), 120);
        assert_eq!(r.tokens_out, 20, "streamed tokens are not re-produced");
    }
}
