//! A serving instance: one model resident on one node slot.
//!
//! Holds the continuous batch and the paged KV pool, exposes iteration
//! begin/finish transitions, and keeps the accounting (busy seconds, token
//! counters, peak batch) the metrics layer reads. The instance never picks
//! *when* to run — the policy does (token-level scheduling is SLINFER's
//! §VI-A contribution; baselines run instances back-to-back).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use simcore::time::{SimDuration, SimTime};
use workload::request::{ModelId, RequestId, SessionTag, Slo};

use crate::blocks::BlockPool;
use crate::request::{ReqPhase, RunningRequest};

use hwmodel::ModelSpec;

/// Identifies one instance across the cluster.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct InstanceId(pub u64);

/// Lifecycle of an instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InstanceState {
    /// Weights are being loaded (cold start).
    Loading,
    /// Serving.
    Active,
}

/// What one iteration computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IterationKind {
    /// Prefill of one waiting request.
    Prefill(RequestId),
    /// One decode step over the whole continuous batch.
    Decode,
}

/// Result of starting a prefill iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefillStart {
    /// Tokens the prefill actually computes (cached prefix excluded; at
    /// least 1 so every prefill produces a first token).
    pub compute_tokens: u32,
    /// Prefix tokens served from this session's cached KV.
    pub cached_tokens: u32,
}

/// KV blocks parked for a finished session turn, awaiting the next turn.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SessionEntry {
    /// Context tokens whose KV is cached (prompt + produced tokens).
    pub tokens: u32,
    /// Blocks held in the pool (0 for an entry migrated in from another
    /// instance: its blocks are allocated at the next prefill).
    pub blocks: u64,
    /// LRU stamp (monotonic per instance; smallest = coldest).
    last_used: u64,
}

/// Result of finishing a decode iteration.
#[derive(Debug, Clone, Default)]
pub struct DecodeOutcome {
    /// `(request, tokens_out, finished)` per sequence that produced a token.
    pub produced: Vec<(RequestId, u32, bool)>,
    /// Requests whose next token could not get a KV block (underestimation
    /// hazard, §VII-D); they did not advance.
    pub alloc_failures: Vec<RequestId>,
    /// Requests that completed and were removed.
    pub finished: Vec<RunningRequest>,
}

/// One model instance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Instance {
    /// Unique id.
    pub id: InstanceId,
    /// The hosted model.
    pub model: ModelId,
    /// Model shape/precision (sizing, performance).
    pub spec: ModelSpec,
    /// Tensor-parallel degree: how many node slots this instance spans
    /// (mirrors `spec.tp_degree`; 1 for plain single-slot instances). The
    /// cluster layer claims the matching slot group at placement time.
    pub tp: u32,
    /// Lifecycle state.
    pub state: InstanceState,
    /// Live requests in all phases (finished ones are removed).
    requests: Vec<RunningRequest>,
    pool: BlockPool,
    /// Retain finished session turns' KV for prefix reuse. Set by the
    /// cluster layer from its session config; off (the default) keeps the
    /// historical free-on-finish behavior bit-for-bit.
    pub retain_sessions: bool,
    /// Parked per-session KV awaiting the session's next turn.
    session_kv: BTreeMap<u64, SessionEntry>,
    /// Monotonic stamp source for deterministic session LRU.
    session_seq: u64,
    /// Prefix tokens served from the local session cache.
    pub prefix_hit_tokens: u64,
    /// Session entries dropped under capacity pressure.
    pub session_evictions: u64,
    /// True while an iteration executes.
    pub busy: bool,
    /// True while a KV rescale executes (iterations are blocked, §VII-B).
    pub scaling: bool,
    /// Creation time (cold-start begin).
    pub created_at: SimTime,
    /// When the instance last became empty, for keep-alive reclaim.
    pub idle_since: Option<SimTime>,
    /// Total decode tokens produced (throughput accounting).
    pub decode_tokens: u64,
    /// Total prefill tokens processed.
    pub prefill_tokens: u64,
    /// Seconds spent computing iterations.
    pub busy_secs: f64,
    /// Seconds spent blocked on KV rescales.
    pub scale_secs: f64,
    /// Number of KV rescale operations performed.
    pub scale_ops: u64,
    /// Largest decode batch observed.
    pub peak_batch: u32,
}

impl Instance {
    /// Creates an instance in the [`InstanceState::Loading`] state with an
    /// initial KV grant of `kv_grant_bytes`.
    pub fn new(
        id: InstanceId,
        model: ModelId,
        spec: ModelSpec,
        kv_grant_bytes: u64,
        now: SimTime,
    ) -> Self {
        let pool = BlockPool::new(spec.kv_bytes_per_token(), kv_grant_bytes);
        let tp = spec.tp_degree.max(1);
        Instance {
            id,
            model,
            spec,
            tp,
            state: InstanceState::Loading,
            requests: Vec::new(),
            pool,
            retain_sessions: false,
            session_kv: BTreeMap::new(),
            session_seq: 0,
            prefix_hit_tokens: 0,
            session_evictions: 0,
            busy: false,
            scaling: false,
            created_at: now,
            idle_since: None,
            decode_tokens: 0,
            prefill_tokens: 0,
            busy_secs: 0.0,
            scale_secs: 0.0,
            scale_ops: 0,
            peak_batch: 0,
        }
    }

    /// Marks the cold start complete.
    pub fn activate(&mut self, now: SimTime) {
        self.state = InstanceState::Active;
        if self.requests.is_empty() {
            self.idle_since = Some(now);
        }
    }

    /// Admits a request (phase becomes `Waiting`).
    pub fn admit(&mut self, rr: RunningRequest) {
        debug_assert!(matches!(rr.phase, ReqPhase::Waiting));
        self.requests.push(rr);
        self.idle_since = None;
    }

    /// All live requests.
    pub fn requests(&self) -> &[RunningRequest] {
        &self.requests
    }

    /// Mutable access for policies that adjust grace windows.
    pub fn requests_mut(&mut self) -> &mut [RunningRequest] {
        &mut self.requests
    }

    /// Number of decoding sequences (the paper's "bs").
    pub fn batch_size(&self) -> u32 {
        self.requests
            .iter()
            .filter(|r| matches!(r.phase, ReqPhase::Decoding))
            .count() as u32
    }

    /// Number of admitted-but-not-prefilled requests.
    pub fn waiting_count(&self) -> u32 {
        self.requests
            .iter()
            .filter(|r| matches!(r.phase, ReqPhase::Waiting))
            .count() as u32
    }

    /// Total live requests (waiting + prefilling + decoding).
    pub fn live_count(&self) -> u32 {
        self.requests.len() as u32
    }

    /// Total context tokens across the decode batch.
    pub fn batch_context_tokens(&self) -> u64 {
        self.requests
            .iter()
            .filter(|r| matches!(r.phase, ReqPhase::Decoding))
            .map(|r| r.context_tokens() as u64)
            .sum()
    }

    /// True if an iteration could be scheduled right now.
    pub fn has_work(&self) -> bool {
        self.state == InstanceState::Active
            && !self.busy
            && !self.scaling
            && self.requests.iter().any(|r| {
                matches!(r.phase, ReqPhase::Waiting) || matches!(r.phase, ReqPhase::Decoding)
            })
    }

    /// True if any live request exists (even mid-iteration).
    pub fn has_live_requests(&self) -> bool {
        !self.requests.is_empty()
    }

    /// The most urgent schedulable work: minimum headroom over waiting
    /// requests (→ prefill) and the decode batch (→ decode), per Fig. 14.
    pub fn most_urgent(&self, now: SimTime, slo: &Slo) -> Option<(f64, IterationKind)> {
        let mut best: Option<(f64, IterationKind)> = None;
        for r in &self.requests {
            let candidate = match r.phase {
                ReqPhase::Waiting => (r.headroom(now, slo), IterationKind::Prefill(r.req.id)),
                ReqPhase::Decoding => (r.headroom(now, slo), IterationKind::Decode),
                _ => continue,
            };
            if best.is_none_or(|(h, _)| candidate.0 < h) {
                best = Some(candidate);
            }
        }
        best
    }

    fn find(&self, id: RequestId) -> Option<usize> {
        self.requests.iter().position(|r| r.req.id == id)
    }

    /// Begins a prefill iteration for `id`, allocating its context blocks.
    ///
    /// If the instance holds parked KV for the request's session (a
    /// follow-up turn landing back home), the cached prefix is consumed:
    /// its blocks transfer to the request, only the uncached tail is
    /// computed, and [`PrefillStart::cached_tokens`] reports the skip.
    ///
    /// Returns `None` if the KV grant cannot hold the prompt even after
    /// evicting idle sessions' parked blocks (caller must scale up or
    /// reroute); a consumed session entry is dropped in that case (its
    /// blocks are freed) so a retry sees maximal free space.
    ///
    /// # Panics
    /// Panics if the instance is busy/scaling/loading or `id` is unknown or
    /// not waiting.
    pub fn begin_prefill(&mut self, id: RequestId) -> Option<PrefillStart> {
        assert!(self.state == InstanceState::Active, "instance not active");
        assert!(!self.busy && !self.scaling, "instance already occupied");
        let ix = self.find(id).expect("unknown request");
        assert!(
            matches!(self.requests[ix].phase, ReqPhase::Waiting),
            "request not waiting"
        );
        let len = self.requests[ix].prefill_len();
        let tag = self.requests[ix].req.session;
        let entry = if self.retain_sessions && tag.is_followup() {
            self.session_kv.remove(&tag.id)
        } else {
            None
        };
        // A cached prefix never covers the whole prompt: at least one new
        // token must be computed to produce the first output token.
        let (cached, reuse_blocks) = entry
            .map(|e| (e.tokens.min(len - 1), e.blocks))
            .unwrap_or((0, 0));
        // Blocks for the full context plus the first output token; the
        // parked blocks count toward it.
        let blocks = self.pool.blocks_for_tokens(len + 1);
        let extra = blocks.saturating_sub(reuse_blocks);
        if !self.alloc_evicting_sessions(extra) {
            // Even the delta does not fit: drop the consumed entry so the
            // caller's recovery (rescale, shed, reroute) starts clean.
            self.pool.free(reuse_blocks);
            if reuse_blocks > 0 {
                self.session_evictions += 1;
            }
            return None;
        }
        // Shrinking contexts cannot happen (context only grows), but guard
        // against a parked entry larger than the new request needs.
        if reuse_blocks > blocks {
            self.pool.free(reuse_blocks - blocks);
        }
        let r = &mut self.requests[ix];
        r.kv_blocks = blocks;
        r.phase = ReqPhase::Prefilling;
        self.busy = true;
        self.prefix_hit_tokens += cached as u64;
        Some(PrefillStart {
            compute_tokens: (len - cached).max(1),
            cached_tokens: cached,
        })
    }

    /// Completes the in-flight prefill: the request joins the decode batch
    /// and its first output token is produced. Returns
    /// `(tokens_out, finished)` — `finished` is `Some` when the first token
    /// was also the last (`output_len == 1` or a migrated tail).
    ///
    /// # Panics
    /// Panics if `id` is not the in-flight prefill.
    pub fn finish_prefill(
        &mut self,
        id: RequestId,
        now: SimTime,
        elapsed: SimDuration,
    ) -> (u32, Option<RunningRequest>) {
        let ix = self.find(id).expect("unknown request");
        assert!(
            matches!(self.requests[ix].phase, ReqPhase::Prefilling),
            "request not prefilling"
        );
        let prefill_len;
        let tokens_out;
        let done;
        {
            let r = &mut self.requests[ix];
            prefill_len = r.prefill_len() as u64;
            r.tokens_out += 1;
            tokens_out = r.tokens_out;
            if r.first_token_at.is_none() {
                r.first_token_at = Some(now);
            }
            done = r.is_finished();
            r.phase = if done {
                ReqPhase::Finished
            } else {
                ReqPhase::Decoding
            };
        }
        self.prefill_tokens += prefill_len;
        self.decode_tokens += 1;
        self.busy = false;
        self.busy_secs += elapsed.as_secs_f64();
        self.peak_batch = self.peak_batch.max(self.batch_size());
        let finished = self.collect_finished().pop();
        self.retire_finished(now);
        (tokens_out, finished)
    }

    /// Begins a decode iteration over the current batch; returns
    /// `(batch_size, total_context_tokens)`.
    ///
    /// # Panics
    /// Panics if the instance is occupied or the batch is empty.
    pub fn begin_decode(&mut self) -> (u32, u64) {
        assert!(self.state == InstanceState::Active, "instance not active");
        assert!(!self.busy && !self.scaling, "instance already occupied");
        let bs = self.batch_size();
        assert!(bs > 0, "decode with empty batch");
        self.busy = true;
        (bs, self.batch_context_tokens())
    }

    /// Completes the in-flight decode iteration: every decoding sequence
    /// gains one token (if a KV block is available), finished sequences
    /// retire.
    pub fn finish_decode(&mut self, now: SimTime, elapsed: SimDuration) -> DecodeOutcome {
        assert!(self.busy, "no decode in flight");
        self.busy = false;
        self.busy_secs += elapsed.as_secs_f64();
        let mut outcome = DecodeOutcome::default();
        for ix in 0..self.requests.len() {
            if !matches!(self.requests[ix].phase, ReqPhase::Decoding) {
                continue;
            }
            let needed = self
                .pool
                .blocks_for_tokens(self.requests[ix].context_tokens() + 1);
            if needed > self.requests[ix].kv_blocks {
                let extra = needed - self.requests[ix].kv_blocks;
                if !self.alloc_evicting_sessions(extra) {
                    outcome.alloc_failures.push(self.requests[ix].req.id);
                    continue;
                }
                self.requests[ix].kv_blocks = needed;
            }
            let r = &mut self.requests[ix];
            r.tokens_out += 1;
            self.decode_tokens += 1;
            if r.first_token_at.is_none() {
                r.first_token_at = Some(now);
            }
            let done = r.is_finished();
            if done {
                r.phase = ReqPhase::Finished;
            }
            outcome.produced.push((r.req.id, r.tokens_out, done));
        }
        outcome.finished = self.collect_finished();
        self.retire_finished(now);
        outcome
    }

    fn collect_finished(&mut self) -> Vec<RunningRequest> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < self.requests.len() {
            if matches!(self.requests[i].phase, ReqPhase::Finished) {
                let r = self.requests.swap_remove(i);
                let tag = r.req.session;
                if self.retain_sessions && tag.is_session() {
                    // Park the finished turn's KV for the session's next
                    // turn instead of freeing it.
                    self.session_seq += 1;
                    let entry = SessionEntry {
                        tokens: r.context_tokens(),
                        blocks: r.kv_blocks,
                        last_used: self.session_seq,
                    };
                    if let Some(old) = self.session_kv.insert(tag.id, entry) {
                        self.pool.free(old.blocks);
                    }
                } else {
                    self.pool.free(r.kv_blocks);
                }
                out.push(r);
            } else {
                i += 1;
            }
        }
        out
    }

    /// Allocates `blocks`, evicting parked session KV coldest-first when the
    /// pool is short. Sessionless instances never hold parked entries, so
    /// this reduces to a plain `try_alloc`.
    fn alloc_evicting_sessions(&mut self, blocks: u64) -> bool {
        if self.pool.try_alloc(blocks) {
            return true;
        }
        while let Some(sid) = self.coldest_session() {
            let e = self.session_kv.remove(&sid).expect("coldest key exists");
            self.pool.free(e.blocks);
            self.session_evictions += 1;
            if self.pool.try_alloc(blocks) {
                return true;
            }
        }
        false
    }

    fn coldest_session(&self) -> Option<u64> {
        self.session_kv
            .iter()
            .min_by_key(|(id, e)| (e.last_used, **id))
            .map(|(id, _)| *id)
    }

    /// True if this instance holds parked KV for `session`.
    pub fn has_session(&self, session: u64) -> bool {
        self.session_kv.contains_key(&session)
    }

    /// Cached context tokens parked for `session`, if any.
    pub fn session_tokens(&self, session: u64) -> Option<u32> {
        self.session_kv.get(&session).map(|e| e.tokens)
    }

    /// Number of sessions with parked KV.
    pub fn session_count(&self) -> usize {
        self.session_kv.len()
    }

    /// Ids of all sessions with parked KV here (ascending).
    pub fn session_ids(&self) -> Vec<u64> {
        self.session_kv.keys().copied().collect()
    }

    /// Bytes held by parked session KV.
    pub fn session_kv_bytes(&self) -> u64 {
        let blocks: u64 = self.session_kv.values().map(|e| e.blocks).sum();
        blocks * self.pool.block_bytes()
    }

    /// Removes and frees `session`'s parked KV, returning its cached token
    /// count (used by the cluster layer when migrating a session away).
    pub fn evict_session(&mut self, session: u64) -> Option<u32> {
        let e = self.session_kv.remove(&session)?;
        self.pool.free(e.blocks);
        Some(e.tokens)
    }

    /// Records `tokens` of session KV arriving from another instance. No
    /// blocks are held yet — they are allocated when the turn prefills here.
    pub fn import_session(&mut self, session: u64, tokens: u32) {
        self.session_seq += 1;
        let entry = SessionEntry {
            tokens,
            blocks: 0,
            last_used: self.session_seq,
        };
        if let Some(old) = self.session_kv.insert(session, entry) {
            self.pool.free(old.blocks);
        }
    }

    /// Frees parked session KV (coldest-first) until live blocks fit under
    /// `target_bytes`; returns the number of sessions evicted. Used before
    /// shrinking the KV grant.
    pub fn evict_sessions_to_fit(&mut self, target_bytes: u64) -> u64 {
        let mut n = 0;
        while self.pool.used_bytes() > target_bytes {
            let Some(sid) = self.coldest_session() else {
                break;
            };
            let e = self.session_kv.remove(&sid).expect("coldest key exists");
            self.pool.free(e.blocks);
            self.session_evictions += 1;
            n += 1;
        }
        n
    }

    /// The session tag of a queued (admitted) request, if it is live here.
    pub fn queued_session(&self, id: RequestId) -> Option<SessionTag> {
        self.find(id).map(|ix| self.requests[ix].req.session)
    }

    fn retire_finished(&mut self, now: SimTime) {
        if self.requests.is_empty() {
            self.idle_since = Some(now);
        }
    }

    /// Removes a live request for migration/eviction, freeing its KV and
    /// resetting it to `Waiting` with migration bookkeeping.
    ///
    /// # Panics
    /// Panics if `id` is unknown or is currently mid-iteration.
    pub fn remove_for_migration(&mut self, id: RequestId, now: SimTime) -> RunningRequest {
        let ix = self.find(id).expect("unknown request");
        assert!(
            !matches!(self.requests[ix].phase, ReqPhase::Prefilling),
            "cannot migrate a request mid-prefill"
        );
        let mut r = self.requests.swap_remove(ix);
        self.pool.free(r.kv_blocks);
        r.begin_migration();
        self.retire_finished(now);
        r
    }

    /// Removes a *decoding* request for prefill–decode disaggregated
    /// handoff (§IX-G): its KV blocks are freed here but the request keeps
    /// its decoding phase — the cache content is shipped over the network to
    /// the decode instance rather than recomputed.
    ///
    /// # Panics
    /// Panics if `id` is unknown or not decoding.
    pub fn remove_for_handoff(&mut self, id: RequestId, now: SimTime) -> RunningRequest {
        let ix = self.find(id).expect("unknown request");
        assert!(
            matches!(self.requests[ix].phase, ReqPhase::Decoding),
            "handoff requires a decoding request"
        );
        let mut r = self.requests.swap_remove(ix);
        self.pool.free(r.kv_blocks);
        r.kv_blocks = 0;
        self.retire_finished(now);
        r
    }

    /// Admits a request that already completed prefill elsewhere (PD
    /// disaggregation): allocates blocks for its shipped KV and joins the
    /// decode batch directly. Returns false if the grant cannot hold it.
    #[must_use]
    pub fn admit_decoding(&mut self, mut rr: RunningRequest) -> bool {
        debug_assert!(matches!(rr.phase, ReqPhase::Decoding));
        let blocks = self.pool.blocks_for_tokens(rr.context_tokens() + 1);
        if !self.alloc_evicting_sessions(blocks) {
            return false;
        }
        rr.kv_blocks = blocks;
        self.requests.push(rr);
        self.idle_since = None;
        true
    }

    /// Drains *all* live requests for preemption (§VIII-A), freeing KV.
    pub fn drain_for_preemption(&mut self, now: SimTime) -> Vec<RunningRequest> {
        let mut out: Vec<RunningRequest> = Vec::with_capacity(self.requests.len());
        for mut r in std::mem::take(&mut self.requests) {
            self.pool.free(r.kv_blocks);
            r.begin_migration();
            out.push(r);
        }
        self.idle_since = Some(now);
        out
    }

    /// Records a completed KV rescale; returns false if the new grant cannot
    /// hold live blocks (the caller must treat this as a hazard).
    #[must_use]
    pub fn apply_kv_resize(&mut self, new_bytes: u64, elapsed: SimDuration) -> bool {
        self.scale_secs += elapsed.as_secs_f64();
        self.scale_ops += 1;
        self.pool.try_resize(new_bytes)
    }

    /// Bytes currently granted to the KV pool.
    pub fn kv_capacity_bytes(&self) -> u64 {
        self.pool.capacity_bytes()
    }

    /// Bytes held by live KV blocks.
    pub fn kv_used_bytes(&self) -> u64 {
        self.pool.used_bytes()
    }

    /// KV pool utilization in `[0, 1]`.
    pub fn kv_utilization(&self) -> f64 {
        self.pool.utilization()
    }

    /// Total memory footprint committed on the node: weights + KV grant.
    pub fn footprint_bytes(&self) -> u64 {
        self.spec.weights_bytes() + self.pool.capacity_bytes()
    }

    /// Eq. 2 — the memory the instance *requires*:
    /// `C · max(Σ_r (I_r + max(O_r, Ō)), L_min)`, where `Ō` is the
    /// historical mean output length and `L_min` a floor in tokens
    /// (the paper uses the model's maximum context length).
    pub fn kv_required_bytes(&self, avg_output_len: f64, l_min_tokens: u32) -> u64 {
        let sum: f64 = self
            .requests
            .iter()
            .filter(|r| !matches!(r.phase, ReqPhase::Finished))
            .map(|r| r.req.input_len as f64 + (r.tokens_out as f64).max(avg_output_len))
            .sum();
        let tokens = sum.max(l_min_tokens as f64);
        (tokens * self.spec.kv_bytes_per_token() as f64).ceil() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload::request::{Request, SloClass};

    fn spec() -> ModelSpec {
        ModelSpec::llama2_7b()
    }

    fn inst(kv_gb: u64) -> Instance {
        let mut i = Instance::new(
            InstanceId(1),
            ModelId(0),
            spec(),
            kv_gb * 1_000_000_000,
            SimTime::ZERO,
        );
        i.activate(SimTime::ZERO);
        i
    }

    fn rr(id: u64, input: u32, output: u32) -> RunningRequest {
        RunningRequest::new(Request {
            id: RequestId(id),
            model: ModelId(0),
            arrival: SimTime::ZERO,
            input_len: input,
            output_len: output,
            class: SloClass::default(),
            session: Default::default(),
        })
    }

    #[test]
    fn full_request_lifecycle() {
        let mut i = inst(8);
        i.admit(rr(1, 100, 3));
        assert_eq!(i.waiting_count(), 1);
        assert!(i.has_work());

        let ps = i.begin_prefill(RequestId(1)).expect("kv fits");
        assert_eq!(ps.compute_tokens, 100);
        assert_eq!(ps.cached_tokens, 0);
        assert!(i.busy);
        i.finish_prefill(
            RequestId(1),
            SimTime::from_millis(500),
            SimDuration::from_millis(500),
        );
        assert_eq!(i.batch_size(), 1);
        assert_eq!(i.decode_tokens, 1, "prefill produces the first token");

        // Two more decode iterations finish the request (output_len = 3).
        for step in 0..2 {
            let (bs, ctx) = i.begin_decode();
            assert_eq!(bs, 1);
            assert!(ctx >= 100);
            let out = i.finish_decode(
                SimTime::from_millis(600 + step * 100),
                SimDuration::from_millis(100),
            );
            assert_eq!(out.produced.len(), 1);
        }
        assert_eq!(i.live_count(), 0);
        assert!(i.idle_since.is_some());
        assert_eq!(i.kv_used_bytes(), 0, "finished request frees its KV");
    }

    #[test]
    fn prefill_rejected_when_grant_too_small() {
        // 0.1 GB grant cannot hold a 1024-token 7B prompt (0.5 GB).
        let mut i = Instance::new(
            InstanceId(2),
            ModelId(0),
            spec(),
            100_000_000,
            SimTime::ZERO,
        );
        i.activate(SimTime::ZERO);
        i.admit(rr(1, 1024, 4));
        assert!(i.begin_prefill(RequestId(1)).is_none());
        assert!(!i.busy, "failed prefill must not occupy the instance");
        assert_eq!(i.kv_used_bytes(), 0);
    }

    #[test]
    fn decode_alloc_failure_blocks_token() {
        // Grant exactly the prompt's blocks so the next boundary crossing
        // fails: prompt 15 tokens + 1 = 16 → 1 block; token 17 needs block 2.
        let spec7 = spec();
        let one_block = spec7.kv_bytes_per_token() * 16;
        let mut i = Instance::new(InstanceId(3), ModelId(0), spec7, one_block, SimTime::ZERO);
        i.activate(SimTime::ZERO);
        i.admit(rr(1, 15, 10));
        assert!(i.begin_prefill(RequestId(1)).is_some());
        i.finish_prefill(RequestId(1), SimTime::ZERO, SimDuration::ZERO);
        // context now 16; next token needs a second block that doesn't exist.
        i.begin_decode();
        let out = i.finish_decode(SimTime::ZERO, SimDuration::ZERO);
        assert_eq!(out.alloc_failures, vec![RequestId(1)]);
        assert!(out.produced.is_empty());
        // The request did not advance.
        assert_eq!(i.requests()[0].tokens_out, 1);
    }

    #[test]
    fn most_urgent_prefers_lowest_headroom() {
        let slo = Slo::paper();
        let mut i = inst(8);
        // Waiting request with a long-input (large TTFT budget)…
        i.admit(rr(1, 4096, 4));
        // …and a decoding request about to hit its deadline.
        i.admit(rr(2, 100, 4));
        assert!(i.begin_prefill(RequestId(2)).is_some());
        i.finish_prefill(
            RequestId(2),
            SimTime::from_millis(100),
            SimDuration::from_millis(100),
        );
        // At t close to req-2's next deadline, decode must win.
        let now = SimTime::from_millis(700);
        let (_, kind) = i.most_urgent(now, &slo).unwrap();
        assert_eq!(kind, IterationKind::Decode);
    }

    #[test]
    fn migration_frees_kv_and_resets() {
        let mut i = inst(8);
        i.admit(rr(1, 100, 50));
        assert!(i.begin_prefill(RequestId(1)).is_some());
        i.finish_prefill(RequestId(1), SimTime::ZERO, SimDuration::ZERO);
        let used = i.kv_used_bytes();
        assert!(used > 0);
        let r = i.remove_for_migration(RequestId(1), SimTime::from_secs(1));
        assert_eq!(i.kv_used_bytes(), 0);
        assert_eq!(r.migrations, 1);
        assert_eq!(i.live_count(), 0);
    }

    #[test]
    fn drain_for_preemption_empties_instance() {
        let mut i = inst(8);
        i.admit(rr(1, 100, 50));
        i.admit(rr(2, 100, 50));
        assert!(i.begin_prefill(RequestId(1)).is_some());
        i.finish_prefill(RequestId(1), SimTime::ZERO, SimDuration::ZERO);
        let drained = i.drain_for_preemption(SimTime::from_secs(1));
        assert_eq!(drained.len(), 2);
        assert!(drained.iter().all(|r| matches!(r.phase, ReqPhase::Waiting)));
        assert_eq!(i.kv_used_bytes(), 0);
        assert!(i.idle_since.is_some());
    }

    #[test]
    fn kv_required_follows_equation_two() {
        let mut i = inst(8);
        let c = i.spec.kv_bytes_per_token() as f64;
        // No requests: floor applies (L_min = 4096 tokens).
        assert_eq!(i.kv_required_bytes(200.0, 4096), (4096.0 * c) as u64);
        // Two requests: Σ (I_r + max(O_r, Ō)) = (1000+200) + (3000+200).
        i.admit(rr(1, 1000, 64));
        i.admit(rr(2, 3000, 64));
        let expect = ((1000.0 + 200.0 + 3000.0 + 200.0) * c).ceil() as u64;
        assert_eq!(i.kv_required_bytes(200.0, 4096), expect);
    }

    #[test]
    fn resize_tracks_overhead() {
        let mut i = inst(8);
        assert!(i.apply_kv_resize(16_000_000_000, SimDuration::from_millis(300)));
        assert_eq!(i.kv_capacity_bytes(), 16_000_000_000);
        assert_eq!(i.scale_ops, 1);
        assert!((i.scale_secs - 0.3).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "already occupied")]
    fn cannot_overlap_iterations() {
        let mut i = inst(8);
        i.admit(rr(1, 100, 4));
        i.admit(rr(2, 100, 4));
        assert!(i.begin_prefill(RequestId(1)).is_some());
        let _ = i.begin_prefill(RequestId(2));
    }

    #[test]
    fn footprint_includes_weights_and_grant() {
        let i = inst(8);
        let expect = i.spec.weights_bytes() + 8 * 1_000_000_000;
        assert_eq!(i.footprint_bytes(), expect);
    }

    fn session_rr(id: u64, sid: u64, turn: u32, input: u32, output: u32) -> RunningRequest {
        let mut r = rr(id, input, output);
        r.req.session = SessionTag::new(sid, turn);
        r
    }

    fn run_to_completion(i: &mut Instance, id: RequestId) {
        assert!(i.begin_prefill(id).is_some());
        i.finish_prefill(id, SimTime::ZERO, SimDuration::ZERO);
        while i.requests().iter().any(|r| r.req.id == id) {
            i.begin_decode();
            i.finish_decode(SimTime::ZERO, SimDuration::ZERO);
        }
    }

    #[test]
    fn session_kv_parks_on_finish_and_discounts_next_turn() {
        let mut i = inst(8);
        i.retain_sessions = true;
        // Turn 0: 100 prompt + 3 output tokens → 103 cached tokens.
        i.admit(session_rr(1, 7, 0, 100, 3));
        run_to_completion(&mut i, RequestId(1));
        assert!(i.has_session(7));
        assert_eq!(i.session_tokens(7), Some(103));
        assert!(i.kv_used_bytes() > 0, "parked KV stays allocated");

        // Turn 1 re-submits the 103-token prefix plus 50 new tokens.
        i.admit(session_rr(2, 7, 1, 153, 4));
        let ps = i.begin_prefill(RequestId(2)).expect("kv fits");
        assert_eq!(ps.cached_tokens, 103);
        assert_eq!(ps.compute_tokens, 50);
        assert!(!i.has_session(7), "the entry is consumed by the turn");
        assert_eq!(i.prefix_hit_tokens, 103);
    }

    #[test]
    fn sessionless_instance_behaves_as_before() {
        let mut i = inst(8);
        // retain_sessions defaults to false: even tagged requests free KV.
        i.admit(session_rr(1, 7, 0, 100, 3));
        run_to_completion(&mut i, RequestId(1));
        assert!(!i.has_session(7));
        assert_eq!(i.kv_used_bytes(), 0);
        i.admit(session_rr(2, 7, 1, 153, 4));
        let ps = i.begin_prefill(RequestId(2)).expect("kv fits");
        assert_eq!(ps.cached_tokens, 0);
        assert_eq!(ps.compute_tokens, 153);
    }

    #[test]
    fn capacity_pressure_evicts_coldest_session() {
        // Pool of 8 blocks; two parked sessions of 2 blocks each leave 4.
        let spec7 = spec();
        let grant = spec7.kv_bytes_per_token() * 16 * 8;
        let mut i = Instance::new(InstanceId(5), ModelId(0), spec7, grant, SimTime::ZERO);
        i.activate(SimTime::ZERO);
        i.retain_sessions = true;
        i.admit(session_rr(1, 1, 0, 20, 2)); // 22 tokens → 2 blocks
        run_to_completion(&mut i, RequestId(1));
        i.admit(session_rr(2, 2, 0, 20, 2));
        run_to_completion(&mut i, RequestId(2));
        assert_eq!(i.session_count(), 2);

        // A 90-token sessionless prompt needs 6 blocks; only 4 are free, so
        // the coldest parked session (id 1) must be evicted.
        i.admit(rr(3, 90, 2));
        assert!(i.begin_prefill(RequestId(3)).is_some());
        assert!(!i.has_session(1), "coldest session evicted first");
        assert!(i.has_session(2), "warmer session survives");
        assert_eq!(i.session_evictions, 1);
    }

    #[test]
    fn evict_sessions_to_fit_frees_parked_kv() {
        let mut i = inst(8);
        i.retain_sessions = true;
        i.admit(session_rr(1, 3, 0, 100, 3));
        run_to_completion(&mut i, RequestId(1));
        let used = i.kv_used_bytes();
        assert!(used > 0);
        assert_eq!(i.evict_sessions_to_fit(0), 1);
        assert_eq!(i.kv_used_bytes(), 0);
        assert!(!i.has_session(3));
    }

    #[test]
    fn imported_session_discounts_without_blocks() {
        let mut i = inst(8);
        i.retain_sessions = true;
        i.import_session(9, 200);
        assert_eq!(i.session_tokens(9), Some(200));
        assert_eq!(i.kv_used_bytes(), 0, "imported entries hold no blocks yet");
        i.admit(session_rr(1, 9, 1, 260, 4));
        let ps = i.begin_prefill(RequestId(1)).expect("kv fits");
        assert_eq!(ps.cached_tokens, 200);
        assert_eq!(ps.compute_tokens, 60);
    }

    #[test]
    fn evict_session_returns_tokens_and_frees() {
        let mut i = inst(8);
        i.retain_sessions = true;
        i.admit(session_rr(1, 4, 0, 50, 2));
        run_to_completion(&mut i, RequestId(1));
        assert_eq!(i.evict_session(4), Some(52));
        assert_eq!(i.kv_used_bytes(), 0);
        assert_eq!(i.evict_session(4), None);
    }

    #[test]
    fn tp_degree_mirrors_spec() {
        assert_eq!(inst(8).tp, 1);
        let i = Instance::new(
            InstanceId(9),
            ModelId(0),
            spec().with_tp(4),
            1_000_000_000,
            SimTime::ZERO,
        );
        assert_eq!(i.tp, 4);
        // The footprint is the whole group's: weights are sharded across
        // the slots but the node ledger accounts the total.
        assert_eq!(i.footprint_bytes(), i.spec.weights_bytes() + 1_000_000_000);
    }
}
