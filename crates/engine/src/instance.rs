//! A serving instance: one model resident on one node slot.
//!
//! Holds the continuous batch and the paged KV pool, exposes iteration
//! begin/finish transitions, and keeps the accounting (busy seconds, token
//! counters, peak batch) the metrics layer reads. The instance never picks
//! *when* to run — the policy does (token-level scheduling is SLINFER's
//! §VI-A contribution; baselines run instances back-to-back).

use serde::{Deserialize, Serialize};
use simcore::time::{SimDuration, SimTime};
use workload::request::{ModelId, RequestId, Slo};

use crate::blocks::BlockPool;
use crate::request::{ReqPhase, RunningRequest};

use hwmodel::ModelSpec;

/// Identifies one instance across the cluster.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct InstanceId(pub u64);

/// Lifecycle of an instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InstanceState {
    /// Weights are being loaded (cold start).
    Loading,
    /// Serving.
    Active,
}

/// What one iteration computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IterationKind {
    /// Prefill of one waiting request.
    Prefill(RequestId),
    /// One decode step over the whole continuous batch.
    Decode,
}

/// Result of finishing a decode iteration.
#[derive(Debug, Clone, Default)]
pub struct DecodeOutcome {
    /// `(request, tokens_out, finished)` per sequence that produced a token.
    pub produced: Vec<(RequestId, u32, bool)>,
    /// Requests whose next token could not get a KV block (underestimation
    /// hazard, §VII-D); they did not advance.
    pub alloc_failures: Vec<RequestId>,
    /// Requests that completed and were removed.
    pub finished: Vec<RunningRequest>,
}

/// One model instance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Instance {
    /// Unique id.
    pub id: InstanceId,
    /// The hosted model.
    pub model: ModelId,
    /// Model shape/precision (sizing, performance).
    pub spec: ModelSpec,
    /// Tensor-parallel degree: how many node slots this instance spans
    /// (mirrors `spec.tp_degree`; 1 for plain single-slot instances). The
    /// cluster layer claims the matching slot group at placement time.
    pub tp: u32,
    /// Lifecycle state.
    pub state: InstanceState,
    /// Live requests in all phases (finished ones are removed).
    requests: Vec<RunningRequest>,
    pool: BlockPool,
    /// True while an iteration executes.
    pub busy: bool,
    /// True while a KV rescale executes (iterations are blocked, §VII-B).
    pub scaling: bool,
    /// Creation time (cold-start begin).
    pub created_at: SimTime,
    /// When the instance last became empty, for keep-alive reclaim.
    pub idle_since: Option<SimTime>,
    /// Total decode tokens produced (throughput accounting).
    pub decode_tokens: u64,
    /// Total prefill tokens processed.
    pub prefill_tokens: u64,
    /// Seconds spent computing iterations.
    pub busy_secs: f64,
    /// Seconds spent blocked on KV rescales.
    pub scale_secs: f64,
    /// Number of KV rescale operations performed.
    pub scale_ops: u64,
    /// Largest decode batch observed.
    pub peak_batch: u32,
}

impl Instance {
    /// Creates an instance in the [`InstanceState::Loading`] state with an
    /// initial KV grant of `kv_grant_bytes`.
    pub fn new(
        id: InstanceId,
        model: ModelId,
        spec: ModelSpec,
        kv_grant_bytes: u64,
        now: SimTime,
    ) -> Self {
        let pool = BlockPool::new(spec.kv_bytes_per_token(), kv_grant_bytes);
        let tp = spec.tp_degree.max(1);
        Instance {
            id,
            model,
            spec,
            tp,
            state: InstanceState::Loading,
            requests: Vec::new(),
            pool,
            busy: false,
            scaling: false,
            created_at: now,
            idle_since: None,
            decode_tokens: 0,
            prefill_tokens: 0,
            busy_secs: 0.0,
            scale_secs: 0.0,
            scale_ops: 0,
            peak_batch: 0,
        }
    }

    /// Marks the cold start complete.
    pub fn activate(&mut self, now: SimTime) {
        self.state = InstanceState::Active;
        if self.requests.is_empty() {
            self.idle_since = Some(now);
        }
    }

    /// Admits a request (phase becomes `Waiting`).
    pub fn admit(&mut self, rr: RunningRequest) {
        debug_assert!(matches!(rr.phase, ReqPhase::Waiting));
        self.requests.push(rr);
        self.idle_since = None;
    }

    /// All live requests.
    pub fn requests(&self) -> &[RunningRequest] {
        &self.requests
    }

    /// Mutable access for policies that adjust grace windows.
    pub fn requests_mut(&mut self) -> &mut [RunningRequest] {
        &mut self.requests
    }

    /// Number of decoding sequences (the paper's "bs").
    pub fn batch_size(&self) -> u32 {
        self.requests
            .iter()
            .filter(|r| matches!(r.phase, ReqPhase::Decoding))
            .count() as u32
    }

    /// Number of admitted-but-not-prefilled requests.
    pub fn waiting_count(&self) -> u32 {
        self.requests
            .iter()
            .filter(|r| matches!(r.phase, ReqPhase::Waiting))
            .count() as u32
    }

    /// Total live requests (waiting + prefilling + decoding).
    pub fn live_count(&self) -> u32 {
        self.requests.len() as u32
    }

    /// Total context tokens across the decode batch.
    pub fn batch_context_tokens(&self) -> u64 {
        self.requests
            .iter()
            .filter(|r| matches!(r.phase, ReqPhase::Decoding))
            .map(|r| r.context_tokens() as u64)
            .sum()
    }

    /// True if an iteration could be scheduled right now.
    pub fn has_work(&self) -> bool {
        self.state == InstanceState::Active
            && !self.busy
            && !self.scaling
            && self.requests.iter().any(|r| {
                matches!(r.phase, ReqPhase::Waiting) || matches!(r.phase, ReqPhase::Decoding)
            })
    }

    /// True if any live request exists (even mid-iteration).
    pub fn has_live_requests(&self) -> bool {
        !self.requests.is_empty()
    }

    /// The most urgent schedulable work: minimum headroom over waiting
    /// requests (→ prefill) and the decode batch (→ decode), per Fig. 14.
    pub fn most_urgent(&self, now: SimTime, slo: &Slo) -> Option<(f64, IterationKind)> {
        let mut best: Option<(f64, IterationKind)> = None;
        for r in &self.requests {
            let candidate = match r.phase {
                ReqPhase::Waiting => (r.headroom(now, slo), IterationKind::Prefill(r.req.id)),
                ReqPhase::Decoding => (r.headroom(now, slo), IterationKind::Decode),
                _ => continue,
            };
            if best.is_none_or(|(h, _)| candidate.0 < h) {
                best = Some(candidate);
            }
        }
        best
    }

    fn find(&self, id: RequestId) -> Option<usize> {
        self.requests.iter().position(|r| r.req.id == id)
    }

    /// Begins a prefill iteration for `id`, allocating its context blocks.
    ///
    /// Returns the prefill length (tokens) on success, or `None` if the KV
    /// grant cannot hold the prompt (caller must scale up or reroute).
    ///
    /// # Panics
    /// Panics if the instance is busy/scaling/loading or `id` is unknown or
    /// not waiting.
    pub fn begin_prefill(&mut self, id: RequestId) -> Option<u32> {
        assert!(self.state == InstanceState::Active, "instance not active");
        assert!(!self.busy && !self.scaling, "instance already occupied");
        let ix = self.find(id).expect("unknown request");
        assert!(
            matches!(self.requests[ix].phase, ReqPhase::Waiting),
            "request not waiting"
        );
        let len = self.requests[ix].prefill_len();
        // Blocks for the full context plus the first output token.
        let blocks = self.pool.blocks_for_tokens(len + 1);
        if !self.pool.try_alloc(blocks) {
            return None;
        }
        let r = &mut self.requests[ix];
        r.kv_blocks = blocks;
        r.phase = ReqPhase::Prefilling;
        self.busy = true;
        Some(len)
    }

    /// Completes the in-flight prefill: the request joins the decode batch
    /// and its first output token is produced. Returns
    /// `(tokens_out, finished)` — `finished` is `Some` when the first token
    /// was also the last (`output_len == 1` or a migrated tail).
    ///
    /// # Panics
    /// Panics if `id` is not the in-flight prefill.
    pub fn finish_prefill(
        &mut self,
        id: RequestId,
        now: SimTime,
        elapsed: SimDuration,
    ) -> (u32, Option<RunningRequest>) {
        let ix = self.find(id).expect("unknown request");
        assert!(
            matches!(self.requests[ix].phase, ReqPhase::Prefilling),
            "request not prefilling"
        );
        let prefill_len;
        let tokens_out;
        let done;
        {
            let r = &mut self.requests[ix];
            prefill_len = r.prefill_len() as u64;
            r.tokens_out += 1;
            tokens_out = r.tokens_out;
            if r.first_token_at.is_none() {
                r.first_token_at = Some(now);
            }
            done = r.is_finished();
            r.phase = if done {
                ReqPhase::Finished
            } else {
                ReqPhase::Decoding
            };
        }
        self.prefill_tokens += prefill_len;
        self.decode_tokens += 1;
        self.busy = false;
        self.busy_secs += elapsed.as_secs_f64();
        self.peak_batch = self.peak_batch.max(self.batch_size());
        let finished = self.collect_finished().pop();
        self.retire_finished(now);
        (tokens_out, finished)
    }

    /// Begins a decode iteration over the current batch; returns
    /// `(batch_size, total_context_tokens)`.
    ///
    /// # Panics
    /// Panics if the instance is occupied or the batch is empty.
    pub fn begin_decode(&mut self) -> (u32, u64) {
        assert!(self.state == InstanceState::Active, "instance not active");
        assert!(!self.busy && !self.scaling, "instance already occupied");
        let bs = self.batch_size();
        assert!(bs > 0, "decode with empty batch");
        self.busy = true;
        (bs, self.batch_context_tokens())
    }

    /// Completes the in-flight decode iteration: every decoding sequence
    /// gains one token (if a KV block is available), finished sequences
    /// retire.
    pub fn finish_decode(&mut self, now: SimTime, elapsed: SimDuration) -> DecodeOutcome {
        assert!(self.busy, "no decode in flight");
        self.busy = false;
        self.busy_secs += elapsed.as_secs_f64();
        let mut outcome = DecodeOutcome::default();
        for r in &mut self.requests {
            if !matches!(r.phase, ReqPhase::Decoding) {
                continue;
            }
            let needed = self.pool.blocks_for_tokens(r.context_tokens() + 1);
            if needed > r.kv_blocks {
                let extra = needed - r.kv_blocks;
                if !self.pool.try_alloc(extra) {
                    outcome.alloc_failures.push(r.req.id);
                    continue;
                }
                r.kv_blocks = needed;
            }
            r.tokens_out += 1;
            self.decode_tokens += 1;
            if r.first_token_at.is_none() {
                r.first_token_at = Some(now);
            }
            let done = r.is_finished();
            if done {
                r.phase = ReqPhase::Finished;
            }
            outcome.produced.push((r.req.id, r.tokens_out, done));
        }
        outcome.finished = self.collect_finished();
        self.retire_finished(now);
        outcome
    }

    fn collect_finished(&mut self) -> Vec<RunningRequest> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < self.requests.len() {
            if matches!(self.requests[i].phase, ReqPhase::Finished) {
                let r = self.requests.swap_remove(i);
                self.pool.free(r.kv_blocks);
                out.push(r);
            } else {
                i += 1;
            }
        }
        out
    }

    fn retire_finished(&mut self, now: SimTime) {
        if self.requests.is_empty() {
            self.idle_since = Some(now);
        }
    }

    /// Removes a live request for migration/eviction, freeing its KV and
    /// resetting it to `Waiting` with migration bookkeeping.
    ///
    /// # Panics
    /// Panics if `id` is unknown or is currently mid-iteration.
    pub fn remove_for_migration(&mut self, id: RequestId, now: SimTime) -> RunningRequest {
        let ix = self.find(id).expect("unknown request");
        assert!(
            !matches!(self.requests[ix].phase, ReqPhase::Prefilling),
            "cannot migrate a request mid-prefill"
        );
        let mut r = self.requests.swap_remove(ix);
        self.pool.free(r.kv_blocks);
        r.begin_migration();
        self.retire_finished(now);
        r
    }

    /// Removes a *decoding* request for prefill–decode disaggregated
    /// handoff (§IX-G): its KV blocks are freed here but the request keeps
    /// its decoding phase — the cache content is shipped over the network to
    /// the decode instance rather than recomputed.
    ///
    /// # Panics
    /// Panics if `id` is unknown or not decoding.
    pub fn remove_for_handoff(&mut self, id: RequestId, now: SimTime) -> RunningRequest {
        let ix = self.find(id).expect("unknown request");
        assert!(
            matches!(self.requests[ix].phase, ReqPhase::Decoding),
            "handoff requires a decoding request"
        );
        let mut r = self.requests.swap_remove(ix);
        self.pool.free(r.kv_blocks);
        r.kv_blocks = 0;
        self.retire_finished(now);
        r
    }

    /// Admits a request that already completed prefill elsewhere (PD
    /// disaggregation): allocates blocks for its shipped KV and joins the
    /// decode batch directly. Returns false if the grant cannot hold it.
    #[must_use]
    pub fn admit_decoding(&mut self, mut rr: RunningRequest) -> bool {
        debug_assert!(matches!(rr.phase, ReqPhase::Decoding));
        let blocks = self.pool.blocks_for_tokens(rr.context_tokens() + 1);
        if !self.pool.try_alloc(blocks) {
            return false;
        }
        rr.kv_blocks = blocks;
        self.requests.push(rr);
        self.idle_since = None;
        true
    }

    /// Drains *all* live requests for preemption (§VIII-A), freeing KV.
    pub fn drain_for_preemption(&mut self, now: SimTime) -> Vec<RunningRequest> {
        let mut out: Vec<RunningRequest> = Vec::with_capacity(self.requests.len());
        for mut r in std::mem::take(&mut self.requests) {
            self.pool.free(r.kv_blocks);
            r.begin_migration();
            out.push(r);
        }
        self.idle_since = Some(now);
        out
    }

    /// Records a completed KV rescale; returns false if the new grant cannot
    /// hold live blocks (the caller must treat this as a hazard).
    #[must_use]
    pub fn apply_kv_resize(&mut self, new_bytes: u64, elapsed: SimDuration) -> bool {
        self.scale_secs += elapsed.as_secs_f64();
        self.scale_ops += 1;
        self.pool.try_resize(new_bytes)
    }

    /// Bytes currently granted to the KV pool.
    pub fn kv_capacity_bytes(&self) -> u64 {
        self.pool.capacity_bytes()
    }

    /// Bytes held by live KV blocks.
    pub fn kv_used_bytes(&self) -> u64 {
        self.pool.used_bytes()
    }

    /// KV pool utilization in `[0, 1]`.
    pub fn kv_utilization(&self) -> f64 {
        self.pool.utilization()
    }

    /// Total memory footprint committed on the node: weights + KV grant.
    pub fn footprint_bytes(&self) -> u64 {
        self.spec.weights_bytes() + self.pool.capacity_bytes()
    }

    /// Eq. 2 — the memory the instance *requires*:
    /// `C · max(Σ_r (I_r + max(O_r, Ō)), L_min)`, where `Ō` is the
    /// historical mean output length and `L_min` a floor in tokens
    /// (the paper uses the model's maximum context length).
    pub fn kv_required_bytes(&self, avg_output_len: f64, l_min_tokens: u32) -> u64 {
        let sum: f64 = self
            .requests
            .iter()
            .filter(|r| !matches!(r.phase, ReqPhase::Finished))
            .map(|r| r.req.input_len as f64 + (r.tokens_out as f64).max(avg_output_len))
            .sum();
        let tokens = sum.max(l_min_tokens as f64);
        (tokens * self.spec.kv_bytes_per_token() as f64).ceil() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload::request::{Request, SloClass};

    fn spec() -> ModelSpec {
        ModelSpec::llama2_7b()
    }

    fn inst(kv_gb: u64) -> Instance {
        let mut i = Instance::new(
            InstanceId(1),
            ModelId(0),
            spec(),
            kv_gb * 1_000_000_000,
            SimTime::ZERO,
        );
        i.activate(SimTime::ZERO);
        i
    }

    fn rr(id: u64, input: u32, output: u32) -> RunningRequest {
        RunningRequest::new(Request {
            id: RequestId(id),
            model: ModelId(0),
            arrival: SimTime::ZERO,
            input_len: input,
            output_len: output,
            class: SloClass::default(),
        })
    }

    #[test]
    fn full_request_lifecycle() {
        let mut i = inst(8);
        i.admit(rr(1, 100, 3));
        assert_eq!(i.waiting_count(), 1);
        assert!(i.has_work());

        let len = i.begin_prefill(RequestId(1)).expect("kv fits");
        assert_eq!(len, 100);
        assert!(i.busy);
        i.finish_prefill(
            RequestId(1),
            SimTime::from_millis(500),
            SimDuration::from_millis(500),
        );
        assert_eq!(i.batch_size(), 1);
        assert_eq!(i.decode_tokens, 1, "prefill produces the first token");

        // Two more decode iterations finish the request (output_len = 3).
        for step in 0..2 {
            let (bs, ctx) = i.begin_decode();
            assert_eq!(bs, 1);
            assert!(ctx >= 100);
            let out = i.finish_decode(
                SimTime::from_millis(600 + step * 100),
                SimDuration::from_millis(100),
            );
            assert_eq!(out.produced.len(), 1);
        }
        assert_eq!(i.live_count(), 0);
        assert!(i.idle_since.is_some());
        assert_eq!(i.kv_used_bytes(), 0, "finished request frees its KV");
    }

    #[test]
    fn prefill_rejected_when_grant_too_small() {
        // 0.1 GB grant cannot hold a 1024-token 7B prompt (0.5 GB).
        let mut i = Instance::new(
            InstanceId(2),
            ModelId(0),
            spec(),
            100_000_000,
            SimTime::ZERO,
        );
        i.activate(SimTime::ZERO);
        i.admit(rr(1, 1024, 4));
        assert!(i.begin_prefill(RequestId(1)).is_none());
        assert!(!i.busy, "failed prefill must not occupy the instance");
        assert_eq!(i.kv_used_bytes(), 0);
    }

    #[test]
    fn decode_alloc_failure_blocks_token() {
        // Grant exactly the prompt's blocks so the next boundary crossing
        // fails: prompt 15 tokens + 1 = 16 → 1 block; token 17 needs block 2.
        let spec7 = spec();
        let one_block = spec7.kv_bytes_per_token() * 16;
        let mut i = Instance::new(InstanceId(3), ModelId(0), spec7, one_block, SimTime::ZERO);
        i.activate(SimTime::ZERO);
        i.admit(rr(1, 15, 10));
        assert!(i.begin_prefill(RequestId(1)).is_some());
        i.finish_prefill(RequestId(1), SimTime::ZERO, SimDuration::ZERO);
        // context now 16; next token needs a second block that doesn't exist.
        i.begin_decode();
        let out = i.finish_decode(SimTime::ZERO, SimDuration::ZERO);
        assert_eq!(out.alloc_failures, vec![RequestId(1)]);
        assert!(out.produced.is_empty());
        // The request did not advance.
        assert_eq!(i.requests()[0].tokens_out, 1);
    }

    #[test]
    fn most_urgent_prefers_lowest_headroom() {
        let slo = Slo::paper();
        let mut i = inst(8);
        // Waiting request with a long-input (large TTFT budget)…
        i.admit(rr(1, 4096, 4));
        // …and a decoding request about to hit its deadline.
        i.admit(rr(2, 100, 4));
        assert!(i.begin_prefill(RequestId(2)).is_some());
        i.finish_prefill(
            RequestId(2),
            SimTime::from_millis(100),
            SimDuration::from_millis(100),
        );
        // At t close to req-2's next deadline, decode must win.
        let now = SimTime::from_millis(700);
        let (_, kind) = i.most_urgent(now, &slo).unwrap();
        assert_eq!(kind, IterationKind::Decode);
    }

    #[test]
    fn migration_frees_kv_and_resets() {
        let mut i = inst(8);
        i.admit(rr(1, 100, 50));
        assert!(i.begin_prefill(RequestId(1)).is_some());
        i.finish_prefill(RequestId(1), SimTime::ZERO, SimDuration::ZERO);
        let used = i.kv_used_bytes();
        assert!(used > 0);
        let r = i.remove_for_migration(RequestId(1), SimTime::from_secs(1));
        assert_eq!(i.kv_used_bytes(), 0);
        assert_eq!(r.migrations, 1);
        assert_eq!(i.live_count(), 0);
    }

    #[test]
    fn drain_for_preemption_empties_instance() {
        let mut i = inst(8);
        i.admit(rr(1, 100, 50));
        i.admit(rr(2, 100, 50));
        assert!(i.begin_prefill(RequestId(1)).is_some());
        i.finish_prefill(RequestId(1), SimTime::ZERO, SimDuration::ZERO);
        let drained = i.drain_for_preemption(SimTime::from_secs(1));
        assert_eq!(drained.len(), 2);
        assert!(drained.iter().all(|r| matches!(r.phase, ReqPhase::Waiting)));
        assert_eq!(i.kv_used_bytes(), 0);
        assert!(i.idle_since.is_some());
    }

    #[test]
    fn kv_required_follows_equation_two() {
        let mut i = inst(8);
        let c = i.spec.kv_bytes_per_token() as f64;
        // No requests: floor applies (L_min = 4096 tokens).
        assert_eq!(i.kv_required_bytes(200.0, 4096), (4096.0 * c) as u64);
        // Two requests: Σ (I_r + max(O_r, Ō)) = (1000+200) + (3000+200).
        i.admit(rr(1, 1000, 64));
        i.admit(rr(2, 3000, 64));
        let expect = ((1000.0 + 200.0 + 3000.0 + 200.0) * c).ceil() as u64;
        assert_eq!(i.kv_required_bytes(200.0, 4096), expect);
    }

    #[test]
    fn resize_tracks_overhead() {
        let mut i = inst(8);
        assert!(i.apply_kv_resize(16_000_000_000, SimDuration::from_millis(300)));
        assert_eq!(i.kv_capacity_bytes(), 16_000_000_000);
        assert_eq!(i.scale_ops, 1);
        assert!((i.scale_secs - 0.3).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "already occupied")]
    fn cannot_overlap_iterations() {
        let mut i = inst(8);
        i.admit(rr(1, 100, 4));
        i.admit(rr(2, 100, 4));
        assert!(i.begin_prefill(RequestId(1)).is_some());
        let _ = i.begin_prefill(RequestId(2));
    }

    #[test]
    fn footprint_includes_weights_and_grant() {
        let i = inst(8);
        let expect = i.spec.weights_bytes() + 8 * 1_000_000_000;
        assert_eq!(i.footprint_bytes(), expect);
    }

    #[test]
    fn tp_degree_mirrors_spec() {
        assert_eq!(inst(8).tp, 1);
        let i = Instance::new(
            InstanceId(9),
            ModelId(0),
            spec().with_tp(4),
            1_000_000_000,
            SimTime::ZERO,
        );
        assert_eq!(i.tp, 4);
        // The footprint is the whole group's: weights are sharded across
        // the slots but the node ledger accounts the total.
        assert_eq!(i.footprint_bytes(), i.spec.weights_bytes() + 1_000_000_000);
    }
}
