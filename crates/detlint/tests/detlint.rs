//! detlint's own test suite: every rule proven to fire at the right line
//! on a bad fixture, suppression/justification round-trips, and the
//! baseline add/expire lifecycle.

use std::collections::BTreeSet;

use detlint::baseline::{self, BaselineEntry, Config};
use detlint::check_source;
use detlint::registry;
use detlint::report::Rule;

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{}", env!("CARGO_MANIFEST_DIR"), name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"))
}

/// The strictest classification: state-bearing crate, file on the D005
/// hot path, no allowlists.
fn strict_cfg(hot_path: &str) -> Config {
    let mut cfg = Config::default();
    cfg.hot_paths
        .insert("D005".to_string(), vec![hot_path.to_string()]);
    cfg
}

fn lines_of(diags: &[detlint::report::Diagnostic], rule: Rule) -> Vec<u32> {
    diags
        .iter()
        .filter(|d| d.rule == rule)
        .map(|d| d.line)
        .collect()
}

// ---------------------------------------------------------------- rules

#[test]
fn d001_fires_on_hash_containers_in_state_bearing_crates() {
    let src = fixture("violations/d001.rs");
    let diags = check_source("crates/core/src/bad.rs", &src, &Config::default());
    assert_eq!(lines_of(&diags, Rule::D001), vec![4, 7, 10, 11]);

    // The same file in a non-state-bearing crate: no D001.
    let diags = check_source("crates/bench/src/bad.rs", &src, &Config::default());
    assert_eq!(lines_of(&diags, Rule::D001), Vec::<u32>::new());
}

#[test]
fn d002_fires_on_hash_iteration_but_not_point_lookups() {
    let src = fixture("violations/d002.rs");
    let diags = check_source("crates/bench/src/bad.rs", &src, &Config::default());
    assert_eq!(lines_of(&diags, Rule::D002), vec![11, 15, 19]);
}

#[test]
fn d002_fires_even_in_test_code() {
    // Hash iteration in tests makes assertions flaky; unlike D003–D005
    // there is no test exemption.
    let src = "#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n    fn f(m: &HashMap<u32, u32>) -> u32 {\n        m.values().sum()\n    }\n}\n";
    let diags = check_source("crates/bench/src/x.rs", src, &Config::default());
    assert_eq!(lines_of(&diags, Rule::D002), vec![5]);
}

#[test]
fn d003_fires_on_wall_clock_and_entropy() {
    let src = fixture("violations/d003.rs");
    let diags = check_source("crates/simcore/src/bad.rs", &src, &Config::default());
    assert_eq!(lines_of(&diags, Rule::D003), vec![6, 7, 8]);
}

#[test]
fn d003_respects_the_allowlist_path() {
    let src = fixture("violations/d003.rs");
    let mut cfg = Config::default();
    cfg.allow_paths.insert(
        "D003".to_string(),
        vec!["crates/bench/src/cli.rs".to_string()],
    );
    let diags = check_source("crates/bench/src/cli.rs", &src, &cfg);
    assert_eq!(lines_of(&diags, Rule::D003), Vec::<u32>::new());
}

#[test]
fn d004_fires_on_env_reads() {
    let src = fixture("violations/d004.rs");
    let diags = check_source("crates/workload/src/bad.rs", &src, &Config::default());
    assert_eq!(lines_of(&diags, Rule::D004), vec![4, 8]);
}

#[test]
fn d005_fires_on_hot_path_panics_only_outside_tests() {
    let src = fixture("violations/d005.rs");
    let path = "crates/cluster/src/world.rs";
    let diags = check_source(path, &src, &strict_cfg(path));
    assert_eq!(lines_of(&diags, Rule::D005), vec![5, 6, 8]);

    // The same file off the hot path: no D005.
    let diags = check_source("crates/cluster/src/node.rs", &src, &strict_cfg(path));
    assert_eq!(lines_of(&diags, Rule::D005), Vec::<u32>::new());
}

#[test]
fn clean_fixture_is_clean_under_the_strictest_classification() {
    let src = fixture("clean/ok.rs");
    let path = "crates/cluster/src/world.rs";
    let diags = check_source(path, &src, &strict_cfg(path));
    assert_eq!(diags, Vec::new(), "clean fixture produced findings");
}

#[test]
fn integration_test_paths_are_exempt_from_d003_to_d005_but_not_d002() {
    let src = "use std::time::Instant;\nfn t() -> f64 { Instant::now().elapsed().as_secs_f64() }\n";
    let diags = check_source("crates/cluster/tests/world_api.rs", src, &Config::default());
    assert_eq!(diags, Vec::new());

    let src =
        "use std::collections::HashMap;\nfn f(m: &HashMap<u32, u32>) -> u32 { m.values().sum() }\n";
    let diags = check_source("crates/bench/tests/smoke.rs", src, &Config::default());
    assert_eq!(lines_of(&diags, Rule::D002), vec![2]);
}

// --------------------------------------------------------- suppressions

#[test]
fn justified_allows_suppress_their_findings() {
    let src = fixture("violations/suppressed.rs");
    let path = "crates/cluster/src/cache.rs";
    let diags = check_source(path, &src, &strict_cfg(path));
    assert_eq!(diags, Vec::new(), "justified allows must suppress cleanly");
}

#[test]
fn removing_a_justification_makes_the_allow_an_error() {
    // The acceptance-criterion case: strip one justification from a
    // state-bearing crate's allow and the check must fail.
    let src = fixture("violations/suppressed.rs").replace(
        "detlint::allow(D001, \"insertion-order map is fine here: iteration never happens and lookups dominate\")",
        "detlint::allow(D001)",
    );
    let path = "crates/cluster/src/cache.rs";
    let diags = check_source(path, &src, &strict_cfg(path));
    // The bare allow is a D000 *and* the no-longer-suppressed D001
    // resurfaces.
    assert_eq!(lines_of(&diags, Rule::D000), vec![5]);
    assert_eq!(lines_of(&diags, Rule::D001), vec![6]);
}

#[test]
fn malformed_and_unknown_allows_are_d000() {
    let cases = [
        "// detlint::allow(D003)\nfn f() {}\n",
        "// detlint::allow(D003, \"\")\nfn f() {}\n",
        "// detlint::allow(D003, \" \")\nfn f() {}\n",
        "// detlint::allow(D999, \"no such rule\")\nfn f() {}\n",
        "// detlint::allow(D000, \"meta-rule cannot be allowed\")\nfn f() {}\n",
        "// detlint::allow(D006, \"cross-file rule cannot be inline-allowed\")\nfn f() {}\n",
        "// detlint::allow(D003, \"trailing garbage\") extra\nfn f() {}\n",
    ];
    for src in cases {
        let diags = check_source("crates/bench/src/x.rs", src, &Config::default());
        assert_eq!(lines_of(&diags, Rule::D000), vec![1], "case: {src}");
    }
}

#[test]
fn unused_allows_are_d000() {
    let src = "// detlint::allow(D003, \"nothing here actually reads a clock\")\nfn f() {}\n";
    let diags = check_source("crates/bench/src/x.rs", src, &Config::default());
    assert_eq!(lines_of(&diags, Rule::D000), vec![1]);
    assert!(diags[0].message.contains("unused suppression"));
}

#[test]
fn prose_about_the_syntax_is_not_a_suppression() {
    let src = "//! The syntax is `// detlint::allow(D003, \"why\")` on a line.\nfn f() {}\n";
    let diags = check_source("crates/bench/src/x.rs", src, &Config::default());
    assert_eq!(diags, Vec::new());
}

#[test]
fn stacked_standalone_allows_cover_the_next_code_line() {
    // Two different rules fire on line 4; the two standalone allows above
    // it each resolve to that line, so both findings are suppressed and
    // neither allow counts as unused.
    let src = "fn f() -> f64 {\n\
               \x20   // detlint::allow(D003, \"fixture: timing justified\")\n\
               \x20   // detlint::allow(D004, \"fixture: env justified\")\n\
               \x20   let _e = std::env::var(\"X\"); std::time::Instant::now().elapsed().as_secs_f64()\n\
               }\n";
    let diags = check_source("crates/core/src/x.rs", src, &Config::default());
    assert_eq!(diags, Vec::new());
}

// -------------------------------------------------------------- baseline

#[test]
fn baseline_grandfathers_existing_findings_and_expires_stale_ones() {
    let src = fixture("violations/d004.rs");
    let diags = check_source("crates/workload/src/bad.rs", &src, &Config::default());
    assert_eq!(diags.len(), 2);

    // Add: grandfather everything the first run found.
    let entries: Vec<BaselineEntry> = diags
        .iter()
        .map(|d| BaselineEntry {
            rule: d.rule.code().to_string(),
            file: d.file.clone(),
            line: d.line,
        })
        .collect();
    let part = baseline::partition(diags.clone(), &entries);
    assert_eq!(part.fresh, Vec::new());
    assert_eq!(part.baselined.len(), 2);
    assert_eq!(part.stale, Vec::new());

    // Expire: one finding is fixed; its baseline entry must turn stale.
    let fixed: Vec<_> = diags.into_iter().skip(1).collect();
    let part = baseline::partition(fixed, &entries);
    assert_eq!(part.fresh, Vec::new());
    assert_eq!(part.baselined.len(), 1);
    assert_eq!(part.stale.len(), 1);
    assert!(part.stale[0].message.contains("stale baseline entry"));

    // A new finding elsewhere stays fresh despite the baseline.
    let moved = check_source("crates/engine/src/other.rs", &src, &Config::default());
    let part = baseline::partition(moved, &entries);
    assert_eq!(part.fresh.len(), 2);
}

#[test]
fn baseline_toml_round_trips() {
    let mut cfg = Config::default();
    cfg.allow_paths.insert(
        "D003".to_string(),
        vec!["crates/bench/src/cli.rs".to_string()],
    );
    cfg.hot_paths.insert(
        "D005".to_string(),
        vec![
            "crates/cluster/src/world.rs".to_string(),
            "crates/cluster/src/driver.rs".to_string(),
        ],
    );
    let entries = vec![
        BaselineEntry {
            rule: "D005".to_string(),
            file: "crates/cluster/src/world.rs".to_string(),
            line: 453,
        },
        BaselineEntry {
            rule: "D001".to_string(),
            file: "crates/core/src/quantify.rs".to_string(),
            line: 9,
        },
    ];
    let rendered = baseline::render(&cfg, &entries);
    let parsed = baseline::parse(&rendered).expect("round-trip parse");
    assert_eq!(parsed.allow_paths, cfg.allow_paths);
    assert_eq!(parsed.hot_paths, cfg.hot_paths);
    let mut sorted = entries.clone();
    sorted.sort();
    assert_eq!(parsed.baseline, sorted);
}

#[test]
fn incomplete_baseline_entries_are_rejected() {
    let src = "[[baseline]]\nrule = \"D005\"\nfile = \"crates/x.rs\"\n";
    assert!(
        baseline::parse(src).is_err(),
        "missing line must be an error"
    );
}

// ------------------------------------------------------ registry (D006)

#[test]
fn d006_cross_check_reports_missing_and_orphan_goldens() {
    let registry: BTreeSet<String> = ["fig04".to_string(), "scale".to_string()]
        .into_iter()
        .collect();
    let goldens: BTreeSet<String> = ["fig04".to_string(), "old_fig".to_string()]
        .into_iter()
        .collect();
    let diags = registry::cross_check(&registry, &goldens);
    assert_eq!(diags.len(), 2);
    assert!(diags.iter().all(|d| d.rule == Rule::D006));
    assert!(diags
        .iter()
        .any(|d| d.message.contains("`scale` has no golden capture")));
    assert!(diags
        .iter()
        .any(|d| d.message.contains("orphan golden `old_fig.json`")));

    let diags = registry::cross_check(&registry, &registry);
    assert_eq!(diags, Vec::new());
}

#[test]
fn registry_dump_parsing_extracts_names() {
    let json = r#"[
      {"name": "fig04_sllm_capacity", "title": "Fig 4 — x", "quick_cells": 4},
      {"name": "scale_burst", "title": "flash crowd \"burst\"", "quick_cells": 6}
    ]"#;
    let names = registry::parse_names(json).expect("parse");
    let expect: BTreeSet<String> = ["fig04_sllm_capacity".to_string(), "scale_burst".to_string()]
        .into_iter()
        .collect();
    assert_eq!(names, expect);
    assert!(
        registry::parse_names("[]").is_err(),
        "empty registry is an error"
    );
}

// ---------------------------------------------------- whole-repo dogfood

/// The committed workspace must be clean under the committed config —
/// the same invariant CI enforces, minus the registry cross-check (the
/// bench binary may not exist when this test runs).
#[test]
fn committed_workspace_is_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("workspace root");
    let cfg_src = std::fs::read_to_string(root.join("detlint.toml")).expect("detlint.toml");
    let cfg = baseline::parse(&cfg_src).expect("detlint.toml parses");
    let opts = detlint::CheckOpts {
        no_registry: true,
        ..Default::default()
    };
    let diags = detlint::check_workspace(root, &cfg, &opts).expect("walk");
    let part = baseline::partition(diags, &cfg.baseline);
    assert_eq!(
        part.fresh,
        Vec::new(),
        "fresh determinism findings in the committed tree"
    );
    assert_eq!(part.stale, Vec::new(), "stale baseline entries");
}
