//! Suppression fixture: every violation carries a justified allow, so a
//! check must come back clean. Checked under a state-bearing path with
//! the fixture itself configured as a D005 hot path.

// detlint::allow(D001, "insertion-order map is fine here: iteration never happens and lookups dominate")
use std::collections::HashMap;

pub struct Cache {
    // detlint::allow(D001, "point-lookup-only cache; keys are never iterated")
    slots: HashMap<u64, u64>,
}

pub fn read(c: &Cache, k: u64) -> u64 {
    c.slots.get(&k).copied().unwrap() // detlint::allow(D005, "fixture invariant: the key was inserted by the caller")
}
