//! D001 fixture: hash containers named in a state-bearing crate.
//! Checked under the synthetic path `crates/core/src/bad.rs`.

use std::collections::HashMap; // line 4: D001 (the import itself)

pub struct Profiles {
    by_model: HashMap<u32, f64>, // line 7: D001
}

pub fn build() -> std::collections::HashSet<u32> {
    std::collections::HashSet::new() // lines 10 & 11: D001
}
