//! D005 fixture: panics in the World/driver hot path. Checked under the
//! synthetic hot-path name configured by the test.

pub fn step(slots: &[u64], inst: Option<&u64>) -> u64 {
    let h = inst.unwrap(); // line 5: D005 (unwrap)
    let first = slots.first().expect("nonempty"); // line 6: D005 (expect)
    if *h == 0 {
        panic!("zero instance"); // line 8: D005 (panic!)
    }
    h + first
}

#[cfg(test)]
mod tests {
    // Unit tests are exempt: none of these fire.
    #[test]
    fn exempt() {
        let v = [1u64];
        assert_eq!(v.first().unwrap(), &1);
    }
}
