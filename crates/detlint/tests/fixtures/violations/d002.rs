//! D002 fixture: iteration over hash containers. Checked under a
//! non-state-bearing path (`crates/bench/src/bad.rs`) so only the
//! iteration findings fire, not D001.

use std::collections::HashMap;

type Routing = HashMap<u32, u32>;

pub fn leak_order(m: &HashMap<u32, f64>, routes: Routing) -> f64 {
    let mut total = 0.0;
    for (_k, v) in m.iter() {
        // line 11: D002 (.iter())
        total += v;
    }
    for _pair in &routes {
        // line 15: D002 (for-in over an alias-typed binding)
        total += 1.0;
    }
    let keys: Vec<u32> = m.keys().copied().collect(); // line 19: D002 (.keys())
    total + keys.len() as f64
}

pub fn safe_lookup(m: &HashMap<u32, f64>) -> f64 {
    // Point lookups do not leak iteration order: no finding.
    m.get(&7).copied().unwrap_or(0.0)
}
