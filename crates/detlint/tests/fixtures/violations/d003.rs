//! D003 fixture: wall-clock and OS entropy in simulation code.

use std::time::Instant;

pub fn stamp() -> f64 {
    let t0 = Instant::now(); // line 6: D003
    let _wall = std::time::SystemTime::now(); // line 7: D003
    let mut rng = rand::thread_rng(); // line 8: D003
    t0.elapsed().as_secs_f64() + rng.gen::<f64>()
}
