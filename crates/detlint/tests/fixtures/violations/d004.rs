//! D004 fixture: process environment reads outside CLI intake.

pub fn configure() -> Option<String> {
    if std::env::var_os("FAST_MODE").is_some() {
        // line 4: D004
        return None;
    }
    std::env::var("SEED").ok() // line 8: D004
}
