//! Clean fixture: deterministic idioms that must produce zero findings
//! even under the strictest classification (state-bearing crate + hot
//! path). Mentions of HashMap in comments, doc comments, and strings
//! must never fire — the PR 4 audit left exactly such comments behind.

use std::collections::{BTreeMap, BTreeSet};

/// Ordered containers, not `HashMap`/`HashSet`: iteration order is the
/// key order, stable across processes.
pub struct State {
    by_node: BTreeMap<u32, Vec<u64>>,
    parked: BTreeSet<u64>,
}

pub fn tick(s: &mut State) -> u64 {
    let msg = "HashMap in a string is prose, not code";
    let raw = r#"so is SystemTime::now() in a raw string"#;
    let mut total = 0;
    for (node, insts) in &s.by_node {
        total += *node as u64 + insts.len() as u64;
    }
    for p in s.parked.iter() {
        total += p;
    }
    total + msg.len() as u64 + raw.len() as u64
}

pub fn fallible(s: &State) -> Option<u64> {
    // Handled errors instead of unwrap/expect in the hot path.
    let first = s.parked.iter().next()?;
    Some(*first)
}

#[cfg(test)]
mod tests {
    use std::time::Instant;

    #[test]
    fn test_code_may_time_and_panic() {
        let t0 = Instant::now();
        let v = std::env::var("HOME").unwrap_or_default();
        assert!(t0.elapsed().as_secs() < 3600, "{v}");
    }
}
