//! detlint — the workspace determinism linter.
//!
//! This repro's value rests on bit-identical replay: goldens, cross-
//! process FNV fingerprints, and `--threads 1` vs `2` equality are how we
//! prove fidelity to the paper's figures. The two real nondeterminism
//! bugs found so far (the parked-scale-op `HashMap` in PR 2, the fleet-
//! wide hash-container audit in PR 4) were caught by manual sweeps;
//! detlint machine-enforces those invariants on every PR instead.
//!
//! Rules (see [`report::Rule`]), suppression syntax (see [`suppress`]),
//! and the grandfather baseline (see [`baseline`]) are documented in the
//! README's "Determinism lints" section. Run it with:
//!
//! ```text
//! cargo run --release -p detlint -- check [--json]
//! ```

#![forbid(unsafe_code)]

pub mod baseline;
pub mod lexer;
pub mod registry;
pub mod report;
pub mod rules;
pub mod suppress;

use std::path::{Path, PathBuf};

use baseline::Config;
use report::Diagnostic;
use rules::FileCtx;

/// Lints one file's source under workspace-relative path `path` (the
/// path, not the contents, decides crate classification, allowlists, and
/// test-file exemptions — tests feed fixtures through here under
/// synthetic paths).
pub fn check_source(path: &str, src: &str, cfg: &Config) -> Vec<Diagnostic> {
    let lexed = lexer::lex(src);
    let krate = crate_of(path);
    let ctx = FileCtx {
        path,
        krate,
        test_file: is_test_path(path),
        d003_allow: cfg.allow_for("D003"),
        d004_allow: cfg.allow_for("D004"),
        d005_paths: cfg.hot_for("D005"),
    };
    let diags = rules::check_tokens(&ctx, &lexed.tokens);
    let sup = suppress::parse(path, &lexed);
    let mut diags = suppress::apply(path, diags, &sup);
    diags.sort();
    diags
}

/// The crate directory name for `crates/<name>/…` paths.
fn crate_of(path: &str) -> Option<&str> {
    let rest = path.strip_prefix("crates/")?;
    rest.split('/').next()
}

/// Integration tests, benches, examples, and fixture corpora are exempt
/// from D003–D005 (same rationale as `#[cfg(test)]` modules); D001/D002
/// still apply — hash-order flakiness in tests costs real debugging time.
fn is_test_path(path: &str) -> bool {
    path.starts_with("tests/")
        || path.starts_with("examples/")
        || path.contains("/tests/")
        || path.contains("/benches/")
        || path.contains("/examples/")
}

/// Source roots scanned relative to the workspace root. `crates/vendor`
/// (external API stand-ins) and detlint's own fixture corpus (files that
/// *must* violate rules) are excluded by [`walk`].
const SCAN_ROOTS: [&str; 3] = ["crates", "tests", "examples"];

const EXCLUDED: [&str; 2] = ["crates/vendor", "crates/detlint/tests/fixtures"];

/// Every workspace `.rs` file to lint, sorted for deterministic output.
pub fn workspace_files(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut files = Vec::new();
    for scan in SCAN_ROOTS {
        let dir = root.join(scan);
        if dir.is_dir() {
            walk(root, &dir, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn walk(root: &Path, dir: &Path, files: &mut Vec<PathBuf>) -> Result<(), String> {
    let rel = rel_path(root, dir);
    if EXCLUDED.iter().any(|e| rel == *e) {
        return Ok(());
    }
    let entries = std::fs::read_dir(dir).map_err(|e| format!("reading {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("reading {}: {e}", dir.display()))?;
        let path = entry.path();
        if path.is_dir() {
            walk(root, &path, files)?;
        } else if path.extension().map(|e| e == "rs").unwrap_or(false) {
            files.push(path);
        }
    }
    Ok(())
}

/// `path` relative to `root`, with forward slashes (diagnostics and
/// config paths are platform-independent).
pub fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Options for a whole-workspace check.
#[derive(Debug, Default)]
pub struct CheckOpts {
    /// Skip the registry ⟷ goldens cross-check (D006) — used when the
    /// bench binary is unavailable, e.g. linting a partial tree.
    pub no_registry: bool,
    /// Read registry names from this JSON dump instead of running bench.
    pub registry_json: Option<PathBuf>,
}

/// Lints the whole workspace rooted at `root` (suppressions applied,
/// baseline NOT yet applied — callers partition against it afterwards so
/// `--update-baseline` can see the full set).
pub fn check_workspace(
    root: &Path,
    cfg: &Config,
    opts: &CheckOpts,
) -> Result<Vec<Diagnostic>, String> {
    let mut diags = Vec::new();
    for file in workspace_files(root)? {
        let src = std::fs::read_to_string(&file)
            .map_err(|e| format!("reading {}: {e}", file.display()))?;
        diags.extend(check_source(&rel_path(root, &file), &src, cfg));
    }
    if !opts.no_registry {
        let registry = match &opts.registry_json {
            Some(p) => {
                let src = std::fs::read_to_string(p)
                    .map_err(|e| format!("reading {}: {e}", p.display()))?;
                registry::parse_names(&src)?
            }
            None => registry::registry_names(root)?,
        };
        let goldens = registry::golden_names(root)?;
        diags.extend(registry::cross_check(&registry, &goldens));
    }
    diags.sort();
    Ok(diags)
}
