//! `detlint.toml`: rule path configuration plus the grandfather baseline.
//!
//! The file has two jobs. The `[allow-paths]` / `[hot-paths]` tables are
//! reviewed configuration: where wall-clock and env reads are legitimate
//! (the CLI/timing layer) and which files constitute the D005 hot path.
//! The `[[baseline]]` entries grandfather pre-existing findings so the
//! linter can land strict without a flag-day: baselined findings don't
//! fail the build, *new* ones do, and a baseline entry whose finding has
//! disappeared is itself an error so the file only ever shrinks.
//!
//! The parser handles exactly the TOML subset this file uses — `[table]`,
//! `[[array-of-tables]]`, `key = "string" | integer | ["array", …]`,
//! `#` comments — hand-rolled like the rest of detlint (the workspace has
//! no TOML crate and vendoring one for three key shapes would be noise).

use std::collections::BTreeMap;

use crate::report::{Diagnostic, Rule};

/// One grandfathered finding, matched by (rule, file, line).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct BaselineEntry {
    pub rule: String,
    pub file: String,
    pub line: u32,
}

#[derive(Debug, Default, Clone)]
pub struct Config {
    /// Rule code → exact file paths where the rule does not apply
    /// (D003/D004 allowlists).
    pub allow_paths: BTreeMap<String, Vec<String>>,
    /// Rule code → exact file paths where the rule *does* apply
    /// (D005's hot-path scope).
    pub hot_paths: BTreeMap<String, Vec<String>>,
    /// Grandfathered findings.
    pub baseline: Vec<BaselineEntry>,
}

impl Config {
    pub fn allow_for(&self, rule: &str) -> &[String] {
        self.allow_paths.get(rule).map(Vec::as_slice).unwrap_or(&[])
    }

    pub fn hot_for(&self, rule: &str) -> &[String] {
        self.hot_paths.get(rule).map(Vec::as_slice).unwrap_or(&[])
    }
}

/// The result of matching diagnostics against the baseline.
#[derive(Debug, Default)]
pub struct Partition {
    /// New findings — these fail the build.
    pub fresh: Vec<Diagnostic>,
    /// Grandfathered findings — reported, not fatal.
    pub baselined: Vec<Diagnostic>,
    /// Baseline entries whose finding no longer exists — fatal, as a
    /// D000 each: stale grandfather rows must be deleted, not hoarded.
    pub stale: Vec<Diagnostic>,
}

/// Splits `diags` by the baseline and reports stale entries.
pub fn partition(diags: Vec<Diagnostic>, baseline: &[BaselineEntry]) -> Partition {
    let mut used = vec![false; baseline.len()];
    let mut out = Partition::default();
    for d in diags {
        let hit = baseline
            .iter()
            .position(|b| b.rule == d.rule.code() && b.file == d.file && b.line == d.line);
        match hit {
            Some(i) => {
                used[i] = true;
                out.baselined.push(d);
            }
            None => out.fresh.push(d),
        }
    }
    for (b, used) in baseline.iter().zip(used) {
        if !used {
            out.stale.push(Diagnostic::new(
                Rule::D000,
                "detlint.toml",
                0,
                format!(
                    "stale baseline entry {} {}:{} — the finding is gone; remove the entry \
                     (or run `detlint check --update-baseline`)",
                    b.rule, b.file, b.line
                ),
            ));
        }
    }
    out
}

/// Parses `detlint.toml`. Unknown tables/keys are ignored (forward
/// compatibility); malformed lines are hard errors.
pub fn parse(src: &str) -> Result<Config, String> {
    let mut cfg = Config::default();
    let mut section = String::new();
    let mut entry: Option<BaselineEntry> = None;

    for (n, raw) in src.lines().enumerate() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        let err = |why: &str| format!("detlint.toml:{}: {}", n + 1, why);
        if let Some(name) = line.strip_prefix("[[").and_then(|l| l.strip_suffix("]]")) {
            flush(&mut entry, &mut cfg)?;
            section = format!("[[{}]]", name.trim());
            if name.trim() == "baseline" {
                entry = Some(BaselineEntry {
                    rule: String::new(),
                    file: String::new(),
                    line: 0,
                });
            }
        } else if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            flush(&mut entry, &mut cfg)?;
            section = name.trim().to_string();
        } else {
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| err("expected `key = value`"))?;
            let (key, value) = (key.trim(), value.trim());
            match (section.as_str(), &mut entry) {
                ("[[baseline]]", Some(e)) => match key {
                    "rule" => e.rule = parse_string(value).ok_or_else(|| err("rule: string"))?,
                    "file" => e.file = parse_string(value).ok_or_else(|| err("file: string"))?,
                    "line" => {
                        e.line = value.parse().map_err(|_| err("line: integer"))?;
                    }
                    _ => {}
                },
                ("allow-paths", _) => {
                    let v = parse_string_array(value).ok_or_else(|| err("expected [\"…\"]"))?;
                    cfg.allow_paths.insert(key.to_string(), v);
                }
                ("hot-paths", _) => {
                    let v = parse_string_array(value).ok_or_else(|| err("expected [\"…\"]"))?;
                    cfg.hot_paths.insert(key.to_string(), v);
                }
                _ => {} // unknown section: ignore
            }
        }
    }
    flush(&mut entry, &mut cfg)?;
    Ok(cfg)
}

fn flush(entry: &mut Option<BaselineEntry>, cfg: &mut Config) -> Result<(), String> {
    if let Some(e) = entry.take() {
        if e.rule.is_empty() || e.file.is_empty() || e.line == 0 {
            return Err(format!(
                "detlint.toml: incomplete [[baseline]] entry (need rule, file, line): {e:?}"
            ));
        }
        cfg.baseline.push(e);
    }
    Ok(())
}

/// Renders a full `detlint.toml` with the given baseline (config tables
/// are re-emitted from `cfg` so `--update-baseline` preserves them).
pub fn render(cfg: &Config, baseline: &[BaselineEntry]) -> String {
    let mut s = String::new();
    s.push_str(
        "# detlint configuration and grandfather baseline.\n\
         # Rules and suppression syntax: README.md \"Determinism lints\".\n\
         # `cargo run --release -p detlint -- check --update-baseline` rewrites\n\
         # the [[baseline]] entries; the path tables are hand-maintained.\n",
    );
    if !cfg.allow_paths.is_empty() {
        s.push_str("\n[allow-paths]\n");
        for (rule, paths) in &cfg.allow_paths {
            s.push_str(&format!("{} = {}\n", rule, render_array(paths)));
        }
    }
    if !cfg.hot_paths.is_empty() {
        s.push_str("\n[hot-paths]\n");
        for (rule, paths) in &cfg.hot_paths {
            s.push_str(&format!("{} = {}\n", rule, render_array(paths)));
        }
    }
    let mut sorted: Vec<&BaselineEntry> = baseline.iter().collect();
    sorted.sort();
    for b in sorted {
        s.push_str(&format!(
            "\n[[baseline]]\nrule = \"{}\"\nfile = \"{}\"\nline = {}\n",
            b.rule, b.file, b.line
        ));
    }
    s
}

fn render_array(paths: &[String]) -> String {
    let quoted: Vec<String> = paths.iter().map(|p| format!("\"{p}\"")).collect();
    format!("[{}]", quoted.join(", "))
}

/// Strips a `#` comment that is not inside a double-quoted string.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_string(v: &str) -> Option<String> {
    v.strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .map(str::to_string)
}

fn parse_string_array(v: &str) -> Option<Vec<String>> {
    let inner = v.strip_prefix('[')?.strip_suffix(']')?;
    let inner = inner.trim();
    if inner.is_empty() {
        return Some(Vec::new());
    }
    inner
        .split(',')
        .map(|item| parse_string(item.trim()))
        .collect()
}
