//! A hand-rolled Rust lexer: just enough to tell code from comments,
//! strings, and char/lifetime ambiguity, with a line number on every token.
//!
//! detlint deliberately does not depend on an external parser — the
//! workspace is hermetic (no crates.io access; see `crates/vendor/`), and
//! the determinism rules only need token streams plus light structure
//! (brace matching, `#[cfg(test)]` blocks), not full syntax trees. The
//! lexer must be *correct about what is not code*: a `HashMap` inside a
//! doc comment or a string literal must never produce a diagnostic, and a
//! lifetime `'a` must not be eaten as an unterminated char literal.

/// One significant (non-whitespace, non-comment) token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    /// Token text. Literals keep only a placeholder (their content is
    /// never rule-relevant, and dropping it keeps memory flat on large
    /// files).
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`HashMap`, `for`, `in`, `let`, …).
    Ident,
    /// Single punctuation character (`.`, `:`, `<`, `{`, …). Multi-char
    /// operators arrive as consecutive tokens; rules match sequences.
    Punct,
    /// String / char / byte / numeric literal (content elided).
    Literal,
    /// A lifetime such as `'a` or `'static` (text keeps the name).
    Lifetime,
}

/// One comment, kept separately from the token stream so suppression
/// parsing can see it while the rules cannot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// Comment body without the `//` / `/* */` delimiters, untrimmed.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// True when no code token precedes the comment on its line — a
    /// standalone comment suppresses the *next* code line, a trailing
    /// comment suppresses its own.
    pub standalone: bool,
}

/// The lexed form of one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

impl Lexed {
    /// The first code line at or after `line`, if any — where a
    /// standalone comment's suppression lands.
    pub fn next_code_line(&self, line: u32) -> Option<u32> {
        self.tokens.iter().map(|t| t.line).find(|&l| l >= line)
    }
}

/// Lexes `src`. Never fails: malformed input (unterminated string, stray
/// byte) degrades to best-effort tokens — detlint lints files that rustc
/// already compiles, so error recovery only matters for fixtures.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let mut out = Lexed::default();
    // Lines that already carry at least one code token (for `standalone`).
    let mut code_on_line: u32 = 0; // current line with code, 0 = none yet

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let start = i + 2;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                out.comments.push(Comment {
                    text: src[start..i].to_string(),
                    line,
                    standalone: code_on_line != line,
                });
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let start_line = line;
                let start = i + 2;
                let mut depth = 1u32;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        if b[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                let end = i.saturating_sub(2).max(start);
                out.comments.push(Comment {
                    text: src[start..end].to_string(),
                    line: start_line,
                    standalone: code_on_line != start_line,
                });
            }
            b'"' => {
                i = skip_string(b, i, &mut line);
                push(
                    &mut out,
                    TokenKind::Literal,
                    "\"\"",
                    line,
                    &mut code_on_line,
                );
            }
            b'\'' => {
                // Lifetime vs char literal: `'ident` not followed by a
                // closing quote is a lifetime; everything else is a char.
                if i + 1 < b.len() && (b[i + 1].is_ascii_alphabetic() || b[i + 1] == b'_') {
                    let mut j = i + 1;
                    while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                        j += 1;
                    }
                    if j < b.len() && b[j] == b'\'' && j == i + 2 {
                        // 'a' — a one-character char literal.
                        i = j + 1;
                        push(&mut out, TokenKind::Literal, "''", line, &mut code_on_line);
                    } else {
                        let text = src[i..j].to_string();
                        i = j;
                        push(
                            &mut out,
                            TokenKind::Lifetime,
                            &text,
                            line,
                            &mut code_on_line,
                        );
                    }
                } else {
                    // '\n', '\u{..}', '(' etc. — scan to the closing quote.
                    let mut j = i + 1;
                    while j < b.len() && b[j] != b'\'' {
                        if b[j] == b'\\' {
                            j += 1;
                        }
                        if j < b.len() && b[j] == b'\n' {
                            line += 1;
                        }
                        j += 1;
                    }
                    i = (j + 1).min(b.len());
                    push(&mut out, TokenKind::Literal, "''", line, &mut code_on_line);
                }
            }
            c if c.is_ascii_digit() => {
                let mut j = i;
                while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                    j += 1;
                }
                // One fractional part: `0.5` continues, `1..8` stops.
                if j < b.len() && b[j] == b'.' && j + 1 < b.len() && b[j + 1].is_ascii_digit() {
                    j += 1;
                    while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                        j += 1;
                    }
                }
                i = j;
                push(&mut out, TokenKind::Literal, "0", line, &mut code_on_line);
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                let mut j = i;
                while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                    j += 1;
                }
                // Raw/byte string prefixes: r"", r#""#, b"", br"", rb is
                // not a thing but accept the union conservatively.
                let word = &src[start..j];
                if matches!(word, "r" | "b" | "br" | "rb") && j < b.len() {
                    let mut k = j;
                    while k < b.len() && b[k] == b'#' {
                        k += 1;
                    }
                    if k < b.len() && b[k] == b'"' {
                        let hashes = k - j;
                        i = skip_raw_string(b, k, hashes, &mut line);
                        push(
                            &mut out,
                            TokenKind::Literal,
                            "\"\"",
                            line,
                            &mut code_on_line,
                        );
                        continue;
                    }
                }
                i = j;
                push(&mut out, TokenKind::Ident, word, line, &mut code_on_line);
            }
            _ => {
                let text = src[i..i + 1].to_string();
                i += 1;
                push(&mut out, TokenKind::Punct, &text, line, &mut code_on_line);
            }
        }
    }
    out
}

fn push(out: &mut Lexed, kind: TokenKind, text: &str, line: u32, code_on_line: &mut u32) {
    *code_on_line = line;
    out.tokens.push(Token {
        kind,
        text: text.to_string(),
        line,
    });
}

/// Skips a `"…"` string starting at the opening quote; returns the index
/// past the closing quote and bumps `line` for embedded newlines.
fn skip_string(b: &[u8], start: usize, line: &mut u32) -> usize {
    let mut i = start + 1;
    while i < b.len() {
        match b[i] {
            // An escape consumes the next byte too — which may be the
            // newline of a `"\` line continuation.
            b'\\' => {
                if i + 1 < b.len() && b[i + 1] == b'\n' {
                    *line += 1;
                }
                i += 2;
            }
            b'"' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Skips a raw string whose opening quote is at `quote` with `hashes`
/// leading `#`s; returns the index past the closing delimiter.
fn skip_raw_string(b: &[u8], quote: usize, hashes: usize, line: &mut u32) -> usize {
    let mut i = quote + 1;
    while i < b.len() {
        if b[i] == b'\n' {
            *line += 1;
            i += 1;
        } else if b[i] == b'"' {
            let mut k = 0;
            while k < hashes && i + 1 + k < b.len() && b[i + 1 + k] == b'#' {
                k += 1;
            }
            if k == hashes {
                return i + 1 + hashes;
            }
            i += 1;
        } else {
            i += 1;
        }
    }
    i
}

/// Token index ranges (half-open) covered by `#[cfg(test)] mod … { … }`
/// blocks. Rules D003–D005 skip findings inside these: wall-clock reads
/// and panics in unit tests cannot corrupt a simulation result.
pub fn cfg_test_ranges(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let t = |i: usize| tokens.get(i).map(|t| t.text.as_str()).unwrap_or("");
    let mut i = 0;
    while i < tokens.len() {
        // `#` `[` `cfg` `(` `test` `)` `]`
        if t(i) == "#"
            && t(i + 1) == "["
            && t(i + 2) == "cfg"
            && t(i + 3) == "("
            && t(i + 4) == "test"
            && t(i + 5) == ")"
            && t(i + 6) == "]"
        {
            // Skip any further attributes between the cfg and the item.
            let mut j = i + 7;
            while t(j) == "#" && t(j + 1) == "[" {
                let mut depth = 0i32;
                let mut k = j + 1;
                loop {
                    match t(k) {
                        "[" => depth += 1,
                        "]" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        "" => break,
                        _ => {}
                    }
                    k += 1;
                }
                j = k + 1;
            }
            if t(j) == "mod" {
                // `mod name { … }` — find the matching close brace.
                let mut k = j;
                while !t(k).is_empty() && t(k) != "{" && t(k) != ";" {
                    k += 1;
                }
                if t(k) == "{" {
                    let open = k;
                    let mut depth = 0i32;
                    while k < tokens.len() {
                        match t(k) {
                            "{" => depth += 1,
                            "}" => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                    ranges.push((open, k + 1));
                    i = open + 1; // nested cfg(test) mods still scanned
                    continue;
                }
            }
        }
        i += 1;
    }
    ranges
}
