//! Diagnostics and their text / JSON renderings.

use std::fmt;

/// The determinism rules. `D000` is detlint's own meta-rule: malformed,
/// unjustified, or unused suppressions are themselves findings, so an
/// annotation can never silently rot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Suppression hygiene (bare allow, unknown rule code, unused allow).
    D000,
    /// Hash container named in a state-bearing crate.
    D001,
    /// Iteration over a hash-typed binding anywhere in the workspace.
    D002,
    /// Wall-clock / OS entropy outside the timing allowlist.
    D003,
    /// Process environment read outside the CLI intake allowlist.
    D004,
    /// `unwrap`/`expect`/`panic!` in the World/driver hot path.
    D005,
    /// Registry ⟷ goldens cross-check (orphan or missing golden).
    D006,
}

impl Rule {
    pub const ALL: [Rule; 7] = [
        Rule::D000,
        Rule::D001,
        Rule::D002,
        Rule::D003,
        Rule::D004,
        Rule::D005,
        Rule::D006,
    ];

    pub fn code(self) -> &'static str {
        match self {
            Rule::D000 => "D000",
            Rule::D001 => "D001",
            Rule::D002 => "D002",
            Rule::D003 => "D003",
            Rule::D004 => "D004",
            Rule::D005 => "D005",
            Rule::D006 => "D006",
        }
    }

    pub fn from_code(code: &str) -> Option<Rule> {
        Rule::ALL.iter().copied().find(|r| r.code() == code)
    }

    /// One-line description, shown by `detlint rules`.
    pub fn summary(self) -> &'static str {
        match self {
            Rule::D000 => "suppression hygiene: bare/unknown/unused detlint::allow",
            Rule::D001 => "HashMap/HashSet in a state-bearing crate (use ordered containers)",
            Rule::D002 => "iteration over a hash container (order leaks into fingerprints)",
            Rule::D003 => "wall-clock or OS entropy outside the timing allowlist",
            Rule::D004 => "std::env read outside the CLI intake allowlist",
            Rule::D005 => "unwrap/expect/panic! in the World/driver hot path",
            Rule::D006 => "experiment registry and goldens set out of sync",
        }
    }

    /// Whether `// detlint::allow(rule, "…")` may suppress this rule.
    /// D000 and the cross-file D006 cannot be inline-suppressed.
    pub fn suppressible(self) -> bool {
        !matches!(self, Rule::D000 | Rule::D006)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// One finding at a `file:line`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Workspace-relative path (or the goldens dir for D006).
    pub file: String,
    /// 1-based line; 0 for findings that are about a file set, not a line.
    pub line: u32,
    pub rule: Rule,
    pub message: String,
}

impl Diagnostic {
    pub fn new(rule: Rule, file: &str, line: u32, message: String) -> Self {
        Diagnostic {
            file: file.to_string(),
            line,
            rule,
            message,
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}: {} {}", self.file, self.rule, self.message)
        } else {
            write!(
                f,
                "{}:{}: {} {}",
                self.file, self.line, self.rule, self.message
            )
        }
    }
}

/// Renders diagnostics as a JSON array (stable field order, sorted input
/// expected). Hand-emitted: the vendored serde_json has no parser and
/// detlint stays dependency-free anyway.
pub fn to_json(fresh: &[Diagnostic], baselined: &[Diagnostic]) -> String {
    let mut s = String::from("[\n");
    let mut first = true;
    for (d, base) in fresh
        .iter()
        .map(|d| (d, false))
        .chain(baselined.iter().map(|d| (d, true)))
    {
        if !first {
            s.push_str(",\n");
        }
        first = false;
        s.push_str(&format!(
            "  {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"baselined\": {}, \"message\": \"{}\"}}",
            d.rule,
            escape(&d.file),
            d.line,
            base,
            escape(&d.message),
        ));
    }
    s.push_str("\n]\n");
    s
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
