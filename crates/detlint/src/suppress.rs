//! The inline suppression syntax:
//!
//! ```text
//! // detlint::allow(D003, "progress ETA only; never feeds results")
//! ```
//!
//! A trailing comment suppresses findings on its own line; a standalone
//! comment suppresses the next code line (standalone allows stack — each
//! one's target is the next *code* line, so two allows above one line both
//! land on it). A bare `detlint::allow(D003)` without a justification
//! string, an unknown rule code, or an allow that suppresses nothing are
//! all D000 findings: annotations must stay justified and live.

use crate::lexer::Lexed;
use crate::report::{Diagnostic, Rule};

/// One parsed, well-formed allow.
#[derive(Debug, Clone)]
pub struct Allow {
    pub rule: Rule,
    pub justification: String,
    /// Line the comment sits on.
    pub line: u32,
    /// Line whose findings this allow suppresses.
    pub target: u32,
}

/// Parse result for one file: valid allows plus D000 findings for the
/// malformed ones.
#[derive(Debug, Default)]
pub struct Suppressions {
    pub allows: Vec<Allow>,
    pub malformed: Vec<Diagnostic>,
}

const MARKER: &str = "detlint::allow";

/// Extracts every suppression in `lexed`, resolving standalone comments to
/// the next code line.
pub fn parse(file: &str, lexed: &Lexed) -> Suppressions {
    let mut out = Suppressions::default();
    for c in &lexed.comments {
        // A suppression comment is exactly `// detlint::allow(…)`: the
        // marker must open the comment. Doc comments (`///`, `//!`) lex
        // with a leading `/` or `!`, so prose *about* the syntax — like
        // this module's — never parses as a suppression.
        let Some(rest) = c.text.trim().strip_prefix(MARKER) else {
            continue;
        };
        let rest = rest.trim_start();
        match parse_args(rest) {
            Ok((code, justification)) => match Rule::from_code(&code) {
                Some(rule) if rule.suppressible() => {
                    let target = if c.standalone {
                        lexed.next_code_line(c.line + 1).unwrap_or(c.line)
                    } else {
                        c.line
                    };
                    out.allows.push(Allow {
                        rule,
                        justification,
                        line: c.line,
                        target,
                    });
                }
                Some(rule) => out.malformed.push(Diagnostic::new(
                    Rule::D000,
                    file,
                    c.line,
                    format!("rule {rule} cannot be inline-suppressed"),
                )),
                None => out.malformed.push(Diagnostic::new(
                    Rule::D000,
                    file,
                    c.line,
                    format!("unknown rule code `{code}` in detlint::allow"),
                )),
            },
            Err(why) => out.malformed.push(Diagnostic::new(
                Rule::D000,
                file,
                c.line,
                format!("malformed detlint::allow: {why}"),
            )),
        }
    }
    out
}

/// Parses `(RULE, "justification")`. The justification is mandatory, a
/// non-empty double-quoted string, and nothing may follow the `)`.
fn parse_args(s: &str) -> Result<(String, String), &'static str> {
    let s = s
        .strip_prefix('(')
        .ok_or("expected `(` after detlint::allow")?;
    let code_end = s.find([',', ')']).ok_or("missing closing `)`")?;
    let code = s[..code_end].trim();
    if code.is_empty() {
        return Err("missing rule code");
    }
    if s.as_bytes()[code_end] == b')' {
        return Err("a justification string is required: detlint::allow(RULE, \"why\")");
    }
    let rest = s[code_end + 1..].trim_start();
    let rest = rest
        .strip_prefix('"')
        .ok_or("justification must be a double-quoted string")?;
    let quote_end = rest.find('"').ok_or("unterminated justification string")?;
    let justification = &rest[..quote_end];
    if justification.trim().is_empty() {
        return Err("justification must not be empty");
    }
    let tail = rest[quote_end + 1..].trim_start();
    let tail = tail
        .strip_prefix(')')
        .ok_or("expected `)` after the justification")?;
    if !tail.trim().is_empty() {
        return Err("nothing may follow the closing `)`");
    }
    Ok((code.to_string(), justification.to_string()))
}

/// Applies `sup` to `diags`: suppressed findings are dropped, and every
/// allow that suppressed nothing becomes a D000 finding (dead annotations
/// are removed, not accumulated). Returns the surviving diagnostics.
pub fn apply(file: &str, diags: Vec<Diagnostic>, sup: &Suppressions) -> Vec<Diagnostic> {
    let mut used = vec![false; sup.allows.len()];
    let mut out: Vec<Diagnostic> = Vec::new();
    for d in diags {
        let hit = sup
            .allows
            .iter()
            .position(|a| a.rule == d.rule && a.target == d.line);
        match hit {
            Some(i) => used[i] = true,
            None => out.push(d),
        }
    }
    for (a, used) in sup.allows.iter().zip(used) {
        if !used {
            out.push(Diagnostic::new(
                Rule::D000,
                file,
                a.line,
                format!(
                    "unused suppression: no {} finding on line {} (remove the allow)",
                    a.rule, a.target
                ),
            ));
        }
    }
    out.extend(sup.malformed.iter().cloned());
    out
}
