//! The detlint CLI.
//!
//! ```text
//! detlint check [--json] [--root DIR] [--config FILE]
//!               [--registry-json FILE] [--no-registry] [--update-baseline]
//! detlint rules
//! ```
//!
//! Exit status: 0 clean (baselined findings allowed), 1 on any fresh
//! diagnostic or stale baseline entry, 2 on usage or I/O errors.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use detlint::baseline::{self, BaselineEntry, Config};
use detlint::report::{to_json, Rule};
use detlint::{check_workspace, CheckOpts};

fn main() -> ExitCode {
    // detlint::allow(D004, "CLI argument intake for the linter itself; no simulation state")
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => check_cmd(&args[1..]),
        Some("rules") => {
            for rule in Rule::ALL {
                println!("{}  {}", rule.code(), rule.summary());
            }
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!("usage: detlint <check|rules> [--json] [--root DIR] [--config FILE]");
            eprintln!("                             [--registry-json FILE] [--no-registry]");
            eprintln!("                             [--update-baseline]");
            ExitCode::from(2)
        }
    }
}

fn check_cmd(args: &[String]) -> ExitCode {
    let mut json = false;
    let mut update_baseline = false;
    let mut root = PathBuf::from(".");
    let mut config: Option<PathBuf> = None;
    let mut opts = CheckOpts::default();

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--update-baseline" => update_baseline = true,
            "--no-registry" => opts.no_registry = true,
            "--root" => match it.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage("--root needs a directory"),
            },
            "--config" => match it.next() {
                Some(v) => config = Some(PathBuf::from(v)),
                None => return usage("--config needs a file"),
            },
            "--registry-json" => match it.next() {
                Some(v) => opts.registry_json = Some(PathBuf::from(v)),
                None => return usage("--registry-json needs a file"),
            },
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let config_path = config.unwrap_or_else(|| root.join("detlint.toml"));
    let cfg = match load_config(&config_path) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("detlint: {e}");
            return ExitCode::from(2);
        }
    };

    let diags = match check_workspace(&root, &cfg, &opts) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("detlint: {e}");
            return ExitCode::from(2);
        }
    };

    if update_baseline {
        let entries: Vec<BaselineEntry> = diags
            .iter()
            .map(|d| BaselineEntry {
                rule: d.rule.code().to_string(),
                file: d.file.clone(),
                line: d.line,
            })
            .collect();
        let rendered = baseline::render(&cfg, &entries);
        if let Err(e) = std::fs::write(&config_path, rendered) {
            eprintln!("detlint: writing {}: {e}", config_path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "detlint: baselined {} finding(s) into {}",
            entries.len(),
            config_path.display()
        );
        return ExitCode::SUCCESS;
    }

    let mut part = baseline::partition(diags, &cfg.baseline);
    part.fresh.extend(part.stale);
    part.fresh.sort();

    if json {
        print!("{}", to_json(&part.fresh, &part.baselined));
    } else {
        for d in &part.fresh {
            println!("{d}");
        }
        for d in &part.baselined {
            println!("{d} [baselined]");
        }
        eprintln!(
            "detlint: {} fresh diagnostic(s), {} baselined",
            part.fresh.len(),
            part.baselined.len()
        );
    }
    if part.fresh.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn load_config(path: &PathBuf) -> Result<Config, String> {
    match std::fs::read_to_string(path) {
        Ok(src) => baseline::parse(&src),
        // A missing config is an empty config: all rules at their
        // built-in scope, no allowlists, no baseline.
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Config::default()),
        Err(e) => Err(format!("reading {}: {e}", path.display())),
    }
}

fn usage(why: &str) -> ExitCode {
    eprintln!("detlint: {why}");
    ExitCode::from(2)
}
