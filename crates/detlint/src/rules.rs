//! The determinism rules (D001–D005) over one file's token stream, plus
//! the lightweight path/scope resolution they need.
//!
//! The resolver is deliberately approximate — per-file, no type inference
//! — and errs on the side of flagging: a false positive costs one
//! justified `detlint::allow`, a false negative costs a nondeterministic
//! golden three PRs later. It tracks three things:
//!
//! 1. hash type *names* visible in the file (`HashMap`, `HashSet`, plus
//!    any `type X = HashMap<…>` alias declared in the file),
//! 2. hash-typed *bindings* (`let`, params, struct fields whose leading
//!    type path resolves to a hash type, or `let x = HashMap::new()`),
//! 3. `#[cfg(test)] mod` spans, exempt from D003–D005 (a panic or
//!    wall-clock read inside a unit test cannot corrupt simulation
//!    output; hash iteration still fires everywhere because flaky test
//!    assertions are exactly as expensive to debug).

use std::collections::BTreeSet;

use crate::lexer::{cfg_test_ranges, Token, TokenKind};
use crate::report::{Diagnostic, Rule};

/// Crates whose directory names mark them state-bearing for D001: a hash
/// container *existing* there is a finding even before anyone iterates.
pub const STATE_BEARING: [&str; 6] = [
    "core",
    "cluster",
    "baselines",
    "engine",
    "simcore",
    "workload",
];

/// Hash container type names rule D001/D002 recognize out of the box.
const HASH_TYPES: [&str; 6] = [
    "HashMap",
    "HashSet",
    "FxHashMap",
    "FxHashSet",
    "AHashMap",
    "AHashSet",
];

/// Methods whose results depend on hash-iteration order.
const ORDER_LEAKING_METHODS: [&str; 10] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
    "retain",
];

/// Wall-clock / entropy identifiers for D003. `Instant` and `SystemTime`
/// are flagged on any use; `thread_rng`/`from_entropy`/`OsRng` are the
/// rand-crate entropy taps.
const CLOCK_ENTROPY: [&str; 5] = [
    "SystemTime",
    "thread_rng",
    "from_entropy",
    "OsRng",
    "random",
];

/// `std::env` accessors for D004.
const ENV_READS: [&str; 9] = [
    "var",
    "var_os",
    "vars",
    "vars_os",
    "args",
    "args_os",
    "temp_dir",
    "current_dir",
    "set_var",
];

/// Static per-file context a rule pass needs.
pub struct FileCtx<'a> {
    /// Workspace-relative path with forward slashes.
    pub path: &'a str,
    /// Crate directory name under `crates/`, if any (`core`, `bench`, …).
    pub krate: Option<&'a str>,
    /// True for integration tests / benches / fixtures, exempt from
    /// D003–D005 like `#[cfg(test)]` modules are.
    pub test_file: bool,
    /// Paths (exact match) where D003 is permitted (timing layer).
    pub d003_allow: &'a [String],
    /// Paths (exact match) where D004 is permitted (CLI intake).
    pub d004_allow: &'a [String],
    /// Paths D005 applies to (the World/driver hot path).
    pub d005_paths: &'a [String],
}

impl FileCtx<'_> {
    fn state_bearing(&self) -> bool {
        self.krate
            .map(|k| STATE_BEARING.contains(&k))
            .unwrap_or(false)
    }
}

/// Runs D001–D005 on one lexed file. Suppressions are applied by the
/// caller; this returns every raw finding.
pub fn check_tokens(ctx: &FileCtx<'_>, tokens: &[Token]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let test_ranges = cfg_test_ranges(tokens);
    let in_test = |i: usize| ctx.test_file || test_ranges.iter().any(|&(a, b)| i >= a && i < b);
    let t = |i: usize| tokens.get(i).map(|t| t.text.as_str()).unwrap_or("");
    let is_ident = |i: usize| {
        tokens
            .get(i)
            .map(|t| t.kind == TokenKind::Ident)
            .unwrap_or(false)
    };

    // ---- resolver pass 1: hash type names (builtin + file-local aliases).
    let mut hash_types: BTreeSet<&str> = HASH_TYPES.into_iter().collect();
    for i in 0..tokens.len() {
        if t(i) == "type" && is_ident(i + 1) && t(i + 2) == "=" {
            let mut j = i + 3;
            while !t(j).is_empty() && t(j) != ";" {
                if hash_types.contains(t(j)) {
                    hash_types.insert(t(i + 1));
                    break;
                }
                j += 1;
            }
        }
    }

    // ---- resolver pass 2: hash-typed bindings.
    let mut hash_bindings: BTreeSet<&str> = BTreeSet::new();
    for i in 0..tokens.len() {
        // `NAME : <type…>` — let bindings with annotations, fn params,
        // struct fields. The leading type path's head (after `&`/`mut`/
        // lifetimes, before `<`) must be a hash type.
        if is_ident(i) && t(i + 1) == ":" && t(i + 2) != ":" && (i == 0 || t(i - 1) != ":") {
            if let Some(head) = type_head(tokens, i + 2) {
                if hash_types.contains(head) {
                    hash_bindings.insert(t(i));
                }
            }
        }
        // `let [mut] NAME = HashType::…` — inferred constructor bindings.
        if t(i) == "let" {
            let name_i = if t(i + 1) == "mut" { i + 2 } else { i + 1 };
            if is_ident(name_i) && t(name_i + 1) == "=" {
                let mut j = name_i + 2;
                // Walk the constructor path: Ident (:: Ident)* — stop at
                // the first non-path token.
                while is_ident(j) || t(j) == ":" {
                    if is_ident(j) && hash_types.contains(t(j)) {
                        hash_bindings.insert(t(name_i));
                        break;
                    }
                    j += 1;
                }
            }
        }
    }

    // ---- rule passes.
    let mut last_d001_line = 0u32;
    for i in 0..tokens.len() {
        let line = tokens[i].line;

        // D001 — hash container named in a state-bearing crate (one
        // finding per line; a `use` and its type mention both count).
        if ctx.state_bearing()
            && is_ident(i)
            && HASH_TYPES.contains(&t(i))
            && line != last_d001_line
        {
            last_d001_line = line;
            diags.push(Diagnostic::new(
                Rule::D001,
                ctx.path,
                line,
                format!(
                    "`{}` in state-bearing crate `{}` — use BTreeMap/BTreeSet/IndexMap, \
                     or justify with detlint::allow",
                    t(i),
                    ctx.krate.unwrap_or("?"),
                ),
            ));
        }

        // D002 — order-leaking method on a hash-typed binding.
        if is_ident(i)
            && (hash_bindings.contains(t(i)) || hash_types.contains(t(i)))
            && t(i + 1) == "."
            && ORDER_LEAKING_METHODS.contains(&t(i + 2))
            && t(i + 3) == "("
        {
            diags.push(Diagnostic::new(
                Rule::D002,
                ctx.path,
                line,
                format!(
                    "iteration over hash container `{}` (`.{}()`) — iteration order is \
                     nondeterministic across processes",
                    t(i),
                    t(i + 2),
                ),
            ));
        }

        // D002 — `for pat in [&][mut] binding {`.
        if t(i) == "for" {
            if let Some(in_i) = find_for_in(tokens, i) {
                let mut j = in_i + 1;
                while t(j) == "&" || t(j) == "mut" {
                    j += 1;
                }
                if is_ident(j) && hash_bindings.contains(t(j)) && t(j + 1) == "{" {
                    diags.push(Diagnostic::new(
                        Rule::D002,
                        ctx.path,
                        tokens[j].line,
                        format!(
                            "`for … in {}` iterates a hash container — order is \
                             nondeterministic across processes",
                            t(j),
                        ),
                    ));
                }
            }
        }

        // D003 — wall-clock / entropy outside the timing allowlist.
        if !in_test(i) && !ctx.d003_allow.iter().any(|p| p == ctx.path) && is_ident(i) {
            let hit =
                if t(i) == "Instant" && t(i + 1) == ":" && t(i + 2) == ":" && t(i + 3) == "now" {
                    Some("Instant::now")
                } else if CLOCK_ENTROPY.contains(&t(i)) && t(i) != "random" {
                    Some(t(i))
                } else if t(i) == "random" && i > 0 && t(i - 1) == ":" {
                    // `rand::random` style path call; bare `.random()` methods
                    // on our deterministic Rng are fine.
                    Some("random")
                } else {
                    None
                };
            if let Some(what) = hit {
                diags.push(Diagnostic::new(
                    Rule::D003,
                    ctx.path,
                    line,
                    format!(
                        "wall-clock/entropy source `{what}` — simulation code must use the \
                         virtual clock and seeded RNG"
                    ),
                ));
            }
        }

        // D004 — std::env reads outside the CLI intake allowlist.
        if !in_test(i)
            && !ctx.d004_allow.iter().any(|p| p == ctx.path)
            && t(i) == "env"
            && t(i + 1) == ":"
            && t(i + 2) == ":"
            && is_ident(i + 3)
            && ENV_READS.contains(&t(i + 3))
        {
            diags.push(Diagnostic::new(
                Rule::D004,
                ctx.path,
                line,
                format!(
                    "process environment read `env::{}` — results must be a function of \
                     CLI-parsed inputs only",
                    t(i + 3),
                ),
            ));
        }

        // D005 — unwrap/expect/panic! in the hot path.
        if !in_test(i) && ctx.d005_paths.iter().any(|p| p == ctx.path) {
            let hit = if t(i) == "." && t(i + 1) == "unwrap" && t(i + 2) == "(" {
                Some("unwrap")
            } else if t(i) == "." && t(i + 1) == "expect" && t(i + 2) == "(" {
                Some("expect")
            } else if t(i) == "panic" && t(i + 1) == "!" {
                Some("panic!")
            } else {
                None
            };
            if let Some(what) = hit {
                diags.push(Diagnostic::new(
                    Rule::D005,
                    ctx.path,
                    line,
                    format!(
                        "`{what}` in the World/driver hot path — handle the failure or \
                         justify the invariant with detlint::allow"
                    ),
                ));
            }
        }
    }
    diags
}

/// The head identifier of a type expression starting at `start`: skips
/// `&`, `mut`, lifetimes, and leading path segments, returning the last
/// identifier before `<`, end-of-type, or a non-path token. `Mutex<…>`
/// resolves to `Mutex` (wrappers are not directly iterable, so a
/// `Mutex<HashMap<…>>` binding is not itself hash-typed).
fn type_head(tokens: &[Token], start: usize) -> Option<&str> {
    let t = |i: usize| tokens.get(i).map(|t| t.text.as_str()).unwrap_or("");
    let mut i = start;
    while t(i) == "&"
        || t(i) == "mut"
        || tokens
            .get(i)
            .map(|tok| tok.kind == TokenKind::Lifetime)
            .unwrap_or(false)
    {
        i += 1;
    }
    let mut head: Option<&str> = None;
    loop {
        match tokens.get(i) {
            Some(tok) if tok.kind == TokenKind::Ident => {
                head = Some(&tok.text);
                i += 1;
            }
            _ => return head,
        }
        if t(i) == ":" && t(i + 1) == ":" {
            i += 2;
        } else {
            return head;
        }
    }
}

/// For `for pat in expr {`: the index of the `in` token at pattern depth
/// zero, if the loop header is well-formed.
fn find_for_in(tokens: &[Token], for_i: usize) -> Option<usize> {
    let t = |i: usize| tokens.get(i).map(|t| t.text.as_str()).unwrap_or("");
    let mut depth = 0i32;
    let mut i = for_i + 1;
    while i < tokens.len() && i < for_i + 64 {
        match t(i) {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "{" => return None, // hit the body without an `in`
            "in" if depth == 0 => return Some(i),
            _ => {}
        }
        i += 1;
    }
    None
}
