//! Prefill–decode disaggregation (§IX-G, Table III).
//!
//! PD disaggregation [54, 75] dedicates separate instances to the prefill
//! and decode stages of each model: a request prefills on a *prefill
//! instance*, then its KV cache ships over the network (100 Gbps in the
//! paper's setup) to a *decode instance* that carries it to completion.
//!
//! [`PdSllm`] is the disaggregated variant of `sllm+c+s`: static half-node
//! slots, exclusive per-instance memory, concurrency limits — but two
//! instance pools per model and a KV-transfer hop between them. The paper
//! finds this *hurts* in serverless settings: prefill instances idle 93% of
//! their lifetime, doubling cold starts and node usage (Table III).

use std::collections::{BTreeMap, BTreeSet};

use cluster::{NodeId, Policy, World};
use engine::instance::{InstanceId, IterationKind};
use engine::request::{ReqPhase, RunningRequest};
use simcore::time::SimDuration;
use workload::request::{ModelId, RequestId};

use crate::limits::concurrency_limit;

const TAG_HANDOFF: u64 = 1 << 63;

/// Disaggregated `sllm+c+s`. See module docs.
///
/// Ordered containers only (`Vec`/`BTreeSet`/`BTreeMap`): hash-randomized
/// iteration order must never reach placement decisions.
pub struct PdSllm {
    queue: Vec<RunningRequest>,
    timers: BTreeSet<RequestId>,
    prefill_insts: BTreeSet<InstanceId>,
    pending: BTreeMap<u64, RunningRequest>,
    /// Concurrent prefills a prefill instance accepts before scale-out.
    prefill_depth: u32,
}

impl PdSllm {
    /// Creates the policy.
    pub fn new() -> Self {
        PdSllm {
            queue: Vec::new(),
            timers: BTreeSet::new(),
            prefill_insts: BTreeSet::new(),
            pending: BTreeMap::new(),
            prefill_depth: 2,
        }
    }

    fn free_slots(&self, w: &World, model: ModelId) -> Vec<(u8, NodeId, usize)> {
        let mut slots = Vec::new();
        for node in w.node_ids() {
            if !w.node_schedulable(node) {
                continue;
            }
            let hw = w.node_hw(node);
            if !hw.can_serve(w.model_spec(model)) {
                continue;
            }
            let rank = if hw.kind.is_cpu() { 0u8 } else { 1 };
            for slot in 0..w.slot_count(node) {
                if w.instances_on_slot(node, slot).is_empty() {
                    slots.push((rank, node, slot));
                }
            }
        }
        slots.sort();
        slots
    }

    fn create_on_free_slot(&mut self, w: &mut World, model: ModelId) -> Option<InstanceId> {
        let spec = w.model_spec(model).clone();
        let tp = spec.tp_degree.max(1) as usize;
        let free = self.free_slots(w, model);
        if tp > 1 {
            // `free_slots` already filtered schedulability and servability.
            return crate::groups::claim_slot_group(w, model, &free, tp, |_, _| true)
                .map(|(inst, _)| inst);
        }
        // CPUs first, then warmest checkpoint tier (startup-time-estimated
        // scheduling); ties keep the legacy (node, slot) order.
        let mut order = crate::groups::score_free_slots(w, model, &free);
        order.sort_unstable();
        for (_, _, fi) in order {
            let (_, node, slot) = free[fi];
            let slot_mem = w.node_hw(node).mem_bytes / w.slot_count(node) as u64;
            let grant = slot_mem.saturating_sub(spec.weights_bytes()).min(
                w.node_available_bytes(node)
                    .saturating_sub(spec.weights_bytes()),
            );
            if grant == 0 {
                continue;
            }
            if w.create_instance(model, node, slot, grant).is_ok() {
                return w.instances_on_slot(node, slot).last().copied();
            }
        }
        None
    }

    fn try_place_prefill(&mut self, w: &mut World, rr: &RunningRequest) -> bool {
        let model = rr.req.model;
        for inst in w.instances_of_model(model) {
            if !self.prefill_insts.contains(&inst) {
                continue;
            }
            let live = w.instance(inst).map(|i| i.live_count()).unwrap_or(u32::MAX);
            if live < self.prefill_depth {
                w.admit(inst, rr.clone());
                return true;
            }
        }
        if let Some(inst) = self.create_on_free_slot(w, model) {
            self.prefill_insts.insert(inst);
            w.admit(inst, rr.clone());
            return true;
        }
        false
    }

    fn try_place_decode(
        &mut self,
        w: &mut World,
        rr: RunningRequest,
    ) -> Result<(), RunningRequest> {
        let model = rr.req.model;
        for inst in w.instances_of_model(model) {
            if self.prefill_insts.contains(&inst) {
                continue;
            }
            let Some((node, _)) = w.instance_placement(inst) else {
                continue;
            };
            // A TP instance owns its whole slot group's compute share.
            let limit = concurrency_limit(
                w.model_spec(model),
                w.node_hw(node),
                w.instance_share(inst),
                &w.slo(),
            );
            let live = w.instance(inst).map(|i| i.live_count()).unwrap_or(u32::MAX);
            if live >= limit {
                continue;
            }
            match w.admit_decoding(inst, rr.clone()) {
                true => return Ok(()),
                false => continue, // KV grant full; try the next instance
            }
        }
        if let Some(inst) = self.create_on_free_slot(w, model) {
            if w.admit_decoding(inst, rr.clone()) {
                return Ok(());
            }
        }
        Err(rr)
    }

    fn enqueue(&mut self, w: &mut World, rr: RunningRequest) {
        let deadline = rr.next_deadline(&w.slo_for(&rr.req));
        if w.now() >= deadline {
            w.drop_request(&rr);
            return;
        }
        if self.timers.insert(rr.req.id) {
            w.set_timer(deadline - w.now(), rr.req.id.0);
        }
        self.queue.push(rr);
    }

    fn retry_queue(&mut self, w: &mut World) {
        for rr in std::mem::take(&mut self.queue) {
            if w.now() >= rr.next_deadline(&w.slo_for(&rr.req)) {
                w.drop_request(&rr);
            } else if !self.try_place_prefill(w, &rr) {
                self.queue.push(rr);
            }
        }
    }
}

impl Default for PdSllm {
    fn default() -> Self {
        Self::new()
    }
}

impl Policy for PdSllm {
    fn name(&self) -> &str {
        "sllm+c+s (PD)"
    }

    fn on_arrival(&mut self, w: &mut World, rr: RunningRequest) {
        if !self.try_place_prefill(w, &rr) {
            self.enqueue(w, rr);
        }
    }

    fn on_slot_free(&mut self, w: &mut World, node: NodeId, slot: usize) {
        for inst in w.instances_on_slot(node, slot) {
            let Some(i) = w.instance(inst) else { continue };
            if !i.has_work() {
                continue;
            }
            if w.instance_group_busy(inst) {
                continue; // another slot of the TP group is still running
            }
            let kind = if self.prefill_insts.contains(&inst) {
                match i
                    .requests()
                    .iter()
                    .filter(|r| matches!(r.phase, ReqPhase::Waiting))
                    .min_by_key(|r| r.req.arrival)
                {
                    Some(r) => IterationKind::Prefill(r.req.id),
                    None => continue, // decoding requests left mid-handoff
                }
            } else {
                IterationKind::Decode
            };
            if w.start_iteration(inst, kind).is_ok() {
                return;
            }
        }
    }

    fn on_prefill_done(&mut self, w: &mut World, inst: InstanceId, req: RequestId) {
        if !self.prefill_insts.contains(&inst) {
            return;
        }
        let now = w.now();
        let rr = w
            .instance_mut(inst)
            .expect("prefill instance exists")
            .remove_for_handoff(req, now);
        let delay = w.kv_transfer_delay(rr.req.model, rr.context_tokens());
        w.schedule_keepalive(inst);
        self.pending.insert(req.0, rr);
        w.set_timer(delay, TAG_HANDOFF | req.0);
    }

    fn on_load_done(&mut self, w: &mut World, _inst: InstanceId) {
        self.retry_queue(w);
    }

    fn on_request_done(&mut self, w: &mut World, _inst: InstanceId, _rr: &RunningRequest) {
        self.retry_queue(w);
    }

    fn on_keepalive(&mut self, w: &mut World, inst: InstanceId) {
        let idle = w
            .instance(inst)
            .map(|i| !i.has_live_requests() && !i.busy && !i.scaling)
            .unwrap_or(false);
        if idle {
            self.prefill_insts.remove(&inst);
            w.unload_instance(inst);
            self.retry_queue(w);
        }
    }

    fn on_timer(&mut self, w: &mut World, payload: u64) {
        if payload & TAG_HANDOFF != 0 {
            let key = payload & !TAG_HANDOFF;
            let Some(rr) = self.pending.remove(&key) else {
                return;
            };
            match self.try_place_decode(w, rr) {
                Ok(()) => {}
                Err(rr) => {
                    // No decode capacity yet: back off briefly, give up when
                    // hopeless (well past the running deadline).
                    let hopeless = w.now()
                        > rr.next_deadline(&w.slo_for(&rr.req)) + SimDuration::from_secs(10);
                    if hopeless {
                        w.drop_request(&rr);
                    } else {
                        self.pending.insert(key, rr);
                        w.set_timer(SimDuration::from_millis(100), TAG_HANDOFF | key);
                    }
                }
            }
            return;
        }
        let id = RequestId(payload);
        self.timers.remove(&id);
        let now = w.now();
        for rr in std::mem::take(&mut self.queue) {
            if rr.req.id == id && now >= rr.next_deadline(&w.slo_for(&rr.req)) {
                w.drop_request(&rr);
            } else {
                self.queue.push(rr);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::{ClusterSpec, Simulation, WorldConfig};
    use hwmodel::{ModelSpec, NoiseModel};
    use simcore::time::SimTime;
    use workload::request::{Request, SloClass, Trace};

    fn quiet() -> WorldConfig {
        WorldConfig {
            noise: NoiseModel::off(),
            ..WorldConfig::default()
        }
    }

    fn mk_trace(reqs: Vec<(u64, u32, u32, u32)>) -> Trace {
        let n_models = reqs.iter().map(|r| r.1).max().unwrap_or(0) + 1;
        let requests = reqs
            .into_iter()
            .enumerate()
            .map(|(i, (ms, m, inp, out))| Request {
                id: RequestId(i as u64),
                model: ModelId(m),
                arrival: SimTime::from_millis(ms),
                input_len: inp,
                output_len: out,
                class: SloClass::default(),
                session: Default::default(),
            })
            .collect();
        Trace::new(requests, n_models, SimDuration::from_secs(60))
    }

    #[test]
    fn request_crosses_prefill_to_decode() {
        let trace = mk_trace(vec![(0, 0, 512, 8)]);
        let sim = Simulation::new(
            &ClusterSpec::statically_shared(0, 2),
            vec![ModelSpec::llama2_7b()],
            quiet(),
            PdSllm::new(),
        );
        let m = sim.run(&trace);
        assert!(
            m.records[0].completed.is_some(),
            "request must complete across the handoff"
        );
        // Two pools ⇒ two cold starts for a single request.
        assert_eq!(m.cold_starts, 2);
    }

    #[test]
    fn pd_uses_more_instances_than_aggregated() {
        use crate::sllm::{Sllm, SllmConfig};
        let reqs: Vec<(u64, u32, u32, u32)> = (0..10).map(|i| (i * 500, 0, 512, 32)).collect();
        let trace = mk_trace(reqs);
        let agg = Simulation::new(
            &ClusterSpec::statically_shared(0, 2),
            vec![ModelSpec::llama2_7b()],
            quiet(),
            Sllm::new(SllmConfig::sllm_cs()),
        )
        .run(&trace);
        let pd = Simulation::new(
            &ClusterSpec::statically_shared(0, 2),
            vec![ModelSpec::llama2_7b()],
            quiet(),
            PdSllm::new(),
        )
        .run(&trace);
        assert!(
            pd.cold_starts > agg.cold_starts,
            "PD should double instance churn: {} vs {}",
            pd.cold_starts,
            agg.cold_starts
        );
        assert!(pd.slo_met() <= agg.slo_met());
    }
}
