//! NEO+ — CPU-assisted exclusive GPU serving (§IX-I3, Fig. 29).
//!
//! NEO \[32\] offloads KV-cache and the associated attention computation to
//! host CPU cores, freeing GPU memory for larger batches. It keeps the GPU
//! as the execution base: CPUs are auxiliary, never independent servers.
//!
//! We model the offload at the *capacity* level: harvested cores contribute
//! pooled DRAM for KV (≈2 GB per core, bounded by what the cores' attention
//! throughput can sustain), so each GPU node effectively has
//! `80 GB + cores · 2 GB` of serving memory; the scheduling policy remains
//! exclusive-allocation `sllm`. This reproduces NEO's qualitative position
//! in Fig. 29: per-instance capacity grows with harvested cores, but with
//! one model per GPU the cluster still cannot share — so its SLO-miss rate
//! improves only mildly while SLINFER's collapses.

use cluster::ClusterSpec;
use cluster::NodeSpec;
use hwmodel::HardwareSpec;

use crate::sllm::{Sllm, SllmConfig};

/// DRAM contributed per harvested core to the KV offload pool (bytes).
pub const KV_BYTES_PER_CORE: u64 = 2_000_000_000;

/// NEO+ policy: exclusive GPU allocation over offload-extended nodes.
pub struct NeoPlus;

impl NeoPlus {
    /// The NEO+ policy (an `sllm` configured GPU-only, since CPUs only
    /// assist).
    pub fn policy() -> Sllm {
        Sllm::new(SllmConfig {
            name: "NEO+".into(),
            use_cpu: false,
        })
    }

    /// Builds the NEO+ cluster: `n_gpu` A100 nodes whose serving memory is
    /// extended by `harvested_cores` worth of host-DRAM KV offload each.
    pub fn cluster(n_gpu: usize, harvested_cores: u32) -> ClusterSpec {
        let mut gpu = HardwareSpec::a100_80g();
        gpu.mem_bytes += harvested_cores as u64 * KV_BYTES_PER_CORE;
        if harvested_cores > 0 {
            gpu.name = format!("A100-80GB+NEO{harvested_cores}c");
        }
        ClusterSpec {
            nodes: (0..n_gpu).map(|_| NodeSpec::whole(gpu.clone())).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::Policy;
    use hwmodel::HardwareKind;

    #[test]
    fn cluster_memory_scales_with_cores() {
        let base = NeoPlus::cluster(4, 0);
        let ext = NeoPlus::cluster(4, 32);
        assert_eq!(base.nodes.len(), 4);
        assert_eq!(base.nodes[0].hw.mem_bytes, 80_000_000_000);
        assert_eq!(ext.nodes[0].hw.mem_bytes, 80_000_000_000 + 64_000_000_000);
        assert_eq!(ext.count_kind(HardwareKind::Gpu), 4);
    }

    #[test]
    fn policy_is_gpu_only() {
        let p = NeoPlus::policy();
        assert_eq!(p.name(), "NEO+");
        assert!(!p.uses_cpu());
    }
}
