//! The ServerlessLLM-style baseline family (§III-C, §IX-A).
//!
//! One policy, three configurations:
//!
//! | name       | nodes used        | slots     | limits table |
//! |------------|-------------------|-----------|--------------|
//! | `sllm`     | GPUs only         | whole     | (160, 32, 16) |
//! | `sllm+c`   | CPUs first, GPUs  | whole     | + (59, 15, 6) |
//! | `sllm+c+s` | CPUs first, GPUs  | two halves| (71,12,4)/(23,4,6) |
//!
//! Behaviour (§III-C): a request is routed to an existing instance of its
//! model while that instance sits under its concurrency limit; otherwise a
//! new instance is launched on an idle slot (exclusively owning the slot's
//! memory); otherwise the request queues and is dropped once its TTFT SLO
//! expires. Instances run vLLM-style continuous batching: pending prefills
//! are scheduled eagerly (FIFO), decodes otherwise.

use std::collections::BTreeSet;

use cluster::{NodeId, Policy, World};
use engine::instance::{InstanceId, IterationKind};
use engine::request::{ReqPhase, RunningRequest};
use hwmodel::HardwareKind;
use workload::request::{ModelId, RequestId};

use crate::limits::concurrency_limit;

/// Configuration of the `sllm` family.
#[derive(Debug, Clone)]
pub struct SllmConfig {
    /// Display name.
    pub name: String,
    /// Serve on AMX CPU nodes (preferring them), not just GPUs.
    pub use_cpu: bool,
}

impl SllmConfig {
    /// Plain ServerlessLLM: exclusive GPUs.
    pub fn sllm() -> Self {
        SllmConfig {
            name: "sllm".into(),
            use_cpu: false,
        }
    }

    /// `sllm+c`: CPUs added and preferred.
    pub fn sllm_c() -> Self {
        SllmConfig {
            name: "sllm+c".into(),
            use_cpu: true,
        }
    }

    /// `sllm+c+s`: CPUs plus static time-sharing. Pair this with
    /// [`cluster::ClusterSpec::statically_shared`] — the policy itself only
    /// sees more slots with smaller shares.
    pub fn sllm_cs() -> Self {
        SllmConfig {
            name: "sllm+c+s".into(),
            use_cpu: true,
        }
    }
}

/// The ServerlessLLM-style policy. See module docs.
///
/// Policy state is kept in ordered containers (`Vec` in arrival order,
/// `BTreeSet`) so no iteration can leak hash-randomized order into
/// placement decisions across processes.
pub struct Sllm {
    cfg: SllmConfig,
    queue: Vec<RunningRequest>,
    timers: BTreeSet<RequestId>,
}

impl Sllm {
    /// Creates the policy.
    pub fn new(cfg: SllmConfig) -> Self {
        Sllm {
            cfg,
            queue: Vec::new(),
            timers: BTreeSet::new(),
        }
    }

    fn node_usable(&self, w: &World, node: NodeId, model: workload::request::ModelId) -> bool {
        if !w.node_schedulable(node) {
            return false;
        }
        let hw = w.node_hw(node);
        if hw.kind.is_cpu() && !self.cfg.use_cpu {
            return false;
        }
        hw.can_serve(w.model_spec(model))
    }

    fn instance_limit(&self, w: &World, inst: InstanceId) -> u32 {
        let Some((node, _)) = w.instance_placement(inst) else {
            return 0;
        };
        let hw = w.node_hw(node);
        // A TP instance owns its whole slot group's compute share.
        let share = w.instance_share(inst);
        let model = w.instance(inst).expect("placed").model;
        concurrency_limit(w.model_spec(model), hw, share, &w.slo())
    }

    /// All currently idle slots, CPUs first (model-independent; per-model
    /// usability is re-checked at placement time).
    fn free_slots(&self, w: &World) -> Vec<(u8, NodeId, usize)> {
        let mut slots: Vec<(u8, NodeId, usize)> = Vec::new();
        for node in w.node_ids() {
            if !w.node_schedulable(node) {
                continue;
            }
            let rank = if w.node_hw(node).kind.is_cpu() {
                0u8
            } else {
                1
            };
            for slot in 0..w.slot_count(node) {
                if w.slot_instances(node, slot).is_empty() {
                    slots.push((rank, node, slot));
                }
            }
        }
        slots.sort();
        slots
    }

    fn try_place(&mut self, w: &mut World, rr: &RunningRequest) -> bool {
        if self.try_admit_existing(w, rr) {
            return true;
        }
        // Scan for idle slots only once admission has failed — on the hot
        // arrival path most requests land on an existing instance.
        let mut free = self.free_slots(w);
        self.try_create_on(w, rr, &mut free)
    }

    /// Routes the request to an existing instance of its model sitting
    /// under its concurrency limit, CPU instances first.
    fn try_admit_existing(&mut self, w: &mut World, rr: &RunningRequest) -> bool {
        let model = rr.req.model;
        // Session affinity fast path: stick a follow-up turn to the
        // instance holding its parked prefix KV while it is under this
        // policy's own concurrency limit (inert when sessions are off).
        if let Some(home) = w.session_affinity_target(&rr.req) {
            let live = w.instance(home).map(|i| i.live_count()).unwrap_or(u32::MAX);
            if live < self.instance_limit(w, home) {
                w.admit(home, rr.clone());
                return true;
            }
        }
        let mut candidates: Vec<(u8, InstanceId)> = w
            .model_instances(model)
            .iter()
            .filter_map(|&id| {
                let (node, _) = w.instance_placement(id)?;
                if !w.node_schedulable(node) {
                    return None;
                }
                let rank = if w.node_hw(node).kind.is_cpu() {
                    0u8
                } else {
                    1
                };
                Some((rank, id))
            })
            .collect();
        candidates.sort();
        for (_, inst) in candidates {
            let live = w.instance(inst).map(|i| i.live_count()).unwrap_or(u32::MAX);
            if live < self.instance_limit(w, inst) {
                w.admit(inst, rr.clone());
                return true;
            }
        }
        false
    }

    /// Launches a new instance against a maintained free-slot list: slots
    /// are consumed from `free` as instances are created, so a retry pass
    /// over the whole queue scans the cluster once instead of once per
    /// request.
    ///
    /// Candidate slots are ordered ServerlessLLM-style by estimated
    /// startup time from each node's warmest checkpoint tier (CPUs still
    /// first; ties keep the legacy `(node, slot)` order, so the flat
    /// default configuration replays byte-identically).
    fn try_create_on(
        &mut self,
        w: &mut World,
        rr: &RunningRequest,
        free: &mut Vec<(u8, NodeId, usize)>,
    ) -> bool {
        let model = rr.req.model;
        let tp = w.model_spec(model).tp_degree.max(1) as usize;
        if tp > 1 {
            return self.try_create_group(w, rr, free, tp);
        }
        // A new instance on an idle slot: CPUs first, warmest tier next.
        let mut order = crate::groups::score_free_slots(w, model, free);
        order.sort_unstable();
        for (_, _, fi) in order {
            let (_, node, slot) = free[fi];
            if !self.node_usable(w, node, model) {
                continue;
            }
            let spec = w.model_spec(model).clone();
            // Exclusive ownership of the slot's memory share. Models whose
            // weights exceed the share (34B on a half-A100) claim the whole
            // node's memory instead, provided the node is empty — mirroring
            // the paper's whole-node exception for oversized instances.
            let slot_mem = w.node_hw(node).mem_bytes / w.slot_count(node) as u64;
            let mem_budget = if spec.weights_bytes() + spec.kv_bytes_per_token() * 1024 > slot_mem
                && w.node_instances(node).is_empty()
            {
                w.node_hw(node).mem_bytes
            } else {
                slot_mem
            };
            let grant = mem_budget.saturating_sub(spec.weights_bytes()).min(
                w.node_available_bytes(node)
                    .saturating_sub(spec.weights_bytes()),
            );
            if grant == 0 {
                continue;
            }
            if w.create_instance(model, node, slot, grant).is_ok() {
                let inst = *w.slot_instances(node, slot).last().expect("just created");
                w.admit(inst, rr.clone());
                free.remove(fi);
                return true;
            }
        }
        false
    }

    /// Launches a tensor-parallel instance on `tp` idle slots of one node,
    /// consuming the claimed slots from `free`. The group exclusively owns
    /// its slots' memory shares, mirroring the single-slot rule.
    fn try_create_group(
        &mut self,
        w: &mut World,
        rr: &RunningRequest,
        free: &mut Vec<(u8, NodeId, usize)>,
        tp: usize,
    ) -> bool {
        let model = rr.req.model;
        let use_cpu = self.cfg.use_cpu;
        let claimed = crate::groups::claim_slot_group(w, model, free, tp, |w, node| {
            let hw = w.node_hw(node);
            w.node_schedulable(node)
                && (!hw.kind.is_cpu() || use_cpu)
                && hw.can_serve(w.model_spec(model))
        });
        match claimed {
            Some((inst, range)) => {
                w.admit(inst, rr.clone());
                free.drain(range);
                true
            }
            None => false,
        }
    }

    fn enqueue(&mut self, w: &mut World, rr: RunningRequest) {
        let deadline = rr.next_deadline(&w.slo_for(&rr.req));
        if w.now() >= deadline {
            w.drop_request(&rr);
            return;
        }
        if self.timers.insert(rr.req.id) {
            w.set_timer(deadline - w.now(), rr.req.id.0);
        }
        self.queue.push(rr);
    }

    /// One incremental retry pass over the queue.
    ///
    /// Naively, every pass re-scans the full cluster per queued request —
    /// O(queue × nodes) work per event, which is what made the 96/128-model
    /// `fig04`/`fig22` points superlinear in queued load. Two invariants
    /// make the pass incremental without changing any placement decision:
    ///
    /// 1. Nothing frees capacity *during* a pass — placements only consume
    ///    it — so the idle-slot list can be computed once and maintained as
    ///    slots are taken.
    /// 2. For the same reason, once placement fails for a model, every
    ///    later queued request of that model fails too (admission would
    ///    need an instance under its limit or a usable slot, and neither
    ///    can appear mid-pass), so the scan is skipped outright.
    fn retry_queue(&mut self, w: &mut World) {
        if self.queue.is_empty() {
            return;
        }
        // Built lazily: a pass that only admits to existing instances (or
        // only drops) never scans the cluster at all.
        let mut free: Option<Vec<(u8, NodeId, usize)>> = None;
        let mut full_models: BTreeSet<ModelId> = BTreeSet::new();
        for rr in std::mem::take(&mut self.queue) {
            if w.now() >= rr.next_deadline(&w.slo_for(&rr.req)) {
                w.drop_request(&rr);
            } else if full_models.contains(&rr.req.model) {
                self.queue.push(rr);
            } else if self.try_admit_existing(w, &rr) {
                // Placed on an existing instance; slots untouched.
            } else {
                if free.is_none() {
                    free = Some(self.free_slots(w));
                }
                if !self.try_create_on(w, &rr, free.as_mut().expect("just filled")) {
                    full_models.insert(rr.req.model);
                    self.queue.push(rr);
                }
            }
        }
    }
}

impl Policy for Sllm {
    fn name(&self) -> &str {
        &self.cfg.name
    }

    fn on_arrival(&mut self, w: &mut World, rr: RunningRequest) {
        if !self.try_place(w, &rr) {
            self.enqueue(w, rr);
        }
    }

    fn on_slot_free(&mut self, w: &mut World, node: NodeId, slot: usize) {
        // vLLM-style: eager FIFO prefill, else decode.
        for inst in w.instances_on_slot(node, slot) {
            let Some(i) = w.instance(inst) else { continue };
            if !i.has_work() {
                continue;
            }
            if w.instance_group_busy(inst) {
                continue; // another slot of the TP group is still running
            }
            let next_prefill = i
                .requests()
                .iter()
                .filter(|r| matches!(r.phase, ReqPhase::Waiting))
                .min_by_key(|r| r.req.arrival)
                .map(|r| r.req.id);
            let kind = match next_prefill {
                Some(id) => IterationKind::Prefill(id),
                None => IterationKind::Decode,
            };
            match w.start_iteration(inst, kind) {
                Ok(_) => return,
                Err(cluster::world::StartError::GroupBusy) => continue,
                Err(cluster::world::StartError::KvExhausted(_)) => {
                    // The grant is static; fall back to decoding so running
                    // sequences drain and free blocks.
                    if w.instance(inst)
                        .map(|i| i.batch_size() > 0)
                        .unwrap_or(false)
                        && w.start_iteration(inst, IterationKind::Decode).is_ok()
                    {
                        return;
                    }
                }
            }
        }
    }

    fn on_load_done(&mut self, w: &mut World, _inst: InstanceId) {
        self.retry_queue(w);
    }

    fn on_request_done(&mut self, w: &mut World, _inst: InstanceId, _rr: &RunningRequest) {
        self.retry_queue(w);
    }

    fn on_alloc_failure(&mut self, w: &mut World, inst: InstanceId, _req: RequestId) {
        // Static grants can overflow on pathological output lengths: evict
        // the longest-headroom request back to the queue (vLLM's
        // preempt-and-recompute).
        let now = w.now();
        let victim = w.instance(inst).and_then(|i| {
            i.requests()
                .iter()
                .filter(|r| !matches!(r.phase, ReqPhase::Prefilling))
                .max_by(|a, b| {
                    a.headroom(now, &w.slo_for(&a.req))
                        .partial_cmp(&b.headroom(now, &w.slo_for(&b.req)))
                        .unwrap()
                })
                .map(|r| r.req.id)
        });
        if let Some(id) = victim {
            let moved = w
                .instance_mut(inst)
                .expect("instance exists")
                .remove_for_migration(id, now);
            w.note_migration(&[id]);
            if !self.try_place(w, &moved) {
                self.enqueue(w, moved);
            }
        }
    }

    fn on_keepalive(&mut self, w: &mut World, inst: InstanceId) {
        let idle = w
            .instance(inst)
            .map(|i| !i.has_live_requests() && !i.busy && !i.scaling)
            .unwrap_or(false);
        if idle {
            w.unload_instance(inst);
            self.retry_queue(w);
        }
    }

    fn on_timer(&mut self, w: &mut World, payload: u64) {
        let id = RequestId(payload);
        self.timers.remove(&id);
        let now = w.now();
        // Drop in place (keeping FIFO order) instead of rebuilding the
        // whole queue for every expired timer.
        if let Some(pos) = self.queue.iter().position(|rr| rr.req.id == id) {
            if now >= self.queue[pos].next_deadline(&w.slo_for(&self.queue[pos].req)) {
                let rr = self.queue.remove(pos);
                w.drop_request(&rr);
            }
        }
    }
}

/// Marker so experiments can query CPU/GPU usability of a config.
impl Sllm {
    /// True when this configuration may use CPU nodes.
    pub fn uses_cpu(&self) -> bool {
        self.cfg.use_cpu
    }

    /// Hardware kinds this policy will place instances on.
    pub fn kinds(&self) -> Vec<HardwareKind> {
        if self.cfg.use_cpu {
            vec![HardwareKind::CpuAccel, HardwareKind::Gpu]
        } else {
            vec![HardwareKind::Gpu]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::{ClusterSpec, Simulation, WorldConfig};
    use hwmodel::{ModelSpec, NoiseModel};
    use simcore::time::{SimDuration, SimTime};
    use workload::request::{ModelId, Request, SloClass, Trace};

    fn models(n: usize) -> Vec<ModelSpec> {
        (0..n).map(|i| ModelSpec::llama2_7b().replica(i)).collect()
    }

    fn quiet() -> WorldConfig {
        WorldConfig {
            noise: NoiseModel::off(),
            ..WorldConfig::default()
        }
    }

    fn mk_trace(reqs: Vec<(u64, u32, u32, u32)>) -> Trace {
        let n_models = reqs.iter().map(|r| r.1).max().unwrap_or(0) + 1;
        let requests = reqs
            .into_iter()
            .enumerate()
            .map(|(i, (ms, m, inp, out))| Request {
                id: RequestId(i as u64),
                model: ModelId(m),
                arrival: SimTime::from_millis(ms),
                input_len: inp,
                output_len: out,
                class: SloClass::default(),
                session: Default::default(),
            })
            .collect();
        Trace::new(requests, n_models, SimDuration::from_secs(60))
    }

    #[test]
    fn sllm_uses_gpu_only() {
        let trace = mk_trace(vec![(0, 0, 512, 8)]);
        let sim = Simulation::new(
            &ClusterSpec::heterogeneous(2, 2),
            models(1),
            quiet(),
            Sllm::new(SllmConfig::sllm()),
        );
        let m = sim.run(&trace);
        assert_eq!(m.slo_met(), 1);
        assert_eq!(m.cpu_decode_tokens, 0);
        assert!(m.gpu_decode_tokens > 0);
    }

    #[test]
    fn sllm_c_prefers_cpu() {
        let trace = mk_trace(vec![(0, 0, 512, 8)]);
        let sim = Simulation::new(
            &ClusterSpec::heterogeneous(2, 2),
            models(1),
            quiet(),
            Sllm::new(SllmConfig::sllm_c()),
        );
        let m = sim.run(&trace);
        assert_eq!(m.slo_met(), 1);
        assert!(m.cpu_decode_tokens > 0);
        assert_eq!(m.gpu_decode_tokens, 0);
    }

    #[test]
    fn exclusive_allocation_queues_extra_models() {
        // Two models, one GPU: the second request must wait for the first
        // instance's keep-alive reclaim, blowing its 0.5 s TTFT budget.
        let trace = mk_trace(vec![(0, 0, 256, 8), (100, 1, 256, 8)]);
        let sim = Simulation::new(
            &ClusterSpec::heterogeneous(0, 1),
            models(2),
            quiet(),
            Sllm::new(SllmConfig::sllm()),
        );
        let m = sim.run(&trace);
        assert!(m.slo_met() <= 1, "exclusive GPUs cannot share");
        assert!(m.dropped >= 1);
    }

    #[test]
    fn static_sharing_places_two_models_per_node() {
        // Same scenario on a statically split GPU: both fit.
        let trace = mk_trace(vec![(0, 0, 256, 8), (100, 1, 256, 8)]);
        let sim = Simulation::new(
            &ClusterSpec::statically_shared(0, 1),
            models(2),
            quiet(),
            Sllm::new(SllmConfig::sllm_cs()),
        );
        let m = sim.run(&trace);
        assert_eq!(m.slo_met(), 2, "two half-slots hold two instances");
    }

    #[test]
    fn concurrency_limit_spawns_second_instance() {
        // 7B GPU limit is 32: the 33rd simultaneous request forces a second
        // instance (horizontal scale-out).
        let reqs: Vec<(u64, u32, u32, u32)> = (0..40).map(|i| (i * 5, 0, 128, 64)).collect();
        let trace = mk_trace(reqs);
        let sim = Simulation::new(
            &ClusterSpec::heterogeneous(0, 2),
            models(1),
            quiet(),
            Sllm::new(SllmConfig::sllm()),
        );
        let m = sim.run(&trace);
        assert!(
            m.cold_starts >= 2,
            "expected scale-out, got {}",
            m.cold_starts
        );
        assert!(m.slo_rate() > 0.9, "slo {}", m.slo_rate());
    }

    #[test]
    fn tp_instance_claims_an_exclusive_slot_group() {
        use cluster::NodeSpec;
        use hwmodel::HardwareSpec;
        // One 4-GPU server; two TP=2 models. Each instance claims a 2-slot
        // group exclusively, so both fit side by side.
        let trace = mk_trace(vec![(0, 0, 256, 8), (100, 1, 256, 8)]);
        let cluster = ClusterSpec {
            nodes: vec![NodeSpec::multi_accel(HardwareSpec::a100_80g(), 4)],
        };
        let ms: Vec<ModelSpec> = (0..2)
            .map(|i| ModelSpec::llama2_13b().with_tp(2).replica(i))
            .collect();
        let sim = Simulation::new(&cluster, ms, quiet(), Sllm::new(SllmConfig::sllm()));
        let m = sim.run(&trace);
        assert_eq!(m.slo_met(), 2, "two TP=2 groups share the 4-slot node");
        assert_eq!(m.cold_starts, 2);
        // A third TP=2 model has no free group left and must queue/drop.
        let trace3 = mk_trace(vec![(0, 0, 256, 8), (50, 1, 256, 8), (100, 2, 256, 8)]);
        let ms3: Vec<ModelSpec> = (0..3)
            .map(|i| ModelSpec::llama2_13b().with_tp(2).replica(i))
            .collect();
        let cluster3 = ClusterSpec {
            nodes: vec![NodeSpec::multi_accel(HardwareSpec::a100_80g(), 4)],
        };
        let m3 =
            Simulation::new(&cluster3, ms3, quiet(), Sllm::new(SllmConfig::sllm())).run(&trace3);
        assert!(m3.slo_met() <= 2, "no third group exists on a 4-slot node");
    }

    #[test]
    fn over_capacity_requests_drop() {
        // 64 single-request models on one GPU: almost everything queues
        // beyond TTFT and drops — the Fig. 4 collapse.
        let reqs: Vec<(u64, u32, u32, u32)> =
            (0..64).map(|i| (i * 20, i as u32, 512, 16)).collect();
        let trace = mk_trace(reqs);
        let sim = Simulation::new(
            &ClusterSpec::heterogeneous(0, 1),
            models(64),
            quiet(),
            Sllm::new(SllmConfig::sllm()),
        );
        let m = sim.run(&trace);
        assert!(m.dropped > 30, "drops {}", m.dropped);
        assert!(m.slo_rate() < 0.5);
    }
}
