//! Concurrency limits for the `sllm` family (§IX-A).
//!
//! The paper "conservatively tailored a set of higher concurrency limits"
//! for the baselines from profiling: full-node (59, 15, 6) on CPU and
//! (160, 32, 16) on GPU for the 3B / 7B / 13B classes, and (23, 4, 6) /
//! (71, 12, 4) for the half-node `sllm+c+s` slots. Model sizes outside
//! those classes (22B, 34B) fall back to a profile-derived bound: the
//! smaller of the TPOT-compute limit and the KV-capacity limit at the
//! profiling context length — the same rule that reproduces the tabled
//! numbers (see `hwmodel::perf` tests).

use hwmodel::{AnalyticPerf, HardwareKind, HardwareSpec, ModelSpec};
use workload::request::Slo;

/// Size class of a model, following the paper's 3B / 7B / 13B grouping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SizeClass {
    /// ≤ 4.5 B parameters.
    B3,
    /// ≤ 9.5 B parameters (7B and 8B class).
    B7,
    /// ≤ 14 B parameters.
    B13,
    /// Larger models (exclusive GPUs only).
    Large,
}

impl SizeClass {
    /// Classifies a model by parameter count.
    pub fn of(model: &ModelSpec) -> SizeClass {
        match model.params {
            p if p <= 4_500_000_000 => SizeClass::B3,
            p if p <= 9_500_000_000 => SizeClass::B7,
            p if p <= 14_000_000_000 => SizeClass::B13,
            _ => SizeClass::Large,
        }
    }
}

/// Per-instance concurrency limit for the `sllm` family on the given
/// hardware at the given compute share.
///
/// `share == 1.0` selects the full-node table, `0.5` the half-node table;
/// anything else (and all `Large` models) uses the profile-derived bound.
pub fn concurrency_limit(model: &ModelSpec, hw: &HardwareSpec, share: f64, slo: &Slo) -> u32 {
    // Tensor-parallel deployments never match the tabled single-device
    // profiles — their share is a slot *group* — so they always use the
    // profile-derived bound, whose TPOT solver charges the model's
    // all-reduce overhead via `max_batch_under_tpot`.
    if model.tp_degree > 1 {
        return profiled_limit(model, hw, share, slo);
    }
    let class = SizeClass::of(model);
    let table = match (hw.kind, half_or_full(share)) {
        (HardwareKind::Gpu, Some(true)) => Some([160u32, 32, 16]),
        (HardwareKind::Gpu, Some(false)) => Some([71, 12, 4]),
        (HardwareKind::CpuAccel, Some(true)) => Some([59, 15, 6]),
        (HardwareKind::CpuAccel, Some(false)) => Some([23, 4, 6]),
        _ => None,
    };
    if let (Some(t), true) = (table, class != SizeClass::Large) {
        let ix = match class {
            SizeClass::B3 => 0,
            SizeClass::B7 => 1,
            SizeClass::B13 => 2,
            SizeClass::Large => unreachable!(),
        };
        return t[ix];
    }
    profiled_limit(model, hw, share, slo)
}

fn half_or_full(share: f64) -> Option<bool> {
    if (share - 1.0).abs() < 1e-9 {
        Some(true)
    } else if (share - 0.5).abs() < 1e-9 {
        Some(false)
    } else {
        None
    }
}

/// Profile-derived limit: min(compute-bound batch under the TPOT SLO,
/// KV-capacity bound) at the profiling context length (≤ 4096 tokens).
pub fn profiled_limit(model: &ModelSpec, hw: &HardwareSpec, share: f64, slo: &Slo) -> u32 {
    if !hw.can_serve(model) {
        return 0;
    }
    let perf = AnalyticPerf::new();
    let ctx = model.max_context.min(4096);
    let compute = perf.max_batch_under_tpot(model, hw, ctx, share, slo.tpot_s);
    let mem_share = (hw.mem_bytes as f64 * share) as u64;
    let kv_room = mem_share.saturating_sub(model.weights_bytes());
    let mem = (kv_room / (ctx as u64 * model.kv_bytes_per_token())) as u32;
    compute.min(mem)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_tables_apply_to_known_classes() {
        let slo = Slo::paper();
        let gpu = HardwareSpec::a100_80g();
        let cpu = HardwareSpec::xeon4_amx_32c();
        let m3 = ModelSpec::llama3_2_3b();
        let m7 = ModelSpec::llama2_7b();
        let m13 = ModelSpec::llama2_13b();
        assert_eq!(concurrency_limit(&m3, &gpu, 1.0, &slo), 160);
        assert_eq!(concurrency_limit(&m7, &gpu, 1.0, &slo), 32);
        assert_eq!(concurrency_limit(&m13, &gpu, 1.0, &slo), 16);
        assert_eq!(concurrency_limit(&m3, &cpu, 1.0, &slo), 59);
        assert_eq!(concurrency_limit(&m7, &cpu, 1.0, &slo), 15);
        assert_eq!(concurrency_limit(&m13, &cpu, 1.0, &slo), 6);
        assert_eq!(concurrency_limit(&m7, &gpu, 0.5, &slo), 12);
        assert_eq!(concurrency_limit(&m7, &cpu, 0.5, &slo), 4);
    }

    #[test]
    fn eight_b_models_use_the_7b_row() {
        let slo = Slo::paper();
        let m8 = ModelSpec::llama3_1_8b();
        assert_eq!(SizeClass::of(&m8), SizeClass::B7);
        assert_eq!(
            concurrency_limit(&m8, &HardwareSpec::a100_80g(), 1.0, &slo),
            32
        );
    }

    #[test]
    fn profiled_fallback_matches_table_shape() {
        // The fallback rule reproduces the tabled GPU numbers within a small
        // margin — evidence the tables are compute/memory-bound profiles.
        let slo = Slo::paper();
        let gpu = HardwareSpec::a100_80g();
        let got7 = profiled_limit(&ModelSpec::llama2_7b(), &gpu, 1.0, &slo);
        assert!(
            (30..=34).contains(&got7),
            "7B GPU fallback {got7} (table 32)"
        );
        let got13 = profiled_limit(&ModelSpec::llama2_13b(), &gpu, 1.0, &slo);
        assert!(
            (14..=18).contains(&got13),
            "13B GPU fallback {got13} (table 16)"
        );
    }

    #[test]
    fn tp_deployments_bypass_the_single_device_tables() {
        let slo = Slo::paper();
        let gang = HardwareSpec::a100_80g().ganged(4);
        let m13_tp2 = ModelSpec::llama2_13b().with_tp(2);
        // Half the gang = two devices; the profile-derived bound applies,
        // not the half-node table entry (4).
        let lim = concurrency_limit(&m13_tp2, &gang, 0.5, &slo);
        assert_eq!(lim, profiled_limit(&m13_tp2, &gang, 0.5, &slo));
        assert!(lim > 4, "two A100s hold far more than a half-A100: {lim}");
    }

    #[test]
    fn large_models_get_profiled_limits() {
        let slo = Slo::paper();
        let gpu = HardwareSpec::a100_80g();
        let m34 = ModelSpec::codellama_34b();
        assert_eq!(SizeClass::of(&m34), SizeClass::Large);
        let lim = concurrency_limit(&m34, &gpu, 1.0, &slo);
        // 67 GB of weights leave ~13 GB of KV: a handful of 4K contexts.
        assert!((1..=20).contains(&lim), "34B limit {lim}");
        // And legacy CPUs serve nothing.
        assert_eq!(
            concurrency_limit(
                &ModelSpec::llama2_7b(),
                &HardwareSpec::xeon3_32c(),
                1.0,
                &slo
            ),
            0
        );
    }
}
