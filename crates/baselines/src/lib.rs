//! Baseline serving systems from the SLINFER paper (§IX-A).
//!
//! - [`sllm`] — the ServerlessLLM-style family behind one configurable
//!   policy, [`Sllm`]:
//!   - `sllm`: event-driven **exclusive GPU allocation**; a request goes to
//!     an existing instance while it sits under the concurrency limit,
//!     otherwise a new instance takes an idle GPU, otherwise the request
//!     queues (and drops once its TTFT SLO expires).
//!   - `sllm+c`: additionally serves on AMX CPU nodes, preferring them.
//!   - `sllm+c+s`: additionally time-shares every node between two
//!     half-resource slots with the paper's reduced concurrency limits.
//! - [`groups`] — shared tensor-parallel slot-group claiming for the
//!   exclusive-allocation baselines (one scan/grant implementation for
//!   `sllm` and PD).
//! - [`limits`] — the §IX-A concurrency-limit tables: (59, 15, 6) CPU /
//!   (160, 32, 16) GPU for full nodes and (23, 4, 6) / (71, 12, 4) for
//!   half nodes, with a profile-derived fallback for other model sizes.
//! - [`neo`] — **NEO+** (§IX-I3): exclusive GPU serving where harvested CPU
//!   cores take KV/attention offload, stretching each GPU instance's
//!   effective batch capacity at a small decode penalty.
//! - [`pd`] — prefill–decode disaggregation (§IX-G): a wrapper mode where
//!   dedicated prefill instances hand requests to decode instances over a
//!   100 Gbps link (Table III).

#![forbid(unsafe_code)]

pub mod groups;
pub mod limits;
pub mod neo;
pub mod pd;
pub mod sllm;

pub use limits::concurrency_limit;
pub use neo::NeoPlus;
pub use pd::PdSllm;
pub use sllm::{Sllm, SllmConfig};
