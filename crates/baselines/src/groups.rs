//! Shared slot-group claiming and startup-time scoring for the
//! exclusive-allocation baselines.
//!
//! Both `sllm` and the PD variant launch tensor-parallel instances the
//! same way: scan the idle-slot list for `tp` idle slots of one node,
//! grant the group its slots' exclusive memory share, create the
//! instance. One implementation, so the grant formula and the run scan
//! cannot drift between the two policies.
//!
//! Candidate nodes are ordered ServerlessLLM-style: by estimated startup
//! time from each node's warmest checkpoint tier (HBM co-residency, DRAM
//! cache, local SSD, remote fetch — including loading-channel
//! contention), CPUs still first. Under the flat default checkpoint
//! configuration every node of a kind scores identically, so the legacy
//! scan order replays byte-for-byte.

use cluster::{NodeId, World};
use engine::instance::InstanceId;
use workload::request::ModelId;

/// Annotates a `(rank, node, slot)`-sorted idle-slot list with each
/// node's startup-time score ([`World::startup_score_ns`]), computing the
/// score once per node run (it depends only on `(model, node)`, and
/// `estimate_load_s` scans the instance table — per-slot recomputation
/// would multiply the placement scan by the slot count for identical
/// results). Returns `(rank, score, index)` triples ready to sort: equal
/// scores preserve the list's legacy `(rank, node, slot)` order.
pub fn score_free_slots(
    w: &World,
    model: ModelId,
    free: &[(u8, NodeId, usize)],
) -> Vec<(u8, u64, usize)> {
    let mut scored = Vec::with_capacity(free.len());
    let mut last: Option<(NodeId, u64)> = None;
    for (fi, &(rank, node, _)) in free.iter().enumerate() {
        let score = match last {
            Some((n, s)) if n == node => s,
            _ => {
                let s = w.startup_score_ns(model, node);
                last = Some((node, s));
                s
            }
        };
        scored.push((rank, score, fi));
    }
    scored
}

/// Scans a `(rank, node, slot)`-sorted idle-slot list for `tp` idle slots
/// of one node that `usable` accepts, creates the TP instance with the
/// group's memory budget (`tp` slot shares of the node, capped by its
/// free bytes), and returns the instance plus the claimed range of
/// `free` — callers maintaining the list across a retry pass drain that
/// range. Sortedness makes one node's idle slots contiguous, so runs are
/// found in a single pass; candidate runs are then tried warmest-first
/// ([`World::startup_score_ns`]), CPUs before GPUs, list order on ties.
pub fn claim_slot_group(
    w: &mut World,
    model: ModelId,
    free: &[(u8, NodeId, usize)],
    tp: usize,
    usable: impl Fn(&World, NodeId) -> bool,
) -> Option<(InstanceId, std::ops::Range<usize>)> {
    let spec = w.model_spec(model).clone();
    // Collect each node's run of idle slots, then order candidates by
    // (kind rank, startup score, list position).
    let mut runs: Vec<(u8, u64, usize)> = Vec::new();
    let mut i = 0;
    while i < free.len() {
        let node = free[i].1;
        let mut j = i;
        while j < free.len() && free[j].1 == node {
            j += 1;
        }
        if j - i >= tp {
            runs.push((free[i].0, w.startup_score_ns(model, node), i));
        }
        i = j;
    }
    runs.sort_unstable();
    for (_, _, i) in runs {
        let node = free[i].1;
        if !usable(w, node) {
            continue;
        }
        let slots: Vec<usize> = free[i..i + tp].iter().map(|&(_, _, s)| s).collect();
        let slot_mem = w.node_hw(node).mem_bytes / w.slot_count(node) as u64;
        let grant = (slot_mem * tp as u64)
            .saturating_sub(spec.weights_bytes())
            .min(
                w.node_available_bytes(node)
                    .saturating_sub(spec.weights_bytes()),
            );
        if grant > 0 {
            if let Ok(inst) = w.create_instance_group(model, node, &slots, grant) {
                return Some((inst, i..i + tp));
            }
        }
    }
    None
}
