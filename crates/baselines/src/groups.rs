//! Shared slot-group claiming for the exclusive-allocation baselines.
//!
//! Both `sllm` and the PD variant launch tensor-parallel instances the
//! same way: scan the idle-slot list for `tp` idle slots of one node,
//! grant the group its slots' exclusive memory share, create the
//! instance. One implementation, so the grant formula and the run scan
//! cannot drift between the two policies.

use cluster::{NodeId, World};
use engine::instance::InstanceId;
use workload::request::ModelId;

/// Scans a `(rank, node, slot)`-sorted idle-slot list for `tp` idle slots
/// of one node that `usable` accepts, creates the TP instance with the
/// group's memory budget (`tp` slot shares of the node, capped by its
/// free bytes), and returns the instance plus the claimed range of
/// `free` — callers maintaining the list across a retry pass drain that
/// range. Sortedness makes one node's idle slots contiguous, so the scan
/// is a single pass over runs.
pub fn claim_slot_group(
    w: &mut World,
    model: ModelId,
    free: &[(u8, NodeId, usize)],
    tp: usize,
    usable: impl Fn(&World, NodeId) -> bool,
) -> Option<(InstanceId, std::ops::Range<usize>)> {
    let spec = w.model_spec(model).clone();
    let mut i = 0;
    while i < free.len() {
        let node = free[i].1;
        let mut j = i;
        while j < free.len() && free[j].1 == node {
            j += 1;
        }
        if j - i >= tp && usable(w, node) {
            let slots: Vec<usize> = free[i..i + tp].iter().map(|&(_, _, s)| s).collect();
            let slot_mem = w.node_hw(node).mem_bytes / w.slot_count(node) as u64;
            let grant = (slot_mem * tp as u64)
                .saturating_sub(spec.weights_bytes())
                .min(
                    w.node_available_bytes(node)
                        .saturating_sub(spec.weights_bytes()),
                );
            if grant > 0 {
                if let Ok(inst) = w.create_instance_group(model, node, &slots, grant) {
                    return Some((inst, i..i + tp));
                }
            }
        }
        i = j;
    }
    None
}
