//! Discrete-event simulation spine for the SLINFER reproduction.
//!
//! This crate provides the foundation every other crate in the workspace
//! builds on:
//!
//! - [`time`] — microsecond-resolution simulated time ([`SimTime`],
//!   [`SimDuration`]) with saturating arithmetic, so a simulation can never
//!   silently wrap around.
//! - [`events`] — a deterministic [`EventQueue`]: ties at the same timestamp
//!   are broken by insertion order, which makes every run reproducible from a
//!   single seed.
//! - [`rng`] — a small, fast, seedable random-number generator
//!   ([`SimRng`], SplitMix64-based) with stream splitting so independent
//!   subsystems draw from decorrelated streams.
//! - [`dist`] — the distributions the workload generators need (exponential,
//!   log-normal, Pareto, gamma), implemented directly so their sampling is
//!   stable across `rand` versions.
//! - [`stats`] — percentile/CDF/histogram helpers used by the metrics
//!   recorder and the experiment harness.
//!
//! # Example
//!
//! ```
//! use simcore::events::EventQueue;
//! use simcore::time::{SimDuration, SimTime};
//!
//! let mut q: EventQueue<&str> = EventQueue::new();
//! q.push(SimTime::ZERO + SimDuration::from_millis(5), "b");
//! q.push(SimTime::ZERO + SimDuration::from_millis(1), "a");
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!(ev, "a");
//! assert_eq!(t.as_millis(), 1);
//! ```

#![forbid(unsafe_code)]

pub mod dist;
pub mod events;
pub mod rng;
pub mod stats;
pub mod time;

pub use events::EventQueue;
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
