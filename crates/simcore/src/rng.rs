//! Deterministic random numbers.
//!
//! Every stochastic choice in the workspace flows through [`SimRng`], a
//! SplitMix64-derived generator. SplitMix64 is tiny, passes BigCrush when
//! used as an initializer, and — most importantly here — its output is a pure
//! function of the seed, so a run is reproducible from a single `u64`.
//!
//! Subsystems that must not perturb each other's draws (workload generation
//! vs. execution-time noise, for example) take *split streams* via
//! [`SimRng::split`], which derives a decorrelated child generator.

/// A seedable, splittable pseudo-random generator.
///
/// ```
/// use simcore::rng::SimRng;
/// let mut a = SimRng::new(42);
/// let mut b = SimRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    state: u64,
    /// Stream increment; odd by construction so the sequence has full period.
    gamma: u64,
}

const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a seed. Equal seeds give equal sequences.
    pub fn new(seed: u64) -> Self {
        SimRng {
            state: mix64(seed.wrapping_add(GOLDEN_GAMMA)),
            gamma: GOLDEN_GAMMA,
        }
    }

    /// Derives an independent child stream labelled by `label`.
    ///
    /// Children with different labels (or from generators in different
    /// states) produce decorrelated sequences; the parent's own sequence is
    /// not advanced.
    pub fn split(&self, label: u64) -> SimRng {
        let seed = mix64(self.state ^ mix64(label.wrapping_mul(0xA24B_AED4_963E_E407)));
        SimRng {
            state: seed,
            gamma: (mix64(seed ^ GOLDEN_GAMMA) | 1),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(self.gamma);
        mix64(self.state)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform float in `(0, 1]` — safe to pass to `ln()`.
    pub fn next_f64_open(&mut self) -> f64 {
        1.0 - self.next_f64()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    /// Panics if `n` is zero.
    pub fn next_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "next_below(0)");
        // Multiply-shift rejection-free mapping (Lemire); bias is < 2^-64 * n
        // which is irrelevant for simulation workloads.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform integer in `[lo, hi]` inclusive.
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    pub fn next_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "next_range: lo > hi");
        lo + self.next_below(hi - lo + 1)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Picks a uniformly random element of a non-empty slice.
    ///
    /// # Panics
    /// Panics if the slice is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose from empty slice");
        &items[self.next_below(items.len() as u64) as usize]
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn split_streams_are_decorrelated_and_stable() {
        let root = SimRng::new(99);
        let mut c1 = root.split(1);
        let mut c2 = root.split(2);
        let mut c1_again = root.split(1);
        assert_eq!(c1.next_u64(), c1_again.next_u64());
        let same = (0..100).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::new(3);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
            let y = r.next_f64_open();
            assert!(y > 0.0 && y <= 1.0);
        }
    }

    #[test]
    fn next_below_bounds_and_coverage() {
        let mut r = SimRng::new(11);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.next_below(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets should be hit");
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut r = SimRng::new(5);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.next_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::new(17);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle should move things");
    }

    #[test]
    #[should_panic(expected = "next_below(0)")]
    fn next_below_zero_panics() {
        SimRng::new(0).next_below(0);
    }
}
