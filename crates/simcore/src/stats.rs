//! Summary statistics for metrics and experiment output.
//!
//! The experiment harness reports CDFs (TTFT, memory utilization, batch
//! size), percentiles (P50–P99 footprints) and means. [`Summary`] collects
//! samples incrementally; [`Cdf`] produces the plotted curves.

use serde::{Deserialize, Serialize};

/// Incremental collector of `f64` samples with percentile queries.
///
/// ```
/// use simcore::stats::Summary;
/// let mut s = Summary::new();
/// for x in 1..=100 {
///     s.add(x as f64);
/// }
/// assert_eq!(s.count(), 100);
/// assert!((s.mean() - 50.5).abs() < 1e-9);
/// assert_eq!(s.percentile(50.0), 50.0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Summary {
    /// Samples in insertion order — queries never reorder this, so
    /// [`Summary::samples`] is deterministic regardless of query history.
    samples: Vec<f64>,
    /// Lazily rebuilt ascending copy backing percentile/CDF queries.
    sorted: Vec<f64>,
    /// True while `sorted` reflects `samples`.
    sorted_valid: bool,
    /// Streaming aggregates, accumulated in insertion order so they are
    /// bit-identical to a left fold over `samples` without the O(n) scan.
    sum: f64,
    min_acc: f64,
    max_acc: f64,
}

impl Default for Summary {
    fn default() -> Self {
        Summary {
            samples: Vec::new(),
            sorted: Vec::new(),
            sorted_valid: false,
            sum: 0.0,
            min_acc: f64::INFINITY,
            max_acc: f64::NEG_INFINITY,
        }
    }
}

impl Summary {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Summary::default()
    }

    /// Creates an empty collector pre-sized for `n` samples, so hot paths
    /// that know their cardinality up front avoid growth reallocations.
    pub fn with_capacity(n: usize) -> Self {
        Summary {
            samples: Vec::with_capacity(n),
            ..Summary::default()
        }
    }

    /// Adds one sample. Non-finite values are ignored.
    pub fn add(&mut self, x: f64) {
        if x.is_finite() {
            self.samples.push(x);
            self.sorted_valid = false;
            self.sum += x;
            self.min_acc = self.min_acc.min(x);
            self.max_acc = self.max_acc.max(x);
        }
    }

    /// Number of samples collected.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples were collected.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean, or 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.sum / self.samples.len() as f64
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Largest sample, or 0 if empty.
    pub fn max(&self) -> f64 {
        self.max_acc.max(0.0)
    }

    /// Smallest sample, or 0 if empty.
    pub fn min(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.min_acc
        }
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted_valid {
            self.sorted.clone_from(&self.samples);
            self.sorted
                .sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
            self.sorted_valid = true;
        }
    }

    /// The `p`-th percentile (0–100) by nearest-rank, or 0 if empty.
    /// `p` outside 0–100 clamps to the nearest bound.
    pub fn percentile(&mut self, p: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let p = p.clamp(0.0, 100.0);
        let rank = ((p / 100.0) * self.sorted.len() as f64).ceil() as usize;
        self.sorted[rank.saturating_sub(1).min(self.sorted.len() - 1)]
    }

    /// Fraction of samples `<= threshold`.
    pub fn fraction_at_most(&self, threshold: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().filter(|&&x| x <= threshold).count() as f64 / self.samples.len() as f64
    }

    /// Builds an empirical CDF over `points` evaluation thresholds spanning
    /// the sample range.
    pub fn cdf(&mut self, points: usize) -> Cdf {
        self.ensure_sorted();
        Cdf::from_sorted(&self.sorted, points)
    }

    /// Read-only view of the raw samples, always in insertion order.
    ///
    /// This used to return sorted order iff a percentile/CDF query had run
    /// first — a query-history-dependent footgun for any caller iterating
    /// raw samples. The exposed order is now deterministic.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Summary::new();
        for x in iter {
            s.add(x);
        }
        s
    }
}

impl Extend<f64> for Summary {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.add(x);
        }
    }
}

/// An empirical CDF: `(x, F(x))` pairs with `F` non-decreasing to 1.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Cdf {
    /// Evaluation points and cumulative fractions.
    pub points: Vec<(f64, f64)>,
}

impl Cdf {
    fn from_sorted(sorted: &[f64], n_points: usize) -> Cdf {
        if sorted.is_empty() || n_points == 0 {
            return Cdf { points: Vec::new() };
        }
        let lo = sorted[0];
        let hi = sorted[sorted.len() - 1];
        let n = sorted.len() as f64;
        let mut points = Vec::with_capacity(n_points);
        for i in 0..n_points {
            // Pin the final point to exactly `hi`: `lo + (hi-lo)·1.0` can
            // round just below it and leave the CDF short of 1.
            let x = if n_points == 1 || i + 1 == n_points {
                hi
            } else {
                lo + (hi - lo) * i as f64 / (n_points - 1) as f64
            };
            let count = sorted.partition_point(|&v| v <= x);
            points.push((x, count as f64 / n));
        }
        Cdf { points }
    }

    /// `F(x)` by step interpolation; 0 below the range, 1 above it.
    pub fn at(&self, x: f64) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        if x < self.points[0].0 {
            return 0.0;
        }
        let mut last = 0.0;
        for &(px, f) in &self.points {
            if px > x {
                break;
            }
            last = f;
        }
        last
    }
}

/// Time-weighted mean of a piecewise-constant signal, e.g. "average nodes
/// used". Feed `(time_seconds, value)` change-points in order; the value
/// holds until the next change-point.
#[derive(Debug, Clone, Default)]
pub struct TimeWeighted {
    last_t: Option<f64>,
    last_v: f64,
    integral: f64,
    span: f64,
    peak: f64,
}

impl TimeWeighted {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that the signal changed to `value` at time `t` (seconds).
    ///
    /// Out-of-order timestamps are clamped to the last seen time.
    pub fn record(&mut self, t: f64, value: f64) {
        if let Some(last) = self.last_t {
            let t = t.max(last);
            self.integral += self.last_v * (t - last);
            self.span += t - last;
            self.last_t = Some(t);
        } else {
            self.last_t = Some(t);
        }
        self.last_v = value;
        self.peak = self.peak.max(value);
    }

    /// Closes the signal at time `t` and returns the time-weighted mean.
    pub fn finish(&mut self, t: f64) -> f64 {
        if let Some(last) = self.last_t {
            let t = t.max(last);
            self.integral += self.last_v * (t - last);
            self.span += t - last;
            self.last_t = Some(t);
        }
        self.mean()
    }

    /// Time-weighted mean over the observed span (0 if no span).
    pub fn mean(&self) -> f64 {
        if self.span <= 0.0 {
            0.0
        } else {
            self.integral / self.span
        }
    }

    /// Largest value observed.
    pub fn peak(&self) -> f64 {
        self.peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_nearest_rank() {
        let mut s: Summary = (1..=10).map(|x| x as f64).collect();
        assert_eq!(s.percentile(10.0), 1.0);
        assert_eq!(s.percentile(50.0), 5.0);
        assert_eq!(s.percentile(100.0), 10.0);
        assert_eq!(s.percentile(0.0), 1.0);
    }

    /// `samples()` must return insertion order regardless of whether a
    /// percentile/CDF query ran in between — the old implementation
    /// sorted in place, so the exposed order depended on query history.
    #[test]
    fn samples_order_is_query_independent() {
        let raw = [5.0, 1.0, 4.0, 2.0, 3.0];
        let mut s: Summary = raw.iter().copied().collect();
        assert_eq!(s.samples(), &raw);
        s.percentile(50.0);
        s.cdf(4);
        assert_eq!(s.samples(), &raw, "queries must not reorder samples()");
        s.add(0.5);
        assert_eq!(s.samples(), &[5.0, 1.0, 4.0, 2.0, 3.0, 0.5]);
    }

    /// Streaming aggregates must match the full-scan definitions after
    /// interleaved adds and queries.
    #[test]
    fn streaming_aggregates_match_scans() {
        let mut s = Summary::new();
        let xs = [3.5, -2.0, 7.25, 0.0, 4.125];
        for (i, &x) in xs.iter().enumerate() {
            s.add(x);
            if i == 2 {
                s.percentile(90.0); // interleave a query mid-stream
            }
        }
        let scan_sum: f64 = xs.iter().sum();
        assert_eq!(s.sum(), scan_sum);
        assert_eq!(s.mean(), scan_sum / xs.len() as f64);
        assert_eq!(s.min(), -2.0);
        assert_eq!(s.max(), 7.25);
    }

    #[test]
    fn percentile_edge_cases() {
        // Single sample: every percentile is that sample.
        let mut one = Summary::new();
        one.add(42.0);
        assert_eq!(one.percentile(0.0), 42.0);
        assert_eq!(one.percentile(50.0), 42.0);
        assert_eq!(one.percentile(100.0), 42.0);

        // Out-of-range p clamps to the bounds instead of panicking.
        let mut s: Summary = (1..=4).map(|x| x as f64).collect();
        assert_eq!(s.percentile(-10.0), s.percentile(0.0));
        assert_eq!(s.percentile(250.0), s.percentile(100.0));
        assert_eq!(s.percentile(0.0), 1.0);
        assert_eq!(s.percentile(100.0), 4.0);
        assert_eq!(s.percentile(f64::NAN), 1.0); // NaN rank casts to 0
    }

    #[test]
    fn empty_summary_is_zeroes() {
        let mut s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.percentile(99.0), 0.0);
        assert_eq!(s.fraction_at_most(10.0), 0.0);
        assert!(s.cdf(10).points.is_empty());
    }

    #[test]
    fn nan_samples_ignored() {
        let mut s = Summary::new();
        s.add(f64::NAN);
        s.add(1.0);
        assert_eq!(s.count(), 1);
    }

    #[test]
    fn cdf_monotone_and_ends_at_one() {
        let mut s: Summary = (0..1000).map(|x| (x % 97) as f64).collect();
        let cdf = s.cdf(50);
        assert_eq!(cdf.points.len(), 50);
        for w in cdf.points.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
        assert!((cdf.points.last().unwrap().1 - 1.0).abs() < 1e-9);
        assert_eq!(cdf.at(-1.0), 0.0);
        assert_eq!(cdf.at(1e9), 1.0);
    }

    #[test]
    fn fraction_at_most_counts() {
        let s: Summary = vec![1.0, 2.0, 3.0, 4.0].into_iter().collect();
        assert_eq!(s.fraction_at_most(2.0), 0.5);
        assert_eq!(s.fraction_at_most(0.5), 0.0);
        assert_eq!(s.fraction_at_most(4.0), 1.0);
    }

    #[test]
    fn time_weighted_mean() {
        let mut tw = TimeWeighted::new();
        tw.record(0.0, 2.0); // 2 for 10s
        tw.record(10.0, 4.0); // 4 for 10s
        let mean = tw.finish(20.0);
        assert!((mean - 3.0).abs() < 1e-9);
        assert_eq!(tw.peak(), 4.0);
    }

    #[test]
    fn time_weighted_out_of_order_clamps() {
        let mut tw = TimeWeighted::new();
        tw.record(5.0, 1.0);
        tw.record(3.0, 2.0); // clamped to t=5
        let mean = tw.finish(10.0);
        assert!((mean - 2.0).abs() < 1e-9);
    }
}
