//! Sampling distributions for workload synthesis.
//!
//! The trace generators need exponential inter-arrivals, log-normal token
//! lengths, Pareto popularity, and gamma burst gaps. They are implemented
//! here directly (Box–Muller, inverse-CDF, Marsaglia–Tsang) so sampled
//! values depend only on [`SimRng`] state, never on an external crate's
//! algorithm choice.

use crate::rng::SimRng;

/// Standard-normal draw via Box–Muller (one value per call; the pair's
/// second member is discarded for simplicity and statelessness).
pub fn standard_normal(rng: &mut SimRng) -> f64 {
    let u1 = rng.next_f64_open();
    let u2 = rng.next_f64();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Exponential draw with the given `rate` (λ). Mean is `1/rate`.
///
/// # Panics
/// Panics if `rate` is not strictly positive.
pub fn exponential(rng: &mut SimRng, rate: f64) -> f64 {
    assert!(rate > 0.0, "exponential rate must be > 0, got {rate}");
    -rng.next_f64_open().ln() / rate
}

/// Log-normal parameterized by the *median* and the shape `sigma`
/// (the standard deviation of the underlying normal).
///
/// `median` is `exp(mu)`, which is far more intuitive for token lengths
/// ("the median conversation prompt is ~1 K tokens") than `mu` itself.
///
/// # Panics
/// Panics if `median <= 0` or `sigma < 0`.
pub fn lognormal(rng: &mut SimRng, median: f64, sigma: f64) -> f64 {
    assert!(median > 0.0, "lognormal median must be > 0");
    assert!(sigma >= 0.0, "lognormal sigma must be >= 0");
    median * (sigma * standard_normal(rng)).exp()
}

/// Pareto (type I) draw with scale `x_min` and shape `alpha`.
///
/// Small `alpha` (≈1) produces the heavy-tailed popularity skew of
/// serverless function invocations — a few hot functions, a long cold tail.
///
/// # Panics
/// Panics if `x_min <= 0` or `alpha <= 0`.
pub fn pareto(rng: &mut SimRng, x_min: f64, alpha: f64) -> f64 {
    assert!(x_min > 0.0, "pareto x_min must be > 0");
    assert!(alpha > 0.0, "pareto alpha must be > 0");
    x_min / rng.next_f64_open().powf(1.0 / alpha)
}

/// Gamma draw with shape `k` and scale `theta` (mean `k*theta`),
/// using Marsaglia–Tsang for `k >= 1` and the boost transform for `k < 1`.
///
/// # Panics
/// Panics if `k <= 0` or `theta <= 0`.
pub fn gamma(rng: &mut SimRng, k: f64, theta: f64) -> f64 {
    assert!(k > 0.0, "gamma shape must be > 0");
    assert!(theta > 0.0, "gamma scale must be > 0");
    if k < 1.0 {
        // Gamma(k) = Gamma(k+1) * U^{1/k}
        let g = gamma(rng, k + 1.0, 1.0);
        return g * rng.next_f64_open().powf(1.0 / k) * theta;
    }
    let d = k - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = standard_normal(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u = rng.next_f64_open();
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v * theta;
        }
    }
}

/// Zipf-like popularity weights for `n` items with exponent `s`,
/// normalized to sum to 1. Item 0 is the most popular.
///
/// # Panics
/// Panics if `n` is zero.
pub fn zipf_weights(n: usize, s: f64) -> Vec<f64> {
    assert!(n > 0, "zipf_weights needs n > 0");
    let mut w: Vec<f64> = (1..=n).map(|r| 1.0 / (r as f64).powf(s)).collect();
    let total: f64 = w.iter().sum();
    for x in &mut w {
        *x /= total;
    }
    w
}

/// Samples an index from a discrete distribution given by `weights`
/// (need not be normalized).
///
/// # Panics
/// Panics if `weights` is empty or sums to zero.
pub fn discrete(rng: &mut SimRng, weights: &[f64]) -> usize {
    assert!(!weights.is_empty(), "discrete: empty weights");
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "discrete: weights sum to zero");
    let mut target = rng.next_f64() * total;
    for (i, &w) in weights.iter().enumerate() {
        target -= w;
        if target < 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_of(f: impl FnMut() -> f64, n: usize) -> f64 {
        let mut f = f;
        (0..n).map(|_| f()).sum::<f64>() / n as f64
    }

    #[test]
    fn normal_mean_and_var() {
        let mut rng = SimRng::new(1);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn exponential_mean() {
        let mut rng = SimRng::new(2);
        let m = mean_of(|| exponential(&mut rng, 4.0), 100_000);
        assert!((m - 0.25).abs() < 0.01, "mean {m}");
    }

    #[test]
    fn lognormal_median() {
        let mut rng = SimRng::new(3);
        let mut xs: Vec<f64> = (0..50_001)
            .map(|_| lognormal(&mut rng, 1024.0, 0.8))
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let med = xs[25_000];
        assert!((med / 1024.0 - 1.0).abs() < 0.05, "median {med}");
        assert!(xs.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn pareto_is_bounded_below_and_heavy_tailed() {
        let mut rng = SimRng::new(4);
        let xs: Vec<f64> = (0..100_000).map(|_| pareto(&mut rng, 1.0, 1.1)).collect();
        assert!(xs.iter().all(|&x| x >= 1.0));
        let big = xs.iter().filter(|&&x| x > 100.0).count();
        assert!(big > 100, "tail too light: {big}");
    }

    #[test]
    fn gamma_mean_small_and_large_shape() {
        let mut rng = SimRng::new(5);
        let m1 = mean_of(|| gamma(&mut rng, 0.5, 2.0), 100_000);
        assert!((m1 - 1.0).abs() < 0.05, "k<1 mean {m1}");
        let m2 = mean_of(|| gamma(&mut rng, 4.0, 0.5), 100_000);
        assert!((m2 - 2.0).abs() < 0.05, "k>=1 mean {m2}");
    }

    #[test]
    fn zipf_weights_are_normalized_and_decreasing() {
        let w = zipf_weights(100, 1.05);
        let sum: f64 = w.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        for pair in w.windows(2) {
            assert!(pair[0] >= pair[1]);
        }
        // Top item should dominate the tail item heavily.
        assert!(w[0] / w[99] > 50.0);
    }

    #[test]
    fn discrete_respects_weights() {
        let mut rng = SimRng::new(6);
        let w = [0.1, 0.0, 0.9];
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[discrete(&mut rng, &w)] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!(counts[2] > counts[0] * 5);
    }

    #[test]
    #[should_panic(expected = "exponential rate")]
    fn exponential_rejects_zero_rate() {
        exponential(&mut SimRng::new(0), 0.0);
    }
}
