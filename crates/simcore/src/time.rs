//! Simulated time.
//!
//! All simulation state is ordered by [`SimTime`], an absolute instant
//! measured in microseconds from the start of the run. Durations are
//! represented by [`SimDuration`]. Both are thin newtypes over `u64`, cheap
//! to copy and totally ordered, and all arithmetic saturates instead of
//! wrapping so pathological parameter choices degrade gracefully rather than
//! corrupting the event order.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

use serde::{Deserialize, Serialize};

/// An absolute instant in simulated time (microseconds since run start).
///
/// ```
/// use simcore::time::{SimDuration, SimTime};
/// let t = SimTime::ZERO + SimDuration::from_secs_f64(1.5);
/// assert_eq!(t.as_millis(), 1500);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time (microseconds).
///
/// ```
/// use simcore::time::SimDuration;
/// let d = SimDuration::from_millis(250);
/// assert_eq!(d.as_secs_f64(), 0.25);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant (used as an "infinite" sentinel).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Builds an instant from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Builds an instant from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Builds an instant from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Builds an instant from fractional seconds.
    ///
    /// Negative inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        SimTime(secs_to_micros(s))
    }

    /// Raw microseconds since run start.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds since run start (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds since run start as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The duration elapsed since `earlier`, or zero if `earlier` is later.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Signed difference in seconds (`self - other`); may be negative.
    ///
    /// This is the natural representation for *headroom*, which the paper
    /// allows to go negative to signal an SLO violation.
    pub fn signed_secs_since(self, other: SimTime) -> f64 {
        if self.0 >= other.0 {
            (self.0 - other.0) as f64 / 1e6
        } else {
            -((other.0 - self.0) as f64 / 1e6)
        }
    }

    /// Saturating subtraction of a duration.
    pub fn saturating_sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(d.0))
    }
}

impl SimDuration {
    /// A zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Builds a duration from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Builds a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Builds a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Builds a duration from fractional seconds; negatives clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration(secs_to_micros(s))
    }

    /// Raw microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// True if this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies by a non-negative factor, saturating on overflow.
    ///
    /// Used for the shadow validator's 10% overestimation.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        SimDuration(secs_to_micros(self.as_secs_f64() * factor))
    }
}

fn secs_to_micros(s: f64) -> u64 {
    if !s.is_finite() {
        return u64::MAX;
    }
    if s <= 0.0 {
        return 0;
    }
    let us = s * 1e6;
    if us >= u64::MAX as f64 {
        u64::MAX
    } else {
        us.round() as u64
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Saturating: if `rhs` is later than `self` the result is zero.
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    /// # Panics
    /// Panics if `rhs` is zero.
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}us", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.2}ms", self.0 as f64 / 1e3)
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_secs(3).as_micros(), 3_000_000);
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimDuration::from_secs(1).as_millis(), 1_000);
        assert_eq!(SimDuration::from_secs_f64(0.25).as_micros(), 250_000);
    }

    #[test]
    fn negative_and_nan_seconds_clamp() {
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::MAX);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::MAX);
    }

    #[test]
    fn arithmetic_saturates() {
        let t = SimTime::MAX + SimDuration::from_secs(1);
        assert_eq!(t, SimTime::MAX);
        let d = SimTime::ZERO - SimTime::from_secs(5);
        assert_eq!(d, SimDuration::ZERO);
        assert_eq!(SimDuration::MAX * 2, SimDuration::MAX);
    }

    #[test]
    fn signed_difference() {
        let a = SimTime::from_secs(2);
        let b = SimTime::from_secs(5);
        assert_eq!(b.signed_secs_since(a), 3.0);
        assert_eq!(a.signed_secs_since(b), -3.0);
    }

    #[test]
    fn since_is_saturating() {
        let a = SimTime::from_secs(2);
        let b = SimTime::from_secs(5);
        assert_eq!(b.since(a), SimDuration::from_secs(3));
        assert_eq!(a.since(b), SimDuration::ZERO);
    }

    #[test]
    fn mul_f64_overestimation() {
        let d = SimDuration::from_millis(100);
        assert_eq!(d.mul_f64(1.1).as_micros(), 110_000);
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12us");
        assert_eq!(format!("{}", SimDuration::from_micros(2_500)), "2.50ms");
        assert_eq!(format!("{}", SimDuration::from_secs(2)), "2.000s");
    }

    #[test]
    fn ordering_is_total() {
        let mut v = vec![
            SimTime::from_secs(3),
            SimTime::ZERO,
            SimTime::from_millis(1),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                SimTime::ZERO,
                SimTime::from_millis(1),
                SimTime::from_secs(3)
            ]
        );
    }
}
