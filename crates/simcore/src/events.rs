//! Deterministic future-event queue.
//!
//! [`EventQueue`] is a calendar queue (Brown, CACM 1988): a power-of-two
//! ring of time buckets, each `width` microseconds wide, with a cursor that
//! sweeps the ring one bucket per "day" and wraps once per "year"
//! (`nbuckets × width`). An event at time `t` lives in bucket
//! `(t / width) mod nbuckets`; buckets keep their entries sorted by
//! `(time, seq)`, so the front of the cursor's bucket is the global minimum
//! whenever it falls inside the cursor's current year-slice. Push and pop
//! are O(1) amortized at steady occupancy — the queue resizes itself to
//! keep roughly one pending event per bucket — versus O(log n) for a
//! binary heap, and the sweep touches memory in time order, which is what
//! the fleet-scale traces (millions of pending arrivals) care about.
//!
//! Ordering is identical to a heap keyed by `(time, seq)`: events pop by
//! timestamp, ties broken by insertion sequence number. The tie-break
//! matters: two events scheduled for the same microsecond must always pop
//! in the same order, or otherwise-identical runs with the same seed could
//! diverge. [`HeapQueue`] is the original `BinaryHeap` implementation, kept
//! as a shadow reference; the property suite drives both with the same
//! push/pop stream and asserts bit-equal output.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

use crate::time::SimTime;

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so earliest time (then lowest
        // sequence number) pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Smallest ring size; also the initial size of an empty queue.
const MIN_BUCKETS: usize = 4;
/// Largest ring size: bounds the ring's own memory at fleet scale.
const MAX_BUCKETS: usize = 1 << 21;
/// Bucket width before the first resize calibrates it (1 ms).
const INITIAL_WIDTH: u64 = 1_000;

/// A future-event list keyed by [`SimTime`] with FIFO tie-breaking.
///
/// ```
/// use simcore::events::EventQueue;
/// use simcore::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(1), "first");
/// q.push(SimTime::from_secs(1), "second");
/// assert_eq!(q.pop().unwrap().1, "first");
/// assert_eq!(q.pop().unwrap().1, "second");
/// assert!(q.pop().is_none());
/// ```
pub struct EventQueue<E> {
    /// Ring of buckets, each sorted ascending by `(at, seq)`. Ascending
    /// order makes the two hot patterns O(1): popping the bucket minimum
    /// (`pop_front`) and appending an event later than everything already
    /// in its bucket (`push_back`), which is how monotone schedules land.
    buckets: Vec<VecDeque<Entry<E>>>,
    /// `buckets.len() - 1`; the ring size is always a power of two.
    mask: u64,
    /// Bucket width in microseconds (≥ 1).
    width: u64,
    /// The cursor: index of the bucket owning the current year-slice.
    cur: usize,
    /// Exclusive upper time edge of the cursor's current year-slice.
    bucket_top: u64,
    len: usize,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            buckets: (0..MIN_BUCKETS).map(|_| VecDeque::new()).collect(),
            mask: MIN_BUCKETS as u64 - 1,
            width: INITIAL_WIDTH,
            cur: 0,
            bucket_top: INITIAL_WIDTH,
            len: 0,
            next_seq: 0,
        }
    }

    /// Schedules `event` to fire at `at`.
    pub fn push(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.insert(Entry { at, seq, event });
        self.len += 1;
        if self.len > 2 * self.buckets.len() && self.buckets.len() < MAX_BUCKETS {
            self.rebuild();
        }
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.len == 0 {
            return None;
        }
        if self.buckets.len() > MIN_BUCKETS && self.len < self.buckets.len() / 4 {
            self.rebuild();
        }
        let nbuckets = self.buckets.len();
        let mut scanned = 0;
        loop {
            if let Some(front) = self.buckets[self.cur].front() {
                if front.at.as_micros() < self.bucket_top {
                    let e = self.buckets[self.cur].pop_front().expect("front exists");
                    self.len -= 1;
                    return Some((e.at, e.event));
                }
            }
            scanned += 1;
            if scanned >= nbuckets {
                // A full year of empty slices: the minimum is more than a
                // year ahead (or pinned at the saturated far-future edge).
                // Jump the cursor straight to it instead of sweeping.
                return Some(self.direct_pop());
            }
            self.cur = (self.cur + 1) & self.mask as usize;
            self.bucket_top = self.bucket_top.saturating_add(self.width);
        }
    }

    /// Timestamp of the earliest pending event, if any.
    ///
    /// O(nbuckets): scans every bucket front. Fine for diagnostics; the
    /// simulation loop itself only pushes and pops.
    pub fn peek_time(&self) -> Option<SimTime> {
        let mut best: Option<(SimTime, u64)> = None;
        for b in &self.buckets {
            if let Some(front) = b.front() {
                if best.is_none_or(|(at, seq)| (front.at, front.seq) < (at, seq)) {
                    best = Some((front.at, front.seq));
                }
            }
        }
        best.map(|(at, _)| at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drops every pending event (sequence numbering continues).
    pub fn clear(&mut self) {
        self.buckets = (0..MIN_BUCKETS).map(|_| VecDeque::new()).collect();
        self.mask = MIN_BUCKETS as u64 - 1;
        self.width = INITIAL_WIDTH;
        self.cur = 0;
        self.bucket_top = INITIAL_WIDTH;
        self.len = 0;
    }

    /// Files an entry in its bucket, keeping the bucket sorted.
    ///
    /// Invariant on entry and exit: no pending event is earlier than the
    /// start of the cursor's year-slice (`bucket_top - width`), so the
    /// cursor never has to look behind itself.
    fn insert(&mut self, e: Entry<E>) {
        let at_us = e.at.as_micros();
        let window_start = self.bucket_top.saturating_sub(self.width);
        if at_us < window_start {
            // A push behind the cursor would otherwise hide until the next
            // full wrap; rewind the window to cover it.
            self.anchor(at_us);
        }
        let idx = ((at_us / self.width) & self.mask) as usize;
        let bucket = &mut self.buckets[idx];
        let key = (e.at, e.seq);
        let pos = bucket.partition_point(|x| (x.at, x.seq) < key);
        if pos == bucket.len() {
            bucket.push_back(e);
        } else {
            bucket.insert(pos, e);
        }
    }

    /// Points the cursor at the year-slice containing `at_us`.
    fn anchor(&mut self, at_us: u64) {
        let slot = at_us / self.width;
        self.cur = (slot & self.mask) as usize;
        self.bucket_top = (slot * self.width).saturating_add(self.width);
    }

    /// Pops the global minimum by scanning all bucket fronts, re-anchoring
    /// the cursor at its time. Only reached after a full empty year.
    fn direct_pop(&mut self) -> (SimTime, E) {
        let mut best: Option<(usize, SimTime, u64)> = None;
        for (i, b) in self.buckets.iter().enumerate() {
            if let Some(front) = b.front() {
                if best.is_none_or(|(_, at, seq)| (front.at, front.seq) < (at, seq)) {
                    best = Some((i, front.at, front.seq));
                }
            }
        }
        let (idx, at, _) = best.expect("direct_pop called with len > 0");
        self.anchor(at.as_micros());
        let e = self.buckets[idx].pop_front().expect("front exists");
        self.len -= 1;
        (e.at, e.event)
    }

    /// Resizes the ring to ~one pending event per bucket and recalibrates
    /// the bucket width to the typical gap between pending events.
    fn rebuild(&mut self) {
        let mut entries: Vec<Entry<E>> = Vec::with_capacity(self.len);
        for b in &mut self.buckets {
            entries.extend(b.drain(..));
        }
        entries.sort_unstable_by_key(|e| (e.at, e.seq));
        let n = entries.len();
        let nbuckets = n.next_power_of_two().clamp(MIN_BUCKETS, MAX_BUCKETS);
        let width = if n >= 2 {
            // Calibrate on the span of the earliest three quarters of the
            // pending events: a handful of far-future outliers (keep-alive
            // horizons, saturated sentinels) would otherwise stretch the
            // year so far that every near-term event lands in one bucket.
            let bulk = 3 * (n - 1) / 4;
            let lo = entries[0].at.as_micros();
            let hi = entries[bulk].at.as_micros();
            ((hi - lo) / (bulk as u64).max(1)).max(1)
        } else {
            INITIAL_WIDTH
        };
        self.buckets = (0..nbuckets).map(|_| VecDeque::new()).collect();
        self.mask = nbuckets as u64 - 1;
        self.width = width;
        match entries.first() {
            Some(first) => self.anchor(first.at.as_micros()),
            None => {
                self.cur = 0;
                self.bucket_top = width;
            }
        }
        // Entries arrive in ascending (at, seq) order, so plain appends
        // leave every bucket sorted.
        for e in entries {
            let idx = ((e.at.as_micros() / self.width) & self.mask) as usize;
            self.buckets[idx].push_back(e);
        }
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("len", &self.len)
            .field("next", &self.peek_time())
            .field("buckets", &self.buckets.len())
            .field("width_us", &self.width)
            .finish()
    }
}

/// The original `BinaryHeap`-backed queue, kept as a shadow reference.
///
/// Same contract as [`EventQueue`] — pops in `(time, seq)` order — with
/// O(log n) push/pop. The property suite feeds identical push/pop streams
/// to both implementations and asserts bit-equal output; any ordering
/// drift in the calendar queue fails loudly there rather than as a silent
/// golden diff three layers up.
pub struct HeapQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> HeapQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        HeapQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` to fire at `at`.
    pub fn push(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.at, e.event))
    }

    /// Timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops every pending event.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for HeapQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), 3);
        q.push(SimTime::from_secs(1), 1);
        q.push(SimTime::from_secs(2), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn same_time_is_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(10);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        let base = SimTime::ZERO;
        q.push(base + SimDuration::from_secs(5), "late");
        q.push(base + SimDuration::from_secs(1), "early");
        assert_eq!(q.pop().unwrap().1, "early");
        q.push(base + SimDuration::from_secs(2), "middle");
        assert_eq!(q.pop().unwrap().1, "middle");
        assert_eq!(q.pop().unwrap().1, "late");
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_secs(7), ());
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(7)));
        q.clear();
        assert!(q.is_empty());
    }

    /// Enough pushes to force several ring growths, then a full drain that
    /// forces shrinks: order must survive every rebuild.
    #[test]
    fn resize_preserves_order() {
        let mut q = EventQueue::new();
        // A deterministic scatter of times with duplicates.
        let times: Vec<u64> = (0u64..5_000)
            .map(|i| (i * 2_654_435_761) % 100_000)
            .collect();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_micros(t), i);
        }
        let mut expected: Vec<(u64, usize)> =
            times.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        expected.sort(); // (time, insertion index) — the FIFO tie-break
        let popped: Vec<(u64, usize)> =
            std::iter::from_fn(|| q.pop().map(|(t, e)| (t.as_micros(), e))).collect();
        assert_eq!(popped, expected);
    }

    /// Pushing behind the cursor (after it advanced past that slice) must
    /// rewind the window, not hide the event until the ring wraps.
    #[test]
    fn push_behind_cursor_is_found() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(100), "far");
        q.push(SimTime::from_secs(200), "farther");
        assert_eq!(q.pop().unwrap().1, "far"); // cursor now at t=100s
        q.push(SimTime::from_secs(1), "behind");
        assert_eq!(q.pop().unwrap().1, "behind");
        assert_eq!(q.pop().unwrap().1, "farther");
    }

    /// Saturated far-future sentinels must coexist with near-term events
    /// without degrading ordering (they exercise the direct-search jump).
    #[test]
    fn far_future_sentinels_pop_last() {
        let mut q = EventQueue::new();
        q.push(SimTime::MAX, u64::MAX - 1);
        for i in 0..50u64 {
            q.push(SimTime::from_secs(i), i);
        }
        q.push(SimTime::MAX, u64::MAX);
        for i in 0..50u64 {
            let (t, _) = q.pop().unwrap();
            assert_eq!(t, SimTime::from_secs(i));
        }
        assert_eq!(q.pop().unwrap(), (SimTime::MAX, u64::MAX - 1));
        assert_eq!(q.pop().unwrap(), (SimTime::MAX, u64::MAX));
        assert!(q.pop().is_none());
    }

    /// The gap to a lone far-future event is crossed by the direct-search
    /// jump, not a bucket-by-bucket sweep.
    #[test]
    fn sparse_far_jump() {
        let mut q = EventQueue::new();
        for i in 0..64u64 {
            q.push(SimTime::from_micros(i), i);
        }
        q.push(SimTime::from_secs(86_400 * 365), u64::MAX); // a year out
        for i in 0..64u64 {
            assert_eq!(q.pop().unwrap().1, i);
        }
        assert_eq!(q.pop().unwrap().1, u64::MAX);
    }
}
