//! Deterministic future-event queue.
//!
//! A thin wrapper over [`BinaryHeap`] that orders events by timestamp and
//! breaks ties by insertion sequence number. The tie-break matters: two
//! events scheduled for the same microsecond must always pop in the same
//! order, or otherwise-identical runs with the same seed could diverge.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so earliest time (then lowest
        // sequence number) pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A future-event list keyed by [`SimTime`] with FIFO tie-breaking.
///
/// ```
/// use simcore::events::EventQueue;
/// use simcore::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(1), "first");
/// q.push(SimTime::from_secs(1), "second");
/// assert_eq!(q.pop().unwrap().1, "first");
/// assert_eq!(q.pop().unwrap().1, "second");
/// assert!(q.pop().is_none());
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` to fire at `at`.
    pub fn push(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.at, e.event))
    }

    /// Timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops every pending event.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("len", &self.heap.len())
            .field("next", &self.peek_time())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), 3);
        q.push(SimTime::from_secs(1), 1);
        q.push(SimTime::from_secs(2), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn same_time_is_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(10);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        let base = SimTime::ZERO;
        q.push(base + SimDuration::from_secs(5), "late");
        q.push(base + SimDuration::from_secs(1), "early");
        assert_eq!(q.pop().unwrap().1, "early");
        q.push(base + SimDuration::from_secs(2), "middle");
        assert_eq!(q.pop().unwrap().1, "middle");
        assert_eq!(q.pop().unwrap().1, "late");
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_secs(7), ());
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(7)));
        q.clear();
        assert!(q.is_empty());
    }
}
