//! Property-based tests for the simulation spine.

use proptest::prelude::*;

use simcore::dist::{discrete, exponential, gamma, lognormal, pareto, zipf_weights};
use simcore::events::{EventQueue, HeapQueue};
use simcore::rng::SimRng;
use simcore::stats::{Summary, TimeWeighted};
use simcore::time::{SimDuration, SimTime};

proptest! {
    #[test]
    fn time_addition_is_monotone(a in 0u64..u64::MAX / 4, d in 0u64..u64::MAX / 4) {
        let t = SimTime::from_micros(a);
        let t2 = t + SimDuration::from_micros(d);
        prop_assert!(t2 >= t);
        prop_assert_eq!(t2.since(t), SimDuration::from_micros(d));
    }

    #[test]
    fn signed_difference_is_antisymmetric(a in 0u64..1 << 50, b in 0u64..1 << 50) {
        let (ta, tb) = (SimTime::from_micros(a), SimTime::from_micros(b));
        let d1 = ta.signed_secs_since(tb);
        let d2 = tb.signed_secs_since(ta);
        prop_assert!((d1 + d2).abs() < 1e-9);
    }

    #[test]
    fn duration_roundtrip_secs(us in 0u64..1 << 40) {
        let d = SimDuration::from_micros(us);
        let back = SimDuration::from_secs_f64(d.as_secs_f64());
        // f64 has 53 mantissa bits; round-trip is near-exact in this range.
        let diff = back.as_micros().abs_diff(us);
        prop_assert!(diff <= 1, "{us} -> {}", back.as_micros());
    }

    #[test]
    fn event_queue_pops_sorted(times in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_micros(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut count = 0;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
            count += 1;
        }
        prop_assert_eq!(count, times.len());
    }

    #[test]
    fn event_queue_fifo_at_equal_times(n in 1usize..100) {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..n {
            q.push(t, i);
        }
        let popped: Vec<usize> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        prop_assert_eq!(popped, (0..n).collect::<Vec<_>>());
    }

    /// Shadow equivalence: the calendar queue and the reference heap queue
    /// must produce bit-equal `(time, event)` streams for any interleaving
    /// of pushes and pops, including same-timestamp floods (the FIFO
    /// tie-break) and far-future outliers (the direct-search jump).
    #[test]
    fn calendar_queue_matches_heap_shadow(
        ops in prop::collection::vec(
            // Repeated arms stand in for weights (the harness picks arms
            // uniformly): pushes dominate so the queues actually fill up.
            // Mixed magnitudes: dense low times force same-bucket pileups,
            // huge times force the resize and direct-jump paths.
            prop_oneof![
                (0u64..10_000).prop_map(Some),
                (0u64..10_000).prop_map(Some),
                (0u64..10_000).prop_map(Some),
                (0u64..100_000_000).prop_map(Some),
                (0u64..100_000_000).prop_map(Some),
                Just(Some(u64::MAX)),
                Just(None), // pop
                Just(None), // pop
                Just(None), // pop
            ],
            1..400,
        ),
    ) {
        let mut cal = EventQueue::new();
        let mut heap = HeapQueue::new();
        let mut id = 0u64;
        for op in ops {
            match op {
                Some(t) => {
                    let at = SimTime::from_micros(t);
                    cal.push(at, id);
                    heap.push(at, id);
                    id += 1;
                }
                None => {
                    prop_assert_eq!(cal.pop(), heap.pop());
                    prop_assert_eq!(cal.len(), heap.len());
                }
            }
        }
        // Drain both to the end: every remaining event must match too.
        loop {
            let (a, b) = (cal.pop(), heap.pop());
            prop_assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    /// Same-timestamp floods interleaved with pops: FIFO order must hold
    /// across partial drains on both implementations.
    #[test]
    fn calendar_queue_fifo_flood_matches_heap(
        floods in prop::collection::vec((0u64..50, 1usize..40), 1..20),
    ) {
        let mut cal = EventQueue::new();
        let mut heap = HeapQueue::new();
        let mut id = 0u64;
        for (t, n) in floods {
            let at = SimTime::from_millis(t);
            for _ in 0..n {
                cal.push(at, id);
                heap.push(at, id);
                id += 1;
            }
            // Partial drain between floods.
            for _ in 0..n / 2 {
                prop_assert_eq!(cal.pop(), heap.pop());
            }
        }
        loop {
            let (a, b) = (cal.pop(), heap.pop());
            prop_assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn rng_streams_reproducible(seed in any::<u64>(), label in any::<u64>()) {
        let mut a = SimRng::new(seed).split(label);
        let mut b = SimRng::new(seed).split(label);
        for _ in 0..32 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn next_below_in_range(seed in any::<u64>(), n in 1u64..1_000_000) {
        let mut rng = SimRng::new(seed);
        for _ in 0..64 {
            prop_assert!(rng.next_below(n) < n);
        }
    }

    #[test]
    fn distributions_are_positive(seed in any::<u64>()) {
        let mut rng = SimRng::new(seed);
        prop_assert!(exponential(&mut rng, 2.0) >= 0.0);
        prop_assert!(lognormal(&mut rng, 100.0, 1.0) > 0.0);
        prop_assert!(pareto(&mut rng, 1.5, 1.1) >= 1.5);
        prop_assert!(gamma(&mut rng, 0.7, 2.0) >= 0.0);
        prop_assert!(gamma(&mut rng, 3.0, 2.0) >= 0.0);
    }

    #[test]
    fn zipf_sums_to_one(n in 1usize..500, s in 0.1f64..2.5) {
        let w = zipf_weights(n, s);
        prop_assert_eq!(w.len(), n);
        let sum: f64 = w.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        for pair in w.windows(2) {
            prop_assert!(pair[0] >= pair[1]);
        }
    }

    #[test]
    fn discrete_index_in_bounds(
        seed in any::<u64>(),
        weights in prop::collection::vec(0.01f64..10.0, 1..50),
    ) {
        let mut rng = SimRng::new(seed);
        for _ in 0..32 {
            prop_assert!(discrete(&mut rng, &weights) < weights.len());
        }
    }

    #[test]
    fn percentiles_are_monotone(xs in prop::collection::vec(-1e6f64..1e6, 1..300)) {
        let mut s: Summary = xs.into_iter().collect();
        let p25 = s.percentile(25.0);
        let p50 = s.percentile(50.0);
        let p99 = s.percentile(99.0);
        prop_assert!(p25 <= p50 && p50 <= p99);
        prop_assert!(s.min() <= p25 && p99 <= s.max());
    }

    #[test]
    fn cdf_bounds(xs in prop::collection::vec(0f64..1e6, 2..200)) {
        let mut s: Summary = xs.into_iter().collect();
        let cdf = s.cdf(20);
        for w in cdf.points.windows(2) {
            prop_assert!(w[1].1 >= w[0].1);
            prop_assert!(w[1].0 >= w[0].0);
        }
        prop_assert!((cdf.points.last().unwrap().1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn time_weighted_mean_between_extremes(
        vals in prop::collection::vec(0f64..100.0, 1..50),
    ) {
        let mut tw = TimeWeighted::new();
        for (i, &v) in vals.iter().enumerate() {
            tw.record(i as f64, v);
        }
        let mean = tw.finish(vals.len() as f64);
        let lo = vals.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(mean >= lo - 1e-9 && mean <= hi + 1e-9);
        prop_assert!((tw.peak() - hi).abs() < 1e-9);
    }
}
