//! # SLINFER — resource-efficient serverless LLM inference
//!
//! This crate implements the paper's contribution: a serverless inference
//! scheme that elastically shares heterogeneous CPU/GPU nodes among many
//! small- to mid-sized LLMs while holding per-token SLOs. It plugs into the
//! [`cluster`] simulation driver as a [`Policy`](cluster::Policy).
//!
//! The three subsystems map one-to-one onto the paper:
//!
//! - [`quantify`] + [`shadow`] + the token-level loop in [`scheduler`] —
//!   the **headroom-driven compute subsystem** (§VI): per-hardware
//!   performance quantification on a power-of-two sampling grid with 1-D/2-D
//!   linear interpolation, shadow validation of every admission (three
//!   violation cases, 10% overestimation), and min-headroom token-level
//!   scheduling (Eq. 1, Fig. 14).
//! - [`memory`] — the **hazard-aware memory subsystem** (§VII): Eq. 2 demand
//!   estimation, watermark-based early-scale-up / lazy-scale-down, and the
//!   optimistic-budget + pessimistic-execution orchestrator with a
//!   reservation station that serializes risky scale-ups (Fig. 19).
//! - [`consolidate`] — the **efficiency-oriented consolidator** (§VIII):
//!   proactive preemption of smaller-batch neighbours and reactive
//!   bin-packing of new requests onto the largest-batch instance.
//!
//! # Quickstart
//!
//! ```
//! use cluster::{ClusterSpec, Simulation, WorldConfig};
//! use hwmodel::ModelSpec;
//! use slinfer::{Slinfer, SlinferConfig};
//! use workload::serverless::TraceSpec;
//!
//! // Four 7B replicas on 1 CPU + 1 GPU, a light trace.
//! let models: Vec<ModelSpec> = (0..4).map(|i| ModelSpec::llama2_7b().replica(i)).collect();
//! let trace = TraceSpec::azure_like(4, 7).with_load_scale(0.2).generate();
//! let cluster = ClusterSpec::heterogeneous(1, 1);
//! let sim = Simulation::new(
//!     &cluster,
//!     models,
//!     WorldConfig::default(),
//!     Slinfer::new(SlinferConfig::default()),
//! );
//! let metrics = sim.run(&trace);
//! assert!(metrics.slo_rate() > 0.8);
//! ```

#![forbid(unsafe_code)]

pub mod config;
pub mod consolidate;
pub mod memory;
pub mod quantify;
pub mod scheduler;
pub mod shadow;

pub use config::SlinferConfig;
pub use quantify::{Quantifier, QuantifierSet};
pub use scheduler::Slinfer;
