//! Hazard-aware memory planning (§VII).
//!
//! Two cooperating pieces:
//!
//! - **Watermark policy** ([`recommend_bytes`], [`should_scale_down`]) —
//!   early scale-up to `M_require · (1 + w)` and lazy scale-down only when
//!   `M_recommend · (1 + w) < M_cur`, damping the ping-pong effect of load
//!   fluctuation (§VII-B).
//! - **[`MemoryPlanner`]** — the optimistic budget of §VII-C. Scale-downs
//!   release budget at *approval* time (so waiting requests can be admitted
//!   against memory that is about to free up), while the physical ledger in
//!   [`cluster::World`] releases only at *completion*. Scale-ups that are
//!   approved but do not yet fit physically are parked in a per-node
//!   **reservation station** and re-attempted whenever a scale-down
//!   completes — the paper's Fig. 19 flow.

use engine::instance::InstanceId;
use serde::{Deserialize, Serialize};

use cluster::NodeId;

/// `M_recommend = M_require · (1 + w)` (§VII-B).
pub fn recommend_bytes(require_bytes: u64, watermark: f64) -> u64 {
    (require_bytes as f64 * (1.0 + watermark)).ceil() as u64
}

/// Lazy scale-down trigger: only shrink when the recommended size, inflated
/// once more by the watermark, still sits below the current grant.
pub fn should_scale_down(current_bytes: u64, recommend_bytes: u64, watermark: f64) -> bool {
    (recommend_bytes as f64 * (1.0 + watermark)) < current_bytes as f64
}

/// What the planner decided about a requested scale operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScaleDecision {
    /// Budget approved and physically safe: issue to the engine now.
    Execute,
    /// Budget approved but physically unsafe until some scale-down
    /// completes: parked in the reservation station.
    Reserve,
    /// Budget exhausted: the caller must compromise (§VII-D), consolidate
    /// (§VIII), or reject.
    Reject,
}

/// A parked scale-up.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PendingScale {
    /// Instance to rescale.
    pub inst: InstanceId,
    /// Target grant.
    pub to_bytes: u64,
    /// Budget delta this op holds (released if cancelled).
    pub delta: u64,
}

#[derive(Debug, Clone, Default)]
struct NodeBudget {
    capacity: u64,
    optimistic: u64,
    reservations: Vec<PendingScale>,
}

/// Per-node optimistic budgets plus reservation stations.
#[derive(Debug, Clone, Default)]
pub struct MemoryPlanner {
    nodes: Vec<NodeBudget>,
}

impl MemoryPlanner {
    /// Creates a planner for nodes with the given byte capacities.
    pub fn new(capacities: impl IntoIterator<Item = u64>) -> Self {
        MemoryPlanner {
            nodes: capacities
                .into_iter()
                .map(|capacity| NodeBudget {
                    capacity,
                    ..Default::default()
                })
                .collect(),
        }
    }

    fn node(&self, n: NodeId) -> &NodeBudget {
        &self.nodes[n.0 as usize]
    }

    fn node_mut(&mut self, n: NodeId) -> &mut NodeBudget {
        &mut self.nodes[n.0 as usize]
    }

    /// Bytes still available under optimistic accounting.
    pub fn optimistic_available(&self, n: NodeId) -> u64 {
        let b = self.node(n);
        b.capacity.saturating_sub(b.optimistic)
    }

    /// True if `bytes` fit the optimistic budget.
    pub fn fits(&self, n: NodeId, bytes: u64) -> bool {
        bytes <= self.optimistic_available(n)
    }

    /// Commits bytes (instance creation, approved scale-up delta).
    ///
    /// # Panics
    /// Panics in debug builds if the commit overflows the capacity — callers
    /// must check [`Self::fits`] first.
    pub fn commit(&mut self, n: NodeId, bytes: u64) {
        let b = self.node_mut(n);
        b.optimistic += bytes;
        debug_assert!(
            b.optimistic <= b.capacity,
            "optimistic budget overflow on node {}",
            n.0
        );
    }

    /// Releases bytes (unload, approved scale-down delta).
    pub fn release(&mut self, n: NodeId, bytes: u64) {
        let b = self.node_mut(n);
        b.optimistic = b.optimistic.saturating_sub(bytes);
    }

    /// Plans a scale of `inst` on node `n` from `from_bytes` to `to_bytes`,
    /// given the *physical* bytes currently free on the node.
    ///
    /// Scale-downs always execute (and release budget immediately — the
    /// optimistic half). Scale-ups are approved against the budget, then
    /// executed or reserved depending on physical room (the pessimistic
    /// half).
    pub fn plan_scale(
        &mut self,
        n: NodeId,
        inst: InstanceId,
        from_bytes: u64,
        to_bytes: u64,
        physical_available: u64,
    ) -> ScaleDecision {
        if to_bytes <= from_bytes {
            let delta = from_bytes - to_bytes;
            self.release(n, delta);
            return ScaleDecision::Execute;
        }
        let delta = to_bytes - from_bytes;
        if !self.fits(n, delta) {
            return ScaleDecision::Reject;
        }
        self.commit(n, delta);
        // FIFO: a scale-up never jumps ahead of parked reservations — the
        // physical bytes freed by completing scale-downs belong to the
        // station's head first (Fig. 19).
        if delta <= physical_available && self.node(n).reservations.is_empty() {
            ScaleDecision::Execute
        } else {
            self.node_mut(n).reservations.push(PendingScale {
                inst,
                to_bytes,
                delta,
            });
            ScaleDecision::Reserve
        }
    }

    /// Pops every reservation that now fits `physical_available`, in FIFO
    /// order, stopping at the first that does not fit (head-of-line order
    /// preserves fairness). Call when a scale-down completes (§VII-C's
    /// notification) with the node's refreshed physical availability.
    pub fn release_reservations(
        &mut self,
        n: NodeId,
        mut physical_available: u64,
    ) -> Vec<PendingScale> {
        let b = self.node_mut(n);
        let mut out = Vec::new();
        while let Some(head) = b.reservations.first().copied() {
            if head.delta <= physical_available {
                physical_available -= head.delta;
                b.reservations.remove(0);
                out.push(head);
            } else {
                break;
            }
        }
        out
    }

    /// Cancels any reservation held by `inst`, refunding its budget delta.
    pub fn cancel_reservations(&mut self, n: NodeId, inst: InstanceId) {
        let b = self.node_mut(n);
        let mut refunded = 0u64;
        b.reservations.retain(|p| {
            if p.inst == inst {
                refunded += p.delta;
                false
            } else {
                true
            }
        });
        b.optimistic = b.optimistic.saturating_sub(refunded);
    }

    /// Reservations currently parked on a node.
    pub fn reservation_count(&self, n: NodeId) -> usize {
        self.node(n).reservations.len()
    }

    /// Whether `inst` has a parked reservation on node `n`.
    pub fn has_reservation(&self, n: NodeId, inst: InstanceId) -> bool {
        self.node(n).reservations.iter().any(|p| p.inst == inst)
    }

    /// Grows the budget table to cover nodes that joined after
    /// construction; `capacities` is the full per-node capacity list (the
    /// existing prefix is left untouched).
    pub fn ensure_nodes(&mut self, capacities: impl IntoIterator<Item = u64>) {
        for (i, capacity) in capacities.into_iter().enumerate() {
            if i >= self.nodes.len() {
                self.nodes.push(NodeBudget {
                    capacity,
                    ..Default::default()
                });
            }
        }
    }

    /// Marks a node unusable (drain or failure): its budget capacity and
    /// optimistic commitments drop to zero and every parked reservation is
    /// discarded, so no further growth is ever approved there. Idempotent.
    pub fn retire_node(&mut self, n: NodeId) {
        let b = self.node_mut(n);
        b.capacity = 0;
        b.optimistic = 0;
        b.reservations.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GB: u64 = 1_000_000_000;

    #[test]
    fn watermark_formulas() {
        assert_eq!(recommend_bytes(100, 0.25), 125);
        // Lazy scale-down: shrink only when recommend·(1+w) < current.
        assert!(!should_scale_down(125, 100, 0.25)); // 125 < 125 is false
        assert!(!should_scale_down(125, 110, 0.25));
        assert!(should_scale_down(200, 100, 0.25)); // 125 < 200
                                                    // Zero watermark collapses to exact tracking.
        assert_eq!(recommend_bytes(100, 0.0), 100);
        assert!(should_scale_down(101, 100, 0.0));
    }

    #[test]
    fn scale_down_frees_budget_immediately() {
        let mut p = MemoryPlanner::new([10 * GB]);
        let n = NodeId(0);
        p.commit(n, 9 * GB);
        // Scale an instance down 4 GB: optimistic frees instantly…
        let d = p.plan_scale(n, InstanceId(1), 6 * GB, 2 * GB, GB);
        assert_eq!(d, ScaleDecision::Execute);
        assert_eq!(p.optimistic_available(n), 5 * GB);
    }

    /// The Fig. 18 scenario: three instances at 30% each; A scales down 20%,
    /// B up 20%, C up 10%. Uncoordinated execution would spike to 120%;
    /// the planner approves B and C against the optimistic budget but parks
    /// them until A's release is physically visible.
    #[test]
    fn fig18_hazard_is_serialized() {
        let cap = 100u64;
        let mut p = MemoryPlanner::new([cap]);
        let n = NodeId(0);
        for _ in 0..3 {
            p.commit(n, 30);
        }
        let physical_free = 10; // 100 - 3×30
                                // A: down 30 → 10 (release 20 optimistically).
        assert_eq!(
            p.plan_scale(n, InstanceId(1), 30, 10, physical_free),
            ScaleDecision::Execute
        );
        assert_eq!(p.optimistic_available(n), 30);
        // B: up 30 → 50. Budget fits (delta 20 ≤ 30) but physically only 10
        // free until A completes → reserved.
        assert_eq!(
            p.plan_scale(n, InstanceId(2), 30, 50, physical_free),
            ScaleDecision::Reserve
        );
        // C: up 30 → 40. Budget fits (delta 10 ≤ 10) and 10 bytes are
        // physically free — but B holds the station's head (FIFO), so C
        // queues behind it.
        assert_eq!(
            p.plan_scale(n, InstanceId(3), 30, 40, physical_free),
            ScaleDecision::Reserve
        );
        assert_eq!(p.optimistic_available(n), 0);
        assert_eq!(p.reservation_count(n), 2);
        // A's scale-down completes: physical free becomes 10 + 20 = 30.
        let runnable = p.release_reservations(n, 30);
        assert_eq!(runnable.len(), 2, "both parked ops now run");
        assert_eq!(runnable[0].inst, InstanceId(2));
        assert_eq!(runnable[1].inst, InstanceId(3));
        assert_eq!(p.reservation_count(n), 0);
    }

    #[test]
    fn budget_exhaustion_rejects() {
        let mut p = MemoryPlanner::new([10 * GB]);
        let n = NodeId(0);
        p.commit(n, 8 * GB);
        let d = p.plan_scale(n, InstanceId(1), GB, 5 * GB, 2 * GB);
        assert_eq!(d, ScaleDecision::Reject);
        // Rejection must not leak budget.
        assert_eq!(p.optimistic_available(n), 2 * GB);
    }

    #[test]
    fn reservation_fifo_blocks_behind_head() {
        let mut p = MemoryPlanner::new([100]);
        let n = NodeId(0);
        p.commit(n, 40);
        assert_eq!(
            p.plan_scale(n, InstanceId(1), 10, 40, 0),
            ScaleDecision::Reserve
        );
        assert_eq!(
            p.plan_scale(n, InstanceId(2), 10, 15, 0),
            ScaleDecision::Reserve
        );
        // 10 bytes free: head needs 30 → nothing pops, even though the
        // second op (delta 5) would fit.
        assert!(p.release_reservations(n, 10).is_empty());
        // 35 free: both pop.
        assert_eq!(p.release_reservations(n, 35).len(), 2);
    }

    #[test]
    fn cancellation_refunds_budget() {
        let mut p = MemoryPlanner::new([100]);
        let n = NodeId(0);
        p.commit(n, 50);
        assert_eq!(
            p.plan_scale(n, InstanceId(7), 10, 40, 0),
            ScaleDecision::Reserve
        );
        assert_eq!(p.optimistic_available(n), 20);
        assert!(p.has_reservation(n, InstanceId(7)));
        p.cancel_reservations(n, InstanceId(7));
        assert!(!p.has_reservation(n, InstanceId(7)));
        assert_eq!(p.optimistic_available(n), 50);
    }
}
