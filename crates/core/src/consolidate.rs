//! Efficiency-oriented consolidation helpers (§VIII).
//!
//! - **Reactive bin-packing** ([`order_candidates`]): route a new request to
//!   its model's *largest-batch* instance first, so small fragments drain
//!   and get reclaimed at keep-alive (§VIII-B, Fig. 20c). CPU instances come
//!   before GPU instances because SLINFER prioritizes CPUs (§V).
//! - **Proactive preemption** ([`pick_victim`]): when a target instance
//!   cannot scale up because neighbours occupy the memory, it may preempt a
//!   co-resident instance with a *strictly smaller* batch, smallest first
//!   (§VIII-A, Fig. 20b) — growing instances never disintegrate bigger ones.

use cluster::World;
use engine::instance::InstanceId;
use workload::request::ModelId;

/// Orders a model's instances for admission attempts.
///
/// CPU instances precede GPU instances when `prefer_cpu`; within a kind,
/// descending batch size when `bin_pack` (the §VIII-B rule), else instance
/// id order (the naive "first created" order used by the consolidation
/// ablation).
pub fn order_candidates(
    w: &World,
    model: ModelId,
    prefer_cpu: bool,
    bin_pack: bool,
) -> Vec<InstanceId> {
    let mut out: Vec<(bool, i64, InstanceId)> = w
        .instances_of_model(model)
        .into_iter()
        .map(|id| {
            let (node, _) = w.instance_placement(id).expect("listed instance");
            let is_cpu = w.node_hw(node).kind.is_cpu();
            let batch = w.instance(id).map(|i| i.live_count() as i64).unwrap_or(0);
            // Sort keys: CPU-first (when preferred), then biggest batch.
            let kind_rank = if prefer_cpu && is_cpu { 0 } else { 1 };
            (
                kind_rank == 0,
                if bin_pack { -batch } else { id.0 as i64 },
                id,
            )
        })
        .map(|(cpu_first, key, id)| (!cpu_first, key, id))
        .collect();
    out.sort_by_key(|&(kind_rank, key, id)| (kind_rank, key, id.0));
    out.into_iter().map(|(_, _, id)| id).collect()
}

/// Picks the preemption victim for `target` on its node: the co-resident
/// instance with the smallest batch that is still strictly smaller than the
/// target's, idle at the engine level (not mid-iteration or mid-rescale),
/// and fully loaded.
pub fn pick_victim(w: &World, target: InstanceId) -> Option<InstanceId> {
    let (node, _) = w.instance_placement(target)?;
    let target_batch = w.instance(target)?.live_count();
    let mut best: Option<(u32, InstanceId)> = None;
    for id in w.instances_on_node(node) {
        if id == target {
            continue;
        }
        let Some(inst) = w.instance(id) else { continue };
        if inst.busy || inst.scaling {
            continue;
        }
        if inst.state != engine::instance::InstanceState::Active {
            continue;
        }
        let batch = inst.live_count();
        if batch >= target_batch {
            continue; // only smaller-batch neighbours may be preempted
        }
        if best.is_none_or(|(b, _)| batch < b) {
            best = Some((batch, id));
        }
    }
    best.map(|(_, id)| id)
}

/// Memory that unloading `victim` would return to its node.
pub fn victim_footprint(w: &World, victim: InstanceId) -> u64 {
    w.instance(victim).map(|i| i.footprint_bytes()).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::{ClusterSpec, NodeId, WorldConfig};
    use engine::request::RunningRequest;
    use hwmodel::ModelSpec;
    use simcore::time::SimTime;
    use workload::request::{Request, RequestId, SloClass};

    const GB: u64 = 1_000_000_000;

    fn world() -> World {
        // Node 0: CPU; node 1: GPU.
        let cluster = ClusterSpec::heterogeneous(1, 1);
        World::new(
            &cluster,
            vec![ModelSpec::llama2_7b(), ModelSpec::llama3_2_3b()],
            WorldConfig::default(),
        )
    }

    fn admit_n(w: &mut World, inst: InstanceId, n: usize, base: u64) {
        for k in 0..n {
            w.admit(
                inst,
                RunningRequest::new(Request {
                    id: RequestId(base + k as u64),
                    model: w.instance(inst).unwrap().model,
                    arrival: SimTime::ZERO,
                    input_len: 128,
                    output_len: 8,
                    class: SloClass::default(),
                    session: Default::default(),
                }),
            );
        }
    }

    #[test]
    fn candidates_cpu_first_then_largest_batch() {
        let mut w = world();
        let m = ModelId(0);
        let gpu_small = w.create_instance(m, NodeId(1), 0, GB).unwrap();
        let gpu_big = w.create_instance(m, NodeId(1), 0, GB).unwrap();
        let cpu = w.create_instance(m, NodeId(0), 0, GB).unwrap();
        admit_n(&mut w, gpu_big, 5, 0);
        admit_n(&mut w, gpu_small, 1, 10);
        admit_n(&mut w, cpu, 2, 20);

        let order = order_candidates(&w, m, true, true);
        assert_eq!(order, vec![cpu, gpu_big, gpu_small]);

        // Without CPU preference, pure batch order.
        let order = order_candidates(&w, m, false, true);
        assert_eq!(order, vec![gpu_big, cpu, gpu_small]);

        // Without bin-packing, creation (id) order per kind.
        let order = order_candidates(&w, m, true, false);
        assert_eq!(order, vec![cpu, gpu_small, gpu_big]);
    }

    #[test]
    fn victim_is_smallest_strictly_smaller_neighbor() {
        let mut w = world();
        let target = w.create_instance(ModelId(0), NodeId(1), 0, GB).unwrap();
        let small = w.create_instance(ModelId(1), NodeId(1), 0, GB).unwrap();
        let mid = w.create_instance(ModelId(1), NodeId(1), 0, GB).unwrap();
        // Activate all (skip cold start mechanics for the unit test).
        for id in [target, small, mid] {
            w.instance_mut(id).unwrap().activate(SimTime::ZERO);
        }
        admit_n(&mut w, target, 4, 0);
        admit_n(&mut w, small, 1, 10);
        admit_n(&mut w, mid, 2, 20);
        assert_eq!(pick_victim(&w, target), Some(small));
        // Equal-or-larger neighbours are never victims: shrink the target.
        let tiny = w.create_instance(ModelId(1), NodeId(1), 0, GB).unwrap();
        w.instance_mut(tiny).unwrap().activate(SimTime::ZERO);
        admit_n(&mut w, tiny, 1, 30);
        // target batch is 4; small(1), mid(2), tiny(1): smallest wins (id order
        // among equals — `small` was found first and ties keep the first).
        assert_eq!(pick_victim(&w, target), Some(small));
    }

    #[test]
    fn no_victim_when_neighbors_not_smaller() {
        let mut w = world();
        let target = w.create_instance(ModelId(0), NodeId(1), 0, GB).unwrap();
        let peer = w.create_instance(ModelId(1), NodeId(1), 0, GB).unwrap();
        for id in [target, peer] {
            w.instance_mut(id).unwrap().activate(SimTime::ZERO);
        }
        admit_n(&mut w, target, 2, 0);
        admit_n(&mut w, peer, 2, 10);
        assert_eq!(pick_victim(&w, target), None);
    }

    #[test]
    fn loading_neighbors_are_not_victims() {
        let mut w = world();
        let target = w.create_instance(ModelId(0), NodeId(1), 0, GB).unwrap();
        let loading = w.create_instance(ModelId(1), NodeId(1), 0, GB).unwrap();
        w.instance_mut(target).unwrap().activate(SimTime::ZERO);
        admit_n(&mut w, target, 3, 0);
        admit_n(&mut w, loading, 1, 10);
        // `loading` was never activated.
        assert_eq!(pick_victim(&w, target), None);
    }
}
