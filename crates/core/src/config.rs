//! SLINFER configuration knobs.

use serde::{Deserialize, Serialize};

/// Tunables of the SLINFER scheme, with the paper's defaults.
///
/// The three `enable_*` switches drive the §IX-C ablation: disabling
/// `cpu` forbids CPU nodes, disabling `sharing` gives every instance an
/// exclusive node, and disabling `consolidation` turns off both proactive
/// preemption and reactive bin-packed routing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlinferConfig {
    /// KV-cache scaling watermark `w` (§VII-B); 25% by default.
    pub watermark: f64,
    /// Shadow-validation overestimation factor (§VI-C); 1.10 by default.
    pub overestimate: f64,
    /// Serve on AMX CPU nodes when they can meet the SLO.
    pub enable_cpu: bool,
    /// Co-locate multiple instances per node.
    pub enable_sharing: bool,
    /// Proactive preemption + reactive bin-packing (§VIII).
    pub enable_consolidation: bool,
    /// Prior for a model's mean output length before history accumulates
    /// (tokens).
    pub default_avg_output: f64,
    /// Floor of the KV demand estimate, in tokens (§VII-A sets it to the
    /// model's maximum context length; `None` keeps that behaviour).
    pub l_min_tokens: Option<u32>,
    /// Prefill–decode disaggregation (§IX-G, Table III): dedicated prefill
    /// instances hand requests to decode instances over the network. Off by
    /// default — the paper shows it wastes resources in serverless settings.
    pub pd_disaggregate: bool,
}

impl Default for SlinferConfig {
    fn default() -> Self {
        SlinferConfig {
            watermark: 0.25,
            overestimate: 1.10,
            enable_cpu: true,
            enable_sharing: true,
            enable_consolidation: true,
            default_avg_output: 256.0,
            l_min_tokens: None,
            pd_disaggregate: false,
        }
    }
}

impl SlinferConfig {
    /// The §IX-C ablation variants, in the paper's order:
    /// full, w/o CPU, w/o consolidation, w/o sharing.
    pub fn ablations() -> Vec<(&'static str, SlinferConfig)> {
        let full = SlinferConfig::default();
        vec![
            ("SLINFER-Full", full.clone()),
            (
                "w/o CPU",
                SlinferConfig {
                    enable_cpu: false,
                    ..full.clone()
                },
            ),
            (
                "w/o Consolidation",
                SlinferConfig {
                    enable_consolidation: false,
                    ..full.clone()
                },
            ),
            (
                "w/o Sharing",
                SlinferConfig {
                    enable_sharing: false,
                    ..full
                },
            ),
        ]
    }

    /// Sets the watermark (Fig. 31 sensitivity sweep).
    pub fn with_watermark(mut self, w: f64) -> Self {
        self.watermark = w;
        self
    }

    /// Validates parameter ranges.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=4.0).contains(&self.watermark) {
            return Err(format!("watermark {} out of [0,4]", self.watermark));
        }
        if self.overestimate < 1.0 {
            return Err(format!("overestimate {} must be >= 1", self.overestimate));
        }
        if self.default_avg_output <= 0.0 {
            return Err("default_avg_output must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = SlinferConfig::default();
        assert_eq!(c.watermark, 0.25);
        assert_eq!(c.overestimate, 1.10);
        assert!(c.enable_cpu && c.enable_sharing && c.enable_consolidation);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn ablations_flip_one_switch_each() {
        let abl = SlinferConfig::ablations();
        assert_eq!(abl.len(), 4);
        assert!(!abl[1].1.enable_cpu && abl[1].1.enable_sharing);
        assert!(!abl[2].1.enable_consolidation && abl[2].1.enable_cpu);
        assert!(!abl[3].1.enable_sharing && abl[3].1.enable_consolidation);
    }

    #[test]
    fn validation_rejects_bad_ranges() {
        assert!(SlinferConfig::default()
            .with_watermark(-0.1)
            .validate()
            .is_err());
        let c = SlinferConfig {
            overestimate: 0.9,
            ..SlinferConfig::default()
        };
        assert!(c.validate().is_err());
    }
}
