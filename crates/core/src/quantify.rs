//! Performance quantification (§VI-B).
//!
//! SLINFER predicts iteration times from *measurements*, not from a model it
//! assumes: for each (LLM, hardware) pair it samples TTFT over a
//! power-of-two grid of input lengths and TPOT over a power-of-two grid of
//! (batch size × average length), then answers queries by 1-D / bilinear
//! interpolation. Sampling `O(log L_max · log B_max)` points keeps profiling
//! to "a few hundred samples … completed within minutes" on real hardware —
//! here the samples come from the calibrated oracle perturbed by the same
//! noise the simulator applies to real iterations, so the quantifier's
//! estimation error is honest (the paper reports 5.9% TTFT / 3.9% TPOT mean
//! relative deviation).

use std::collections::BTreeMap;

use hwmodel::{HardwareSpec, ModelSpec, NoiseModel, PerfOracle};
use simcore::rng::SimRng;

/// Interpolating predictor for one (model, hardware, share) combination.
#[derive(Debug, Clone)]
pub struct Quantifier {
    /// `(input_len, seconds)` samples, ascending in length.
    prefill: Vec<(u32, f64)>,
    /// Batch-size grid (powers of two).
    batches: Vec<u32>,
    /// Average-length grid (powers of two).
    lengths: Vec<u32>,
    /// `decode[i][j]` = seconds at `batches[i]`, `lengths[j]`.
    decode: Vec<Vec<f64>>,
}

impl Quantifier {
    /// Profiles `(model, hw)` at compute share `share` by sampling `oracle`
    /// through `noise` (like timing real iterations).
    pub fn profile(
        model: &ModelSpec,
        hw: &HardwareSpec,
        share: f64,
        oracle: &dyn PerfOracle,
        noise: &NoiseModel,
        rng: &mut SimRng,
        max_batch: u32,
    ) -> Self {
        let l_max = model.max_context.max(2);
        let mut lengths = Vec::new();
        let mut l = 16u32;
        while l < l_max {
            lengths.push(l);
            l *= 2;
        }
        lengths.push(l_max);
        let mut batches = Vec::new();
        let mut b = 1u32;
        while b < max_batch {
            batches.push(b);
            b *= 2;
        }
        batches.push(max_batch.max(1));
        batches.dedup();

        // Tensor-parallel deployments are sampled with their collective
        // overhead folded in (the quantifier times whole iterations on the
        // deployed topology); degree-1 models hit the identical code path
        // as before, sample for sample.
        let tp = model.tp_degree.max(1);
        let prefill = lengths
            .iter()
            .map(|&len| {
                let t = oracle.prefill_time_tp(model, hw, len, share, tp);
                (len, noise.apply(t, rng))
            })
            .collect();
        let decode = batches
            .iter()
            .map(|&bs| {
                lengths
                    .iter()
                    .map(|&len| {
                        let t =
                            oracle.decode_time_tp(model, hw, bs, bs as u64 * len as u64, share, tp);
                        noise.apply(t, rng)
                    })
                    .collect()
            })
            .collect();
        Quantifier {
            prefill,
            batches,
            lengths,
            decode,
        }
    }

    /// Number of samples this profile took (the §VI-B
    /// `O(log L · log B)` budget).
    pub fn sample_count(&self) -> usize {
        self.prefill.len() + self.batches.len() * self.lengths.len()
    }

    /// Estimated prefill seconds for `input_len` tokens (1-D interpolation,
    /// linear extrapolation at the edges).
    pub fn prefill_s(&self, input_len: u32) -> f64 {
        interp1(&self.prefill, input_len as f64).max(0.0)
    }

    /// Estimated decode-iteration seconds at `batch` sequences with average
    /// context `avg_len` (bilinear interpolation).
    pub fn decode_s(&self, batch: u32, avg_len: u32) -> f64 {
        if batch == 0 {
            return 0.0;
        }
        let bi = bracket(&self.batches, batch as f64);
        let lj = bracket(&self.lengths, avg_len as f64);
        let (b0, b1) = bi;
        let (l0, l1) = lj;
        let fb = frac(
            self.batches[b0] as f64,
            self.batches[b1] as f64,
            batch as f64,
        );
        let fl = frac(
            self.lengths[l0] as f64,
            self.lengths[l1] as f64,
            avg_len as f64,
        );
        let v00 = self.decode[b0][l0];
        let v01 = self.decode[b0][l1];
        let v10 = self.decode[b1][l0];
        let v11 = self.decode[b1][l1];
        let v0 = v00 + (v01 - v00) * fl;
        let v1 = v10 + (v11 - v10) * fl;
        (v0 + (v1 - v0) * fb).max(0.0)
    }
}

/// Linear interpolation over ascending `(x, y)` samples with extrapolation.
fn interp1(samples: &[(u32, f64)], x: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    if samples.len() == 1 {
        return samples[0].1;
    }
    let xs: Vec<f64> = samples.iter().map(|&(l, _)| l as f64).collect();
    let (i0, i1) = bracket_f(&xs, x);
    let (x0, y0) = (xs[i0], samples[i0].1);
    let (x1, y1) = (xs[i1], samples[i1].1);
    y0 + (y1 - y0) * frac(x0, x1, x)
}

/// Indices of the two grid points bracketing `x` (clamped extrapolation
/// uses the outermost pair).
fn bracket(grid: &[u32], x: f64) -> (usize, usize) {
    let xs: Vec<f64> = grid.iter().map(|&g| g as f64).collect();
    bracket_f(&xs, x)
}

fn bracket_f(xs: &[f64], x: f64) -> (usize, usize) {
    debug_assert!(!xs.is_empty());
    if xs.len() == 1 {
        return (0, 0);
    }
    let mut i = 0;
    while i + 2 < xs.len() && xs[i + 1] < x {
        i += 1;
    }
    (i, i + 1)
}

fn frac(x0: f64, x1: f64, x: f64) -> f64 {
    if (x1 - x0).abs() < 1e-12 {
        0.0
    } else {
        (x - x0) / (x1 - x0)
    }
}

/// Lazily-profiled quantifiers keyed by `(model name, hardware name,
/// share, TP degree)`. A `BTreeMap` (not `HashMap`) so no future iteration
/// over the set can leak hash-randomized order into policy behaviour —
/// the same bug class PR 2's parked-scale-op map hit.
#[derive(Debug, Default)]
pub struct QuantifierSet {
    map: BTreeMap<(String, String), Quantifier>,
    rng: Option<SimRng>,
}

impl QuantifierSet {
    /// Creates an empty set whose profiling draws come from `seed`.
    pub fn new(seed: u64) -> Self {
        QuantifierSet {
            map: BTreeMap::new(),
            rng: Some(SimRng::new(seed).split(0x9A17)),
        }
    }

    fn key(model: &ModelSpec, hw: &HardwareSpec, share: f64) -> (String, String) {
        (
            model.name.clone(),
            format!("{}@{share:.3}@tp{}", hw.name, model.tp_degree.max(1)),
        )
    }

    /// Returns the profile for `(model, hw, share)`, profiling on first use.
    pub fn get_or_profile(
        &mut self,
        model: &ModelSpec,
        hw: &HardwareSpec,
        share: f64,
        oracle: &dyn PerfOracle,
        noise: &NoiseModel,
    ) -> &Quantifier {
        let key = Self::key(model, hw, share);
        let rng = self.rng.get_or_insert_with(|| SimRng::new(0));
        self.map
            .entry(key)
            .or_insert_with(|| Quantifier::profile(model, hw, share, oracle, noise, rng, 256))
    }

    /// Immutable lookup of an already-profiled pair.
    pub fn get(&self, model: &ModelSpec, hw: &HardwareSpec, share: f64) -> Option<&Quantifier> {
        self.map.get(&Self::key(model, hw, share))
    }

    /// Number of profiled pairs.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if nothing has been profiled yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwmodel::AnalyticPerf;

    fn profile(noise_cv: f64) -> Quantifier {
        let model = ModelSpec::llama2_7b();
        let hw = HardwareSpec::xeon4_amx_32c();
        let oracle = AnalyticPerf::new();
        let noise = NoiseModel::new(noise_cv);
        let mut rng = SimRng::new(42);
        Quantifier::profile(&model, &hw, 1.0, &oracle, &noise, &mut rng, 256)
    }

    #[test]
    fn sample_budget_is_log_log() {
        let q = profile(0.0);
        // O(log 4096 · log 256): a few hundred points at most (§VI-B).
        assert!(q.sample_count() < 200, "samples {}", q.sample_count());
    }

    #[test]
    fn noiseless_profile_interpolates_grid_points_exactly() {
        let q = profile(0.0);
        let oracle = AnalyticPerf::new();
        let model = ModelSpec::llama2_7b();
        let hw = HardwareSpec::xeon4_amx_32c();
        for len in [16u32, 64, 1024, 4096] {
            let est = q.prefill_s(len);
            let truth = oracle.prefill_time(&model, &hw, len, 1.0);
            assert!(
                (est - truth).abs() / truth < 1e-9,
                "grid point {len}: {est} vs {truth}"
            );
        }
        for (bs, len) in [(1u32, 1024u32), (32, 1024), (8, 512)] {
            let est = q.decode_s(bs, len);
            let truth = oracle.decode_time(&model, &hw, bs, bs as u64 * len as u64, 1.0);
            assert!(
                (est - truth).abs() / truth < 1e-9,
                "grid ({bs},{len}): {est} vs {truth}"
            );
        }
    }

    #[test]
    fn off_grid_interpolation_is_close() {
        // The decode surface is bilinear in (batch, len) and the true model
        // is linear in batch and total tokens (= batch·len, slightly
        // super-bilinear), so off-grid error stays small.
        let q = profile(0.0);
        let oracle = AnalyticPerf::new();
        let model = ModelSpec::llama2_7b();
        let hw = HardwareSpec::xeon4_amx_32c();
        for (bs, len) in [(3u32, 700u32), (12, 1500), (48, 900), (5, 3000)] {
            let est = q.decode_s(bs, len);
            let truth = oracle.decode_time(&model, &hw, bs, bs as u64 * len as u64, 1.0);
            let err = (est - truth).abs() / truth;
            assert!(err < 0.12, "({bs},{len}): err {err}");
        }
        for len in [100u32, 777, 2500, 3900] {
            let est = q.prefill_s(len);
            let truth = oracle.prefill_time(&model, &hw, len, 1.0);
            let err = (est - truth).abs() / truth;
            assert!(err < 0.08, "prefill {len}: err {err}");
        }
    }

    /// §VI-B's validation experiment: 100 random workloads, mean relative
    /// deviation between estimated and *noisy actual* times ≈ 5.9% / 3.9%.
    #[test]
    fn estimation_error_matches_paper_magnitudes() {
        let q = profile(0.05);
        let oracle = AnalyticPerf::new();
        let noise = NoiseModel::new(0.05);
        let model = ModelSpec::llama2_7b();
        let hw = HardwareSpec::xeon4_amx_32c();
        let mut rng = SimRng::new(7);
        let mut ttft_err = 0.0;
        let mut tpot_err = 0.0;
        let n = 100;
        for _ in 0..n {
            let len = rng.next_range(64, 4000) as u32;
            let actual = noise.apply(oracle.prefill_time(&model, &hw, len, 1.0), &mut rng);
            ttft_err += (q.prefill_s(len) - actual).abs() / actual;
            let bs = rng.next_range(1, 32) as u32;
            let alen = rng.next_range(128, 3000) as u32;
            let actual = noise.apply(
                oracle.decode_time(&model, &hw, bs, bs as u64 * alen as u64, 1.0),
                &mut rng,
            );
            tpot_err += (q.decode_s(bs, alen) - actual).abs() / actual;
        }
        ttft_err /= n as f64;
        tpot_err /= n as f64;
        // Paper: 5.9% and 3.9%. Accept the same order of magnitude.
        assert!(
            (0.02..0.12).contains(&ttft_err),
            "TTFT deviation {ttft_err}"
        );
        assert!(
            (0.02..0.12).contains(&tpot_err),
            "TPOT deviation {tpot_err}"
        );
    }

    #[test]
    fn monotone_queries() {
        let q = profile(0.0);
        assert!(q.prefill_s(2000) > q.prefill_s(500));
        assert!(q.decode_s(32, 1024) > q.decode_s(4, 1024));
        assert!(q.decode_s(8, 4000) > q.decode_s(8, 500));
        assert_eq!(q.decode_s(0, 1024), 0.0);
    }

    #[test]
    fn tp_profiles_fold_in_the_interconnect() {
        let oracle = AnalyticPerf::new();
        let noise = NoiseModel::off();
        let hw = HardwareSpec::a100_80g().ganged(4);
        let base = ModelSpec::llama2_13b();
        let tp2 = base.clone().with_tp(2);
        let mut rng = SimRng::new(3);
        let q1 = Quantifier::profile(&base, &hw, 0.5, &oracle, &noise, &mut rng, 256);
        let mut rng = SimRng::new(3);
        let q2 = Quantifier::profile(&tp2, &hw, 0.5, &oracle, &noise, &mut rng, 256);
        // Same compute share, but TP=2 pays the all-reduce term.
        assert!(q2.prefill_s(2048) > q1.prefill_s(2048));
        assert!(q2.decode_s(16, 1024) > q1.decode_s(16, 1024));
        // Distinct cache entries: the degree is part of the profile key.
        let mut set = QuantifierSet::new(1);
        set.get_or_profile(&base, &hw, 0.5, &oracle, &noise);
        set.get_or_profile(&tp2, &hw, 0.5, &oracle, &noise);
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn set_profiles_lazily_and_caches() {
        let mut set = QuantifierSet::new(1);
        assert!(set.is_empty());
        let oracle = AnalyticPerf::new();
        let noise = NoiseModel::off();
        let m = ModelSpec::llama2_7b();
        let hw = HardwareSpec::a100_80g();
        let a = set
            .get_or_profile(&m, &hw, 1.0, &oracle, &noise)
            .prefill_s(512);
        assert_eq!(set.len(), 1);
        let b = set
            .get_or_profile(&m, &hw, 1.0, &oracle, &noise)
            .prefill_s(512);
        assert_eq!(set.len(), 1, "second lookup must hit the cache");
        assert_eq!(a, b);
        // A different share is a different profile.
        set.get_or_profile(&m, &hw, 0.5, &oracle, &noise);
        assert_eq!(set.len(), 2);
    }
}
