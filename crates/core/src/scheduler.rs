//! The SLINFER scheduler: the [`Policy`] that ties the three subsystems
//! together, following the request lifecycle of §V.
//!
//! On arrival a request is offered to existing instances of its model —
//! CPU-first, largest-batch-first (§VIII-B) — each gated by shadow
//! validation (§VI-C) *and* a memory check (§VII). If every instance is
//! blocked on memory, the consolidator tries proactive preemption (§VIII-A).
//! Failing that, a new instance is bin-packed onto the tightest-fitting
//! feasible node. Failing that, the request queues and is dropped at its
//! TTFT deadline (§IX-A). Nodes execute via token-level min-headroom
//! scheduling (Eq. 1, Fig. 14); KV grants ride the watermark policy through
//! the optimistic/pessimistic orchestrator.

use std::collections::{BTreeMap, BTreeSet};

use cluster::{ClusterEvent, MemError, NodeId, Policy, World};
use engine::instance::{InstanceId, InstanceState, IterationKind};
use engine::request::{ReqPhase, RunningRequest};
use simcore::time::{SimDuration, SimTime};
use workload::request::{ModelId, RequestId};

use crate::config::SlinferConfig;
use crate::consolidate::{order_candidates, pick_victim, victim_footprint};
use crate::memory::{recommend_bytes, should_scale_down, MemoryPlanner, ScaleDecision};
use crate::quantify::QuantifierSet;
use crate::shadow::{validate, InstView, ShadowReq, Verdict};

/// Timer-payload tag distinguishing PD handoff timers from drop timers.
const TAG_HANDOFF: u64 = 1 << 63;

/// Timer-payload tag for the periodic liveness sweep.
const TAG_SWEEP: u64 = 1 << 62;

/// Liveness sweep period.
const SWEEP_PERIOD: SimDuration = SimDuration::from_millis(500);

/// The SLINFER serving policy.
///
/// Every collection of policy state is ordered (`BTreeMap`/`BTreeSet`, or
/// a `Vec` in arrival order) — never a hash map. PR 2 caught scale-op
/// issue order leaking `HashMap` hash randomness into results, making the
/// same binary diverge across processes; the node-event sweeps over
/// `wanted_scale`/`issued_scale` and any future iteration over the maps
/// below would be the same bug class, so the whole struct is audited to
/// ordered containers and `tests/determinism.rs` pins a cross-process
/// fingerprint for the node-event path.
pub struct Slinfer {
    cfg: SlinferConfig,
    quant: QuantifierSet,
    planner: Option<MemoryPlanner>,
    /// Per-model historical output lengths: (sum, count).
    avg_out: BTreeMap<u32, (f64, u64)>,
    /// Requests awaiting placement, with their drop deadlines.
    queue: Vec<RunningRequest>,
    /// Requests that already have a drop timer registered.
    timers: BTreeSet<RequestId>,
    /// When each slot's in-flight iteration ends (shadow start times).
    busy_until: BTreeMap<(u32, usize), SimTime>,
    /// Approved scale ops waiting for their instance to be free. Ordered:
    /// [`Self::try_issue_wanted`] iterates this map, and issue order must
    /// not depend on hash randomness or replays stop being byte-identical
    /// across processes.
    wanted_scale: BTreeMap<InstanceId, u64>,
    /// Scale ops issued to the engine and still in flight (target grant).
    issued_scale: BTreeMap<InstanceId, u64>,
    /// Expected activation time of loading instances (for validation).
    expected_active: BTreeMap<InstanceId, SimTime>,
    /// PD mode: instances dedicated to prefill (§IX-G).
    prefill_insts: BTreeSet<InstanceId>,
    /// PD mode: requests in flight between prefill and decode instances.
    pending_handoff: BTreeMap<u64, RunningRequest>,
}

impl Slinfer {
    /// Creates the policy.
    ///
    /// # Panics
    /// Panics if the configuration is invalid.
    pub fn new(cfg: SlinferConfig) -> Self {
        cfg.validate().expect("invalid SLINFER config");
        Slinfer {
            cfg,
            quant: QuantifierSet::new(0x51F3),
            planner: None,
            avg_out: BTreeMap::new(),
            queue: Vec::new(),
            timers: BTreeSet::new(),
            busy_until: BTreeMap::new(),
            wanted_scale: BTreeMap::new(),
            issued_scale: BTreeMap::new(),
            expected_active: BTreeMap::new(),
            prefill_insts: BTreeSet::new(),
            pending_handoff: BTreeMap::new(),
        }
    }

    /// Read access to the configuration.
    pub fn config(&self) -> &SlinferConfig {
        &self.cfg
    }

    fn ensure_init(&mut self, w: &mut World) {
        if self.planner.is_none() {
            let caps: Vec<u64> = w.node_ids().map(|n| w.node_hw(n).mem_bytes).collect();
            self.planner = Some(MemoryPlanner::new(caps));
            w.set_timer(SWEEP_PERIOD, TAG_SWEEP);
        }
    }

    fn planner(&mut self) -> &mut MemoryPlanner {
        self.planner.as_mut().expect("planner initialized")
    }

    fn avg_output(&self, model: ModelId) -> f64 {
        match self.avg_out.get(&model.0) {
            Some(&(sum, n)) if n > 0 => sum / n as f64,
            _ => self.cfg.default_avg_output,
        }
    }

    fn l_min(&self, w: &World, model: ModelId) -> u32 {
        self.cfg
            .l_min_tokens
            .unwrap_or_else(|| w.model_spec(model).max_context)
    }

    fn node_allowed(&self, w: &World, node: NodeId, model: ModelId) -> bool {
        if !w.node_schedulable(node) {
            return false;
        }
        let hw = w.node_hw(node);
        let spec = w.model_spec(model);
        if !hw.can_serve(spec) {
            return false;
        }
        if hw.kind.is_cpu() && !self.cfg.enable_cpu {
            return false;
        }
        // A tensor-parallel deployment needs its whole slot group on one
        // node; smaller nodes can never host it.
        if w.slot_count(node) < spec.tp_degree.max(1) as usize {
            return false;
        }
        true
    }

    /// The compute share a *new* instance of `model` would own on `node`:
    /// its prospective slot group's summed share
    /// ([`World::slot_group_for`] picks the least-populated slots).
    fn prospective_share(w: &World, node: NodeId, model: ModelId) -> Option<f64> {
        let tp = w.model_spec(model).tp_degree.max(1) as usize;
        let group = w.slot_group_for(node, tp)?;
        Some(group.iter().map(|&s| w.slot_share(node, s)).sum())
    }

    /// Profiles one `(model spec, node hardware, share)` combination; the
    /// spec's TP degree is folded into the profile by the quantifier.
    fn ensure_profile(&mut self, w: &World, node: NodeId, model: ModelId, share: f64) {
        let hw = w.node_hw(node).clone();
        let spec = w.model_spec(model).clone();
        self.quant
            .get_or_profile(&spec, &hw, share, w.perf(), &w.cfg.noise);
    }

    /// Profiles every listed instance at its own placement share (TP
    /// groups own more compute than their node's single-slot share).
    fn ensure_instance_profiles(&mut self, w: &World, node: NodeId, ids: &[InstanceId]) {
        let hw = w.node_hw(node).clone();
        for &id in ids {
            let Some(i) = w.instance(id) else { continue };
            let spec = i.spec.clone();
            let share = w.instance_share(id);
            self.quant
                .get_or_profile(&spec, &hw, share, w.perf(), &w.cfg.noise);
        }
    }

    /// Whether a CPU node can hold this request's SLO at all (§V's
    /// "transparently falls back to GPU" check).
    fn request_feasible_on(&mut self, w: &World, node: NodeId, rr: &RunningRequest) -> bool {
        let hw = w.node_hw(node).clone();
        if !hw.kind.is_cpu() {
            return true;
        }
        let model = rr.req.model;
        let Some(share) = Self::prospective_share(w, node, model) else {
            return false;
        };
        self.ensure_profile(w, node, model, share);
        let spec = w.model_spec(model);
        let q = self.quant.get(spec, &hw, share).expect("just profiled");
        let slo = w.slo_for(&rr.req);
        let over = self.cfg.overestimate;
        let prefill_ok =
            q.prefill_s(rr.prefill_len()) * over <= slo.ttft(rr.req.input_len).as_secs_f64();
        let ctx = rr.req.input_len + self.avg_output(model) as u32;
        let decode_ok = q.decode_s(1, ctx) * over <= slo.tpot_s;
        prefill_ok && decode_ok
    }

    fn shadow_start(&self, w: &World, node: NodeId, slot: usize, target: InstanceId) -> SimTime {
        let mut start = w.now();
        let group: Vec<usize> = w
            .instance_slots(target)
            .map(|s| s.to_vec())
            .unwrap_or_else(|| vec![slot]);
        for s in group {
            if let Some(&b) = self.busy_until.get(&(node.0, s)) {
                start = start.max(b);
            }
        }
        if let Some(&act) = self.expected_active.get(&target) {
            start = start.max(act);
        }
        start
    }

    /// The instances contending any slot of `slots` on `node`, deduped and
    /// ascending — the co-tenant set shadow validation replays. A TP group
    /// can overlap different neighbours on different slots, so a
    /// single-slot scan would miss contenders.
    fn colocated(w: &World, node: NodeId, slots: &[usize]) -> Vec<InstanceId> {
        let mut ids: Vec<InstanceId> = slots
            .iter()
            .flat_map(|&s| w.instances_on_slot(node, s))
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Shadow-validates admitting `rr` to `target` (§VI-C).
    fn shadow_check(&mut self, w: &mut World, target: InstanceId, rr: &RunningRequest) -> bool {
        let Some((node, slot)) = w.instance_placement(target) else {
            return false;
        };
        let target_slots: Vec<usize> = w
            .instance_slots(target)
            .map(|s| s.to_vec())
            .unwrap_or_else(|| vec![slot]);
        let ids = Self::colocated(w, node, &target_slots);
        self.ensure_instance_profiles(w, node, &ids);
        let hw = w.node_hw(node).clone();
        let start = self.shadow_start(w, node, slot, target);
        // Candidate's grace: admitted-during-load requests get the load
        // duration; approximate with expected activation for loading targets.
        let cand_anchor = match self.expected_active.get(&target) {
            Some(&act) if act > rr.req.arrival => act,
            _ => rr.req.arrival + rr.grace,
        };
        let mut views = Vec::with_capacity(ids.len());
        let mut target_ix = 0;
        for (k, &id) in ids.iter().enumerate() {
            let inst = w.instance(id).expect("listed");
            let q = self
                .quant
                .get(&inst.spec, &hw, w.instance_share(id))
                .expect("profiled above");
            // Requests admitted during a cold start have not received their
            // grace yet; anchor them at the expected activation instead.
            let pending_act = self.expected_active.get(&id).copied();
            let mut reqs: Vec<ShadowReq> = inst
                .requests()
                .iter()
                .map(|r| {
                    let mut anchor = r.req.arrival + r.grace;
                    if let (Some(act), true) = (pending_act, r.grace.is_zero()) {
                        anchor = anchor.max(act);
                    }
                    ShadowReq {
                        anchor,
                        slo: w.slo_for(&r.req),
                        input_len: r.req.input_len,
                        tokens_done: r.tokens_out,
                        prefill_len: r.prefill_len(),
                        waiting: matches!(r.phase, ReqPhase::Waiting),
                    }
                })
                .collect();
            if id == target {
                target_ix = k;
                reqs.push(ShadowReq {
                    anchor: cand_anchor,
                    slo: w.slo_for(&rr.req),
                    input_len: rr.req.input_len,
                    tokens_done: rr.tokens_out,
                    prefill_len: rr.prefill_len(),
                    waiting: matches!(rr.phase, ReqPhase::Waiting),
                });
            }
            views.push(InstView { quant: q, reqs });
        }
        let cand_ix = views[target_ix].reqs.len() - 1;
        w.note_shadow_validation();
        validate(&mut views, target_ix, cand_ix, start, self.cfg.overestimate) == Verdict::Pass
    }

    /// Eq. 2 requirement if `rr` joined `inst`.
    fn required_with(&self, w: &World, inst: InstanceId, rr: &RunningRequest) -> u64 {
        let i = w.instance(inst).expect("instance exists");
        let avg = self.avg_output(i.model);
        let lmin = self.l_min(w, i.model);
        let mut sum: f64 = i
            .requests()
            .iter()
            .map(|r| r.req.input_len as f64 + (r.tokens_out as f64).max(avg))
            .sum();
        sum += rr.prefill_len() as f64 + avg;
        let tokens = sum.max(lmin as f64);
        (tokens * i.spec.kv_bytes_per_token() as f64).ceil() as u64
    }

    /// The grant an instance is heading towards: the max of its current
    /// grant, any in-flight rescale target, and any approved-but-parked
    /// target.
    fn future_grant(&self, w: &World, inst: InstanceId) -> u64 {
        let cur = w.instance(inst).map(|i| i.kv_capacity_bytes()).unwrap_or(0);
        let issued = self.issued_scale.get(&inst).copied().unwrap_or(0);
        let wanted = self.wanted_scale.get(&inst).copied().unwrap_or(0);
        cur.max(issued).max(wanted)
    }

    /// Plans growth of `inst`'s grant to cover `require` bytes, trying the
    /// watermark-recommended size first and compromising at `require`
    /// (§VII-D). Coalesces with in-flight ops: the delta is planned on top
    /// of the instance's future grant. Returns true if growth is approved
    /// (executed, pending, or reserved).
    fn plan_grow(&mut self, w: &mut World, inst: InstanceId, require: u64) -> bool {
        let Some((node, _)) = w.instance_placement(inst) else {
            return false;
        };
        if self.planner().has_reservation(node, inst) {
            // A reservation is already queued; it will cover or be followed.
            return self.future_grant(w, inst) >= require;
        }
        let future = self.future_grant(w, inst);
        if future >= require {
            return true;
        }
        let recommend = recommend_bytes(require, self.cfg.watermark);
        let physical = w.node_available_bytes(node);
        for target in [recommend, require] {
            if target <= future {
                continue;
            }
            match self
                .planner()
                .plan_scale(node, inst, future, target, physical)
            {
                ScaleDecision::Execute => {
                    self.wanted_scale.insert(inst, target);
                    self.try_issue_wanted(w, node);
                    return true;
                }
                ScaleDecision::Reserve => return true,
                ScaleDecision::Reject => continue,
            }
        }
        false
    }

    /// Plans the memory side of admitting `rr` to `inst`. Returns false if
    /// the node cannot (even with the §VII-D compromise) hold the demand.
    fn memory_check(&mut self, w: &mut World, inst: InstanceId, rr: &RunningRequest) -> bool {
        let require = self.required_with(w, inst, rr);
        if self.future_grant(w, inst) >= require {
            return true;
        }
        self.plan_grow(w, inst, require)
    }

    /// Re-evaluates a node's parked memory work after physical bytes were
    /// released (scale-down completion, unload, preemption) — the
    /// reservation-station notification of §VII-C.
    fn nudge_memory(&mut self, w: &mut World, node: NodeId) {
        let physical = w.node_available_bytes(node);
        let popped = self.planner().release_reservations(node, physical);
        for p in popped {
            let e = self.wanted_scale.entry(p.inst).or_insert(p.to_bytes);
            *e = (*e).max(p.to_bytes);
        }
        self.try_issue_wanted(w, node);
    }

    /// Issues approved-but-parked scale ops whose instance is now free.
    fn try_issue_wanted(&mut self, w: &mut World, node: NodeId) {
        let candidates: Vec<(InstanceId, u64)> = self
            .wanted_scale
            .iter()
            .filter(|(&i, _)| {
                w.instance_placement(i)
                    .map(|(n, _)| n == node)
                    .unwrap_or(false)
            })
            .map(|(&i, &t)| (i, t))
            .collect();
        for (inst, to) in candidates {
            let Some(i) = w.instance(inst) else {
                self.wanted_scale.remove(&inst);
                continue;
            };
            if i.busy || i.scaling || i.state != InstanceState::Active {
                continue;
            }
            let cur = i.kv_capacity_bytes();
            if to == cur {
                self.wanted_scale.remove(&inst);
                continue;
            }
            if to > cur && to - cur > w.node_available_bytes(node) {
                continue; // physically blocked; a release will nudge us
            }
            match w.start_kv_scale(inst, to) {
                Ok(()) => {
                    self.wanted_scale.remove(&inst);
                    self.issued_scale.insert(inst, to);
                }
                Err(MemError::BelowLiveSet) => {
                    // Usage grew past the planned shrink target: cancel and
                    // refund the optimistic release.
                    self.wanted_scale.remove(&inst);
                    if to < cur {
                        self.planner().commit(node, cur - to);
                    }
                }
                Err(_) => { /* physically blocked; retry on next release */ }
            }
        }
    }

    /// The watermark's lazy scale-down (§VII-B), called on completions.
    fn maybe_scale_down(&mut self, w: &mut World, inst: InstanceId) {
        if !self.cfg.enable_sharing {
            return; // exclusive instances keep their full grant
        }
        let Some((node, _)) = w.instance_placement(inst) else {
            return;
        };
        let Some(i) = w.instance(inst) else { return };
        if i.scaling
            || self.wanted_scale.contains_key(&inst)
            || self.issued_scale.contains_key(&inst)
            || self.planner().has_reservation(node, inst)
        {
            return;
        }
        let avg = self.avg_output(i.model);
        let lmin = self.l_min(w, i.model);
        let require = i.kv_required_bytes(avg, lmin);
        let recommend = recommend_bytes(require, self.cfg.watermark);
        let cur = i.kv_capacity_bytes();
        if !should_scale_down(cur, recommend, self.cfg.watermark) {
            return;
        }
        let target = recommend.max(i.kv_used_bytes());
        if target >= cur {
            return;
        }
        let physical = w.node_available_bytes(node);
        if self.planner().plan_scale(node, inst, cur, target, physical) == ScaleDecision::Execute {
            self.wanted_scale.insert(inst, target);
            self.try_issue_wanted(w, node);
        }
    }

    /// Full §V admission pipeline. Returns true if the request was placed.
    fn try_place(&mut self, w: &mut World, rr: &RunningRequest, allow_preempt: bool) -> bool {
        self.try_place_excluding(w, rr, allow_preempt, None)
    }

    /// [`Self::try_place`] with an optional instance to skip (used when
    /// rescheduling a request evicted from that very instance).
    fn try_place_excluding(
        &mut self,
        w: &mut World,
        rr: &RunningRequest,
        allow_preempt: bool,
        exclude: Option<InstanceId>,
    ) -> bool {
        self.ensure_init(w);
        let model = rr.req.model;
        // Session affinity fast path: a follow-up turn prefers the instance
        // holding its parked prefix KV, subject to the same §V admission
        // checks as any other candidate. On any failure it falls through to
        // the normal ordered scan (inert when sessions are off).
        if let Some(home) = w.session_affinity_target(&rr.req) {
            if Some(home) != exclude
                && (!self.cfg.pd_disaggregate || self.prefill_insts.contains(&home))
            {
                if let Some((node, _)) = w.instance_placement(home) {
                    if self.node_allowed(w, node, model)
                        && self.request_feasible_on(w, node, rr)
                        && self.shadow_check(w, home, rr)
                        && self.memory_check(w, home, rr)
                    {
                        w.admit(home, rr.clone());
                        return true;
                    }
                }
            }
        }
        let candidates =
            order_candidates(w, model, self.cfg.enable_cpu, self.cfg.enable_consolidation);
        let mut mem_blocked: Vec<InstanceId> = Vec::new();
        for inst in candidates {
            if Some(inst) == exclude {
                continue;
            }
            if self.cfg.pd_disaggregate && !self.prefill_insts.contains(&inst) {
                continue; // arrivals only enter the prefill pool in PD mode
            }
            let Some((node, _)) = w.instance_placement(inst) else {
                continue;
            };
            if !self.node_allowed(w, node, model) {
                continue;
            }
            if !self.request_feasible_on(w, node, rr) {
                continue;
            }
            if !self.shadow_check(w, inst, rr) {
                continue;
            }
            if !self.memory_check(w, inst, rr) {
                mem_blocked.push(inst);
                continue;
            }
            w.admit(inst, rr.clone());
            return true;
        }
        // §VIII-A proactive consolidation.
        if allow_preempt && self.cfg.enable_consolidation {
            for target in mem_blocked {
                if self.try_preempt_for(w, target, rr) {
                    return true;
                }
            }
        }
        // Scale out: a fresh instance (§V fallback).
        self.try_create(w, rr, true)
    }

    /// Preempts the smallest-batch neighbour of `target` and reroutes its
    /// requests, then admits `rr` to `target` (§VIII-A).
    fn try_preempt_for(&mut self, w: &mut World, target: InstanceId, rr: &RunningRequest) -> bool {
        let Some((node, _)) = w.instance_placement(target) else {
            return false;
        };
        let Some(victim) = pick_victim(w, target) else {
            return false;
        };
        // Shadow-validate that the freed bytes actually cover the demand.
        let require = self.required_with(w, target, rr);
        let cur = w
            .instance(target)
            .map(|i| i.kv_capacity_bytes())
            .unwrap_or(0);
        if cur < require {
            let delta = require - cur;
            let freed = victim_footprint(w, victim);
            if self.planner().optimistic_available(node) + freed < delta {
                return false; // one victim is not enough; stay conservative
            }
        }
        // Validate the victim's requests can land elsewhere before touching
        // anything (per-request check; §VIII-A's rescheduling validation).
        let victim_reqs: Vec<RequestId> = w
            .instance(victim)
            .map(|i| i.requests().iter().map(|r| r.req.id).collect())
            .unwrap_or_default();
        // Execute: drain, unload, reroute, then admit.
        let drained = {
            let now = w.now();
            let Some(vi) = w.instance_mut(victim) else {
                return false;
            };
            vi.drain_for_preemption(now)
        };
        self.cancel_instance_state(w, victim);
        let footprint = victim_footprint(w, victim);
        w.unload_instance(victim);
        self.planner().release(node, footprint);
        self.nudge_memory(w, node);
        w.note_preemption();
        w.note_migration(&victim_reqs);
        for moved in drained {
            if !self.try_place(w, &moved, false) {
                self.enqueue(w, moved);
            }
        }
        // Now retry the target's memory path and admit.
        if self.memory_check(w, target, rr) {
            w.admit(target, rr.clone());
            true
        } else {
            false
        }
    }

    /// Creates a new instance for `rr` via best-fit bin-packing (§V).
    fn try_create(&mut self, w: &mut World, rr: &RunningRequest, as_prefill: bool) -> bool {
        let model = rr.req.model;
        let spec = w.model_spec(model).clone();
        let avg = self.avg_output(model);
        let lmin = self.l_min(w, model);
        let first_tokens = (rr.prefill_len() as f64 + avg).max(lmin as f64);
        let require = (first_tokens * spec.kv_bytes_per_token() as f64).ceil() as u64;
        let grant = recommend_bytes(require, self.cfg.watermark);

        // Order nodes: CPU (if feasible) before GPU; then ServerlessLLM's
        // startup-time-estimated scheduling — the estimated load time from
        // each node's warmest checkpoint tier (HBM co-residency, DRAM
        // cache, SSD, remote fetch, plus loading-channel contention);
        // best-fit breaks the remaining ties. Under the flat default
        // checkpoint configuration every node of a kind scores the same,
        // so the legacy (kind, best-fit) order replays byte-identically.
        let mut options: Vec<(u8, u64, u64, NodeId)> = Vec::new();
        for node in w.node_ids() {
            if !self.node_allowed(w, node, model) {
                continue;
            }
            if !self.cfg.enable_sharing && !w.instances_on_node(node).is_empty() {
                continue;
            }
            if !self.request_feasible_on(w, node, rr) {
                continue;
            }
            let hw = w.node_hw(node);
            let kind_rank = if hw.kind.is_cpu() { 0u8 } else { 1 };
            let avail = self.planner().optimistic_available(node);
            let needed = spec.weights_bytes() + grant;
            if avail < needed || w.node_available_bytes(node) < needed {
                continue;
            }
            options.push((
                kind_rank,
                w.startup_score_ns(model, node),
                avail - needed,
                node,
            ));
        }
        options.sort();
        let tp = spec.tp_degree.max(1) as usize;
        for (_, _, _, node) in options {
            // The slot group this instance would claim (the least-loaded
            // slot for plain models, a k-slot group for TP deployments).
            let Some(group) = w.slot_group_for(node, tp) else {
                continue;
            };
            // Validate the newcomer against the node's existing tenants.
            if !self.shadow_check_new(w, node, &group, rr) {
                continue;
            }
            let effective_grant = if self.cfg.enable_sharing {
                grant
            } else {
                // Exclusive mode: hand the instance all remaining memory.
                w.node_available_bytes(node)
                    .saturating_sub(spec.weights_bytes())
            };
            // Estimate the activation time *before* creating: the fetch
            // below promotes the checkpoint and joins the loading channel,
            // so a post-create estimate would price the warmer, busier
            // state instead of the load actually being issued. (Identical
            // either way under the flat default configuration.)
            let act = w.now() + SimDuration::from_secs_f64(w.estimate_load_s(model, node));
            match w.create_instance_group(model, node, &group, effective_grant) {
                Ok(inst) => {
                    self.planner()
                        .commit(node, spec.weights_bytes() + effective_grant);
                    self.expected_active.insert(inst, act);
                    if self.cfg.pd_disaggregate && as_prefill {
                        self.prefill_insts.insert(inst);
                    }
                    if matches!(rr.phase, ReqPhase::Waiting) {
                        w.admit(inst, rr.clone());
                    } else if !w.admit_decoding(inst, rr.clone()) {
                        continue; // fresh grant too small for the context
                    }
                    return true;
                }
                Err(_) => continue,
            }
        }
        false
    }

    /// Shadow validation for a brand-new instance claiming `group` on
    /// `node`, holding only the candidate.
    fn shadow_check_new(
        &mut self,
        w: &mut World,
        node: NodeId,
        group: &[usize],
        rr: &RunningRequest,
    ) -> bool {
        let ids = Self::colocated(w, node, group);
        self.ensure_instance_profiles(w, node, &ids);
        let cand_share: f64 = group.iter().map(|&s| w.slot_share(node, s)).sum();
        self.ensure_profile(w, node, rr.req.model, cand_share);
        let hw = w.node_hw(node).clone();
        let mut start = w.now();
        for &s in group {
            if let Some(&b) = self.busy_until.get(&(node.0, s)) {
                start = start.max(b);
            }
        }
        // Cold start shifts the candidate's anchor by the load time (grace).
        let act = w.now() + SimDuration::from_secs_f64(w.estimate_load_s(rr.req.model, node));
        let mut views = Vec::with_capacity(ids.len() + 1);
        for &id in &ids {
            let inst = w.instance(id).expect("listed");
            let q = self
                .quant
                .get(&inst.spec, &hw, w.instance_share(id))
                .expect("profiled above");
            let pending_act = self.expected_active.get(&id).copied();
            let reqs: Vec<ShadowReq> = inst
                .requests()
                .iter()
                .map(|r| {
                    let mut anchor = r.req.arrival + r.grace;
                    if let (Some(act), true) = (pending_act, r.grace.is_zero()) {
                        anchor = anchor.max(act);
                    }
                    ShadowReq {
                        anchor,
                        slo: w.slo_for(&r.req),
                        input_len: r.req.input_len,
                        tokens_done: r.tokens_out,
                        prefill_len: r.prefill_len(),
                        waiting: matches!(r.phase, ReqPhase::Waiting),
                    }
                })
                .collect();
            views.push(InstView { quant: q, reqs });
        }
        let spec = w.model_spec(rr.req.model);
        let q_new = self
            .quant
            .get(spec, &hw, cand_share)
            .expect("profiled above");
        views.push(InstView {
            quant: q_new,
            reqs: vec![ShadowReq {
                anchor: act.max(rr.req.arrival + rr.grace),
                slo: w.slo_for(&rr.req),
                input_len: rr.req.input_len,
                tokens_done: rr.tokens_out,
                prefill_len: rr.prefill_len(),
                waiting: matches!(rr.phase, ReqPhase::Waiting),
            }],
        });
        let target = views.len() - 1;
        w.note_shadow_validation();
        validate(&mut views, target, 0, start.max(act), self.cfg.overestimate) == Verdict::Pass
    }

    /// PD mode: lands a prefilled request on a decode instance (§IX-G).
    fn place_decode(&mut self, w: &mut World, rr: RunningRequest) -> Result<(), RunningRequest> {
        let model = rr.req.model;
        let candidates =
            order_candidates(w, model, self.cfg.enable_cpu, self.cfg.enable_consolidation);
        for inst in candidates {
            if self.prefill_insts.contains(&inst) {
                continue;
            }
            let Some((node, _)) = w.instance_placement(inst) else {
                continue;
            };
            if !self.node_allowed(w, node, model) {
                continue;
            }
            if !self.shadow_check(w, inst, &rr) {
                continue;
            }
            if !self.memory_check(w, inst, &rr) {
                continue;
            }
            if w.admit_decoding(inst, rr.clone()) {
                return Ok(());
            }
        }
        if self.try_create(w, &rr, false) {
            return Ok(());
        }
        Err(rr)
    }

    fn enqueue(&mut self, w: &mut World, rr: RunningRequest) {
        let deadline = rr.next_deadline(&w.slo_for(&rr.req));
        if w.now() >= deadline {
            w.drop_request(&rr);
            return;
        }
        if self.timers.insert(rr.req.id) {
            w.set_timer(deadline - w.now(), rr.req.id.0);
        }
        self.queue.push(rr);
    }

    fn retry_queue(&mut self, w: &mut World) {
        if self.queue.is_empty() {
            return;
        }
        let pending = std::mem::take(&mut self.queue);
        for rr in pending {
            if w.now() >= rr.next_deadline(&w.slo_for(&rr.req)) {
                w.drop_request(&rr);
            } else if !self.try_place(w, &rr, true) {
                self.queue.push(rr);
            }
        }
    }

    /// Removes all scheduler state tied to an instance being unloaded.
    fn cancel_instance_state(&mut self, w: &World, inst: InstanceId) {
        if let Some((node, _)) = w.instance_placement(inst) {
            // Refund a parked (approved) op.
            if let Some(to) = self.wanted_scale.remove(&inst) {
                let cur = w.instance(inst).map(|i| i.kv_capacity_bytes()).unwrap_or(0);
                if to > cur {
                    self.planner().release(node, to - cur);
                } else {
                    self.planner().commit(node, cur - to);
                }
            }
            self.planner().cancel_reservations(node, inst);
        }
        self.issued_scale.remove(&inst);
        self.expected_active.remove(&inst);
        self.prefill_insts.remove(&inst);
    }

    /// Sheds admitted requests whose prefill never started and whose TTFT
    /// SLO is irrecoverably lost (the §IX-A proactive-drop rule, applied at
    /// the instance queue rather than the global one). Loading instances
    /// are skipped — their requests have a pending cold-start grace.
    fn shed_expired(&mut self, w: &mut World, node: NodeId, slot: usize) {
        let now = w.now();
        let mut expired: Vec<(InstanceId, RequestId)> = Vec::new();
        for inst in w.instances_on_slot(node, slot) {
            let Some(i) = w.instance(inst) else { continue };
            if i.state != InstanceState::Active {
                continue;
            }
            for r in i.requests() {
                if matches!(r.phase, ReqPhase::Waiting)
                    && r.headroom(now, &w.slo_for(&r.req)) < -0.5
                {
                    expired.push((inst, r.req.id));
                }
            }
        }
        for (inst, rid) in expired {
            let rr = w
                .instance_mut(inst)
                .expect("instance exists")
                .remove_for_migration(rid, now);
            w.drop_request(&rr);
            w.schedule_keepalive(inst);
        }
    }
}

impl Policy for Slinfer {
    fn name(&self) -> &str {
        "SLINFER"
    }

    fn on_arrival(&mut self, w: &mut World, rr: RunningRequest) {
        self.ensure_init(w);
        if !self.try_place(w, &rr, true) {
            self.enqueue(w, rr);
        }
    }

    fn on_slot_free(&mut self, w: &mut World, node: NodeId, slot: usize) {
        self.ensure_init(w);
        self.try_issue_wanted(w, node);
        self.shed_expired(w, node, slot);
        let now = w.now();
        let mut banned: BTreeSet<RequestId> = BTreeSet::new();
        // Token-level scheduling loop (Fig. 14): run the most urgent item.
        for _ in 0..64 {
            if w.slot_busy(node, slot) {
                return;
            }
            let mut best: Option<(f64, InstanceId, IterationKind)> = None;
            for inst in w.instances_on_slot(node, slot) {
                let Some(i) = w.instance(inst) else { continue };
                if !i.has_work() {
                    continue;
                }
                // A TP instance is only startable when its *whole* slot
                // group is free, not just the slot that woke us.
                if w.instance_group_busy(inst) {
                    continue;
                }
                for r in i.requests() {
                    let slo = w.slo_for(&r.req);
                    let item = match r.phase {
                        ReqPhase::Waiting if !banned.contains(&r.req.id) => {
                            (r.headroom(now, &slo), IterationKind::Prefill(r.req.id))
                        }
                        ReqPhase::Decoding => (r.headroom(now, &slo), IterationKind::Decode),
                        _ => continue,
                    };
                    if best.as_ref().is_none_or(|(h, _, _)| item.0 < *h) {
                        best = Some((item.0, inst, item.1));
                    }
                }
            }
            let Some((_, inst, kind)) = best else { return };
            match w.start_iteration(inst, kind) {
                Ok(dur) => {
                    // The whole slot group is occupied until the iteration
                    // completes; shadow starts must see every slot busy.
                    let group: Vec<usize> = w.instance_slots(inst).expect("just started").to_vec();
                    for s in group {
                        self.busy_until.insert((node.0, s), now + dur);
                    }
                    return;
                }
                Err(cluster::world::StartError::GroupBusy) => return,
                Err(cluster::world::StartError::KvExhausted(req)) => {
                    banned.insert(req);
                    // The grant is short: plan an immediate scale-up on top
                    // of whatever op is already heading this way.
                    let require = {
                        let Some(i) = w.instance(inst) else { continue };
                        let avg = self.avg_output(i.model);
                        let lmin = self.l_min(w, i.model);
                        i.kv_required_bytes(avg, lmin)
                    };
                    let _ = self.plan_grow(w, inst, require);
                }
            }
        }
    }

    fn on_load_done(&mut self, w: &mut World, inst: InstanceId) {
        self.expected_active.remove(&inst);
        self.retry_queue(w);
    }

    fn on_prefill_done(&mut self, w: &mut World, inst: InstanceId, req: RequestId) {
        if !self.cfg.pd_disaggregate || !self.prefill_insts.contains(&inst) {
            return;
        }
        let now = w.now();
        let rr = w
            .instance_mut(inst)
            .expect("prefill instance exists")
            .remove_for_handoff(req, now);
        w.schedule_keepalive(inst);
        let delay = w.kv_transfer_delay(rr.req.model, rr.context_tokens());
        self.pending_handoff.insert(req.0, rr);
        w.set_timer(delay, TAG_HANDOFF | req.0);
    }

    fn on_scale_done(&mut self, w: &mut World, inst: InstanceId) {
        self.issued_scale.remove(&inst);
        if let Some((node, _)) = w.instance_placement(inst) {
            self.nudge_memory(w, node);
        }
        self.retry_queue(w);
    }

    fn on_request_done(&mut self, w: &mut World, inst: InstanceId, rr: &RunningRequest) {
        let e = self.avg_out.entry(rr.req.model.0).or_insert((0.0, 0));
        e.0 += rr.tokens_out as f64;
        e.1 += 1;
        self.maybe_scale_down(w, inst);
        self.retry_queue(w);
    }

    fn on_alloc_failure(&mut self, w: &mut World, inst: InstanceId, _req: RequestId) {
        // §VII-D: try to scale up once more; if the node is out of memory,
        // evict the request with the longest headroom and reschedule it.
        let (model, require_floor) = {
            let Some(i) = w.instance(inst) else { return };
            (
                i.model,
                i.kv_used_bytes() + i.spec.kv_bytes_per_token() * 16 * i.live_count().max(1) as u64,
            )
        };
        let avg = self.avg_output(model);
        let lmin = self.l_min(w, model);
        let require = w
            .instance(inst)
            .map(|i| i.kv_required_bytes(avg, lmin))
            .unwrap_or(0)
            .max(require_floor);
        if self.future_grant(w, inst) >= require || self.plan_grow(w, inst, require) {
            return; // relief is (or will be) on the way
        }
        // Evict the longest-headroom request.
        let now = w.now();
        let victim_req = w.instance(inst).and_then(|i| {
            i.requests()
                .iter()
                .filter(|r| !matches!(r.phase, ReqPhase::Prefilling))
                .max_by(|a, b| {
                    // total_cmp: identical to partial_cmp on the non-NaN
                    // headrooms this sees, but can never panic mid-run.
                    a.headroom(now, &w.slo_for(&a.req))
                        .total_cmp(&b.headroom(now, &w.slo_for(&b.req)))
                })
                .map(|r| r.req.id)
        });
        let Some(vid) = victim_req else { return };
        let moved = w
            .instance_mut(inst)
            .expect("instance exists")
            .remove_for_migration(vid, now);
        w.note_migration(&[vid]);
        // Never bounce the eviction straight back onto the starved instance.
        if !self.try_place_excluding(w, &moved, false, Some(inst)) {
            self.enqueue(w, moved);
        }
    }

    fn on_keepalive(&mut self, w: &mut World, inst: InstanceId) {
        let Some(i) = w.instance(inst) else { return };
        if i.has_live_requests() || i.busy || i.scaling {
            return;
        }
        let Some((node, _)) = w.instance_placement(inst) else {
            return;
        };
        let footprint = i.footprint_bytes();
        self.cancel_instance_state(w, inst);
        w.unload_instance(inst);
        self.planner().release(node, footprint);
        self.nudge_memory(w, node);
        self.retry_queue(w);
    }

    fn on_node_event(&mut self, w: &mut World, ev: &ClusterEvent, displaced: Vec<RunningRequest>) {
        self.ensure_init(w);
        match ev {
            ClusterEvent::NodeJoin(_) => {
                // The planner's budget table must cover the newcomer before
                // any placement considers it.
                let caps: Vec<u64> = w.node_ids().map(|n| w.node_hw(n).mem_bytes).collect();
                self.planner().ensure_nodes(caps);
            }
            ClusterEvent::NodeDrain(node) | ClusterEvent::NodeFail(node) => {
                // No further growth is approved on the node; parked
                // reservations die with the budget (their instances are
                // being evicted or are already gone).
                self.planner().retire_node(*node);
                // Reroute parked scale-ops: drop every op pinned to the
                // retiring node or to an instance that no longer exists.
                let gone = |w: &World, i: InstanceId| {
                    w.instance_placement(i)
                        .map(|(n, _)| n == *node)
                        .unwrap_or(true)
                };
                let stale: Vec<InstanceId> = self
                    .wanted_scale
                    .keys()
                    .copied()
                    .filter(|&i| gone(w, i))
                    .collect();
                for i in stale {
                    self.wanted_scale.remove(&i);
                }
                let issued_stale: Vec<InstanceId> = self
                    .issued_scale
                    .keys()
                    .copied()
                    .filter(|&i| gone(w, i))
                    .collect();
                for i in issued_stale {
                    self.issued_scale.remove(&i);
                }
                self.expected_active.retain(|&i, _| !gone(w, i));
                self.prefill_insts.retain(|&i| !gone(w, i));
                if matches!(ev, ClusterEvent::NodeFail(_)) {
                    // In-flight iterations died with the node.
                    for slot in 0..w.slot_count(*node) {
                        self.busy_until.remove(&(node.0, slot));
                    }
                }
            }
        }
        // Re-place what the event displaced, then drain the global queue —
        // a join may have opened capacity, a drain may force queued work
        // onto other nodes.
        for rr in displaced {
            if !self.try_place(w, &rr, true) {
                self.enqueue(w, rr);
            }
        }
        self.retry_queue(w);
    }

    fn on_timer(&mut self, w: &mut World, payload: u64) {
        if payload == TAG_SWEEP {
            // Periodic liveness sweep: shed expired work, re-check parked
            // memory ops, and restart any idle slot that has work — nothing
            // may starve just because its node went quiet.
            let nodes: Vec<NodeId> = w.node_ids().collect();
            for node in nodes {
                self.nudge_memory(w, node);
                for slot in 0..w.slot_count(node) {
                    self.shed_expired(w, node, slot);
                    if !w.slot_busy(node, slot) {
                        self.on_slot_free(w, node, slot);
                    }
                }
            }
            self.retry_queue(w);
            w.set_timer(SWEEP_PERIOD, TAG_SWEEP);
            return;
        }
        if payload & TAG_HANDOFF != 0 {
            let key = payload & !TAG_HANDOFF;
            let Some(rr) = self.pending_handoff.remove(&key) else {
                return;
            };
            match self.place_decode(w, rr) {
                Ok(()) => {}
                Err(rr) => {
                    if w.now() > rr.next_deadline(&w.slo_for(&rr.req)) + SimDuration::from_secs(10)
                    {
                        w.drop_request(&rr);
                    } else {
                        self.pending_handoff.insert(key, rr);
                        w.set_timer(SimDuration::from_millis(100), TAG_HANDOFF | key);
                    }
                }
            }
            return;
        }
        let id = RequestId(payload);
        self.timers.remove(&id);
        let now = w.now();
        let mut kept = Vec::with_capacity(self.queue.len());
        for rr in std::mem::take(&mut self.queue) {
            if rr.req.id == id && now >= rr.next_deadline(&w.slo_for(&rr.req)) {
                w.drop_request(&rr);
            } else {
                kept.push(rr);
            }
        }
        self.queue = kept;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::{ClusterSpec, Simulation, WorldConfig};
    use hwmodel::{ModelSpec, NoiseModel};
    use workload::request::{Request, SloClass, Trace};

    fn models(n: usize) -> Vec<ModelSpec> {
        (0..n).map(|i| ModelSpec::llama2_7b().replica(i)).collect()
    }

    fn quiet_cfg() -> WorldConfig {
        WorldConfig {
            noise: NoiseModel::off(),
            ..WorldConfig::default()
        }
    }

    fn mk_trace(reqs: Vec<(u64, u32, u32, u32)>) -> Trace {
        // (arrival_ms, model, input, output)
        let n_models = reqs.iter().map(|r| r.1).max().unwrap_or(0) + 1;
        let requests = reqs
            .into_iter()
            .enumerate()
            .map(|(i, (ms, m, inp, out))| Request {
                id: RequestId(i as u64),
                model: ModelId(m),
                arrival: SimTime::from_millis(ms),
                input_len: inp,
                output_len: out,
                class: SloClass::default(),
                session: Default::default(),
            })
            .collect();
        Trace::new(requests, n_models, SimDuration::from_secs(60))
    }

    #[test]
    fn single_request_served_on_cpu_first() {
        let trace = mk_trace(vec![(0, 0, 512, 8)]);
        let sim = Simulation::new(
            &ClusterSpec::heterogeneous(1, 1),
            models(1),
            quiet_cfg(),
            Slinfer::new(SlinferConfig::default()),
        );
        let m = sim.run(&trace);
        assert_eq!(m.slo_met(), 1);
        // CPU is prioritized (§V): the token must have been decoded there.
        assert!(m.cpu_decode_tokens > 0);
        assert_eq!(m.gpu_decode_tokens, 0);
    }

    #[test]
    fn cpu_disabled_forces_gpu() {
        let trace = mk_trace(vec![(0, 0, 512, 8)]);
        let cfg = SlinferConfig {
            enable_cpu: false,
            ..SlinferConfig::default()
        };
        let sim = Simulation::new(
            &ClusterSpec::heterogeneous(1, 1),
            models(1),
            quiet_cfg(),
            Slinfer::new(cfg),
        );
        let m = sim.run(&trace);
        assert_eq!(m.slo_met(), 1);
        assert_eq!(m.cpu_decode_tokens, 0);
        assert!(m.gpu_decode_tokens > 0);
    }

    #[test]
    fn long_inputs_fall_back_to_gpu() {
        // A 16K-token prompt is infeasible on the CPU within the 8 s TTFT
        // SLO (§IX-I1) — SLINFER must route it to the GPU.
        let mut ms = vec![ModelSpec::llama3_1_8b()];
        ms[0].name = "LB#0".into();
        let trace = mk_trace(vec![(0, 0, 16_384, 4)]);
        let sim = Simulation::new(
            &ClusterSpec::heterogeneous(1, 1),
            ms,
            quiet_cfg(),
            Slinfer::new(SlinferConfig::default()),
        );
        let m = sim.run(&trace);
        assert_eq!(m.slo_met(), 1);
        assert_eq!(m.cpu_decode_tokens, 0, "CPU cannot hold a 16K prefill");
        assert!(m.gpu_decode_tokens > 0);
    }

    #[test]
    fn two_models_share_one_node() {
        // Two different 7B models, light load, a single CPU node: sharing
        // must colocate them (no second node exists).
        let trace = mk_trace(vec![(0, 0, 256, 8), (100, 1, 256, 8)]);
        let sim = Simulation::new(
            &ClusterSpec::heterogeneous(1, 0),
            models(2),
            quiet_cfg(),
            Slinfer::new(SlinferConfig::default()),
        );
        let m = sim.run(&trace);
        assert_eq!(m.slo_met(), 2, "both requests must meet SLO via sharing");
        assert_eq!(m.cold_starts, 2);
        assert_eq!(m.oom_incidents, 0);
    }

    #[test]
    fn sharing_disabled_rejects_second_tenant() {
        // Same scenario but w/o sharing: one node, two models — the second
        // request cannot be placed anywhere and must drop.
        let trace = mk_trace(vec![(0, 0, 256, 8), (100, 1, 256, 8)]);
        let cfg = SlinferConfig {
            enable_sharing: false,
            enable_cpu: true,
            ..SlinferConfig::default()
        };
        let sim = Simulation::new(
            &ClusterSpec::heterogeneous(1, 0),
            models(2),
            quiet_cfg(),
            Slinfer::new(cfg),
        );
        let m = sim.run(&trace);
        // The second request only proceeds once the first instance is
        // reclaimed (keep-alive 1 s) — with a 0.5 s TTFT budget it drops.
        assert!(m.slo_met() <= 1);
        assert!(m.dropped >= 1);
    }

    #[test]
    fn burst_to_one_model_batches_on_one_instance() {
        // 12 requests in a sustainable burst to one model: consolidation
        // should grow one instance rather than fragmenting across nodes.
        // (128-token prefills every 250 ms leave decode headroom to spare.)
        let reqs: Vec<(u64, u32, u32, u32)> = (0..12).map(|i| (i * 250, 0, 128, 24)).collect();
        let trace = mk_trace(reqs);
        let sim = Simulation::new(
            &ClusterSpec::heterogeneous(2, 2),
            models(1),
            quiet_cfg(),
            Slinfer::new(SlinferConfig::default()),
        );
        let m = sim.run(&trace);
        assert!(m.slo_rate() > 0.9, "slo rate {}", m.slo_rate());
        assert_eq!(
            m.cold_starts, 1,
            "a single instance should absorb the burst"
        );
        assert!(m.batch_sizes.max() >= 6.0, "batching should build up");
    }

    #[test]
    fn no_oom_incidents_under_memory_churn() {
        // Many models churning on few nodes with enough concurrency that
        // Eq. 2 rises past the L_min floor: the orchestrator must keep
        // physical memory sound while KV grants scale up and down.
        let mut reqs = Vec::new();
        for i in 0..60u64 {
            reqs.push((i * 150, (i % 6) as u32, 1024, 128));
        }
        let trace = mk_trace(reqs);
        let sim = Simulation::new(
            &ClusterSpec::heterogeneous(1, 1),
            models(6),
            quiet_cfg(),
            Slinfer::new(SlinferConfig::default()),
        );
        let m = sim.run(&trace);
        assert_eq!(m.oom_incidents, 0, "orchestrator must prevent OOM");
        assert!(m.slo_rate() > 0.6, "slo rate {}", m.slo_rate());
        assert!(m.scale_ops > 0, "watermark scaling should be exercised");
    }

    #[test]
    fn overload_drops_rather_than_violates_everyone() {
        // 64 models, one CPU node only: most requests cannot be served in
        // SLO; SLINFER should shed load via queue-timeout drops.
        let mut reqs = Vec::new();
        for i in 0..64u64 {
            reqs.push((i * 10, (i % 64) as u32, 2048, 64));
        }
        let trace = mk_trace(reqs);
        let sim = Simulation::new(
            &ClusterSpec::heterogeneous(1, 0),
            models(64),
            quiet_cfg(),
            Slinfer::new(SlinferConfig::default()),
        );
        let m = sim.run(&trace);
        assert!(m.dropped > 0, "overload must shed load");
        assert!(m.slo_met() > 0, "but some requests are served");
    }

    #[test]
    fn pd_mode_crosses_handoff() {
        // PD disaggregation: one request must prefill on a prefill instance,
        // transfer KV, and finish on a decode instance — two cold starts.
        let trace = mk_trace(vec![(0, 0, 512, 8)]);
        let cfg = SlinferConfig {
            pd_disaggregate: true,
            ..SlinferConfig::default()
        };
        let sim = Simulation::new(
            &ClusterSpec::heterogeneous(1, 1),
            models(1),
            quiet_cfg(),
            Slinfer::new(cfg),
        );
        let m = sim.run(&trace);
        assert!(m.records[0].completed.is_some());
        assert_eq!(m.cold_starts, 2, "prefill + decode pools");
    }

    #[test]
    fn pd_mode_costs_more_than_aggregated() {
        let reqs: Vec<(u64, u32, u32, u32)> = (0..12)
            .map(|i| (i * 500, (i % 3) as u32, 512, 24))
            .collect();
        let trace = mk_trace(reqs);
        let run = |pd: bool| {
            let cfg = SlinferConfig {
                pd_disaggregate: pd,
                ..SlinferConfig::default()
            };
            Simulation::new(
                &ClusterSpec::heterogeneous(2, 2),
                models(3),
                quiet_cfg(),
                Slinfer::new(cfg),
            )
            .run(&trace)
        };
        let agg = run(false);
        let pd = run(true);
        assert!(
            pd.cold_starts > agg.cold_starts,
            "PD churns more instances: {} vs {}",
            pd.cold_starts,
            agg.cold_starts
        );
        assert!(pd.slo_met() <= agg.slo_met());
    }

    #[test]
    fn tp_model_serves_on_a_multi_accel_node() {
        use cluster::NodeSpec;
        use hwmodel::HardwareSpec;
        // One 4-GPU server; a 13B model deployed at TP=2 must claim a
        // 2-slot group and serve within SLO.
        let trace = mk_trace(vec![(0, 0, 1024, 8), (200, 0, 1024, 8)]);
        let cluster = ClusterSpec {
            nodes: vec![NodeSpec::multi_accel(HardwareSpec::a100_80g(), 4)],
        };
        let mut ms = vec![ModelSpec::llama2_13b().with_tp(2)];
        ms[0].name = "13B-TP2".into();
        let sim = Simulation::new(
            &cluster,
            ms,
            quiet_cfg(),
            Slinfer::new(SlinferConfig::default()),
        );
        let m = sim.run(&trace);
        assert_eq!(m.slo_met(), 2, "TP group placement must serve in SLO");
        assert!(m.gpu_decode_tokens > 0);
        assert_eq!(m.cold_starts, 1, "one TP instance absorbs both requests");
        assert_eq!(m.oom_incidents, 0);
    }

    #[test]
    fn tp_too_wide_for_every_node_is_dropped() {
        use cluster::NodeSpec;
        use hwmodel::HardwareSpec;
        // TP=4 cannot fit a 2-slot node: no placement exists, so the
        // request must drop at its TTFT deadline instead of panicking.
        let trace = mk_trace(vec![(0, 0, 512, 8)]);
        let cluster = ClusterSpec {
            nodes: vec![NodeSpec::multi_accel(HardwareSpec::a100_80g(), 2)],
        };
        let ms = vec![ModelSpec::llama2_7b().with_tp(4)];
        let sim = Simulation::new(
            &cluster,
            ms,
            quiet_cfg(),
            Slinfer::new(SlinferConfig::default()),
        );
        let m = sim.run(&trace);
        assert_eq!(m.slo_met(), 0);
        assert_eq!(m.dropped, 1);
    }

    #[test]
    fn deterministic_with_seed() {
        let reqs: Vec<(u64, u32, u32, u32)> = (0..20)
            .map(|i| (i * 250, (i % 4) as u32, 768, 24))
            .collect();
        let trace = mk_trace(reqs);
        let run = || {
            let sim = Simulation::new(
                &ClusterSpec::heterogeneous(1, 1),
                models(4),
                WorldConfig {
                    seed: 7,
                    ..WorldConfig::default()
                },
                Slinfer::new(SlinferConfig::default()),
            );
            sim.run(&trace)
        };
        let a = run();
        let b = run();
        assert_eq!(a.slo_met(), b.slo_met());
        assert_eq!(a.scale_ops, b.scale_ops);
        assert_eq!(a.cpu_decode_tokens, b.cpu_decode_tokens);
    }
}
