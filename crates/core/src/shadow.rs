//! Shadow validation (§VI-C, Fig. 15).
//!
//! Before a request joins an instance, SLINFER *virtually* replays the
//! node's future token-level schedule — using quantified iteration times
//! inflated by the overestimation factor — and admits the request only if no
//! SLO violation appears in any of the three cases:
//!
//! 1. the new request's own prefill finishes past its TTFT deadline;
//! 2. an existing request's token is delayed past its TPOT deadline by the
//!    new prefill;
//! 3. the node's *aggregate* steady-state decode cycle (one decode iteration
//!    of every co-located instance) exceeds the TPOT SLO after admission.
//!
//! The replay runs the same min-headroom loop the real scheduler uses
//! (Fig. 14), so validation and execution can only diverge by estimation
//! error — which the 10% overestimate absorbs.

use simcore::time::SimTime;
use workload::request::Slo;

use crate::quantify::Quantifier;

/// A request as seen by the validator.
#[derive(Debug, Clone)]
pub struct ShadowReq {
    /// SLO anchor: arrival + cold-start grace.
    pub anchor: SimTime,
    /// The SLO this request's class is held to (per-request, so one view
    /// can mix interactive and relaxed service classes).
    pub slo: Slo,
    /// Prompt length (for the TTFT budget).
    pub input_len: u32,
    /// Tokens already produced.
    pub tokens_done: u32,
    /// Tokens the next prefill must process (prompt, or full context after
    /// a migration).
    pub prefill_len: u32,
    /// True if the request still awaits its prefill.
    pub waiting: bool,
}

impl ShadowReq {
    fn deadline_s(&self) -> f64 {
        self.slo
            .token_deadline(self.anchor, self.input_len, self.tokens_done)
            .as_secs_f64()
    }
}

/// One co-located instance as seen by the validator.
pub struct InstView<'a> {
    /// The instance's quantifier on this node's hardware.
    pub quant: &'a Quantifier,
    /// Its live requests (plus the candidate, on the target instance).
    pub reqs: Vec<ShadowReq>,
}

impl InstView<'_> {
    fn batch(&self) -> (u32, u32) {
        let decoding: Vec<&ShadowReq> = self.reqs.iter().filter(|r| !r.waiting).collect();
        let bs = decoding.len() as u32;
        if bs == 0 {
            return (0, 0);
        }
        let total: u64 = decoding
            .iter()
            .map(|r| (r.input_len + r.tokens_done) as u64)
            .sum();
        (bs, (total / bs as u64) as u32)
    }
}

/// Outcome of a shadow validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Safe to admit.
    Pass,
    /// Case 1: the candidate's prefill would miss its TTFT deadline.
    CandidateLate,
    /// Case 2: an existing request's token would miss its deadline.
    NeighborLate,
    /// Case 3: the aggregate decode cycle would exceed the TPOT SLO.
    AggregateOverload,
    /// The replay did not converge (treated as a rejection).
    Diverged,
}

impl Verdict {
    /// True when admission is allowed.
    pub fn passed(self) -> bool {
        self == Verdict::Pass
    }
}

/// Replays the node's future schedule with the candidate inserted into
/// `views[target]` (already included by the caller, flagged by
/// `candidate_ix` within that view's request list).
///
/// `start` is when the node's current iteration (if any) will end;
/// `over` is the §VI-C overestimation factor (≥ 1).
pub fn validate(
    views: &mut [InstView<'_>],
    target: usize,
    candidate_ix: usize,
    start: SimTime,
    over: f64,
) -> Verdict {
    // Case 3 is judged against the tightest TPOT among the co-located
    // requests (identical to the run SLO in single-class runs).
    let tpot_bound = views
        .iter()
        .flat_map(|v| v.reqs.iter().map(|r| r.slo.tpot_s))
        .fold(f64::INFINITY, f64::min);
    // Case 3 first: steady-state aggregate decode cycle with the candidate
    // eventually decoding.
    let mut aggregate = 0.0;
    for (vi, v) in views.iter().enumerate() {
        let (mut bs, mut avg) = v.batch();
        if vi == target {
            // Pretend every waiting request (incl. the candidate) decodes.
            let waiting = v.reqs.iter().filter(|r| r.waiting).count() as u32;
            if waiting > 0 {
                let wavg: u64 = v
                    .reqs
                    .iter()
                    .filter(|r| r.waiting)
                    .map(|r| r.prefill_len as u64)
                    .sum::<u64>()
                    / waiting as u64;
                avg = ((avg as u64 * bs as u64 + wavg * waiting as u64)
                    / (bs + waiting).max(1) as u64) as u32;
                bs += waiting;
            }
        }
        if bs > 0 {
            aggregate += v.quant.decode_s(bs, avg.max(1)) * over;
        }
    }
    if aggregate > tpot_bound {
        return Verdict::AggregateOverload;
    }

    // Cases 1 & 2: event-accurate replay of the min-headroom loop. A
    // candidate arriving with its prefill already done elsewhere (PD
    // handoff) only needs the decode-round checks.
    let mut t = start.as_secs_f64();
    let mut candidate_prefilled = !views[target].reqs[candidate_ix].waiting;
    let mut post_rounds = vec![0u32; views.len()];
    const MAX_STEPS: usize = 20_000;
    for _ in 0..MAX_STEPS {
        // Pick the most urgent schedulable item across instances.
        let mut best: Option<(f64, usize, Option<usize>)> = None; // (headroom, view, Some(req)=prefill)
        for (vi, v) in views.iter().enumerate() {
            let mut decode_urgency: Option<f64> = None;
            for (ri, r) in v.reqs.iter().enumerate() {
                let h = r.deadline_s() - t;
                if r.waiting {
                    if best.is_none_or(|(bh, _, _)| h < bh) {
                        best = Some((h, vi, Some(ri)));
                    }
                } else if decode_urgency.is_none_or(|d| h < d) {
                    decode_urgency = Some(h);
                }
            }
            if let Some(h) = decode_urgency {
                if best.is_none_or(|(bh, _, _)| h < bh) {
                    best = Some((h, vi, None));
                }
            }
        }
        let Some((_, vi, item)) = best else {
            break; // nothing schedulable
        };
        match item {
            Some(ri) => {
                let len = views[vi].reqs[ri].prefill_len;
                t += views[vi].quant.prefill_s(len.max(1)) * over;
                let is_candidate = vi == target && ri == candidate_ix;
                let r = &mut views[vi].reqs[ri];
                if r.deadline_s() < t {
                    return if is_candidate {
                        Verdict::CandidateLate
                    } else {
                        Verdict::NeighborLate
                    };
                }
                r.waiting = false;
                r.tokens_done += 1;
                if is_candidate {
                    candidate_prefilled = true;
                }
            }
            None => {
                let (bs, avg) = views[vi].batch();
                t += views[vi].quant.decode_s(bs, avg.max(1)) * over;
                for r in views[vi].reqs.iter_mut().filter(|r| !r.waiting) {
                    if r.deadline_s() < t {
                        return Verdict::NeighborLate;
                    }
                    r.tokens_done += 1;
                }
                if candidate_prefilled {
                    post_rounds[vi] += 1;
                }
            }
        }
        // Stop once the candidate is in and every busy instance has proven
        // one further decode round.
        if candidate_prefilled
            && views.iter().enumerate().all(|(vi, v)| {
                v.reqs.iter().all(|r| !r.waiting) && (post_rounds[vi] >= 1 || v.batch().0 == 0)
            })
        {
            return Verdict::Pass;
        }
    }
    if candidate_prefilled {
        Verdict::Pass
    } else {
        Verdict::Diverged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwmodel::{AnalyticPerf, HardwareSpec, ModelSpec, NoiseModel};
    use simcore::rng::SimRng;

    fn quant(hw: &HardwareSpec) -> Quantifier {
        Quantifier::profile(
            &ModelSpec::llama2_7b(),
            hw,
            1.0,
            &AnalyticPerf::new(),
            &NoiseModel::off(),
            &mut SimRng::new(1),
            256,
        )
    }

    fn req(anchor_s: u64, input: u32, done: u32, waiting: bool) -> ShadowReq {
        ShadowReq {
            anchor: SimTime::from_secs(anchor_s),
            slo: Slo::paper(),
            input_len: input,
            tokens_done: done,
            prefill_len: input + done,
            waiting,
        }
    }

    #[test]
    fn empty_instance_accepts_fresh_request() {
        let hw = HardwareSpec::xeon4_amx_32c();
        let q = quant(&hw);
        let mut views = vec![InstView {
            quant: &q,
            reqs: vec![req(10, 1024, 0, true)],
        }];
        let v = validate(&mut views, 0, 0, SimTime::from_secs(10), 1.1);
        assert_eq!(v, Verdict::Pass);
    }

    #[test]
    fn case1_candidate_prefill_too_late() {
        // A 4K prompt behind eight other waiting 4K prefills on a CPU:
        // ~2.9 s × 9 ≈ 26 s ≫ the 8 s TTFT SLO.
        let hw = HardwareSpec::xeon4_amx_32c();
        let q = quant(&hw);
        let mut reqs: Vec<ShadowReq> = (0..8).map(|_| req(10, 4096, 0, true)).collect();
        reqs.push(req(10, 4096, 0, true));
        let cand = reqs.len() - 1;
        let mut views = vec![InstView { quant: &q, reqs }];
        let v = validate(&mut views, 0, cand, SimTime::from_secs(10), 1.1);
        assert!(
            matches!(v, Verdict::CandidateLate | Verdict::NeighborLate),
            "{v:?}"
        );
    }

    #[test]
    fn case2_neighbor_token_delayed_by_prefill() {
        // A 16-batch of 2K contexts decodes in ~195 ms (inflated) against a
        // 250 ms TPOT budget — headroom accrues at only ~55 ms per
        // iteration. A 4K prefill (~3.2 s inflated) can never be absorbed
        // within the candidate's 8 s TTFT window, so admission must be
        // rejected (the violation may surface as the neighbour's or the
        // candidate's deadline depending on which the replay hits first).
        let hw = HardwareSpec::xeon4_amx_32c();
        let q = quant(&hw);
        let mk_views = |cand_input: u32| {
            // Each neighbour: anchored at 0, input 2048 (TTFT 4 s), 65
            // tokens done => next deadline 20.25 s; replay starts at 20 s.
            let mut reqs: Vec<ShadowReq> = (0..16).map(|_| req(0, 2048, 65, false)).collect();
            reqs.push(ShadowReq {
                anchor: SimTime::from_secs(20),
                slo: Slo::paper(),
                input_len: cand_input,
                tokens_done: 0,
                prefill_len: cand_input,
                waiting: true,
            });
            reqs
        };
        // Big prefill: rejected.
        let mut views = vec![InstView {
            quant: &q,
            reqs: mk_views(4096),
        }];
        let v = validate(&mut views, 0, 16, SimTime::from_secs(20), 1.1);
        assert!(
            matches!(v, Verdict::NeighborLate | Verdict::CandidateLate),
            "{v:?}"
        );
        // A tiny prefill (~90 ms) in the same situation is absorbable.
        let mut views = vec![InstView {
            quant: &q,
            reqs: mk_views(128),
        }];
        let v = validate(&mut views, 0, 16, SimTime::from_secs(20), 1.1);
        assert_eq!(v, Verdict::Pass);
    }

    #[test]
    fn case3_aggregate_decode_overload() {
        // Two CPU instances each holding a 16-batch of 2K contexts decode in
        // ~0.18 s each; together ≈ 0.36 s > 0.25 s TPOT — adding anything
        // must be rejected by the aggregate check.
        let hw = HardwareSpec::xeon4_amx_32c();
        let q1 = quant(&hw);
        let q2 = quant(&hw);
        let mk = |n: u32| -> Vec<ShadowReq> { (0..n).map(|_| req(0, 2048, 5, false)).collect() };
        let mut reqs = mk(16);
        reqs.push(req(20, 512, 0, true)); // small candidate
        let mut views = vec![
            InstView { quant: &q1, reqs },
            InstView {
                quant: &q2,
                reqs: mk(16),
            },
        ];
        let cand = 16;
        let v = validate(&mut views, 0, cand, SimTime::from_secs(20), 1.1);
        assert_eq!(v, Verdict::AggregateOverload);
    }

    #[test]
    fn gpu_absorbs_what_cpu_cannot() {
        // The same 4K-prompt-behind-queue scenario passes on an A100, whose
        // prefills are ~30× faster.
        let hw = HardwareSpec::a100_80g();
        let q = quant(&hw);
        let mut reqs: Vec<ShadowReq> = (0..8).map(|_| req(10, 4096, 0, true)).collect();
        reqs.push(req(10, 4096, 0, true));
        let cand = reqs.len() - 1;
        let mut views = vec![InstView { quant: &q, reqs }];
        let v = validate(&mut views, 0, cand, SimTime::from_secs(10), 1.1);
        assert_eq!(v, Verdict::Pass);
    }

    #[test]
    fn overestimate_tightens_admission() {
        // A scenario near the TTFT boundary: passes at 1.0×, fails at 2.5×.
        let hw = HardwareSpec::xeon4_amx_32c();
        let q = quant(&hw);
        let build = || {
            vec![InstView {
                quant: &q,
                reqs: vec![req(10, 2048, 0, true), req(10, 2048, 0, true)],
            }]
        };
        let mut a = build();
        assert_eq!(
            validate(&mut a, 0, 1, SimTime::from_secs(10), 1.0),
            Verdict::Pass
        );
        let mut b = build();
        let v = validate(&mut b, 0, 1, SimTime::from_secs(10), 2.5);
        assert_ne!(v, Verdict::Pass);
    }
}
