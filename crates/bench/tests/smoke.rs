//! Smoke coverage for the whole experiment suite.
//!
//! The registry makes the whole suite enumerable (26 paper experiments
//! plus the scenario suite), so instead of running one representative
//! binary and hoping the rest share enough machinery,
//! this suite runs *every* registered experiment in-process under
//! `--quick --threads 2` and checks the report invariants. Subprocess
//! tests keep the binary stubs and the strict CLI honest.

use bench::cli::Cli;
use bench::{registry, REGISTRY};
use std::process::Command;

fn quick_cli() -> Cli {
    Cli {
        seed: 7,
        quick: true,
        threads: 2,
        json: false,
    }
}

/// Every registered experiment runs under quick mode on 2 workers and
/// produces a titled report plus at least one JSON blob named after the
/// experiment.
#[test]
fn every_registered_experiment_runs_quick() {
    let cli = quick_cli();
    for exp in REGISTRY {
        let report = registry::run_experiment(exp, &cli);
        let text = report.text();
        assert!(
            text.starts_with("\n=== "),
            "{}: report must open with a section header:\n{text}",
            exp.name
        );
        // Every report renders at least one table (the separator row is
        // the cheapest fingerprint). Paper notes are asserted on the
        // subprocess runs: some experiments only annotate full sweeps.
        assert!(
            text.contains("\n---"),
            "{}: missing rendered table:\n{text}",
            exp.name
        );
        assert!(
            report.dumps().iter().any(|(name, _)| name == exp.name),
            "{}: missing JSON blob named after the experiment",
            exp.name
        );
        for (_, blob) in report.dumps() {
            let t = blob.trim_start();
            assert!(
                t.starts_with('[') || t.starts_with('{'),
                "{}: JSON blob must be an array or object:\n{blob}",
                exp.name
            );
        }
    }
}

/// Memoized reruns must present byte-identically to fresh runs: the
/// report text and every JSON blob, not just headline numbers. Runs two
/// cell-sharing experiments twice under the cache (second pass served
/// from memo) and once without it, comparing all three.
#[test]
fn memoized_and_fresh_runs_are_byte_identical() {
    let cli = quick_cli();
    let names = ["fig04_sllm_capacity", "fig06_ttft_curves"];
    let render = |name: &str| {
        let report = registry::run_experiment(bench::find(name).expect("registered"), &cli);
        let mut out = report.text().to_string();
        for (blob_name, blob) in report.dumps() {
            out.push_str(blob_name);
            out.push_str(blob);
        }
        out
    };
    bench::memo::enable();
    let first: Vec<String> = names.iter().map(|n| render(n)).collect();
    let memoized: Vec<String> = names.iter().map(|n| render(n)).collect();
    let served = bench::memo::hits();
    bench::memo::disable();
    let fresh: Vec<String> = names.iter().map(|n| render(n)).collect();
    assert!(served > 0, "second pass must be served from the cell cache");
    for ((a, b), c) in first.iter().zip(&memoized).zip(&fresh) {
        assert_eq!(a, b, "memoized rerun diverged from the populating run");
        assert_eq!(a, c, "cached output diverged from a fresh run");
    }
}

/// Quick-mode fig04 sweeps two model counts; the blob mirrors that.
#[test]
fn fig04_quick_blob_has_one_entry_per_point() {
    let exp = bench::find("fig04_sllm_capacity").expect("registered");
    let report = registry::run_experiment(exp, &quick_cli());
    let blob = &report
        .dumps()
        .iter()
        .find(|(n, _)| n == "fig04_sllm_capacity")
        .expect("dumped")
        .1;
    assert_eq!(
        top_level_entries(blob),
        2,
        "one entry per sweep point:\n{blob}"
    );
}

/// The binary stub wires argv → CLI → registry → stdout + results/ dump.
#[test]
fn fig04_binary_runs_end_to_end() {
    let exe = env!("CARGO_BIN_EXE_fig04_sllm_capacity");
    // Unique per process so concurrent `cargo test` runs don't race on it.
    let tmp = std::env::temp_dir().join(format!("slinfer-smoke-fig04-{}", std::process::id()));
    // Start from a clean scratch dir: the results dump is best-effort, so a
    // stale file from a previous run could otherwise mask a broken dump.
    let _ = std::fs::remove_dir_all(&tmp);
    std::fs::create_dir_all(&tmp).expect("create smoke workdir");
    let out = Command::new(exe)
        .args(["--seed", "7", "--quick", "--threads", "2"])
        .current_dir(&tmp)
        .output()
        .expect("figure binary must launch");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "fig04 exited with {:?}\nstdout:\n{stdout}\nstderr:\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        stdout.contains("Fig 4"),
        "missing section header:\n{stdout}"
    );
    assert!(stdout.contains("[paper]"), "missing paper note:\n{stdout}");
    let json = tmp.join("results/fig04_sllm_capacity.json");
    let blob = std::fs::read_to_string(&json).expect("JSON results dumped");
    assert_eq!(top_level_entries(&blob), 2, "one entry per sweep point");
}

/// `BENCH_QUICK=1` keeps working as a CI-compatible fallback for `--quick`.
#[test]
fn bench_quick_env_fallback_still_works() {
    let exe = env!("CARGO_BIN_EXE_fig04_sllm_capacity");
    let tmp = std::env::temp_dir().join(format!("slinfer-smoke-env-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&tmp);
    std::fs::create_dir_all(&tmp).expect("create smoke workdir");
    let out = Command::new(exe)
        .args(["--seed", "7"])
        .env("BENCH_QUICK", "1")
        .current_dir(&tmp)
        .output()
        .expect("figure binary must launch");
    assert!(out.status.success());
    let blob = std::fs::read_to_string(tmp.join("results/fig04_sllm_capacity.json"))
        .expect("JSON results dumped");
    assert_eq!(
        top_level_entries(&blob),
        2,
        "env fallback must shrink the sweep"
    );
}

/// The old harness silently fell back to seed 42 on `--seed foo`; the
/// unified CLI must reject it loudly instead.
#[test]
fn malformed_seed_is_a_hard_error() {
    let exe = env!("CARGO_BIN_EXE_fig04_sllm_capacity");
    let out = Command::new(exe)
        .args(["--seed", "foo"])
        .output()
        .expect("binary must launch");
    assert_eq!(out.status.code(), Some(2), "bad CLI must exit 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--seed") && stderr.contains("foo"),
        "error must name the flag and the bad value:\n{stderr}"
    );
}

/// `bench list` enumerates the full registry; unknown names are errors.
#[test]
fn bench_runner_lists_the_registry() {
    let exe = env!("CARGO_BIN_EXE_bench");
    let out = Command::new(exe).arg("list").output().expect("launch");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(stdout.lines().count(), REGISTRY.len());
    for exp in REGISTRY {
        assert!(stdout.contains(exp.name), "missing {}", exp.name);
    }
    let bad = Command::new(exe)
        .args(["run", "fig99_nope"])
        .output()
        .expect("launch");
    assert_eq!(bad.status.code(), Some(2));
}

/// Counts the direct children of the outermost JSON array (separating
/// commas at depth 1, string-literal aware), independent of entry shape.
fn top_level_entries(json: &str) -> usize {
    let (mut depth, mut commas) = (0u32, 0usize);
    let (mut in_str, mut escaped) = (false, false);
    let mut saw_content = false;
    for c in json.chars() {
        if in_str {
            match c {
                _ if escaped => escaped = false,
                '\\' => escaped = true,
                '"' => in_str = false,
                _ => {}
            }
            continue;
        }
        match c {
            '"' => {
                if depth == 1 {
                    saw_content = true;
                }
                in_str = true;
            }
            '[' | '{' => {
                if depth == 1 {
                    saw_content = true;
                }
                depth += 1;
            }
            ']' | '}' => depth -= 1,
            ',' if depth == 1 => commas += 1,
            c if depth == 1 && !c.is_whitespace() => saw_content = true,
            _ => {}
        }
    }
    if saw_content || commas > 0 {
        commas + 1
    } else {
        0
    }
}
