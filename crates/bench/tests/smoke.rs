//! Smoke test for the figure binaries: build and run one cheap experiment
//! end-to-end so the 26 figure binaries can't silently rot.
//!
//! `CARGO_BIN_EXE_*` makes cargo build the binary before this test runs;
//! every other figure binary shares the same `bench::runner`/`report`
//! machinery, so one representative run catches harness-level breakage.

use std::process::Command;

#[test]
fn fig04_runs_end_to_end() {
    let exe = env!("CARGO_BIN_EXE_fig04_sllm_capacity");
    // Unique per process so concurrent `cargo test` runs don't race on it.
    let tmp = std::env::temp_dir().join(format!("slinfer-smoke-fig04-{}", std::process::id()));
    // Start from a clean scratch dir: dump_json is best-effort, so a stale
    // results file from a previous run could otherwise mask a broken dump.
    let _ = std::fs::remove_dir_all(&tmp);
    std::fs::create_dir_all(&tmp).expect("create smoke workdir");
    let out = Command::new(exe)
        .args(["--seed", "7"])
        .env("BENCH_QUICK", "1")
        // Run in a scratch dir so the results/ dump doesn't pollute the repo.
        .current_dir(&tmp)
        .output()
        .expect("figure binary must launch");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "fig04 exited with {:?}\nstdout:\n{stdout}\nstderr:\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    // The run produced its table and the paper annotation.
    assert!(
        stdout.contains("Fig 4"),
        "missing section header:\n{stdout}"
    );
    assert!(
        stdout.contains("SLO rate"),
        "missing table header:\n{stdout}"
    );
    assert!(stdout.contains("[paper]"), "missing paper note:\n{stdout}");
    // And dumped machine-readable results.
    let json = tmp.join("results/fig04_sllm_capacity.json");
    let blob = std::fs::read_to_string(&json).expect("JSON results dumped");
    assert!(
        blob.trim_start().starts_with('['),
        "JSON should be an array"
    );
    // Quick mode sweeps two model counts → two top-level entries,
    // independent of how each entry is serialized.
    assert_eq!(
        top_level_entries(&blob),
        2,
        "one entry per sweep point:\n{blob}"
    );
}

/// Counts the direct children of the outermost JSON array (separating
/// commas at depth 1, string-literal aware), independent of entry shape.
fn top_level_entries(json: &str) -> usize {
    let (mut depth, mut commas) = (0u32, 0usize);
    let (mut in_str, mut escaped) = (false, false);
    let mut saw_content = false;
    for c in json.chars() {
        if in_str {
            match c {
                _ if escaped => escaped = false,
                '\\' => escaped = true,
                '"' => in_str = false,
                _ => {}
            }
            continue;
        }
        match c {
            '"' => {
                if depth == 1 {
                    saw_content = true;
                }
                in_str = true;
            }
            '[' | '{' => {
                if depth == 1 {
                    saw_content = true;
                }
                depth += 1;
            }
            ']' | '}' => depth -= 1,
            ',' if depth == 1 => commas += 1,
            c if depth == 1 && !c.is_whitespace() => saw_content = true,
            _ => {}
        }
    }
    if saw_content || commas > 0 {
        commas + 1
    } else {
        0
    }
}
