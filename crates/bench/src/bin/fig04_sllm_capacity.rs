//! Stub over the registered experiment of the same name; the
//! implementation lives in `bench::experiments::fig04_sllm_capacity`.

fn main() {
    bench::main_for("fig04_sllm_capacity");
}
