//! Figure 4 — ServerlessLLM's serving capacity collapse (§III-C).
//!
//! Hosts a 3B/7B/13B mix on four A100s under `sllm` and sweeps the number
//! of models from 16 to 128. The paper shows the SLO attainment rate
//! dropping sharply as models multiply and requests queue for exclusive
//! GPUs.

use bench::report::{dump_json, f, paper_note, section};
use bench::runner::{arg_seed, quick_mode, world_cfg, System};
use bench::{zoo, Table};
use hwmodel::ModelSpec;
use workload::serverless::TraceSpec;

fn main() {
    let seed = arg_seed();
    let counts: Vec<u32> = if quick_mode() {
        vec![16, 64]
    } else {
        vec![16, 32, 64, 96, 128]
    };
    section("Fig 4 — sllm SLO rate vs number of LLMs (4 GPUs, 3B/7B/13B mix)");
    let parts = [
        (ModelSpec::llama3_2_3b(), 1),
        (ModelSpec::llama2_7b(), 1),
        (ModelSpec::llama2_13b(), 1),
    ];
    let mut table = Table::new(&["models", "SLO rate", "dropped", "total"]);
    let mut results = Vec::new();
    for &n in &counts {
        let trace = TraceSpec::azure_like(n, seed).generate();
        let models = zoo::mixed(&parts, n as usize);
        let system = System::Sllm;
        let cluster = system.cluster(0, 4, &models);
        let m = system.run(&cluster, models, world_cfg(seed), &trace);
        table.row(&[
            n.to_string(),
            f(m.slo_rate(), 3),
            m.dropped.to_string(),
            m.total().to_string(),
        ]);
        results.push((n, m.slo_rate()));
    }
    table.print();
    let first = results.first().map(|r| r.1).unwrap_or(0.0);
    let last = results.last().map(|r| r.1).unwrap_or(0.0);
    println!("SLO rate {} → {} as models grow", f(first, 2), f(last, 2));
    paper_note("Fig 4: performs well at small scales, then attainment drops sharply;");
    paper_note("intro: 33% of requests fail SLOs at 64 LLMs on 4 A100s");
    dump_json("fig04_sllm_capacity", &results);
}
