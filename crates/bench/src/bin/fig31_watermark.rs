//! Figure 31 — KV-cache scaling watermark sensitivity (§IX-I5).
//!
//! Sweeps the watermark `w` over {0%, 10%, 25%, 50%, 100%}. The paper:
//! disabling the watermark (0%) makes instances spend 11.3% of their
//! lifetime rescaling; 25% already cuts that to 1.4% with a 0–0.3%
//! migration rate, while larger values only erode KV utilization.

use bench::report::{dump_json, f, paper_note, section};
use bench::runner::{arg_seed, quick_mode, world_cfg, System};
use bench::{zoo, Table};
use hwmodel::ModelSpec;
use slinfer::SlinferConfig;
use workload::serverless::TraceSpec;

fn main() {
    let seed = arg_seed();
    let n_models: u32 = if quick_mode() { 24 } else { 64 };
    let watermarks: Vec<f64> = if quick_mode() {
        vec![0.0, 0.25]
    } else {
        vec![0.0, 0.10, 0.25, 0.50, 1.00]
    };
    section(&format!("Fig 31 — watermark sweep, {n_models} 7B models"));
    let trace = TraceSpec::azure_like(n_models, seed).generate();
    let models = zoo::replicas(&ModelSpec::llama2_7b(), n_models as usize);

    let mut table = Table::new(&[
        "watermark",
        "KV util (mean)",
        "scaling overhead %",
        "migration rate %",
        "scale ops",
        "SLO rate",
    ]);
    let mut results = Vec::new();
    for &w in &watermarks {
        let cfg = SlinferConfig::default().with_watermark(w);
        let system = System::Slinfer(cfg);
        let cluster = system.cluster(4, 4, &models);
        let m = system.run(&cluster, models.clone(), world_cfg(seed), &trace);
        let overhead = 100.0 * m.scaling_overhead_fraction();
        let mig_rate = 100.0 * m.migrated_requests() as f64 / m.total().max(1) as f64;
        table.row(&[
            format!("{:.0}%", w * 100.0),
            f(m.kv_util.mean(), 2),
            f(overhead, 1),
            f(mig_rate, 2),
            m.scale_ops.to_string(),
            f(m.slo_rate(), 3),
        ]);
        results.push((w, m.kv_util.mean(), overhead, mig_rate, m.scale_ops));
    }
    table.print();
    paper_note("Fig 31: 0% watermark → 11.3% of lifetime spent scaling; 25% → 1.4% overhead,");
    paper_note("0–0.3% migration rate; higher watermarks only lower KV utilization");
    dump_json("fig31_watermark", &results);
}
