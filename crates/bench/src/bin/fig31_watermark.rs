//! Stub over the registered experiment of the same name; the
//! implementation lives in `bench::experiments::fig31_watermark`.

fn main() {
    bench::main_for("fig31_watermark");
}
