//! Stub over the registered experiment of the same name; the
//! implementation lives in `bench::experiments::fault_drain`.

fn main() {
    bench::main_for("fault_drain");
}
