//! Stub over the registered experiment of the same name; the
//! implementation lives in `bench::experiments::fig30_keepalive`.

fn main() {
    bench::main_for("fig30_keepalive");
}
