//! Figure 30 — keep-alive threshold sensitivity (§IX-I4).
//!
//! Sweeps the keep-alive threshold over {0, 1, 2, 4, 8} s for `sllm+c+s`
//! and SLINFER. The paper's counterintuitive finding: longer keep-alive can
//! *worsen* P95 TTFT (idle instances hog resources and queue requests)
//! while raising GPU usage; 1 s balances both.

use bench::report::{dump_json, f, paper_note, section};
use bench::runner::{arg_seed, quick_mode, world_cfg, System};
use bench::{zoo, Table};
use hwmodel::{HardwareKind, ModelSpec};
use simcore::time::SimDuration;
use workload::serverless::TraceSpec;

fn main() {
    let seed = arg_seed();
    let n_models: u32 = if quick_mode() { 24 } else { 64 };
    let thresholds: Vec<u64> = if quick_mode() {
        vec![1, 8]
    } else {
        vec![0, 1, 2, 4, 8]
    };
    section(&format!("Fig 30 — keep-alive sweep, {n_models} 7B models"));
    let trace = TraceSpec::azure_like(n_models, seed).generate();
    let models = zoo::replicas(&ModelSpec::llama2_7b(), n_models as usize);

    let mut table = Table::new(&[
        "keep-alive (s)",
        "system",
        "GPU nodes",
        "P95 TTFT (s)",
        "SLO rate",
        "cold starts",
    ]);
    let mut results = Vec::new();
    for &ka in &thresholds {
        for system in [System::SllmCs, System::Slinfer(Default::default())] {
            let cluster = system.cluster(4, 4, &models);
            let mut cfg = world_cfg(seed);
            cfg.keep_alive = SimDuration::from_secs(ka);
            let m = system.run(&cluster, models.clone(), cfg, &trace);
            let mut ttft = m.ttft_summary();
            table.row(&[
                ka.to_string(),
                system.name(),
                f(m.avg_nodes_used(HardwareKind::Gpu), 1),
                f(ttft.percentile(95.0), 2),
                f(m.slo_rate(), 3),
                m.cold_starts.to_string(),
            ]);
            results.push((
                ka,
                system.name(),
                m.avg_nodes_used(HardwareKind::Gpu),
                ttft.percentile(95.0),
            ));
        }
    }
    table.print();
    paper_note("Fig 30: longer keep-alive raises GPU usage and can worsen P95 TTFT;");
    paper_note("a short threshold (1 s) balances efficiency and user experience");
    dump_json("fig30_keepalive", &results);
}
