//! Figure 32 — performance under different node counts (§IX-H).
//!
//! Sweeps the cluster from 1 CPU + 1 GPU up to 4 CPU + 4 GPU under a fixed
//! 64-model workload. The paper: SLINFER leads at every size and its
//! 4-node configuration matches `sllm+c+s` on eight nodes, with
//! diminishing returns at the top end.

use bench::report::{dump_json, paper_note, section};
use bench::runner::{arg_seed, quick_mode, world_cfg, System};
use bench::{zoo, Table};
use hwmodel::ModelSpec;
use workload::serverless::TraceSpec;

fn main() {
    let seed = arg_seed();
    let n_models: u32 = if quick_mode() { 24 } else { 64 };
    let sizes: Vec<usize> = if quick_mode() {
        vec![1, 2]
    } else {
        vec![1, 2, 3, 4]
    };
    section(&format!("Fig 32 — node-count sweep, {n_models} 7B models"));
    let trace = TraceSpec::azure_like(n_models, seed).generate();
    let models = zoo::replicas(&ModelSpec::llama2_7b(), n_models as usize);

    let mut table = Table::new(&[
        "nodes (CPU+GPU)",
        "sllm+c+s SLO-met",
        "SLINFER SLO-met",
        "total",
    ]);
    let mut results = Vec::new();
    for &k in &sizes {
        let mut row = vec![format!("{k}+{k}")];
        let mut met = Vec::new();
        for system in [System::SllmCs, System::Slinfer(Default::default())] {
            let cluster = system.cluster(k, k, &models);
            let m = system.run(&cluster, models.clone(), world_cfg(seed), &trace);
            met.push(m.slo_met());
            row.push(m.slo_met().to_string());
        }
        row.push(trace.len().to_string());
        table.row(&row);
        results.push((k, met[0], met[1]));
    }
    table.print();
    if !quick_mode() {
        // The paper's headline: SLINFER at 4+4 ≈ sllm+c+s at 8 nodes.
        let eight = System::SllmCs;
        let cluster = eight.cluster(4, 4, &models); // 8 nodes total
        let m = eight.run(&cluster, models.clone(), world_cfg(seed), &trace);
        let four = System::Slinfer(Default::default());
        let ccluster = four.cluster(2, 2, &models); // 4 nodes total
        let ms = four.run(&ccluster, models, world_cfg(seed), &trace);
        println!(
            "SLINFER on 4 nodes: {} SLO-met vs sllm+c+s on 8 nodes: {}",
            ms.slo_met(),
            m.slo_met()
        );
    }
    paper_note("Fig 32: SLINFER leads at every node count; 4-node SLINFER ≈ 8-node sllm+c+s");
    dump_json("fig32_node_scaling", &results);
}
