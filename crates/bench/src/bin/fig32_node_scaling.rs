//! Stub over the registered experiment of the same name; the
//! implementation lives in `bench::experiments::fig32_node_scaling`.

fn main() {
    bench::main_for("fig32_node_scaling");
}
