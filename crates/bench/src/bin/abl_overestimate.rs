//! Stub over the registered experiment of the same name; the
//! implementation lives in `bench::experiments::abl_overestimate`.

fn main() {
    bench::main_for("abl_overestimate");
}
