//! Extra ablation (DESIGN.md §5): shadow-validation overestimation factor.
//!
//! §VI-C inflates every estimated iteration by 10% to absorb runtime
//! fluctuation and context growth. This sweep shows the trade-off the
//! constant balances: no margin (1.0×) admits optimistically and violates
//! more SLOs under noise; heavy margins (1.5×+) reject work the cluster
//! could have served.

use bench::report::{dump_json, f, paper_note, section};
use bench::runner::{arg_seed, quick_mode, world_cfg, System};
use bench::{zoo, Table};
use hwmodel::ModelSpec;
use slinfer::SlinferConfig;
use workload::serverless::TraceSpec;

fn main() {
    let seed = arg_seed();
    let n_models: u32 = if quick_mode() { 24 } else { 64 };
    let factors: Vec<f64> = if quick_mode() {
        vec![1.0, 1.1]
    } else {
        vec![1.0, 1.05, 1.1, 1.25, 1.5, 2.0]
    };
    section(&format!(
        "Ablation — shadow-validation overestimate, {n_models} 7B models"
    ));
    let trace = TraceSpec::azure_like(n_models, seed).generate();
    let models = zoo::replicas(&ModelSpec::llama2_7b(), n_models as usize);

    let mut table = Table::new(&[
        "factor",
        "SLO rate",
        "SLO-met",
        "dropped",
        "validations",
        "GPU nodes",
    ]);
    let mut results = Vec::new();
    for &over in &factors {
        let cfg = SlinferConfig {
            overestimate: over,
            ..SlinferConfig::default()
        };
        let system = System::Slinfer(cfg);
        let cluster = system.cluster(4, 4, &models);
        let m = system.run(&cluster, models.clone(), world_cfg(seed), &trace);
        table.row(&[
            format!("{over:.2}×"),
            f(m.slo_rate(), 3),
            m.slo_met().to_string(),
            m.dropped.to_string(),
            m.shadow_validations.to_string(),
            f(m.avg_nodes_used(hwmodel::HardwareKind::Gpu), 1),
        ]);
        results.push((over, m.slo_rate(), m.slo_met(), m.dropped));
    }
    table.print();
    paper_note("§VI-C picks 10%: enough margin for fluctuation and growing contexts,");
    paper_note("without rejecting servable requests");
    dump_json("abl_overestimate", &results);
}
