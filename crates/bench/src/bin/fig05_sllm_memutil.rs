//! Figure 5 — GPU memory utilization under ServerlessLLM (§III-C).
//!
//! Serving 128 LLMs with exclusive GPU allocation, each instance gets a
//! whole 80 GB device; the paper measures only ~23% average utilization —
//! the over-provisioning that motivates SLINFER.

use bench::report::{dump_json, f, paper_note, section};
use bench::runner::{arg_seed, quick_mode, world_cfg, System};
use bench::{zoo, Table};
use hwmodel::{HardwareKind, ModelSpec};
use workload::serverless::TraceSpec;

fn main() {
    let seed = arg_seed();
    let n: u32 = if quick_mode() { 32 } else { 128 };
    section(&format!("Fig 5 — sllm GPU memory utilization, {n} LLMs"));
    let parts = [
        (ModelSpec::llama3_2_3b(), 1),
        (ModelSpec::llama2_7b(), 1),
        (ModelSpec::llama2_13b(), 1),
    ];
    let trace = TraceSpec::azure_like(n, seed).generate();
    let models = zoo::mixed(&parts, n as usize);
    let system = System::Sllm;
    let cluster = system.cluster(0, 4, &models);
    let mut m = system.run(&cluster, models, world_cfg(seed), &trace);

    let mut table = Table::new(&["stat", "memory utilization"]);
    table.row(&["mean".into(), f(m.mem_util_mean(HardwareKind::Gpu), 3)]);
    for p in [10.0, 25.0, 50.0, 75.0, 90.0, 99.0] {
        table.row(&[format!("p{p:.0}"), f(m.mem_util_gpu.percentile(p), 3)]);
    }
    table.print();
    let cdf = m.mem_util_gpu.cdf(11);
    println!("CDF points (util, F):");
    for (x, fr) in &cdf.points {
        println!("  {:.2}  {:.2}", x, fr);
    }
    paper_note("Fig 5: each instance utilizes only ~23% of its allocated GPU memory on average");
    dump_json("fig05_sllm_memutil", &cdf.points);
}
