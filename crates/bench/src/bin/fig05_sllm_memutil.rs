//! Stub over the registered experiment of the same name; the
//! implementation lives in `bench::experiments::fig05_sllm_memutil`.

fn main() {
    bench::main_for("fig05_sllm_memutil");
}
