//! Stub over the registered experiment of the same name; the
//! implementation lives in `bench::experiments::tab2_partition_limits`.

fn main() {
    bench::main_for("tab2_partition_limits");
}
