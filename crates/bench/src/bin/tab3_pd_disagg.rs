//! Table III — prefill–decode disaggregation (§IX-G).
//!
//! Compares aggregated vs PD-disaggregated variants of `sllm+c+s` and
//! SLINFER at 32/64/128 7B-sized models (100 Gbps KV transfer). The paper
//! finds disaggregation *increases* GPU usage and *reduces* SLO rates —
//! prefill instances idle 93% of their lifetime under serverless traffic.

use bench::report::{dump_json, f, paper_note, section};
use bench::runner::{arg_seed, quick_mode, world_cfg, System};
use bench::{zoo, Table};
use hwmodel::{HardwareKind, ModelSpec};
use workload::serverless::TraceSpec;

fn main() {
    let seed = arg_seed();
    let counts: Vec<u32> = if quick_mode() {
        vec![32]
    } else {
        vec![32, 64, 128]
    };
    section("Table III — aggregated vs disaggregated PD");
    let mut table = Table::new(&[
        "system",
        "models",
        "GPU use (agg/disagg)",
        "SLO % (agg/disagg)",
        "cold starts (agg/disagg)",
    ]);
    let mut results = Vec::new();
    for (agg, disagg, label) in [
        (System::SllmCs, System::PdSllmCs, "sllm+c+s"),
        (
            System::Slinfer(Default::default()),
            System::PdSlinfer,
            "SLINFER",
        ),
    ] {
        for &n in &counts {
            let trace = TraceSpec::azure_like(n, seed).generate();
            let models = zoo::replicas(&ModelSpec::llama2_7b(), n as usize);
            let run = |sys: &System| {
                let cluster = sys.cluster(4, 4, &models);
                sys.run(&cluster, models.clone(), world_cfg(seed), &trace)
            };
            let a = run(&agg);
            let d = run(&disagg);
            table.row(&[
                label.to_string(),
                n.to_string(),
                format!(
                    "{} / {}",
                    f(a.avg_nodes_used(HardwareKind::Gpu), 1),
                    f(d.avg_nodes_used(HardwareKind::Gpu), 1)
                ),
                format!(
                    "{} / {}",
                    f(a.slo_rate() * 100.0, 0),
                    f(d.slo_rate() * 100.0, 0)
                ),
                format!("{} / {}", a.cold_starts, d.cold_starts),
            ]);
            results.push((
                label.to_string(),
                n,
                a.slo_rate(),
                d.slo_rate(),
                a.avg_nodes_used(HardwareKind::Gpu),
                d.avg_nodes_used(HardwareKind::Gpu),
            ));
        }
    }
    table.print();
    paper_note(
        "Table III: sllm+c+s 99/93, 93/70, 65/35 %; SLINFER 99/99, 99/98, 86/69 % (agg/disagg)",
    );
    paper_note("disaggregation raises GPU usage at every load level");
    dump_json("tab3_pd_disagg", &results);
}
