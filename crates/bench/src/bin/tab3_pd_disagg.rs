//! Stub over the registered experiment of the same name; the
//! implementation lives in `bench::experiments::tab3_pd_disagg`.

fn main() {
    bench::main_for("tab3_pd_disagg");
}
