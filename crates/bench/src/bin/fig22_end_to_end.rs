//! Stub over the registered experiment of the same name; the
//! implementation lives in `bench::experiments::fig22_end_to_end`.

fn main() {
    bench::main_for("fig22_end_to_end");
}
