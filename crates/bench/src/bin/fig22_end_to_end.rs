//! Figure 22 — end-to-end comparison (§IX-B).
//!
//! For each model size (3B/7B/13B) and zoo size (32/64/128), runs the four
//! systems on the Azure-like trace over 4 CPU + 4 GPU nodes and reports the
//! paper's four panels: SLO-met requests, TTFT percentiles, per-node decode
//! speed, and average nodes used.
//!
//! Paper headline (at 128 models): SLINFER serves **+86–154%** more SLO-met
//! requests than `sllm`, **+47–62%** more than `sllm+c`, and **+18–70%**
//! more than `sllm+c+s`.

use bench::report::{dump_json, f, paper_note, section};
use bench::runner::{arg_seed, quick_mode, world_cfg, System, SystemResult};
use bench::{zoo, Table};
use workload::serverless::TraceSpec;

fn main() {
    let seed = arg_seed();
    let counts: Vec<u32> = if quick_mode() {
        vec![32]
    } else {
        vec![32, 64, 128]
    };
    let mut all_results = Vec::new();

    for (size_name, base) in zoo::size_bases() {
        if quick_mode() && size_name != "7B" {
            continue;
        }
        for &n_models in &counts {
            section(&format!("Fig 22 — {size_name}-sized, {n_models} models"));
            let trace = TraceSpec::azure_like(n_models, seed).generate();
            println!(
                "trace: {} requests over {:.0} min (aggregate {:.0} RPM)",
                trace.len(),
                trace.duration.as_secs_f64() / 60.0,
                trace.aggregate_rpm()
            );
            let models = zoo::replicas(&base, n_models as usize);
            let mut table = Table::new(&[
                "system",
                "SLO-met",
                "total",
                "rate",
                "TTFT p50(s)",
                "TTFT p95(s)",
                "CPU nodes",
                "GPU nodes",
                "dec CPU t/(n·s)",
                "dec GPU t/(n·s)",
                "dropped",
            ]);
            let mut row_results = Vec::new();
            for system in System::paper_lineup() {
                let cluster = system.cluster(4, 4, &models);
                let m = system.run(&cluster, models.clone(), world_cfg(seed), &trace);
                let r = SystemResult::from_metrics(&system, &m);
                table.row(&[
                    r.system.clone(),
                    r.slo_met.to_string(),
                    r.total.to_string(),
                    f(r.slo_rate, 3),
                    f(r.ttft_p50, 2),
                    f(r.ttft_p95, 2),
                    f(r.cpu_nodes, 1),
                    f(r.gpu_nodes, 1),
                    f(r.cpu_decode_speed, 0),
                    f(r.gpu_decode_speed, 0),
                    r.dropped.to_string(),
                ]);
                row_results.push(r);
            }
            table.print();
            if n_models == 128 {
                let slinfer = row_results.last().unwrap().slo_met as f64;
                let vs =
                    |ix: usize| 100.0 * (slinfer / row_results[ix].slo_met.max(1) as f64 - 1.0);
                println!(
                    "SLINFER SLO-met vs sllm: {:+.0}%  vs sllm+c: {:+.0}%  vs sllm+c+s: {:+.0}%",
                    vs(0),
                    vs(1),
                    vs(2)
                );
                paper_note(
                    "at 128 models: +86-154% vs sllm, +47-62% vs sllm+c, +18-70% vs sllm+c+s",
                );
            }
            all_results.push((size_name.to_string(), n_models, row_results));
        }
    }
    dump_json("fig22_end_to_end", &all_results);
}
