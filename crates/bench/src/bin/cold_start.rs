//! Stub over the registered experiment of the same name; the
//! implementation lives in `bench::experiments::cold_start`.

fn main() {
    bench::main_for("cold_start");
}
