//! Stub over the registered experiment of the same name; the
//! implementation lives in `bench::experiments::fig17_kv_scaling`.

fn main() {
    bench::main_for("fig17_kv_scaling");
}
