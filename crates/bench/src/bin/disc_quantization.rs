//! Stub over the registered experiment of the same name; the
//! implementation lives in `bench::experiments::disc_quantization`.

fn main() {
    bench::main_for("disc_quantization");
}
