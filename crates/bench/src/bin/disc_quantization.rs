//! §X discussion — serving INT4-quantized 22B models.
//!
//! 32 Codestral-22B-sized models on SLINFER: FP16 weights alone take 44 GB
//! (little sharing room on an 80 GB A100), while INT4 shrinks them to 11 GB.
//! The paper measures GPU usage dropping from 3.8 to 2.6 nodes.

use bench::report::{dump_json, f, paper_note, section};
use bench::runner::{arg_seed, quick_mode, world_cfg, System};
use bench::{zoo, Table};
use hwmodel::{HardwareKind, ModelSpec, Precision};
use workload::serverless::TraceSpec;

fn main() {
    let seed = arg_seed();
    let n_models: u32 = if quick_mode() { 16 } else { 32 };
    section(&format!("§X — INT4 quantization, {n_models} 22B models"));
    let trace = TraceSpec::azure_like(n_models, seed).generate();

    let mut table = Table::new(&["precision", "GPU nodes used", "SLO rate", "cold starts"]);
    let mut dump = Vec::new();
    for (label, precision) in [("FP16", Precision::Fp16), ("INT4", Precision::Int4)] {
        let base = ModelSpec::codestral_22b().with_precision(precision);
        let models = zoo::replicas(&base, n_models as usize);
        let system = System::Slinfer(Default::default());
        let cluster = system.cluster(4, 6, &models);
        let m = system.run(&cluster, models, world_cfg(seed), &trace);
        let gpus = m.avg_nodes_used(HardwareKind::Gpu);
        table.row(&[
            label.to_string(),
            f(gpus, 1),
            f(m.slo_rate(), 3),
            m.cold_starts.to_string(),
        ]);
        dump.push((label.to_string(), gpus, m.slo_rate()));
    }
    table.print();
    paper_note("§X: INT4 reduced GPU usage from 3.8 to 2.6 — 44 GB FP16 weights leave no");
    paper_note("sharing room on an 80 GB device, so quantization unlocks colocation");
    dump_json("disc_quantization", &dump);
}
