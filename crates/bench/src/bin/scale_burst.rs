//! Stub over the registered experiment of the same name; the
//! implementation lives in `bench::experiments::scale_burst`.

fn main() {
    bench::main_for("scale_burst");
}
