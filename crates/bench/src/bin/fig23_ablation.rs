//! Stub over the registered experiment of the same name; the
//! implementation lives in `bench::experiments::fig23_ablation`.

fn main() {
    bench::main_for("fig23_ablation");
}
