//! Stub over the registered experiment of the same name; the
//! implementation lives in `bench::experiments::fig09_12_footprint`.

fn main() {
    bench::main_for("fig09_12_footprint");
}
