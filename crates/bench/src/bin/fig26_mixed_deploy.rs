//! Stub over the registered experiment of the same name; the
//! implementation lives in `bench::experiments::fig26_mixed_deploy`.

fn main() {
    bench::main_for("fig26_mixed_deploy");
}
