//! Stub over the registered experiment of the same name; the
//! implementation lives in `bench::experiments::tab1_xeon_gens`.

fn main() {
    bench::main_for("tab1_xeon_gens");
}
