//! Stub over the registered experiment of the same name; the
//! implementation lives in `bench::experiments::fig24_cpu_scaling`.

fn main() {
    bench::main_for("fig24_cpu_scaling");
}
