//! Figure 24 — CPU scalability (§IX-D).
//!
//! Starting from 2 GPU nodes (insufficient for 64 7B models), adds CPU
//! nodes or GPU nodes one at a time and plots SLO-met requests. The paper
//! finds capacity grows with CPUs, with roughly 3–4 CPU nodes matching one
//! GPU node.

use bench::report::{dump_json, f, paper_note, section};
use bench::runner::{arg_seed, quick_mode, world_cfg, System};
use bench::{zoo, Table};
use cluster::ClusterSpec;
use hwmodel::ModelSpec;
use workload::serverless::TraceSpec;

fn main() {
    let seed = arg_seed();
    let n_models: u32 = if quick_mode() { 16 } else { 64 };
    let max_added: usize = if quick_mode() { 3 } else { 8 };
    section(&format!(
        "Fig 24 — CPU scalability, {n_models} 7B models, base 2 GPUs"
    ));
    let trace = TraceSpec::azure_like(n_models, seed).generate();
    let models = zoo::replicas(&ModelSpec::llama2_7b(), n_models as usize);
    let system = System::Slinfer(Default::default());

    let mut table = Table::new(&[
        "added nodes",
        "SLO-met (add CPU)",
        "SLO-met (add GPU)",
        "total",
    ]);
    let mut series = Vec::new();
    // Scheduling under CPU-heavy overload is sensitive to placement tipping
    // points; average 3 seeds to expose the trend the paper plots.
    let seeds = [seed, seed + 1, seed + 2];
    for added in 0..=max_added {
        let run = |cluster: &ClusterSpec| {
            seeds
                .iter()
                .map(|&s| {
                    system
                        .run(cluster, models.clone(), world_cfg(s), &trace)
                        .slo_met()
                })
                .sum::<usize>()
                / seeds.len()
        };
        let cpu_met = run(&ClusterSpec::heterogeneous(added, 2));
        let gpu_met = run(&ClusterSpec::heterogeneous(0, 2 + added));
        table.row(&[
            added.to_string(),
            cpu_met.to_string(),
            gpu_met.to_string(),
            trace.len().to_string(),
        ]);
        series.push((added, cpu_met, gpu_met));
    }
    table.print();
    // Crossover estimate: CPUs needed to match the first added GPU.
    if series.len() > 1 {
        let one_gpu = series[1].2;
        let needed = series
            .iter()
            .find(|(_, cpu, _)| *cpu >= one_gpu)
            .map(|(n, _, _)| *n);
        match needed {
            Some(n) => println!("≈{n} CPU nodes match 1 added GPU node (paper: 3–4)"),
            None => println!(
                "within {max_added} CPUs, capacity reached {} vs 1-GPU {}",
                f(series.last().unwrap().1 as f64 / one_gpu.max(1) as f64, 2),
                one_gpu
            ),
        }
    }
    paper_note("Fig 24: adding CPUs grows capacity; ~3-4 CPU nodes ≈ 1 GPU node");
    dump_json("fig24_cpu_scaling", &series);
}
