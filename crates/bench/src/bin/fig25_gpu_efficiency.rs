//! Stub over the registered experiment of the same name; the
//! implementation lives in `bench::experiments::fig25_gpu_efficiency`.

fn main() {
    bench::main_for("fig25_gpu_efficiency");
}
