//! Stub over the registered experiment of the same name; the
//! implementation lives in `bench::experiments::fig07_08_tpot_curves`.

fn main() {
    bench::main_for("fig07_08_tpot_curves");
}
