//! Stub over the registered experiment of the same name; the
//! implementation lives in `bench::experiments::fig33_sched_overhead`.

fn main() {
    bench::main_for("fig33_sched_overhead");
}
