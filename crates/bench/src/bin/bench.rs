//! The multi-experiment runner: enumerate, run one, or run all.
//!
//! ```text
//! bench list                     # names and titles of all 26 experiments
//! bench all [options]            # run every experiment, in registry order
//! bench run <name> [options]     # run one experiment by name
//! ```
//!
//! Options are the unified experiment flags (`--seed`, `--quick`,
//! `--threads`, `--json`); `bench all --quick --threads 2` is what the CI
//! smoke job runs.

use bench::cli::{Cli, Parsed, USAGE};
use bench::{registry, REGISTRY};

const COMMANDS: &str = "\
commands:
  list [--json]      list registered experiments (--json: machine-readable,
                     with quick/full sweep-grid cell counts)
  all [options]      run every experiment in registry order
  run NAME [options] run one experiment by name";

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

fn parse_opts<I: Iterator<Item = String>>(rest: I) -> Cli {
    match Cli::parse(rest) {
        Ok(Parsed::Run(cli)) => cli,
        Ok(Parsed::Help) => {
            println!("usage: bench <command> [options]\n\n{COMMANDS}\n\n{USAGE}");
            std::process::exit(0);
        }
        Err(e) => fail(&e.0),
    }
}

fn main() {
    // detlint::allow(D004, "CLI argument intake for the multi-runner; parsed before any simulation")
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("list") => match args.next().as_deref() {
            // Machine-readable registry dump: CI scripts consume this
            // instead of parsing the human-readable table.
            Some("--json") => {
                #[derive(serde::Serialize)]
                struct Entry {
                    name: &'static str,
                    title: &'static str,
                    quick_cells: usize,
                    full_cells: usize,
                }
                let entries: Vec<Entry> = REGISTRY
                    .iter()
                    .map(|e| Entry {
                        name: e.name,
                        title: e.title,
                        quick_cells: (e.grid)(true),
                        full_cells: (e.grid)(false),
                    })
                    .collect();
                println!(
                    "{}",
                    serde_json::to_string_pretty(&entries).expect("registry serializes")
                );
            }
            Some(other) => fail(&format!("unknown list option `{other}` (only --json)")),
            None => {
                for e in REGISTRY {
                    println!("{:<24} {}", e.name, e.title);
                }
            }
        },
        Some("all") => {
            let cli = parse_opts(args);
            // One process runs every experiment: memoize identical sweep
            // cells so later experiments skip work earlier ones already
            // did (results are byte-identical either way).
            bench::memo::enable();
            for e in REGISTRY {
                registry::present(&registry::run_experiment(e, &cli), &cli);
            }
            let reused = bench::memo::hits();
            if reused > 0 {
                eprintln!("bench all: {reused} sweep cell(s) served from the per-cell cache");
            }
            bench::memo::disable();
        }
        Some("run") => {
            let name = args
                .next()
                .unwrap_or_else(|| fail("run needs an experiment name (see `bench list`)"));
            let exp = bench::find(&name).unwrap_or_else(|| {
                fail(&format!(
                    "unknown experiment `{name}` (see `bench list` for the registry)"
                ))
            });
            let cli = parse_opts(args);
            registry::present(&registry::run_experiment(exp, &cli), &cli);
        }
        Some("-h") | Some("--help") | None => {
            println!("usage: bench <command> [options]\n\n{COMMANDS}\n\n{USAGE}");
        }
        Some(other) => fail(&format!("unknown command `{other}`\n{COMMANDS}")),
    }
}
