//! Stub over the registered experiment of the same name; the
//! implementation lives in `bench::experiments::fig35_dataset_eval`.

fn main() {
    bench::main_for("fig35_dataset_eval");
}
