//! Figure 35 — evaluation across length datasets (§IX-I1).
//!
//! Serves 64 Llama-3.1-8B models under each of the five datasets (HumanEval,
//! AzureCode, AzureConv, LongBench, ShareGPT). The paper: SLINFER uses
//! fewer nodes everywhere; long-output datasets (ShareGPT) reach higher
//! decode throughput; for LongBench the CPUs cannot hold the long-sequence
//! TTFT SLO, so SLINFER avoids them while `sllm+c+s` blindly fills them and
//! violates 63.4% of SLOs.

use bench::report::{dump_json, f, paper_note, section};
use bench::runner::{arg_seed, quick_mode, world_cfg, System};
use bench::{zoo, Table};
use hwmodel::{HardwareKind, ModelSpec};
use workload::{serverless::TraceSpec, Dataset};

fn main() {
    let seed = arg_seed();
    let n_models: u32 = if quick_mode() { 16 } else { 64 };
    section(&format!("Fig 35 — dataset sweep, {n_models} 8B models"));
    let models = zoo::replicas(&ModelSpec::llama3_1_8b(), n_models as usize);

    let mut table = Table::new(&[
        "dataset",
        "system",
        "CPU nodes",
        "GPU nodes",
        "dec CPU t/(n·s)",
        "dec GPU t/(n·s)",
        "SLO rate",
    ]);
    let mut results = Vec::new();
    let datasets = if quick_mode() {
        vec![Dataset::AzureConv, Dataset::LongBench]
    } else {
        Dataset::ALL.to_vec()
    };
    for ds in datasets {
        let trace = TraceSpec::azure_like(n_models, seed)
            .with_dataset(ds)
            .generate();
        for system in [System::SllmCs, System::Slinfer(Default::default())] {
            let cluster = system.cluster(4, 4, &models);
            let m = system.run(&cluster, models.clone(), world_cfg(seed), &trace);
            table.row(&[
                ds.name().to_string(),
                system.name(),
                f(m.avg_nodes_used(HardwareKind::CpuAccel), 1),
                f(m.avg_nodes_used(HardwareKind::Gpu), 1),
                f(m.decode_speed_per_node(HardwareKind::CpuAccel), 0),
                f(m.decode_speed_per_node(HardwareKind::Gpu), 0),
                f(m.slo_rate(), 3),
            ]);
            results.push((
                ds.name().to_string(),
                system.name(),
                m.avg_nodes_used(HardwareKind::CpuAccel),
                m.avg_nodes_used(HardwareKind::Gpu),
                m.slo_rate(),
            ));
        }
    }
    table.print();
    paper_note("Fig 35: SLINFER consumes fewer resources on every dataset;");
    paper_note("ShareGPT's long outputs raise decode throughput (more batching);");
    paper_note("LongBench: CPUs cannot meet long-sequence TTFT — SLINFER avoids them,");
    paper_note("sllm+c+s fills them and violates 63.4% of SLOs");
    dump_json("fig35_dataset_eval", &results);
}
