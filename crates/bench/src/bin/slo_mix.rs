//! Stub over the registered experiment of the same name; the
//! implementation lives in `bench::experiments::slo_mix`.

fn main() {
    bench::main_for("slo_mix");
}
