//! Stub over the registered experiment of the same name; the
//! implementation lives in `bench::experiments::fig29_harvested_cores`.

fn main() {
    bench::main_for("fig29_harvested_cores");
}
