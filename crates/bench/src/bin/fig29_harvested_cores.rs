//! Figure 29 — harvested CPU cores per GPU (§IX-I3).
//!
//! With only 4 GPU nodes plus {0, 8, 16, 32} harvested host-CPU cores per
//! GPU, compares NEO+ (KV/attention offload), `sllm+c+s` (statically shares
//! the harvested cores as half-slots), and SLINFER (elastically serves on
//! them). Paper SLO-miss rates: NEO+ 46/45/41/34%, sllm+c+s 46/52/49/38%,
//! SLINFER 19/16/12/9%.

use baselines::NeoPlus;
use bench::report::{dump_json, f, paper_note, section};
use bench::runner::{arg_seed, quick_mode, world_cfg, System};
use bench::{zoo, Table};
use cluster::ClusterSpec;
use hwmodel::ModelSpec;
use workload::serverless::TraceSpec;

fn main() {
    let seed = arg_seed();
    let n_models: u32 = if quick_mode() { 32 } else { 64 };
    let cores_sweep: Vec<u32> = if quick_mode() {
        vec![0, 32]
    } else {
        vec![0, 8, 16, 32]
    };
    section(&format!(
        "Fig 29 — harvested cores, {n_models} 7B models, 4 GPUs"
    ));
    let trace = TraceSpec::azure_like(n_models, seed).generate();
    let models = zoo::replicas(&ModelSpec::llama2_7b(), n_models as usize);

    let mut table = Table::new(&["cores/GPU", "NEO+ miss%", "sllm+c+s miss%", "SLINFER miss%"]);
    let mut results = Vec::new();
    for &cores in &cores_sweep {
        // NEO+: offload-extended GPU nodes, exclusive allocation.
        let neo_cluster = NeoPlus::cluster(4, cores);
        let neo = cluster::Simulation::new(
            &neo_cluster,
            models.clone(),
            world_cfg(seed),
            NeoPlus::policy(),
        )
        .run(&trace);

        // sllm+c+s: harvested cores appear as fractional CPU nodes, halved.
        let mut cs_cluster = ClusterSpec::statically_shared(0, 4);
        let harvested = ClusterSpec::heterogeneous(0, 0).with_harvested_cpus(4, cores);
        for mut n in harvested.nodes {
            if cores >= 16 {
                n = cluster::NodeSpec::split(n.hw, 2);
            }
            cs_cluster.nodes.push(n);
        }
        let cs = System::SllmCs.run(&cs_cluster, models.clone(), world_cfg(seed), &trace);

        // SLINFER: harvested cores as whole fractional CPU nodes.
        let sl_cluster = ClusterSpec::heterogeneous(0, 4).with_harvested_cpus(4, cores);
        let sl = System::Slinfer(Default::default()).run(
            &sl_cluster,
            models.clone(),
            world_cfg(seed),
            &trace,
        );

        let miss = |m: &cluster::RunMetrics| 100.0 * (1.0 - m.slo_rate());
        table.row(&[
            cores.to_string(),
            f(miss(&neo), 0),
            f(miss(&cs), 0),
            f(miss(&sl), 0),
        ]);
        results.push((cores, miss(&neo), miss(&cs), miss(&sl)));
    }
    table.print();
    paper_note("Fig 29: NEO+ 46/45/41/34, sllm+c+s 46/52/49/38, SLINFER 19/16/12/9 % miss");
    paper_note("SLINFER lowest at every core count; NEO+ improves only mildly (no sharing)");
    dump_json("fig29_harvested_cores", &results);
}
