//! Stub over the registered experiment of the same name; the
//! implementation lives in `bench::experiments::tp_scaling`.

fn main() {
    bench::main_for("tp_scaling");
}
