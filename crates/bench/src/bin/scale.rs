//! Stub over the registered experiment of the same name; the
//! implementation lives in `bench::experiments::scale`.

fn main() {
    bench::main_for("scale");
}
