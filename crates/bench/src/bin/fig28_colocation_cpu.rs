//! Stub over the registered experiment of the same name; the
//! implementation lives in `bench::experiments::fig28_colocation_cpu`.

fn main() {
    bench::main_for("fig28_colocation_cpu");
}
