//! Stub over the registered experiment of the same name; the
//! implementation lives in `bench::experiments::fig34_datasets`.

fn main() {
    bench::main_for("fig34_datasets");
}
