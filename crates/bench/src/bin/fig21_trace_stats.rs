//! Stub over the registered experiment of the same name; the
//! implementation lives in `bench::experiments::fig21_trace_stats`.

fn main() {
    bench::main_for("fig21_trace_stats");
}
