//! Stub over the registered experiment of the same name; the
//! implementation lives in `bench::experiments::session_reuse`.

fn main() {
    bench::main_for("session_reuse");
}
