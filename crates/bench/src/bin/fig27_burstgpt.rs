//! Figure 27 — BurstGPT trace at varying load levels (§IX-I2).
//!
//! Redistributes BurstGPT-style bursty arrivals across 64 models (Pareto)
//! and sweeps aggregate RPS ∈ {0.5, 1, 2, 4}. The paper: SLINFER uses fewer
//! nodes at every level; at 4 RPS `sllm+c+s` violates 7.7% of SLOs vs
//! SLINFER's 1.0%.

use bench::report::{dump_json, f, paper_note, section};
use bench::runner::{arg_seed, quick_mode, world_cfg, System};
use bench::{zoo, Table};
use hwmodel::{HardwareKind, ModelSpec};
use workload::burstgpt::BurstGptSpec;

fn main() {
    let seed = arg_seed();
    let rates: Vec<f64> = if quick_mode() {
        vec![0.5, 2.0]
    } else {
        vec![0.5, 1.0, 2.0, 4.0]
    };
    section("Fig 27 — BurstGPT load sweep (64 models, Pareto spread)");
    let models = zoo::replicas(&ModelSpec::llama2_7b(), 64);
    let mut table = Table::new(&[
        "RPS",
        "system",
        "CPU nodes",
        "GPU nodes",
        "SLO-miss %",
        "dropped",
    ]);
    let mut results = Vec::new();
    for &rps in &rates {
        let trace = BurstGptSpec::paper(rps, seed).generate();
        for system in [System::SllmCs, System::Slinfer(Default::default())] {
            let cluster = system.cluster(4, 4, &models);
            let m = system.run(&cluster, models.clone(), world_cfg(seed), &trace);
            let miss = 100.0 * (1.0 - m.slo_rate());
            table.row(&[
                f(rps, 1),
                system.name(),
                f(m.avg_nodes_used(HardwareKind::CpuAccel), 1),
                f(m.avg_nodes_used(HardwareKind::Gpu), 1),
                f(miss, 1),
                m.dropped.to_string(),
            ]);
            results.push((
                rps,
                system.name(),
                miss,
                m.avg_nodes_used(HardwareKind::Gpu),
            ));
        }
    }
    table.print();
    paper_note("Fig 27: SLINFER consistently consumes fewer resources;");
    paper_note("at 4 RPS: sllm+c+s 7.7% SLO violations vs SLINFER 1.0%");
    dump_json("fig27_burstgpt", &results);
}
