//! Stub over the registered experiment of the same name; the
//! implementation lives in `bench::experiments::fig27_burstgpt`.

fn main() {
    bench::main_for("fig27_burstgpt");
}
