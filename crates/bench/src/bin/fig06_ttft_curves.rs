//! Stub over the registered experiment of the same name; the
//! implementation lives in `bench::experiments::fig06_ttft_curves`.

fn main() {
    bench::main_for("fig06_ttft_curves");
}
