//! Stub over the registered experiment of the same name; the
//! implementation lives in `bench::experiments::mixed_arrivals`.

fn main() {
    bench::main_for("mixed_arrivals");
}
