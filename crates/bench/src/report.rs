//! Fixed-width tables and JSON result dumps.

use std::fs;
use std::path::PathBuf;

/// A simple fixed-width table printer for experiment output.
///
/// ```
/// use bench::Table;
/// let mut t = Table::new(&["system", "SLO-met", "GPUs"]);
/// t.row(&["SLINFER".into(), "8123".into(), "2.4".into()]);
/// let s = t.render();
/// assert!(s.contains("SLINFER"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (short rows are padded).
    pub fn row(&mut self, cells: &[String]) {
        let mut r: Vec<String> = cells.to_vec();
        r.resize(self.headers.len(), String::new());
        self.rows.push(r);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                line.push_str(&format!("{:<width$}  ", c, width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * cols));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

/// Prints an experiment section header.
pub fn section(title: &str) {
    println!();
    println!("=== {title} ===");
}

/// Prints a paper-reference note.
pub fn paper_note(note: &str) {
    println!("[paper] {note}");
}

/// Formats a float with the given precision.
pub fn f(x: f64, prec: usize) -> String {
    format!("{x:.prec$}")
}

/// Writes a JSON result blob under `results/<name>.json` (best-effort; the
/// experiment still succeeds if the directory is unwritable).
pub fn dump_json<T: serde::Serialize>(name: &str, value: &T) {
    let dir = PathBuf::from("results");
    if fs::create_dir_all(&dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.json"));
    if let Ok(s) = serde_json::to_string_pretty(value) {
        let _ = fs::write(path, s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = Table::new(&["a", "long-header", "c"]);
        t.row(&["x".into(), "1".into(), "yy".into()]);
        t.row(&["longer-cell".into(), "2".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("long-header"));
        // Padded row has consistent columns.
        assert!(lines[3].starts_with("longer-cell"));
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(f(0.5, 0), "0");
    }
}
