//! Presentation: fixed-width tables, the [`Report`] sink, and JSON dumps.
//!
//! Experiments never print directly — they append to a [`Report`], and the
//! experiment driver renders it once the whole grid has run. Presentation
//! is therefore always serial and in declaration order, which is what makes
//! `--threads 1` and `--threads N` byte-identical.

use std::fs;
use std::path::PathBuf;

/// A simple fixed-width table printer for experiment output.
///
/// ```
/// use bench::Table;
/// let mut t = Table::new(&["system", "SLO-met", "GPUs"]);
/// t.row(&["SLINFER".into(), "8123".into(), "2.4".into()]);
/// let s = t.render();
/// assert!(s.contains("SLINFER"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (short rows are padded).
    pub fn row(&mut self, cells: &[String]) {
        let mut r: Vec<String> = cells.to_vec();
        r.resize(self.headers.len(), String::new());
        self.rows.push(r);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                line.push_str(&format!("{:<width$}  ", c, width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * cols));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with the given precision.
pub fn f(x: f64, prec: usize) -> String {
    format!("{x:.prec$}")
}

/// The ordered output of one experiment: rendered text blocks plus named
/// machine-readable JSON blobs.
///
/// The driver prints [`Report::text`] to stdout, writes each blob under
/// `results/<name>.json`, and echoes the blobs to stdout under `--json`.
#[derive(Debug, Default, Clone)]
pub struct Report {
    text: String,
    dumps: Vec<(String, String)>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Self {
        Report::default()
    }

    /// Appends an experiment section header.
    pub fn section(&mut self, title: &str) {
        self.text.push('\n');
        self.text.push_str(&format!("=== {title} ===\n"));
    }

    /// Appends one line of prose.
    pub fn line(&mut self, line: impl AsRef<str>) {
        self.text.push_str(line.as_ref());
        self.text.push('\n');
    }

    /// Appends a rendered table.
    pub fn table(&mut self, t: &Table) {
        self.text.push_str(&t.render());
        self.text.push('\n');
    }

    /// Appends a paper-reference note.
    pub fn paper_note(&mut self, note: &str) {
        self.text.push_str(&format!("[paper] {note}\n"));
    }

    /// Serializes `value` and attaches it as the blob named `name`
    /// (written to `results/<name>.json` by the driver).
    pub fn dump_json<T: serde::Serialize>(&mut self, name: &str, value: &T) {
        if let Ok(s) = serde_json::to_string_pretty(value) {
            self.dumps.push((name.to_string(), s));
        }
    }

    /// The rendered human-readable output.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// The attached JSON blobs, in attachment order.
    pub fn dumps(&self) -> &[(String, String)] {
        &self.dumps
    }

    /// Writes every attached blob under `results/` (best-effort; the
    /// experiment still succeeds if the directory is unwritable).
    pub fn write_dumps(&self) {
        let dir = PathBuf::from("results");
        if fs::create_dir_all(&dir).is_err() {
            return;
        }
        for (name, blob) in &self.dumps {
            let _ = fs::write(dir.join(format!("{name}.json")), blob);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = Table::new(&["a", "long-header", "c"]);
        t.row(&["x".into(), "1".into(), "yy".into()]);
        t.row(&["longer-cell".into(), "2".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("long-header"));
        // Padded row has consistent columns.
        assert!(lines[3].starts_with("longer-cell"));
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(f(0.5, 0), "0");
    }

    #[test]
    fn report_order_is_append_order() {
        let mut r = Report::new();
        r.section("T");
        r.line("hello");
        r.paper_note("note");
        r.dump_json("blob", &vec![1, 2]);
        assert_eq!(r.text(), "\n=== T ===\nhello\n[paper] note\n");
        assert_eq!(r.dumps().len(), 1);
        assert_eq!(r.dumps()[0].0, "blob");
        assert!(r.dumps()[0].1.trim_start().starts_with('['));
    }
}
