//! Model-zoo builders.
//!
//! The paper generates replica zoos from one base model ("32, 64, and 128
//! replica models are generated from Llama-3.2-3B", §IX-B) and mixed zoos by
//! popularity ratio (§IX-E's 3B:7B:13B:34B mixes).

use hwmodel::ModelSpec;

/// `n` replicas of one base model (the §IX-B zoos).
pub fn replicas(base: &ModelSpec, n: usize) -> Vec<ModelSpec> {
    (0..n).map(|i| base.replica(i)).collect()
}

/// A mixed zoo by ratio: `parts` pairs `(base, share)` are expanded to `n`
/// models proportionally (§IX-E). Models are interleaved so popularity rank
/// (assigned by the trace generator) does not correlate with size.
pub fn mixed(parts: &[(ModelSpec, usize)], n: usize) -> Vec<ModelSpec> {
    let total: usize = parts.iter().map(|(_, w)| w).sum();
    assert!(total > 0, "mix needs non-zero weights");
    let mut counts: Vec<usize> = parts.iter().map(|(_, w)| (n * w) / total).collect();
    let mut assigned: usize = counts.iter().sum();
    // Distribute the rounding remainder to the heaviest parts first.
    let mut order: Vec<usize> = (0..parts.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(parts[i].1));
    let mut k = 0;
    while assigned < n {
        counts[order[k % parts.len()]] += 1;
        assigned += 1;
        k += 1;
    }
    let mut out = Vec::with_capacity(n);
    let mut cursors = vec![0usize; parts.len()];
    let mut next = 0usize;
    while out.len() < n {
        let i = next % parts.len();
        next += 1;
        if cursors[i] < counts[i] {
            out.push(parts[i].0.replica(out.len()));
            cursors[i] += 1;
        }
    }
    out
}

/// The 1:1:1 3B/7B/13B popularity mix the §III-C motivation figures host
/// on four A100s.
pub fn paper_mix() -> [(ModelSpec, usize); 3] {
    [
        (ModelSpec::llama3_2_3b(), 1),
        (ModelSpec::llama2_7b(), 1),
        (ModelSpec::llama2_13b(), 1),
    ]
}

/// The paper's three size-class bases.
pub fn size_bases() -> [(&'static str, ModelSpec); 3] {
    [
        ("3B", ModelSpec::llama3_2_3b()),
        ("7B", ModelSpec::llama2_7b()),
        ("13B", ModelSpec::llama2_13b()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replica_zoo_has_distinct_names() {
        let zoo = replicas(&ModelSpec::llama2_7b(), 8);
        assert_eq!(zoo.len(), 8);
        let mut names: Vec<&str> = zoo.iter().map(|m| m.name.as_str()).collect();
        names.dedup();
        assert_eq!(names.len(), 8);
    }

    #[test]
    fn mixed_zoo_respects_ratio() {
        let parts = [
            (ModelSpec::llama3_2_3b(), 2),
            (ModelSpec::llama2_7b(), 1),
            (ModelSpec::llama2_13b(), 1),
        ];
        let zoo = mixed(&parts, 16);
        assert_eq!(zoo.len(), 16);
        let small = zoo.iter().filter(|m| m.params < 4_000_000_000).count();
        assert_eq!(small, 8);
        // Interleaved: the first four models span multiple sizes.
        let first: Vec<u64> = zoo.iter().take(3).map(|m| m.params).collect();
        assert!(first.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    #[should_panic(expected = "non-zero weights")]
    fn empty_mix_panics() {
        let _ = mixed(&[(ModelSpec::llama2_7b(), 0)], 4);
    }
}
