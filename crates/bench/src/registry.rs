//! The experiment registry and the shared binary entry point.
//!
//! Every figure/table of the paper registers here, so tooling — the
//! `bench` multi-runner, the smoke tests, CI — can enumerate the whole
//! suite instead of hard-coding binary names. The per-figure binaries are
//! one-line stubs over [`main_for`].

use crate::cli::{Cli, Parsed, USAGE};
use crate::experiments;
use crate::report::Report;

/// One registered experiment: a stable name (also the binary and JSON blob
/// name), a human title, and the run function.
pub struct Experiment {
    /// Stable identifier, e.g. `fig04_sllm_capacity`.
    pub name: &'static str,
    /// Human-readable description of the figure/table reproduced.
    pub title: &'static str,
    /// Builds the experiment's [`Report`] under the given options.
    pub run: fn(&Cli, &mut Report),
    /// Sweep grid size — cells (points × systems × seeds) under
    /// quick (`true`) / full (`false`) — without running anything.
    /// `bench list --json` reports it so CI can reason about suite cost.
    /// Analytic experiments that drive no sweep report 0.
    pub grid: fn(bool) -> usize,
}

/// Grid of the analytic experiments: closed-form model evaluations and
/// trace characterizations drive no simulation sweep.
fn no_sweep(_quick: bool) -> usize {
    0
}

/// Every experiment in the suite, in paper order.
pub const REGISTRY: &[Experiment] = &[
    Experiment {
        name: "tab1_xeon_gens",
        title: "Table I — Llama-2-7B across Xeon generations",
        run: experiments::tab1_xeon_gens::run,
        grid: no_sweep,
    },
    Experiment {
        name: "tab2_partition_limits",
        title: "Table II — aggregated concurrency limits under static partitioning",
        run: experiments::tab2_partition_limits::run,
        grid: no_sweep,
    },
    Experiment {
        name: "tab3_pd_disagg",
        title: "Table III — aggregated vs disaggregated prefill–decode",
        run: experiments::tab3_pd_disagg::run,
        grid: experiments::tab3_pd_disagg::grid,
    },
    Experiment {
        name: "fig04_sllm_capacity",
        title: "Fig 4 — ServerlessLLM serving-capacity collapse",
        run: experiments::fig04_sllm_capacity::run,
        grid: experiments::fig04_sllm_capacity::grid,
    },
    Experiment {
        name: "fig05_sllm_memutil",
        title: "Fig 5 — GPU memory utilization under ServerlessLLM",
        run: experiments::fig05_sllm_memutil::run,
        grid: experiments::fig05_sllm_memutil::grid,
    },
    Experiment {
        name: "fig06_ttft_curves",
        title: "Fig 6 — TTFT vs input length across models and hardware",
        run: experiments::fig06_ttft_curves::run,
        grid: no_sweep,
    },
    Experiment {
        name: "fig07_08_tpot_curves",
        title: "Figs 7-8 — TPOT vs batch size for Llama-2-7B/13B",
        run: experiments::fig07_08_tpot_curves::run,
        grid: no_sweep,
    },
    Experiment {
        name: "fig09_12_footprint",
        title: "Figs 9 & 12 — footprint and concurrency under real workloads",
        run: experiments::fig09_12_footprint::run,
        grid: no_sweep,
    },
    Experiment {
        name: "fig17_kv_scaling",
        title: "Fig 17 — KV-cache rescale overhead on the GPU",
        run: experiments::fig17_kv_scaling::run,
        grid: no_sweep,
    },
    Experiment {
        name: "fig21_trace_stats",
        title: "Fig 21 — Azure-trace characterization",
        run: experiments::fig21_trace_stats::run,
        grid: no_sweep,
    },
    Experiment {
        name: "fig22_end_to_end",
        title: "Fig 22 — end-to-end comparison",
        run: experiments::fig22_end_to_end::run,
        grid: experiments::fig22_end_to_end::grid,
    },
    Experiment {
        name: "fig23_ablation",
        title: "Fig 23 — component ablation study",
        run: experiments::fig23_ablation::run,
        grid: experiments::fig23_ablation::grid,
    },
    Experiment {
        name: "fig24_cpu_scaling",
        title: "Fig 24 — CPU scalability",
        run: experiments::fig24_cpu_scaling::run,
        grid: experiments::fig24_cpu_scaling::grid,
    },
    Experiment {
        name: "fig25_gpu_efficiency",
        title: "Fig 25 — GPU efficiency under mixed sizes",
        run: experiments::fig25_gpu_efficiency::run,
        grid: experiments::fig25_gpu_efficiency::grid,
    },
    Experiment {
        name: "fig26_mixed_deploy",
        title: "Fig 26 — mixed model-size deployment",
        run: experiments::fig26_mixed_deploy::run,
        grid: experiments::fig26_mixed_deploy::grid,
    },
    Experiment {
        name: "fig27_burstgpt",
        title: "Fig 27 — BurstGPT trace at varying load levels",
        run: experiments::fig27_burstgpt::run,
        grid: experiments::fig27_burstgpt::grid,
    },
    Experiment {
        name: "fig28_colocation_cpu",
        title: "Fig 28 — host-CPU usage during multi-model GPU colocation",
        run: experiments::fig28_colocation_cpu::run,
        grid: no_sweep,
    },
    Experiment {
        name: "fig29_harvested_cores",
        title: "Fig 29 — harvested CPU cores per GPU",
        run: experiments::fig29_harvested_cores::run,
        grid: experiments::fig29_harvested_cores::grid,
    },
    Experiment {
        name: "fig30_keepalive",
        title: "Fig 30 — keep-alive threshold sensitivity",
        run: experiments::fig30_keepalive::run,
        grid: experiments::fig30_keepalive::grid,
    },
    Experiment {
        name: "fig31_watermark",
        title: "Fig 31 — KV-scaling watermark sensitivity",
        run: experiments::fig31_watermark::run,
        grid: experiments::fig31_watermark::grid,
    },
    Experiment {
        name: "fig32_node_scaling",
        title: "Fig 32 — performance under different node counts",
        run: experiments::fig32_node_scaling::run,
        grid: experiments::fig32_node_scaling::grid,
    },
    Experiment {
        name: "fig33_sched_overhead",
        title: "Fig 33 — scheduling overhead (wall clock)",
        run: experiments::fig33_sched_overhead::run,
        grid: no_sweep,
    },
    Experiment {
        name: "fig34_datasets",
        title: "Fig 34 — dataset length characterization",
        run: experiments::fig34_datasets::run,
        grid: no_sweep,
    },
    Experiment {
        name: "fig35_dataset_eval",
        title: "Fig 35 — evaluation across length datasets",
        run: experiments::fig35_dataset_eval::run,
        grid: experiments::fig35_dataset_eval::grid,
    },
    Experiment {
        name: "abl_overestimate",
        title: "Ablation — shadow-validation overestimation factor",
        run: experiments::abl_overestimate::run,
        grid: experiments::abl_overestimate::grid,
    },
    Experiment {
        name: "disc_quantization",
        title: "§X discussion — serving INT4-quantized 22B models",
        run: experiments::disc_quantization::run,
        grid: experiments::disc_quantization::grid,
    },
    Experiment {
        name: "slo_mix",
        title: "Scenario suite — SLO-class mix sweep (per-class attainment)",
        run: experiments::slo_mix::run,
        grid: experiments::slo_mix::grid,
    },
    Experiment {
        name: "fault_drain",
        title: "Scenario suite — node drain/failure resilience",
        run: experiments::fault_drain::run,
        grid: experiments::fault_drain::grid,
    },
    Experiment {
        name: "mixed_arrivals",
        title: "Scenario suite — mixed azure-like + BurstGPT arrivals",
        run: experiments::mixed_arrivals::run,
        grid: experiments::mixed_arrivals::grid,
    },
    Experiment {
        name: "tp_scaling",
        title: "Scenario suite — tensor-parallel degree × model size × load",
        run: experiments::tp_scaling::run,
        grid: experiments::tp_scaling::grid,
    },
    Experiment {
        name: "cold_start",
        title: "Scenario suite — cold starts across checkpoint tiers (cache × zoo × load)",
        run: experiments::cold_start::run,
        grid: experiments::cold_start::grid,
    },
    Experiment {
        name: "scale_burst",
        title: "Scenario suite — flash-crowd scale-out (registry vs peer fetch vs multicast)",
        run: experiments::scale_burst::run,
        grid: experiments::scale_burst::grid,
    },
    Experiment {
        name: "session_reuse",
        title: "Scenario suite — multi-turn sessions (prefix reuse × affinity stickiness)",
        run: experiments::session_reuse::run,
        grid: experiments::session_reuse::grid,
    },
    Experiment {
        name: "scale",
        title: "Fleet-scale throughput grid (sim-s/wall-s, peak RSS) — perf baseline",
        run: experiments::scale::run,
        grid: experiments::scale::grid,
    },
];

/// Looks an experiment up by name.
pub fn find(name: &str) -> Option<&'static Experiment> {
    REGISTRY.iter().find(|e| e.name == name)
}

/// Runs one experiment under `cli` and returns its report.
pub fn run_experiment(exp: &Experiment, cli: &Cli) -> Report {
    let mut report = Report::new();
    (exp.run)(cli, &mut report);
    report
}

/// Prints a report the way the binaries present it: text to stdout, blobs
/// to `results/`, and — under `--json` — the blobs echoed to stdout.
pub fn present(report: &Report, cli: &Cli) {
    print!("{}", report.text());
    report.write_dumps();
    if cli.json {
        for (name, blob) in report.dumps() {
            println!("--- {name}.json");
            println!("{blob}");
        }
    }
}

/// Entry point for the per-figure binary stubs: parse the unified CLI,
/// run the named experiment, present it. Exits 2 on a bad command line.
pub fn main_for(name: &str) {
    let exp = find(name).unwrap_or_else(|| panic!("experiment `{name}` is not registered"));
    // detlint::allow(D004, "CLI argument intake for single-experiment binaries; parsed before any simulation")
    let cli = match Cli::parse(std::env::args().skip(1)) {
        Ok(Parsed::Run(cli)) => cli,
        Ok(Parsed::Help) => {
            println!(
                "{} — {}\n\nusage: {} [options]\n\n{}",
                exp.name, exp.title, exp.name, USAGE
            );
            return;
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    present(&run_experiment(exp, &cli), &cli);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_all_experiments() {
        // 26 paper figures/tables, the 7 scenario-suite experiments, and
        // the fleet-scale perf grid.
        assert_eq!(REGISTRY.len(), 34);
    }

    #[test]
    fn names_are_unique_and_findable() {
        for e in REGISTRY {
            assert_eq!(find(e.name).unwrap().name, e.name);
        }
        let mut names: Vec<&str> = REGISTRY.iter().map(|e| e.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), REGISTRY.len());
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(find("fig99_nonexistent").is_none());
    }
}
