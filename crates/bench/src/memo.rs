//! Per-cell memoization for multi-experiment invocations.
//!
//! `bench all` runs every registered experiment in one process, and several
//! experiments sweep overlapping (point × system × seed) cells — the same
//! fleet, model zoo, config, workload, and policy. A simulation is a pure
//! function of those inputs, so rerunning an identical cell can only
//! reproduce the identical [`RunMetrics`]. When enabled (the `bench all`
//! multi-runner turns it on), the sweep driver consults this cache before
//! running a cell and stores the result afterwards; a hit returns a clone,
//! which presents byte-identically to a fresh run.
//!
//! The key is an FNV-1a hash over the *complete* cell inputs — cluster
//! spec, model registry, world config (seed, SLO classes, noise, …),
//! environment event schedule, merged trace, and the system's debug
//! identity (which includes policy configuration) — via their `Debug`
//! representations. Anything that can perturb a run is part of one of
//! those, so equal keys imply equal runs. Disabled by default: single
//! experiments pay neither the hashing nor the retained memory.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use cluster::{RunMetrics, Scenario};

use crate::runner::System;

static ENABLED: AtomicBool = AtomicBool::new(false);
static HITS: AtomicU64 = AtomicU64::new(0);
static CACHE: Mutex<Option<HashMap<u64, RunMetrics>>> = Mutex::new(None);

/// Turns memoization on with a fresh cache (the `bench all` entry point).
pub fn enable() {
    *CACHE.lock().expect("memo cache poisoned") = Some(HashMap::new());
    HITS.store(0, Ordering::Relaxed);
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns memoization off and drops the cache.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
    *CACHE.lock().expect("memo cache poisoned") = None;
}

/// True while a multi-experiment invocation is caching cells.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Cells served from cache since [`enable`].
pub fn hits() -> u64 {
    HITS.load(Ordering::Relaxed)
}

/// The cache key of one sweep cell: every input the simulation is a pure
/// function of, hashed stably (FNV-1a — no per-process hash randomness).
pub fn cell_key(sc: &Scenario, sys: &System) -> u64 {
    let mut h = Fnv::new();
    h.write(format!("{:?}", sc.cluster()).as_bytes());
    h.write(format!("{:?}", sc.models()).as_bytes());
    h.write(format!("{:?}", sc.cfg()).as_bytes());
    h.write(format!("{:?}", sc.events()).as_bytes());
    h.write(format!("{:?}", sc.merged_trace().requests).as_bytes());
    h.write(format!("{sys:?}").as_bytes());
    h.finish()
}

/// Returns the cached metrics for `key`, if an identical cell already ran.
pub fn lookup(key: u64) -> Option<RunMetrics> {
    let guard = CACHE.lock().expect("memo cache poisoned");
    let m = guard.as_ref()?.get(&key).cloned();
    if m.is_some() {
        HITS.fetch_add(1, Ordering::Relaxed);
    }
    m
}

/// Stores a finished cell's metrics under `key`.
pub fn store(key: u64, metrics: &RunMetrics) {
    let mut guard = CACHE.lock().expect("memo cache poisoned");
    if let Some(cache) = guard.as_mut() {
        cache.entry(key).or_insert_with(|| metrics.clone());
    }
}

/// FNV-1a, 64-bit: stable across processes and platforms.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::world_cfg;
    use crate::zoo;
    use hwmodel::ModelSpec;
    use workload::serverless::TraceSpec;

    fn scenario(seed: u64, load: f64) -> Scenario {
        let models = zoo::replicas(&ModelSpec::llama3_2_3b(), 2);
        Scenario::new(System::Sllm.cluster(0, 1, &models), models)
            .config(world_cfg(seed))
            .workload(
                TraceSpec::azure_like(2, seed)
                    .with_load_scale(load)
                    .generate(),
            )
    }

    #[test]
    fn keys_separate_every_axis() {
        let base = cell_key(&scenario(1, 0.1), &System::Sllm);
        assert_eq!(base, cell_key(&scenario(1, 0.1), &System::Sllm));
        assert_ne!(base, cell_key(&scenario(2, 0.1), &System::Sllm));
        assert_ne!(base, cell_key(&scenario(1, 0.2), &System::Sllm));
        assert_ne!(base, cell_key(&scenario(1, 0.1), &System::SllmC));
        // Policy configuration is part of the system identity.
        let a = cell_key(
            &scenario(1, 0.1),
            &System::Slinfer(slinfer::SlinferConfig::default()),
        );
        let b = cell_key(
            &scenario(1, 0.1),
            &System::Slinfer(slinfer::SlinferConfig {
                enable_cpu: false,
                ..slinfer::SlinferConfig::default()
            }),
        );
        assert_ne!(a, b);
    }

    #[test]
    fn cached_cells_present_byte_identically() {
        enable();
        let key = cell_key(&scenario(3, 0.1), &System::Sllm);
        assert!(lookup(key).is_none());
        let fresh = System::Sllm.run_scenario(scenario(3, 0.1));
        store(key, &fresh);
        let hit = lookup(key).expect("stored");
        assert_eq!(
            format!(
                "{:?}|{:?}|{}",
                fresh.records, fresh.usage_timeline, fresh.dropped
            ),
            format!("{:?}|{:?}|{}", hit.records, hit.usage_timeline, hit.dropped),
        );
        assert!(hits() >= 1);
        disable();
        assert!(lookup(key).is_none(), "disable drops the cache");
    }
}
