//! Per-cell memoization for multi-experiment invocations.
//!
//! `bench all` runs every registered experiment in one process, and several
//! experiments sweep overlapping (point × system × seed) cells — the same
//! fleet, model zoo, config, workload, and policy. A simulation is a pure
//! function of those inputs, so rerunning an identical cell can only
//! reproduce the identical [`RunMetrics`]. When enabled (the `bench all`
//! multi-runner turns it on), the sweep driver consults this cache before
//! running a cell and stores the result afterwards; a hit returns a clone,
//! which presents byte-identically to a fresh run.
//!
//! The key covers the *complete* cell inputs — cluster spec, model
//! registry, world config (seed, SLO classes, noise, …), environment event
//! schedule, merged trace, and the system's debug identity (which includes
//! policy configuration) — via their `Debug` representations. Anything
//! that can perturb a run is part of one of those. Two hardening details:
//!
//! - **Wide key, verified on hit.** A bare 64-bit hash trusted blindly
//!   would silently serve another cell's metrics on a collision. The key
//!   is a 64-bit bucket plus a 256-bit digest (four independent FNV-1a
//!   streams over domain-separated input); a bucket hit only serves after
//!   the full digest matches.
//! - **Length-prefixed fields.** Concatenating the `Debug` strings raw
//!   would make field boundaries ambiguous (`"ab" + "c"` vs `"a" + "bc"`);
//!   every field is hashed with a tag and a length prefix, so distinct
//!   input tuples produce distinct key material.
//!
//! Disabled by default: single experiments pay neither the hashing nor
//! the retained memory.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use cluster::{RunMetrics, Scenario};

use crate::runner::System;

static ENABLED: AtomicBool = AtomicBool::new(false);
static HITS: AtomicU64 = AtomicU64::new(0);
type Cache = HashMap<u64, Vec<([u64; 4], RunMetrics)>>;
static CACHE: Mutex<Option<Cache>> = Mutex::new(None);

/// The cache key of one sweep cell: a 64-bit bucket locating the entry
/// plus a 256-bit digest verified before a hit is served, so a bucket
/// collision degrades to a miss instead of cross-serving another cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellKey {
    /// HashMap bucket (one of the digest words — stable across processes).
    pub bucket: u64,
    /// Four independent FNV-1a streams over the same key material.
    pub digest: [u64; 4],
}

/// Turns memoization on with a fresh cache (the `bench all` entry point).
pub fn enable() {
    *CACHE.lock().expect("memo cache poisoned") = Some(HashMap::new());
    HITS.store(0, Ordering::Relaxed);
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns memoization off and drops the cache.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
    *CACHE.lock().expect("memo cache poisoned") = None;
}

/// True while a multi-experiment invocation is caching cells.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Cells served from cache since [`enable`].
pub fn hits() -> u64 {
    HITS.load(Ordering::Relaxed)
}

/// Builds the cache key of one sweep cell: every input the simulation is a
/// pure function of, hashed stably (FNV-1a — no per-process randomness),
/// each field tagged and length-prefixed for domain separation.
pub fn cell_key(sc: &Scenario, sys: &System) -> CellKey {
    let mut h = WideFnv::new();
    h.field(0, format!("{:?}", sc.cluster()).as_bytes());
    h.field(1, format!("{:?}", sc.models()).as_bytes());
    h.field(2, format!("{:?}", sc.cfg()).as_bytes());
    h.field(3, format!("{:?}", sc.events()).as_bytes());
    h.field(4, format!("{:?}", sc.merged_trace().requests).as_bytes());
    h.field(5, format!("{sys:?}").as_bytes());
    h.finish()
}

/// Returns the cached metrics for `key`, if an identical cell already ran.
/// The full digest is compared before serving — a bucket collision is a
/// miss, never another cell's metrics.
pub fn lookup(key: CellKey) -> Option<RunMetrics> {
    let guard = CACHE.lock().expect("memo cache poisoned");
    let entries = guard.as_ref()?.get(&key.bucket)?;
    let m = entries
        .iter()
        .find(|(digest, _)| *digest == key.digest)
        .map(|(_, m)| m.clone());
    if m.is_some() {
        HITS.fetch_add(1, Ordering::Relaxed);
    }
    m
}

/// Stores a finished cell's metrics under `key`.
pub fn store(key: CellKey, metrics: &RunMetrics) {
    let mut guard = CACHE.lock().expect("memo cache poisoned");
    if let Some(cache) = guard.as_mut() {
        let entries = cache.entry(key.bucket).or_default();
        if entries.iter().all(|(digest, _)| *digest != key.digest) {
            entries.push((key.digest, metrics.clone()));
        }
    }
}

/// Four independent FNV-1a streams fed the same length-prefixed, tagged
/// fields. The streams differ in offset basis (derived by perturbing the
/// standard basis), so a collision in one is independent of the others —
/// 256 bits of effective key material. Stable across processes/platforms.
struct WideFnv([u64; 4]);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;
/// Per-stream multipliers: the FNV prime for stream 0 (so its output is
/// plain FNV-1a), then three unrelated large odd constants (golden-ratio,
/// xxhash, and xorshift* multipliers). Different multipliers make the
/// streams different mixing functions, not one function from four seeds.
const STREAM_PRIMES: [u64; 4] = [
    FNV_PRIME,
    0x9e37_79b9_7f4a_7c15,
    0xc2b2_ae3d_27d4_eb4f,
    0x2545_f491_4f6c_dd1d,
];

impl WideFnv {
    fn new() -> Self {
        // Distinct offset bases on top of the distinct multipliers.
        let mut bases = [0u64; 4];
        for (i, b) in bases.iter_mut().enumerate() {
            *b = (FNV_OFFSET ^ i as u64).wrapping_mul(FNV_PRIME);
        }
        WideFnv(bases)
    }

    /// Hashes one field with a tag byte and a little-endian length prefix,
    /// so field boundaries can never alias across inputs.
    fn field(&mut self, tag: u8, bytes: &[u8]) {
        self.write(&[tag]);
        self.write(&(bytes.len() as u64).to_le_bytes());
        self.write(bytes);
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            for (s, &p) in self.0.iter_mut().zip(&STREAM_PRIMES) {
                *s ^= u64::from(b);
                *s = s.wrapping_mul(p);
            }
        }
    }

    fn finish(&self) -> CellKey {
        CellKey {
            bucket: self.0[0],
            digest: self.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::world_cfg;
    use crate::zoo;
    use hwmodel::ModelSpec;
    use workload::serverless::TraceSpec;

    fn scenario(seed: u64, load: f64) -> Scenario {
        let models = zoo::replicas(&ModelSpec::llama3_2_3b(), 2);
        Scenario::new(System::Sllm.cluster(0, 1, &models), models)
            .config(world_cfg(seed))
            .workload(
                TraceSpec::azure_like(2, seed)
                    .with_load_scale(load)
                    .generate(),
            )
    }

    #[test]
    fn keys_separate_every_axis() {
        let base = cell_key(&scenario(1, 0.1), &System::Sllm);
        assert_eq!(base, cell_key(&scenario(1, 0.1), &System::Sllm));
        assert_ne!(base, cell_key(&scenario(2, 0.1), &System::Sllm));
        assert_ne!(base, cell_key(&scenario(1, 0.2), &System::Sllm));
        assert_ne!(base, cell_key(&scenario(1, 0.1), &System::SllmC));
        // Policy configuration is part of the system identity.
        let a = cell_key(
            &scenario(1, 0.1),
            &System::Slinfer(slinfer::SlinferConfig::default()),
        );
        let b = cell_key(
            &scenario(1, 0.1),
            &System::Slinfer(slinfer::SlinferConfig {
                enable_cpu: false,
                ..slinfer::SlinferConfig::default()
            }),
        );
        assert_ne!(a, b);
    }

    #[test]
    fn cached_cells_present_byte_identically() {
        enable();
        let key = cell_key(&scenario(3, 0.1), &System::Sllm);
        assert!(lookup(key).is_none());
        let fresh = System::Sllm.run_scenario(scenario(3, 0.1));
        store(key, &fresh);
        let hit = lookup(key).expect("stored");
        assert_eq!(
            format!(
                "{:?}|{:?}|{}",
                fresh.records, fresh.usage_timeline, fresh.dropped
            ),
            format!("{:?}|{:?}|{}", hit.records, hit.usage_timeline, hit.dropped),
        );
        assert!(hits() >= 1);
        disable();
        assert!(lookup(key).is_none(), "disable drops the cache");
    }

    /// A forced bucket collision (same 64-bit bucket, different digest)
    /// must come back as a miss, never as the other cell's metrics — the
    /// regression the blind-trust 64-bit cache would have failed.
    #[test]
    fn forced_bucket_collision_does_not_cross_serve() {
        enable();
        let real = cell_key(&scenario(5, 0.1), &System::Sllm);
        let metrics = System::Sllm.run_scenario(scenario(5, 0.1));
        store(real, &metrics);

        // Same bucket, different key material: a 1-in-2^64 accident made
        // deliberate.
        let colliding = CellKey {
            bucket: real.bucket,
            digest: [
                real.digest[0],
                !real.digest[1],
                real.digest[2],
                real.digest[3],
            ],
        };
        assert_ne!(colliding, real);
        let before = hits();
        assert!(
            lookup(colliding).is_none(),
            "bucket collision must miss, not cross-serve"
        );
        assert_eq!(hits(), before, "a collision miss is not a hit");

        // The real key still round-trips, and distinct digests coexist in
        // one bucket without evicting each other.
        let other = System::SllmC.run_scenario(scenario(5, 0.1));
        store(colliding, &other);
        assert!(lookup(real).is_some());
        assert!(lookup(colliding).is_some());
        disable();
    }

    /// Field boundaries are length-prefixed: shifting bytes between
    /// adjacent fields must change the key.
    #[test]
    fn field_boundaries_do_not_alias() {
        let mut a = WideFnv::new();
        a.field(0, b"ab");
        a.field(1, b"c");
        let mut b = WideFnv::new();
        b.field(0, b"a");
        b.field(1, b"bc");
        assert_ne!(a.finish(), b.finish());

        // Empty vs missing field also differ (the tag+length still hash).
        let mut c = WideFnv::new();
        c.field(0, b"");
        let d = WideFnv::new();
        assert_ne!(c.finish(), d.finish());
    }
}
