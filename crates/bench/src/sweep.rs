//! Declarative experiment sweeps with a parallel, deterministic driver.
//!
//! A [`Sweep`] names the three axes the paper's evaluation grids share —
//! sweep points, systems, seeds — plus a scenario closure that builds the
//! per-cell simulation inputs. [`Sweep::run`] fans the full
//! (point × system × seed) grid out across `std::thread` workers and
//! collects [`RunMetrics`] in axis order, so the rendered tables and JSON
//! blobs are byte-identical no matter how many workers ran or in which
//! order cells finished: every simulation is a pure function of its
//! scenario, and presentation happens serially afterwards.

use std::io::IsTerminal;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use cluster::RunMetrics;

use crate::cli::Cli;
use crate::runner::{System, SystemResult};

pub use cluster::Scenario;

/// One cell of the sweep grid, handed to the scenario closure.
pub struct Cx<'a, P> {
    /// The sweep point.
    pub point: &'a P,
    /// The system under test.
    pub system: &'a System,
    /// Index of `point` in the points axis.
    pub point_ix: usize,
    /// Index of `system` in the systems axis.
    pub system_ix: usize,
    /// The seed for this cell (an element of the seeds axis).
    pub seed: u64,
    /// Index of `seed` in the seeds axis.
    pub seed_ix: usize,
}

type ScenarioFn<'a, P> = Box<dyn Fn(&Cx<'_, P>) -> Scenario + Sync + 'a>;

/// A declarative (point × system × seed) experiment grid.
///
/// ```
/// use bench::runner::{world_cfg, System};
/// use bench::sweep::{Scenario, Sweep};
/// use bench::zoo;
/// use hwmodel::ModelSpec;
/// use workload::serverless::TraceSpec;
///
/// let results = Sweep::new()
///     .points(vec![4u32, 8])
///     .systems(vec![System::Sllm])
///     .seeds(vec![5])
///     .scenario(|cx| {
///         let models = zoo::replicas(&ModelSpec::llama2_7b(), *cx.point as usize);
///         Scenario::new(cx.system.cluster(0, 1, &models), models)
///             .config(world_cfg(cx.seed))
///             .workload(
///                 TraceSpec::azure_like(*cx.point, cx.seed)
///                     .with_load_scale(0.2)
///                     .generate(),
///             )
///     })
///     .run(2);
/// assert_eq!(results.points.len(), 2);
/// assert!(results.metrics(0, 0, 0).total() > 0);
/// ```
pub struct Sweep<'a, P> {
    points: Vec<P>,
    systems: Vec<System>,
    seeds: Vec<u64>,
    scenario: Option<ScenarioFn<'a, P>>,
    progress: bool,
}

impl<'a, P> Default for Sweep<'a, P> {
    fn default() -> Self {
        Sweep {
            points: Vec::new(),
            systems: Vec::new(),
            seeds: Vec::new(),
            scenario: None,
            progress: false,
        }
    }
}

impl<'a, P: Sync> Sweep<'a, P> {
    /// An empty sweep; fill the axes with the builder methods.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the sweep-point axis.
    pub fn points(mut self, points: impl IntoIterator<Item = P>) -> Self {
        self.points = points.into_iter().collect();
        self
    }

    /// Sets the systems axis.
    pub fn systems(mut self, systems: impl IntoIterator<Item = System>) -> Self {
        self.systems = systems.into_iter().collect();
        self
    }

    /// Sets the seeds axis (most experiments use one seed; multi-seed
    /// sweeps average away placement tipping points).
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds = seeds.into_iter().collect();
        self
    }

    /// Sets the scenario closure building each cell's simulation inputs.
    /// It must be a pure function of the [`Cx`] — workers call it
    /// concurrently and cell order is unspecified.
    pub fn scenario(mut self, f: impl Fn(&Cx<'_, P>) -> Scenario + Sync + 'a) -> Self {
        self.scenario = Some(Box::new(f));
        self
    }

    /// Enables the completed/total + ETA line on stderr while the grid
    /// runs. [`Sweep::run_cli`] wires this to the environment; results are
    /// unaffected either way (progress never touches stdout).
    pub fn progress(mut self, enabled: bool) -> Self {
        self.progress = enabled;
        self
    }

    /// Runs the grid under the unified experiment CLI: worker count from
    /// `--threads`, with a progress/ETA line on stderr when that stream is
    /// a TTY — suppressed under `--json` piping and in CI (`CI` env set).
    pub fn run_cli(self, cli: &Cli) -> SweepResults<P> {
        // detlint::allow(D004, "TTY/CI detection gates the stderr progress line only; results never depend on it")
        let show = !cli.json && std::io::stderr().is_terminal() && std::env::var_os("CI").is_none();
        let threads = cli.worker_threads();
        self.progress(show).run(threads)
    }

    /// Runs the grid on `threads` workers (1 = serial) and returns results
    /// in deterministic (point-major, then system, then seed) order.
    ///
    /// # Panics
    /// Panics if no scenario closure was set, or if any axis is empty.
    pub fn run(self, threads: usize) -> SweepResults<P> {
        let scenario = self.scenario.expect("Sweep::scenario must be set");
        assert!(
            !self.points.is_empty() && !self.systems.is_empty() && !self.seeds.is_empty(),
            "every sweep axis (points, systems, seeds) needs at least one entry"
        );
        let (np, ns, nk) = (self.points.len(), self.systems.len(), self.seeds.len());
        let cells = np * ns * nk;
        let threads = threads.clamp(1, cells);

        let run_cell = |i: usize| -> RunMetrics {
            let (p, rest) = (i / (ns * nk), i % (ns * nk));
            let (s, k) = (rest / nk, rest % nk);
            let cx = Cx {
                point: &self.points[p],
                system: &self.systems[s],
                point_ix: p,
                system_ix: s,
                seed: self.seeds[k],
                seed_ix: k,
            };
            let sc = scenario(&cx);
            // Multi-experiment invocations (`bench all`) memoize cells: a
            // simulation is a pure function of the scenario + system, so an
            // identical cell an earlier experiment already ran can only
            // reproduce identical metrics — serve the cached clone.
            if crate::memo::enabled() {
                let key = crate::memo::cell_key(&sc, cx.system);
                if let Some(m) = crate::memo::lookup(key) {
                    return m;
                }
                let m = cx.system.run_scenario(sc);
                crate::memo::store(key, &m);
                m
            } else {
                cx.system.run_scenario(sc)
            }
        };

        // detlint::allow(D003, "wall-clock feeds the stderr ETA line only, never the collected results")
        let started = Instant::now();
        let finished = AtomicUsize::new(0);
        let tick = |_: &RunMetrics| {
            if !self.progress {
                return;
            }
            let done = finished.fetch_add(1, Ordering::Relaxed) + 1;
            let elapsed = started.elapsed().as_secs_f64();
            let eta = elapsed / done as f64 * (cells - done) as f64;
            if done == cells {
                eprint!("\r\x1b[2K");
            } else {
                eprint!("\r{done}/{cells} cells  ETA {eta:.0}s ");
            }
        };

        let metrics: Vec<RunMetrics> = if threads <= 1 {
            (0..cells)
                .map(|i| {
                    let m = run_cell(i);
                    tick(&m);
                    m
                })
                .collect()
        } else {
            // A work-stealing-free pool: workers claim the next cell index
            // and write into its slot. Axis order survives because slots,
            // not completion order, define the layout.
            let slots: Vec<Mutex<Option<RunMetrics>>> =
                (0..cells).map(|_| Mutex::new(None)).collect();
            let next = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    scope.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= cells {
                            break;
                        }
                        let m = run_cell(i);
                        tick(&m);
                        *slots[i].lock().expect("sweep slot poisoned") = Some(m);
                    });
                }
            });
            slots
                .into_iter()
                .map(|s| {
                    s.into_inner()
                        .expect("sweep slot poisoned")
                        .expect("every cell ran")
                })
                .collect()
        };

        SweepResults {
            points: self.points,
            systems: self.systems,
            seeds: self.seeds,
            metrics,
        }
    }
}

/// Results of a sweep, laid out point-major, then system, then seed.
pub struct SweepResults<P> {
    /// The points axis, as declared.
    pub points: Vec<P>,
    /// The systems axis, as declared.
    pub systems: Vec<System>,
    /// The seeds axis, as declared.
    pub seeds: Vec<u64>,
    metrics: Vec<RunMetrics>,
}

impl<P> SweepResults<P> {
    fn ix(&self, point: usize, system: usize, seed: usize) -> usize {
        assert!(
            point < self.points.len(),
            "point index {point} out of range"
        );
        assert!(
            system < self.systems.len(),
            "system index {system} out of range"
        );
        assert!(seed < self.seeds.len(), "seed index {seed} out of range");
        (point * self.systems.len() + system) * self.seeds.len() + seed
    }

    /// Metrics of one cell.
    pub fn metrics(&self, point: usize, system: usize, seed: usize) -> &RunMetrics {
        &self.metrics[self.ix(point, system, seed)]
    }

    /// Mutable metrics of one cell (percentile queries sort lazily and
    /// need `&mut`).
    pub fn metrics_mut(&mut self, point: usize, system: usize, seed: usize) -> &mut RunMetrics {
        let i = self.ix(point, system, seed);
        &mut self.metrics[i]
    }

    /// Headline-number summary of one cell.
    pub fn summary(&self, point: usize, system: usize, seed: usize) -> SystemResult {
        SystemResult::from_metrics(
            self.systems[system].name(),
            &self.metrics[self.ix(point, system, seed)],
        )
    }

    /// The flat metrics in axis order (for fingerprinting the whole grid).
    pub fn all_metrics(&self) -> &[RunMetrics] {
        &self.metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::world_cfg;
    use crate::zoo;
    use workload::serverless::TraceSpec;

    fn small_sweep<'a>() -> Sweep<'a, u32> {
        Sweep::new()
            .points(vec![2u32, 4])
            .systems(vec![System::Sllm, System::SllmC])
            .seeds(vec![3, 4])
            .scenario(|cx| {
                let models = zoo::replicas(&hwmodel::ModelSpec::llama3_2_3b(), *cx.point as usize);
                Scenario::new(cx.system.cluster(1, 1, &models), models)
                    .config(world_cfg(cx.seed))
                    .workload(
                        TraceSpec::azure_like(*cx.point, cx.seed)
                            .with_load_scale(0.1)
                            .generate(),
                    )
            })
    }

    fn fingerprint(r: &SweepResults<u32>) -> String {
        r.all_metrics()
            .iter()
            .map(|m| format!("{:?};{:?};{}\n", m.records, m.usage_timeline, m.dropped))
            .collect()
    }

    #[test]
    fn parallel_equals_serial_bit_for_bit() {
        let serial = small_sweep().run(1);
        let parallel = small_sweep().run(4);
        assert_eq!(
            fingerprint(&serial),
            fingerprint(&parallel),
            "worker count must not leak into results"
        );
    }

    #[test]
    fn layout_is_point_major() {
        let r = small_sweep().run(2);
        assert_eq!(r.all_metrics().len(), 2 * 2 * 2);
        // Distinct cells come back as distinct runs: the 2-model and
        // 4-model points see different trace sizes.
        assert!(r.metrics(0, 0, 0).total() < r.metrics(1, 0, 0).total());
        // Seed axis varies within a (point, system) pair.
        let a = format!("{:?}", r.metrics(0, 0, 0).records);
        let b = format!("{:?}", r.metrics(0, 0, 1).records);
        assert_ne!(a, b, "different seeds must diverge");
    }

    #[test]
    fn summary_matches_direct_construction() {
        let r = small_sweep().run(1);
        let s = r.summary(0, 1, 0);
        assert_eq!(s.system, "sllm+c");
        assert_eq!(s.total, r.metrics(0, 1, 0).total());
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn empty_axis_panics() {
        let _ = Sweep::<u32>::new()
            .points(vec![1])
            .systems(vec![])
            .seeds(vec![1])
            .scenario(|_| unreachable!())
            .run(1);
    }
}
