//! System dispatch: build the right cluster and policy per serving system.

use baselines::pd::PdSllm;
use baselines::sllm::{Sllm, SllmConfig};
use baselines::NeoPlus;
use cluster::{ClusterSpec, RunMetrics, Simulation, WorldConfig};
use hwmodel::{HardwareKind, ModelSpec};
use slinfer::{Slinfer, SlinferConfig};
use workload::request::Trace;

/// A serving system under evaluation.
#[derive(Debug, Clone)]
pub enum System {
    /// ServerlessLLM: exclusive GPUs.
    Sllm,
    /// ServerlessLLM + CPU serving.
    SllmC,
    /// ServerlessLLM + CPU + static half-node sharing.
    SllmCs,
    /// SLINFER with the given configuration.
    Slinfer(SlinferConfig),
    /// PD-disaggregated `sllm+c+s` (Table III).
    PdSllmCs,
    /// PD-disaggregated SLINFER (Table III).
    PdSlinfer,
    /// NEO+-style KV/attention offload onto harvested host cores (Fig 29);
    /// pair with [`baselines::NeoPlus::cluster`].
    NeoPlus,
}

impl System {
    /// The paper's §IX-B lineup.
    pub fn paper_lineup() -> Vec<System> {
        vec![
            System::Sllm,
            System::SllmC,
            System::SllmCs,
            System::Slinfer(SlinferConfig::default()),
        ]
    }

    /// Display name matching the paper's labels.
    pub fn name(&self) -> String {
        match self {
            System::Sllm => "sllm".into(),
            System::SllmC => "sllm+c".into(),
            System::SllmCs => "sllm+c+s".into(),
            System::Slinfer(cfg) if *cfg == SlinferConfig::default() => "SLINFER".into(),
            System::Slinfer(_) => "SLINFER*".into(),
            System::PdSllmCs => "sllm+c+s(PD)".into(),
            System::PdSlinfer => "SLINFER(PD)".into(),
            System::NeoPlus => "NEO+".into(),
        }
    }

    /// Builds the cluster this system runs on. `sllm+c+s` statically splits
    /// nodes in two — except CPU nodes when the zoo is 13B-class, which the
    /// paper keeps whole (§IX-A).
    pub fn cluster(&self, n_cpu: usize, n_gpu: usize, zoo: &[ModelSpec]) -> ClusterSpec {
        match self {
            System::SllmCs | System::PdSllmCs => {
                let big_cpu_models = zoo
                    .iter()
                    .any(|m| m.params > 9_500_000_000 && m.params <= 14_000_000_000);
                if big_cpu_models {
                    // Whole CPU nodes, split GPU nodes.
                    let mut spec = ClusterSpec::heterogeneous(n_cpu, 0);
                    let gpus = ClusterSpec::statically_shared(0, n_gpu);
                    spec.nodes.extend(gpus.nodes);
                    spec
                } else {
                    ClusterSpec::statically_shared(n_cpu, n_gpu)
                }
            }
            _ => ClusterSpec::heterogeneous(n_cpu, n_gpu),
        }
    }

    /// Runs the system on `trace` over `cluster`.
    pub fn run(
        &self,
        cluster: &ClusterSpec,
        models: Vec<ModelSpec>,
        cfg: WorldConfig,
        trace: &Trace,
    ) -> RunMetrics {
        match self {
            System::Sllm => {
                Simulation::new(cluster, models, cfg, Sllm::new(SllmConfig::sllm())).run(trace)
            }
            System::SllmC => {
                Simulation::new(cluster, models, cfg, Sllm::new(SllmConfig::sllm_c())).run(trace)
            }
            System::SllmCs => {
                Simulation::new(cluster, models, cfg, Sllm::new(SllmConfig::sllm_cs())).run(trace)
            }
            System::Slinfer(scfg) => {
                Simulation::new(cluster, models, cfg, Slinfer::new(scfg.clone())).run(trace)
            }
            System::PdSllmCs => Simulation::new(cluster, models, cfg, PdSllm::new()).run(trace),
            System::PdSlinfer => {
                let scfg = SlinferConfig {
                    pd_disaggregate: true,
                    ..SlinferConfig::default()
                };
                Simulation::new(cluster, models, cfg, Slinfer::new(scfg)).run(trace)
            }
            System::NeoPlus => Simulation::new(cluster, models, cfg, NeoPlus::policy()).run(trace),
        }
    }
}

/// One system's headline numbers from a run, ready for tabulation.
#[derive(Debug, Clone, serde::Serialize)]
pub struct SystemResult {
    /// System label.
    pub system: String,
    /// Requests meeting the SLO.
    pub slo_met: usize,
    /// Total requests.
    pub total: usize,
    /// SLO attainment in `[0,1]`.
    pub slo_rate: f64,
    /// Median TTFT (s) over responding requests.
    pub ttft_p50: f64,
    /// P95 TTFT (s).
    pub ttft_p95: f64,
    /// Time-weighted average CPU nodes used.
    pub cpu_nodes: f64,
    /// Time-weighted average GPU nodes used.
    pub gpu_nodes: f64,
    /// Decode speed on CPU nodes, tokens/(node·s).
    pub cpu_decode_speed: f64,
    /// Decode speed on GPU nodes, tokens/(node·s).
    pub gpu_decode_speed: f64,
    /// Dropped requests.
    pub dropped: u64,
    /// Cold starts.
    pub cold_starts: u64,
}

impl SystemResult {
    /// Summarizes a run.
    pub fn from_metrics(system: &System, m: &RunMetrics) -> SystemResult {
        let mut ttft = m.ttft_summary();
        SystemResult {
            system: system.name(),
            slo_met: m.slo_met(),
            total: m.total(),
            slo_rate: m.slo_rate(),
            ttft_p50: ttft.percentile(50.0),
            ttft_p95: ttft.percentile(95.0),
            cpu_nodes: m.avg_nodes_used(HardwareKind::CpuAccel),
            gpu_nodes: m.avg_nodes_used(HardwareKind::Gpu),
            cpu_decode_speed: m.decode_speed_per_node(HardwareKind::CpuAccel),
            gpu_decode_speed: m.decode_speed_per_node(HardwareKind::Gpu),
            dropped: m.dropped,
            cold_starts: m.cold_starts,
        }
    }
}

/// Default world config for experiments, seeded.
pub fn world_cfg(seed: u64) -> WorldConfig {
    WorldConfig {
        seed,
        ..WorldConfig::default()
    }
}
