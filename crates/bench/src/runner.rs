//! System dispatch: build the right cluster and policy per serving system.

use baselines::pd::PdSllm;
use baselines::sllm::{Sllm, SllmConfig};
use baselines::NeoPlus;
use cluster::{ClusterSpec, RunMetrics, Scenario, WorldConfig};
use hwmodel::{HardwareKind, ModelSpec};
use slinfer::{Slinfer, SlinferConfig};
use workload::request::Trace;

/// A serving system under evaluation.
#[derive(Debug, Clone)]
pub enum System {
    /// ServerlessLLM: exclusive GPUs.
    Sllm,
    /// ServerlessLLM + CPU serving.
    SllmC,
    /// ServerlessLLM + CPU + static half-node sharing.
    SllmCs,
    /// SLINFER with the given configuration.
    Slinfer(SlinferConfig),
    /// PD-disaggregated `sllm+c+s` (Table III).
    PdSllmCs,
    /// PD-disaggregated SLINFER (Table III).
    PdSlinfer,
    /// NEO+-style KV/attention offload onto harvested host cores (Fig 29);
    /// pair with [`baselines::NeoPlus::cluster`].
    NeoPlus,
}

impl System {
    /// The paper's §IX-B lineup.
    pub fn paper_lineup() -> Vec<System> {
        vec![
            System::Sllm,
            System::SllmC,
            System::SllmCs,
            System::Slinfer(SlinferConfig::default()),
        ]
    }

    /// Display name matching the paper's labels.
    pub fn name(&self) -> String {
        match self {
            System::Sllm => "sllm".into(),
            System::SllmC => "sllm+c".into(),
            System::SllmCs => "sllm+c+s".into(),
            System::Slinfer(cfg) if *cfg == SlinferConfig::default() => "SLINFER".into(),
            System::Slinfer(_) => "SLINFER*".into(),
            System::PdSllmCs => "sllm+c+s(PD)".into(),
            System::PdSlinfer => "SLINFER(PD)".into(),
            System::NeoPlus => "NEO+".into(),
        }
    }

    /// Builds the cluster this system runs on. `sllm+c+s` statically splits
    /// nodes in two — except CPU nodes when the zoo is 13B-class, which the
    /// paper keeps whole (§IX-A).
    pub fn cluster(&self, n_cpu: usize, n_gpu: usize, zoo: &[ModelSpec]) -> ClusterSpec {
        match self {
            System::SllmCs | System::PdSllmCs => {
                let big_cpu_models = zoo
                    .iter()
                    .any(|m| m.params > 9_500_000_000 && m.params <= 14_000_000_000);
                if big_cpu_models {
                    // Whole CPU nodes, split GPU nodes.
                    let mut spec = ClusterSpec::heterogeneous(n_cpu, 0);
                    let gpus = ClusterSpec::statically_shared(0, n_gpu);
                    spec.nodes.extend(gpus.nodes);
                    spec
                } else {
                    ClusterSpec::statically_shared(n_cpu, n_gpu)
                }
            }
            _ => ClusterSpec::heterogeneous(n_cpu, n_gpu),
        }
    }

    /// Runs a composed [`Scenario`] under this system's policy — the single
    /// run-entry point every experiment goes through. The scenario supplies
    /// the fleet, workload (SLO-class segments), and environment (lifecycle
    /// events); the system supplies the policy.
    ///
    /// ```
    /// use bench::runner::world_cfg;
    /// use bench::{Scenario, System};
    /// use cluster::NodeId;
    /// use simcore::time::SimTime;
    /// use workload::request::Slo;
    /// use workload::serverless::TraceSpec;
    ///
    /// let models = bench::zoo::replicas(&hwmodel::ModelSpec::llama2_7b(), 8);
    /// let mut sc = Scenario::new(System::SllmC.cluster(1, 1, &models), models)
    ///     .config(world_cfg(7));
    /// // Workload axis: a standard segment plus a relaxed batch class.
    /// let relaxed = sc.slo_class(Slo::relaxed());
    /// let sc = sc
    ///     .workload(TraceSpec::azure_like(8, 7).with_load_scale(0.2).generate())
    ///     .classed_workload(
    ///         TraceSpec::azure_like(8, 8).with_load_scale(0.2).generate(),
    ///         relaxed,
    ///     )
    ///     // Environment axis: the GPU node drains mid-trace.
    ///     .drain_at(SimTime::from_secs(600), NodeId(1));
    /// // System axis: hand the composed run to a policy.
    /// let m = System::SllmC.run_scenario(sc);
    /// assert!(m.total() > 0);
    /// assert_eq!(m.node_drains, 1);
    /// assert_eq!(m.class_attainment().len(), 2);
    /// ```
    pub fn run_scenario(&self, sc: Scenario) -> RunMetrics {
        match self {
            System::Sllm => sc.run(Sllm::new(SllmConfig::sllm())),
            System::SllmC => sc.run(Sllm::new(SllmConfig::sllm_c())),
            System::SllmCs => sc.run(Sllm::new(SllmConfig::sllm_cs())),
            System::Slinfer(scfg) => sc.run(Slinfer::new(scfg.clone())),
            System::PdSllmCs => sc.run(PdSllm::new()),
            System::PdSlinfer => {
                let scfg = SlinferConfig {
                    pd_disaggregate: true,
                    ..SlinferConfig::default()
                };
                sc.run(Slinfer::new(scfg))
            }
            System::NeoPlus => sc.run(NeoPlus::policy()),
        }
    }

    /// Runs the system on a plain single-segment, event-free workload
    /// (convenience wrapper over [`System::run_scenario`]).
    pub fn run(
        &self,
        cluster: &ClusterSpec,
        models: Vec<ModelSpec>,
        cfg: WorldConfig,
        trace: &Trace,
    ) -> RunMetrics {
        self.run_scenario(
            Scenario::new(cluster.clone(), models)
                .config(cfg)
                .workload(trace.clone()),
        )
    }
}

/// One system's headline numbers from a run, ready for tabulation.
#[derive(Debug, Clone, serde::Serialize)]
pub struct SystemResult {
    /// System label.
    pub system: String,
    /// Requests meeting the SLO.
    pub slo_met: usize,
    /// Total requests.
    pub total: usize,
    /// SLO attainment in `[0,1]`.
    pub slo_rate: f64,
    /// Median TTFT (s) over responding requests.
    pub ttft_p50: f64,
    /// P95 TTFT (s).
    pub ttft_p95: f64,
    /// Time-weighted average CPU nodes used.
    pub cpu_nodes: f64,
    /// Time-weighted average GPU nodes used.
    pub gpu_nodes: f64,
    /// Decode speed on CPU nodes, tokens/(node·s).
    pub cpu_decode_speed: f64,
    /// Decode speed on GPU nodes, tokens/(node·s).
    pub gpu_decode_speed: f64,
    /// Dropped requests.
    pub dropped: u64,
    /// Cold starts.
    pub cold_starts: u64,
}

impl SystemResult {
    /// Summarizes a run under an arbitrary row label — callers that are not
    /// a [`System`] (per-SLO-class rows, fault-variant labels) build rows
    /// directly without cloning a `System`.
    pub fn from_metrics(system: impl Into<String>, m: &RunMetrics) -> SystemResult {
        let mut ttft = m.ttft_summary();
        SystemResult {
            system: system.into(),
            slo_met: m.slo_met(),
            total: m.total(),
            slo_rate: m.slo_rate(),
            ttft_p50: ttft.percentile(50.0),
            ttft_p95: ttft.percentile(95.0),
            cpu_nodes: m.avg_nodes_used(HardwareKind::CpuAccel),
            gpu_nodes: m.avg_nodes_used(HardwareKind::Gpu),
            cpu_decode_speed: m.decode_speed_per_node(HardwareKind::CpuAccel),
            gpu_decode_speed: m.decode_speed_per_node(HardwareKind::Gpu),
            dropped: m.dropped,
            cold_starts: m.cold_starts,
        }
    }
}

/// Default world config for experiments, seeded.
pub fn world_cfg(seed: u64) -> WorldConfig {
    WorldConfig {
        seed,
        ..WorldConfig::default()
    }
}
