//! Figure 4 — ServerlessLLM's serving capacity collapse (§III-C).
//!
//! Hosts a 3B/7B/13B mix on four A100s under `sllm` and sweeps the number
//! of models from 16 to 128. The paper shows the SLO attainment rate
//! dropping sharply as models multiply and requests queue for exclusive
//! GPUs.

use crate::cli::Cli;
use crate::report::{f, Report, Table};
use crate::runner::{world_cfg, System};
use crate::sweep::{Scenario, Sweep};
use crate::zoo;
use workload::serverless::TraceSpec;

/// Sweep cells (points × systems × seeds) at the quick/full tier; keep in
/// sync with the grid arrays in [`run`]. `bench list --json` reports this.
pub fn grid(quick: bool) -> usize {
    if quick {
        2
    } else {
        5
    }
}

pub fn run(cli: &Cli, r: &mut Report) {
    let seed = cli.seed;
    let counts: Vec<u32> = if cli.quick {
        vec![16, 64]
    } else {
        vec![16, 32, 64, 96, 128]
    };
    let parts = zoo::paper_mix();
    let res = Sweep::new()
        .points(counts)
        .systems(vec![System::Sllm])
        .seeds(vec![seed])
        .scenario(|cx| {
            let models = zoo::mixed(&parts, *cx.point as usize);
            Scenario::new(cx.system.cluster(0, 4, &models), models)
                .config(world_cfg(cx.seed))
                .workload(TraceSpec::azure_like(*cx.point, seed).generate())
        })
        .run_cli(cli);

    r.section("Fig 4 — sllm SLO rate vs number of LLMs (4 GPUs, 3B/7B/13B mix)");
    let mut table = Table::new(&["models", "SLO rate", "dropped", "total"]);
    let mut results = Vec::new();
    for (i, &n) in res.points.iter().enumerate() {
        let m = res.metrics(i, 0, 0);
        table.row(&[
            n.to_string(),
            f(m.slo_rate(), 3),
            m.dropped.to_string(),
            m.total().to_string(),
        ]);
        results.push((n, m.slo_rate()));
    }
    r.table(&table);
    let first = results.first().map(|r| r.1).unwrap_or(0.0);
    let last = results.last().map(|r| r.1).unwrap_or(0.0);
    r.line(format!(
        "SLO rate {} → {} as models grow",
        f(first, 2),
        f(last, 2)
    ));
    r.paper_note("Fig 4: performs well at small scales, then attainment drops sharply;");
    r.paper_note("intro: 33% of requests fail SLOs at 64 LLMs on 4 A100s");
    r.dump_json("fig04_sllm_capacity", &results);
}
