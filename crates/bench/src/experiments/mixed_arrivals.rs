//! Mixed arrival-process sweep: azure-like + BurstGPT traffic (scenario
//! suite).
//!
//! The paper evaluates the Azure-serverless arrival process (Fig. 22) and
//! the BurstGPT process (Fig. 27) in isolation. A consolidated fleet sees
//! both at once: steady skewed-popularity function traffic plus an
//! over-dispersed bursty stream. The `Scenario` workload axis interleaves
//! one segment of each over a shared model zoo; the bursty segment carries
//! its own SLO-class tag — with the *same* paper SLO — purely so attainment
//! can be attributed per arrival stream after the run.

use crate::cli::Cli;
use crate::report::{f, Report, Table};
use crate::runner::{world_cfg, System};
use crate::sweep::{Scenario, Sweep};
use crate::zoo;
use hwmodel::ModelSpec;
use slinfer::SlinferConfig;
use workload::burstgpt::BurstGptSpec;
use workload::request::Slo;
use workload::serverless::TraceSpec;

/// Sweep cells (points × systems × seeds) at the quick/full tier; keep in
/// sync with the grid arrays in [`run`]. `bench list --json` reports this.
pub fn grid(quick: bool) -> usize {
    if quick {
        2 * 2
    } else {
        4 * 2
    }
}

pub fn run(cli: &Cli, r: &mut Report) {
    let seed = cli.seed;
    let n_models: u32 = if cli.quick { 16 } else { 48 };
    let rates: Vec<f64> = if cli.quick {
        vec![0.5, 2.0]
    } else {
        vec![0.5, 1.0, 2.0, 4.0]
    };

    let res = Sweep::new()
        .points(rates)
        .systems(vec![
            System::SllmC,
            System::Slinfer(SlinferConfig::default()),
        ])
        .seeds(vec![seed])
        .scenario(|cx| {
            let models = zoo::replicas(&ModelSpec::llama2_7b(), n_models as usize);
            let mut sc =
                Scenario::new(cx.system.cluster(2, 2, &models), models).config(world_cfg(cx.seed));
            // Same SLO, distinct class id: the tag exists to attribute
            // attainment per arrival stream, not to change objectives.
            let burst_class = sc.slo_class(Slo::paper());
            let azure = TraceSpec::azure_like(n_models, seed).generate();
            let burst = BurstGptSpec {
                n_models,
                ..BurstGptSpec::paper(*cx.point, seed ^ 0xB6B5)
            }
            .generate();
            sc.workload(azure).classed_workload(burst, burst_class)
        })
        .run_cli(cli);

    r.section(&format!(
        "Mixed arrivals — azure-like + BurstGPT over {n_models} 7B models"
    ));
    let mut table = Table::new(&[
        "burst RPS",
        "system",
        "azure rate",
        "burst rate",
        "overall",
        "total",
        "dropped",
    ]);
    let mut results = Vec::new();
    for (pi, rps) in res.points.iter().enumerate() {
        for si in 0..res.systems.len() {
            let m = res.metrics(pi, si, 0);
            let att = m.class_attainment();
            // Class 0 = azure stream, class 1 = the bursty stream.
            let rate_of = |ix: usize| {
                att.get(ix)
                    .map(|&(_, met, total)| met as f64 / total.max(1) as f64)
                    .unwrap_or(1.0)
            };
            table.row(&[
                f(*rps, 1),
                res.systems[si].name(),
                f(rate_of(0), 3),
                f(rate_of(1), 3),
                f(m.slo_rate(), 3),
                m.total().to_string(),
                m.dropped.to_string(),
            ]);
            results.push((*rps, res.systems[si].name(), rate_of(0), rate_of(1)));
        }
    }
    r.table(&table);
    r.paper_note("scenario suite: bursty load degrades the steady stream's attainment");
    r.paper_note("as shared capacity absorbs the spikes (cf. Figs 22 & 27 in isolation)");
    r.dump_json("mixed_arrivals", &results);
}
