//! Figure 5 — GPU memory utilization under ServerlessLLM (§III-C).
//!
//! Serving 128 LLMs with exclusive GPU allocation, each instance gets a
//! whole 80 GB device; the paper measures only ~23% average utilization —
//! the over-provisioning that motivates SLINFER.

use crate::cli::Cli;
use crate::report::{f, Report, Table};
use crate::runner::{world_cfg, System};
use crate::sweep::{Scenario, Sweep};
use crate::zoo;
use hwmodel::HardwareKind;
use workload::serverless::TraceSpec;

/// Sweep cells (points × systems × seeds) at the quick/full tier; keep in
/// sync with the grid arrays in [`run`]. `bench list --json` reports this.
pub fn grid(_quick: bool) -> usize {
    1 // same sweep at both tiers
}

pub fn run(cli: &Cli, r: &mut Report) {
    let seed = cli.seed;
    let n: u32 = if cli.quick { 32 } else { 128 };
    let parts = zoo::paper_mix();
    let mut res = Sweep::new()
        .points(vec![n])
        .systems(vec![System::Sllm])
        .seeds(vec![seed])
        .scenario(|cx| {
            let models = zoo::mixed(&parts, *cx.point as usize);
            Scenario::new(cx.system.cluster(0, 4, &models), models)
                .config(world_cfg(cx.seed))
                .workload(TraceSpec::azure_like(*cx.point, seed).generate())
        })
        .run_cli(cli);

    r.section(&format!("Fig 5 — sllm GPU memory utilization, {n} LLMs"));
    let m = res.metrics_mut(0, 0, 0);
    let mut table = Table::new(&["stat", "memory utilization"]);
    table.row(&["mean".into(), f(m.mem_util_mean(HardwareKind::Gpu), 3)]);
    for p in [10.0, 25.0, 50.0, 75.0, 90.0, 99.0] {
        table.row(&[format!("p{p:.0}"), f(m.mem_util_gpu.percentile(p), 3)]);
    }
    r.table(&table);
    let cdf = m.mem_util_gpu.cdf(11);
    r.line("CDF points (util, F):");
    for (x, fr) in &cdf.points {
        r.line(format!("  {:.2}  {:.2}", x, fr));
    }
    r.paper_note("Fig 5: each instance utilizes only ~23% of its allocated GPU memory on average");
    r.dump_json("fig05_sllm_memutil", &cdf.points);
}
