//! Table III — prefill–decode disaggregation (§IX-G).
//!
//! Compares aggregated vs PD-disaggregated variants of `sllm+c+s` and
//! SLINFER at 32/64/128 7B-sized models (100 Gbps KV transfer). The paper
//! finds disaggregation *increases* GPU usage and *reduces* SLO rates —
//! prefill instances idle 93% of their lifetime under serverless traffic.

use crate::cli::Cli;
use crate::report::{f, Report, Table};
use crate::runner::{world_cfg, System};
use crate::sweep::{Scenario, Sweep};
use crate::zoo;
use hwmodel::{HardwareKind, ModelSpec};
use workload::serverless::TraceSpec;

/// Sweep cells (points × systems × seeds) at the quick/full tier; keep in
/// sync with the grid arrays in [`run`]. `bench list --json` reports this.
pub fn grid(quick: bool) -> usize {
    if quick {
        4
    } else {
        12
    }
}

pub fn run(cli: &Cli, r: &mut Report) {
    let seed = cli.seed;
    let counts: Vec<u32> = if cli.quick {
        vec![32]
    } else {
        vec![32, 64, 128]
    };
    let res = Sweep::new()
        .points(counts)
        .systems(vec![
            System::SllmCs,
            System::PdSllmCs,
            System::Slinfer(Default::default()),
            System::PdSlinfer,
        ])
        .seeds(vec![seed])
        .scenario(|cx| {
            let models = zoo::replicas(&ModelSpec::llama2_7b(), *cx.point as usize);
            Scenario::new(cx.system.cluster(4, 4, &models), models)
                .config(world_cfg(cx.seed))
                .workload(TraceSpec::azure_like(*cx.point, seed).generate())
        })
        .run_cli(cli);

    r.section("Table III — aggregated vs disaggregated PD");
    let mut table = Table::new(&[
        "system",
        "models",
        "GPU use (agg/disagg)",
        "SLO % (agg/disagg)",
        "cold starts (agg/disagg)",
    ]);
    let mut results = Vec::new();
    for (agg_ix, disagg_ix, label) in [(0usize, 1usize, "sllm+c+s"), (2, 3, "SLINFER")] {
        for (pi, &n) in res.points.iter().enumerate() {
            let a = res.metrics(pi, agg_ix, 0);
            let d = res.metrics(pi, disagg_ix, 0);
            table.row(&[
                label.to_string(),
                n.to_string(),
                format!(
                    "{} / {}",
                    f(a.avg_nodes_used(HardwareKind::Gpu), 1),
                    f(d.avg_nodes_used(HardwareKind::Gpu), 1)
                ),
                format!(
                    "{} / {}",
                    f(a.slo_rate() * 100.0, 0),
                    f(d.slo_rate() * 100.0, 0)
                ),
                format!("{} / {}", a.cold_starts, d.cold_starts),
            ]);
            results.push((
                label.to_string(),
                n,
                a.slo_rate(),
                d.slo_rate(),
                a.avg_nodes_used(HardwareKind::Gpu),
                d.avg_nodes_used(HardwareKind::Gpu),
            ));
        }
    }
    r.table(&table);
    r.paper_note(
        "Table III: sllm+c+s 99/93, 93/70, 65/35 %; SLINFER 99/99, 99/98, 86/69 % (agg/disagg)",
    );
    r.paper_note("disaggregation raises GPU usage at every load level");
    r.dump_json("tab3_pd_disagg", &results);
}
