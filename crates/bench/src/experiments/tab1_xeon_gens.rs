//! Table I — Llama-2-7B on 3rd- vs 4th-gen Xeon (§IV-A2).
//!
//! TTFT at 256/1K/4K inputs and TPOT at {1,32}-batch × {1K,4K} context, on
//! the AMX-less 8369B and the AMX 6462C. The paper measures 6.7–7.3× TTFT
//! and 1.4–1.7× TPOT generational speedups.

use crate::cli::Cli;
use crate::report::{f, Report, Table};
use hwmodel::{AnalyticPerf, HardwareSpec, ModelSpec, PerfOracle};

pub fn run(_cli: &Cli, r: &mut Report) {
    r.section("Table I — Llama-2-7B across Xeon generations");
    let perf = AnalyticPerf::new();
    let m = ModelSpec::llama2_7b();
    let gens = [
        ("3rd Gen", HardwareSpec::xeon3_32c()),
        ("4th Gen", HardwareSpec::xeon4_amx_32c()),
    ];
    let paper_ttft = [[1003.0, 4113.0, 18612.0], [149.0, 567.0, 2748.0]];
    let paper_tpot = [[100.0, 338.0, 110.0, 697.0], [71.0, 196.0, 80.0, 459.0]];

    let mut table = Table::new(&[
        "CPU",
        "TTFT 256",
        "TTFT 1K",
        "TTFT 4K",
        "TPOT 1bs-1K",
        "TPOT 32bs-1K",
        "TPOT 1bs-4K",
        "TPOT 32bs-4K",
    ]);
    let mut measured = Vec::new();
    for (gi, (name, hw)) in gens.iter().enumerate() {
        let ttft: Vec<f64> = [256u32, 1024, 4096]
            .iter()
            .map(|&l| perf.prefill_time(&m, hw, l, 1.0) * 1e3)
            .collect();
        let tpot: Vec<f64> = [(1u32, 1024u64), (32, 32 * 1024), (1, 4096), (32, 32 * 4096)]
            .iter()
            .map(|&(b, t)| perf.decode_time(&m, hw, b, t, 1.0) * 1e3)
            .collect();
        let mut row = vec![name.to_string()];
        for (i, v) in ttft.iter().enumerate() {
            row.push(format!("{} ({})", f(*v, 0), f(paper_ttft[gi][i], 0)));
        }
        for (i, v) in tpot.iter().enumerate() {
            row.push(format!("{} ({})", f(*v, 0), f(paper_tpot[gi][i], 0)));
        }
        table.row(&row);
        measured.push((name.to_string(), ttft, tpot));
    }
    r.table(&table);
    r.line("cells: measured (paper), ms");
    let speedup: Vec<f64> = (0..3)
        .map(|i| measured[0].1[i] / measured[1].1[i])
        .collect();
    r.line(format!(
        "TTFT speedups: {} / {} / {} (paper: 6.7 / 7.3 / 6.8×)",
        f(speedup[0], 1),
        f(speedup[1], 1),
        f(speedup[2], 1)
    ));
    let tsp: Vec<f64> = (0..4)
        .map(|i| measured[0].2[i] / measured[1].2[i])
        .collect();
    r.line(format!(
        "TPOT speedups: {} / {} / {} / {} (paper: 1.4 / 1.7 / 1.4 / 1.5×)",
        f(tsp[0], 1),
        f(tsp[1], 1),
        f(tsp[2], 1),
        f(tsp[3], 1)
    ));
    r.paper_note("Table I: AMX-less CPUs are unsuitable (4.1 s TTFT for 1K inputs)");
    r.dump_json("tab1_xeon_gens", &measured);
}
