//! Figures 7 & 8 — TPOT vs batch size for Llama-2-7B and 13B (§IV-A2).
//!
//! Decode-iteration latency on the AMX CPU and the A100 at token lengths
//! {512, 1K, 2K} and batch sizes 1–128, against the 250 ms TPOT SLO.
//! Paper observations: CPUs meet the SLO with batching headroom (7B 4-batch
//! costs only ~14% over 1-batch at 1K); 13B at 32-batch crosses the SLO
//! between 512 and 2K tokens; GPUs stay far below the SLO throughout.

use crate::cli::Cli;
use crate::report::{f, Report, Table};
use hwmodel::{AnalyticPerf, HardwareSpec, ModelSpec, PerfOracle};

pub fn run(_cli: &Cli, r: &mut Report) {
    let perf = AnalyticPerf::new();
    let cpu = HardwareSpec::xeon4_amx_32c();
    let gpu = HardwareSpec::a100_80g();
    let batches = [1u32, 2, 4, 8, 16, 32, 64, 128];
    let lengths = [512u32, 1024, 2048];
    let mut dump = Vec::new();

    for (fig, name, model) in [
        ("Fig 7", "Llama-2-7B", ModelSpec::llama2_7b()),
        ("Fig 8", "Llama-2-13B", ModelSpec::llama2_13b()),
    ] {
        r.section(&format!("{fig} — TPOT (ms) of {name} (SLO 250 ms)"));
        let mut table = Table::new(&["batch", "C-512", "C-1K", "C-2K", "G-512", "G-1K", "G-2K"]);
        for &bs in &batches {
            let mut row = vec![bs.to_string()];
            for hw in [&cpu, &gpu] {
                for &len in &lengths {
                    let t = perf.decode_time(&model, hw, bs, bs as u64 * len as u64, 1.0) * 1e3;
                    row.push(f(t, 0));
                    dump.push((name.to_string(), hw.name.clone(), bs, len, t));
                }
            }
            table.row(&row);
        }
        r.table(&table);
    }
    // The paper's two quantitative anchors.
    let m7 = ModelSpec::llama2_7b();
    let t1 = perf.decode_time(&m7, &cpu, 1, 1024, 1.0);
    let t4 = perf.decode_time(&m7, &cpu, 4, 4 * 1024, 1.0);
    r.line(format!(
        "7B CPU 4-batch vs 1-batch @1K: +{:.0}% (paper: +14%)",
        100.0 * (t4 / t1 - 1.0)
    ));
    let m13 = ModelSpec::llama2_13b();
    let a = perf.decode_time(&m13, &cpu, 32, 32 * 512, 1.0);
    let b = perf.decode_time(&m13, &cpu, 32, 32 * 2048, 1.0);
    r.line(format!(
        "13B CPU 32-batch 512→2K: {:.0} → {:.0} ms ({:.1}×, paper ≈2×; 2K violates the SLO)",
        a * 1e3,
        b * 1e3,
        b / a
    ));
    r.paper_note("Figs 7-8: CPU meets TPOT with batching headroom; GPU far below SLO");
    r.dump_json("fig07_08_tpot_curves", &dump);
}
