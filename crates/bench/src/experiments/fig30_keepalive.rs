//! Figure 30 — keep-alive threshold sensitivity (§IX-I4).
//!
//! Sweeps the keep-alive threshold over {0, 1, 2, 4, 8} s for `sllm+c+s`
//! and SLINFER. The paper's counterintuitive finding: longer keep-alive can
//! *worsen* P95 TTFT (idle instances hog resources and queue requests)
//! while raising GPU usage; 1 s balances both.

use crate::cli::Cli;
use crate::report::{f, Report, Table};
use crate::runner::{world_cfg, System};
use crate::sweep::{Scenario, Sweep};
use crate::zoo;
use hwmodel::{HardwareKind, ModelSpec};
use simcore::time::SimDuration;
use workload::serverless::TraceSpec;

/// Sweep cells (points × systems × seeds) at the quick/full tier; keep in
/// sync with the grid arrays in [`run`]. `bench list --json` reports this.
pub fn grid(quick: bool) -> usize {
    if quick {
        2 * 2
    } else {
        5 * 2
    }
}

pub fn run(cli: &Cli, r: &mut Report) {
    let seed = cli.seed;
    let n_models: u32 = if cli.quick { 24 } else { 64 };
    let thresholds: Vec<u64> = if cli.quick {
        vec![1, 8]
    } else {
        vec![0, 1, 2, 4, 8]
    };
    let res = Sweep::new()
        .points(thresholds)
        .systems(vec![System::SllmCs, System::Slinfer(Default::default())])
        .seeds(vec![seed])
        .scenario(|cx| {
            let models = zoo::replicas(&ModelSpec::llama2_7b(), n_models as usize);
            let mut cfg = world_cfg(cx.seed);
            cfg.keep_alive = SimDuration::from_secs(*cx.point);
            Scenario::new(cx.system.cluster(4, 4, &models), models)
                .config(cfg)
                .workload(TraceSpec::azure_like(n_models, seed).generate())
        })
        .run_cli(cli);

    r.section(&format!("Fig 30 — keep-alive sweep, {n_models} 7B models"));
    let mut table = Table::new(&[
        "keep-alive (s)",
        "system",
        "GPU nodes",
        "P95 TTFT (s)",
        "SLO rate",
        "cold starts",
    ]);
    let mut results = Vec::new();
    for (pi, &ka) in res.points.iter().enumerate() {
        for (si, system) in res.systems.iter().enumerate() {
            let m = res.metrics(pi, si, 0);
            let mut ttft = m.ttft_summary();
            table.row(&[
                ka.to_string(),
                system.name(),
                f(m.avg_nodes_used(HardwareKind::Gpu), 1),
                f(ttft.percentile(95.0), 2),
                f(m.slo_rate(), 3),
                m.cold_starts.to_string(),
            ]);
            results.push((
                ka,
                system.name(),
                m.avg_nodes_used(HardwareKind::Gpu),
                ttft.percentile(95.0),
            ));
        }
    }
    r.table(&table);
    r.paper_note("Fig 30: longer keep-alive raises GPU usage and can worsen P95 TTFT;");
    r.paper_note("a short threshold (1 s) balances efficiency and user experience");
    r.dump_json("fig30_keepalive", &results);
}
