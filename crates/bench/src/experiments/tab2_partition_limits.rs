//! Table II — aggregated concurrency limits under static partitioning
//! (§IV-C).
//!
//! For 7B/13B at 2K/4K contexts, computes the SLO-bounded concurrency of
//! full nodes vs 1/2, 1/3 and 1/4 partitions (CPU limits are compute-bound
//! via the TPOT SLO; GPU limits are KV-capacity-bound). The paper's point:
//! fragments aggregate to roughly half a whole node's capacity — static
//! partitioning wastes the hardware.

use crate::cli::Cli;
use crate::report::{Report, Table};
use hwmodel::{AnalyticPerf, HardwareSpec, ModelSpec};
use workload::request::Slo;

fn limit(m: &ModelSpec, hw: &HardwareSpec, ctx: u32, share: f64, slo: &Slo) -> u32 {
    let perf = AnalyticPerf::new();
    let compute = perf.max_batch_under_tpot(m, hw, ctx, share, slo.tpot_s);
    let mem_share = (hw.mem_bytes as f64 * share) as u64;
    let kv_room = mem_share.saturating_sub(m.weights_bytes());
    let mem = (kv_room / (ctx as u64 * m.kv_bytes_per_token())) as u32;
    compute.min(mem)
}

pub fn run(_cli: &Cli, r: &mut Report) {
    r.section("Table II — aggregated concurrency limits (measured vs paper)");
    let slo = Slo::paper();
    let cpu = HardwareSpec::xeon4_amx_32c();
    let gpu = HardwareSpec::a100_80g();
    let scenarios: Vec<(&str, ModelSpec, &HardwareSpec, u32, [&str; 4])> = vec![
        (
            "C-7B-2K",
            ModelSpec::llama2_7b(),
            &cpu,
            2048,
            ["-", "3×2", "2×9", "27"],
        ),
        (
            "C-7B-4K",
            ModelSpec::llama2_7b(),
            &cpu,
            4096,
            ["-", "3×1", "2×4", "15"],
        ),
        (
            "G-7B-2K",
            ModelSpec::llama2_7b(),
            &gpu,
            2048,
            ["4×6", "3×12", "2×26", "66"],
        ),
        (
            "G-7B-4K",
            ModelSpec::llama2_7b(),
            &gpu,
            4096,
            ["4×3", "3×6", "2×13", "32"],
        ),
        (
            "G-13B-2K",
            ModelSpec::llama2_13b(),
            &gpu,
            2048,
            ["-", "-", "2×7", "33"],
        ),
        (
            "G-13B-4K",
            ModelSpec::llama2_13b(),
            &gpu,
            4096,
            ["-", "-", "2×3", "16"],
        ),
    ];
    let mut table = Table::new(&["scenario", "4×¼", "3×⅓", "2×½", "1 (whole)", "paper row"]);
    let mut dump = Vec::new();
    for (name, m, hw, ctx, paper) in scenarios {
        let mut cells = Vec::new();
        let mut vals = Vec::new();
        for (k, share) in [(4u32, 0.25), (3, 1.0 / 3.0), (2, 0.5), (1, 1.0)] {
            let per = limit(&m, hw, ctx, share, &slo);
            vals.push((k, per));
            cells.push(if per == 0 {
                "-".to_string()
            } else if k == 1 {
                per.to_string()
            } else {
                format!("{k}×{per}")
            });
        }
        let row = vec![
            name.to_string(),
            cells[0].clone(),
            cells[1].clone(),
            cells[2].clone(),
            cells[3].clone(),
            paper.join(" "),
        ];
        table.row(&row);
        dump.push((name.to_string(), vals));
    }
    r.table(&table);
    // The §IV-C headline: halves aggregate to about half the whole.
    let whole = limit(&ModelSpec::llama2_7b(), &gpu, 2048, 1.0, &slo);
    let thirds = 3 * limit(&ModelSpec::llama2_7b(), &gpu, 2048, 1.0 / 3.0, &slo);
    r.line(format!(
        "G-7B-2K: 3 fragments aggregate to {thirds} vs whole-node {whole} \
         (paper: ~half the capacity)"
    ));
    r.paper_note("Table II: partitioning a GPU in three yields ~half the aggregate concurrency");
    r.dump_json("tab2_partition_limits", &dump);
}
