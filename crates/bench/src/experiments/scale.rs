//! Fleet-scale throughput grid — simulator performance, not a paper figure.
//!
//! Every other experiment reproduces a result of the paper; this one
//! measures the *simulator itself* at fleet scale: a grid of GPU fleet
//! size × daily request volume, up to 10 000 nodes × one million requests
//! in a single day-long trace, reporting simulated-seconds-per-wall-second
//! and peak RSS per cell. The committed `BENCH_scale.json` at the repo
//! root is the perf trajectory every future change is compared against
//! (see `scripts/check-scale-perf.sh`).
//!
//! Like Fig 33, the output is split along the determinism boundary:
//!
//! - `scale.json` (registered, goldened, byte-diffed by CI) carries only
//!   the deterministic payload — request outcomes, cold starts, and a
//!   64-bit fingerprint folded over every request record, so a perf
//!   regression hunt can instantly tell "slower" from "different".
//! - `BENCH_scale.json` (non-registered, never byte-diffed) carries the
//!   wall-clock rows: sim-s/wall-s and peak RSS alongside the same
//!   fingerprints, so the perf check can fail on non-determinism but only
//!   *warn* on machine-speed noise.
//!
//! Cells run serially — never through the sweep's worker pool — so each
//! wall-clock measurement gets the whole machine and nothing is retained
//! by the `bench all` cell cache (a million-record `RunMetrics` has no
//! business being memoized). `--threads` is deliberately ignored. Peak
//! RSS is the process-wide high-water mark (`VmHWM`), so it is monotone
//! across rows and only the largest cell's row is a meaningful ceiling.
//!
//! The full grid doubles as the tentpole's scale proof: the 10k-node ×
//! 1M-request cell exercises the calendar event queue, the instance
//! index, and the streaming metrics on a trace two orders of magnitude
//! beyond any paper figure.

use std::time::Instant;

use crate::cli::Cli;
use crate::report::{f, Report, Table};
use crate::runner::{world_cfg, System};
use crate::zoo;
use cluster::{ClusterSpec, RunMetrics, Scenario};
use hwmodel::ModelSpec;
use simcore::time::SimDuration;
use workload::datasets::Dataset;
use workload::serverless::TraceSpec;

/// One grid cell: GPU fleet size × daily request volume.
#[derive(Debug, Clone, Copy)]
struct Pt {
    /// Grid tier the row belongs to (`"quick"` rows run in CI; `"full"`
    /// rows only in full mode, which also re-runs the quick rows so one
    /// full invocation writes the complete `BENCH_scale.json`).
    mode: &'static str,
    nodes: usize,
    requests: u64,
}

/// Quick tier: small enough for `bench all --quick` and the CI perf check.
const QUICK: &[Pt] = &[
    Pt {
        mode: "quick",
        nodes: 50,
        requests: 20_000,
    },
    Pt {
        mode: "quick",
        nodes: 200,
        requests: 60_000,
    },
];

/// Full tier: the committed perf trajectory, topping out at the tentpole
/// cell — 10 000 GPU nodes serving ≥1M requests over a simulated day.
const FULL: &[Pt] = &[
    Pt {
        mode: "full",
        nodes: 1_000,
        requests: 250_000,
    },
    Pt {
        mode: "full",
        nodes: 10_000,
        requests: 1_000_000,
    },
];

/// Hosted models scale with the fleet (two nodes per model, clamped), the
/// per-model volume follows from the daily total.
fn n_models(nodes: usize) -> usize {
    (nodes / 2).clamp(8, 4_000)
}

/// Day-long Azure-like trace hitting the cell's daily request target.
fn trace_spec(pt: &Pt, seed: u64) -> TraceSpec {
    let models = n_models(pt.nodes);
    TraceSpec {
        n_models: models as u32,
        duration: SimDuration::from_secs(86_400),
        requests_per_model: pt.requests as f64 / models as f64,
        zipf_s: 1.05,
        burst_fraction: 0.5,
        burst_gap_s: 0.3,
        dataset: Dataset::AzureConv,
        seed,
    }
}

fn build_scenario(pt: &Pt, seed: u64) -> Scenario {
    let models = zoo::replicas(&ModelSpec::llama2_7b(), n_models(pt.nodes));
    let mut cfg = world_cfg(seed);
    // Fleet-scale serving keeps instances warm for minutes, which also
    // keeps the hot path on the indexed warm-instance lookup instead of
    // cold-placement fleet scans.
    cfg.keep_alive = SimDuration::from_secs(600);
    // A day at 1 Hz would be 86k occupancy ticks; sample at 10 s and keep
    // every 60th point so the timeline stays a few hundred entries. The
    // time-weighted integrals still see every tick.
    cfg.sample_period = SimDuration::from_secs(10);
    cfg.usage_sample_stride = 60;
    Scenario::new(ClusterSpec::heterogeneous(0, pt.nodes), models)
        .config(cfg)
        .workload(trace_spec(pt, seed).generate())
}

/// FNV-1a over every request record's numeric outcome plus the headline
/// counters: one u64 that changes iff the simulation's behaviour changes.
fn fingerprint(m: &RunMetrics) -> u64 {
    const PRIME: u64 = 0x100_0000_01b3;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut fold = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    };
    for r in &m.records {
        fold(r.arrival.as_micros());
        fold(r.first_token.map_or(u64::MAX, |t| t.as_micros()));
        fold(r.completed.map_or(u64::MAX, |t| t.as_micros()));
        fold(u64::from(r.model.0));
        fold(u64::from(r.input_len) << 32 | u64::from(r.output_len));
        fold(
            u64::from(r.dropped)
                | u64::from(r.ttft_violated) << 1
                | u64::from(r.tpot_violated) << 2
                | u64::from(r.cold_start) << 3
                | u64::from(r.migrations) << 8,
        );
    }
    fold(m.cold_starts);
    fold(m.dropped);
    fold(m.slo_met() as u64);
    h
}

/// Peak resident set of this process in MB (`VmHWM`), 0.0 off Linux.
/// Process-wide and monotone: later rows can only report more.
fn peak_rss_mb() -> f64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0.0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            if let Some(kb) = rest
                .split_whitespace()
                .next()
                .and_then(|v| v.parse::<f64>().ok())
            {
                return kb / 1024.0;
            }
        }
    }
    0.0
}

/// Deterministic per-cell payload (goldened as `scale.json`).
#[derive(serde::Serialize)]
struct DetRow {
    mode: String,
    nodes: usize,
    models: usize,
    requests: usize,
    slo_met: usize,
    dropped: u64,
    cold_starts: u64,
    sim_seconds: f64,
    fingerprint: String,
}

/// Wall-clock perf row (`BENCH_scale.json`, never byte-diffed).
#[derive(serde::Serialize)]
struct PerfRow {
    mode: String,
    nodes: usize,
    models: usize,
    requests: usize,
    sim_seconds: f64,
    wall_seconds: f64,
    sim_per_wall: f64,
    peak_rss_mb: f64,
    fingerprint: String,
}

/// Sweep cells (points × systems × seeds) at the quick/full tier; keep in
/// sync with the grid arrays in [`run`]. `bench list --json` reports this.
pub fn grid(quick: bool) -> usize {
    if quick {
        2
    } else {
        4
    }
}

pub fn run(cli: &Cli, r: &mut Report) {
    let seed = cli.seed;
    let points: Vec<Pt> = if cli.quick {
        QUICK.to_vec()
    } else {
        // Full mode re-runs the quick rows so one invocation produces the
        // complete trajectory file, quick tier included.
        QUICK.iter().chain(FULL).copied().collect()
    };

    r.section("Fleet-scale throughput — simulated seconds per wall second");
    r.line("GPU fleet × requests/day grid under sllm, one day-long trace per");
    r.line("cell, run serially (wall-clock measurement; `--threads` ignored).");
    let mut table = Table::new(&[
        "mode",
        "nodes",
        "models",
        "requests",
        "sim-s",
        "wall-s",
        "sim-s/wall-s",
        "peak RSS (MB)",
        "cold",
        "SLO-met",
    ]);
    let mut det: Vec<DetRow> = Vec::new();
    let mut perf: Vec<PerfRow> = Vec::new();
    for pt in &points {
        let sc = build_scenario(pt, seed);
        let requests = sc.merged_trace().requests.len();
        // detlint::allow(D003, "sim-s/wall-s throughput measurement; fingerprints, not wall-clock, are what CI gates on")
        let t0 = Instant::now();
        let m = System::Sllm.run_scenario(sc);
        let wall = t0.elapsed().as_secs_f64();
        // Simulated span actually covered: last request activity (the run
        // terminates once everything resolves, possibly past the trace
        // window into the drain). Deterministic, unlike the wall clock.
        let sim_end = m
            .records
            .iter()
            .map(|r| r.completed.unwrap_or(r.arrival).max(r.arrival))
            .max()
            .map_or(0.0, |t| t.as_secs_f64());
        let fp = format!("{:016x}", fingerprint(&m));
        let rss = peak_rss_mb();
        table.row(&[
            pt.mode.to_string(),
            pt.nodes.to_string(),
            n_models(pt.nodes).to_string(),
            requests.to_string(),
            f(sim_end, 0),
            f(wall, 2),
            f(sim_end / wall.max(1e-9), 0),
            f(rss, 0),
            m.cold_starts.to_string(),
            format!("{}/{}", m.slo_met(), m.total()),
        ]);
        det.push(DetRow {
            mode: pt.mode.to_string(),
            nodes: pt.nodes,
            models: n_models(pt.nodes),
            requests,
            slo_met: m.slo_met(),
            dropped: m.dropped,
            cold_starts: m.cold_starts,
            sim_seconds: sim_end,
            fingerprint: fp.clone(),
        });
        perf.push(PerfRow {
            mode: pt.mode.to_string(),
            nodes: pt.nodes,
            models: n_models(pt.nodes),
            requests,
            sim_seconds: sim_end,
            wall_seconds: wall,
            sim_per_wall: sim_end / wall.max(1e-9),
            peak_rss_mb: rss,
            fingerprint: fp,
        });
    }
    r.table(&table);
    r.paper_note("simulator scale proof: the full grid tops out at 10k GPU nodes ×");
    r.paper_note("1M requests/day; BENCH_scale.json is the committed perf baseline");
    r.dump_json("scale", &det);
    r.dump_json("BENCH_scale", &perf);
}
