//! Figure 34 — dataset length characterization (§IX-I1).
//!
//! Input/output token-length distributions of the five evaluation datasets.
//! Paper anchors: 97.9% of AzureConv and 85.9% of AzureCode inputs under
//! 4 K tokens; LongBench inputs reach 32 K; ShareGPT outputs are longest.

use crate::cli::Cli;
use crate::report::{f, Report, Table};
use simcore::rng::SimRng;
use simcore::stats::Summary;
use workload::Dataset;

pub fn run(_cli: &Cli, r: &mut Report) {
    r.section("Fig 34 — dataset input/output length distributions");
    let mut table = Table::new(&[
        "dataset", "in p50", "in p90", "in p99", "P(in<4K)", "out p50", "out p90", "out mean",
    ]);
    let mut dump = Vec::new();
    for ds in Dataset::ALL {
        let mut rng = SimRng::new(7);
        let mut ins = Summary::new();
        let mut outs = Summary::new();
        for _ in 0..50_000 {
            let (i, o) = ds.sample_lengths(&mut rng);
            ins.add(i as f64);
            outs.add(o as f64);
        }
        let frac4k = ins.fraction_at_most(4096.0);
        table.row(&[
            ds.name().to_string(),
            f(ins.percentile(50.0), 0),
            f(ins.percentile(90.0), 0),
            f(ins.percentile(99.0), 0),
            f(frac4k, 3),
            f(outs.percentile(50.0), 0),
            f(outs.percentile(90.0), 0),
            f(outs.mean(), 0),
        ]);
        dump.push((
            ds.name().to_string(),
            ins.percentile(50.0),
            ins.percentile(99.0),
            frac4k,
            outs.mean(),
        ));
    }
    r.table(&table);
    r.paper_note("Fig 34 anchors: AzureConv P(<4K)=0.979, AzureCode P(<4K)=0.859,");
    r.paper_note("LongBench inputs to 32K, ShareGPT outputs longest");
    r.dump_json("fig34_datasets", &dump);
}
