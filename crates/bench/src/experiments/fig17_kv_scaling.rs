//! Figure 17 — KV-cache rescale overhead on the GPU (§VII-B).
//!
//! Cost of scaling a paged KV cache to 0.5× and 2× across cache sizes
//! 2–32 GB. Paper anchors: 32 GB → 16 GB ≈ 0.3 s; 32 GB → 64 GB ≈ 1.9 s.

use crate::cli::Cli;
use crate::report::{f, Report, Table};
use hwmodel::{AnalyticPerf, HardwareSpec};

pub fn run(_cli: &Cli, r: &mut Report) {
    r.section("Fig 17 — KV rescale time (s) on A100");
    let perf = AnalyticPerf::new();
    let gpu = HardwareSpec::a100_80g();
    let gb = 1_000_000_000u64;
    let mut table = Table::new(&["cache size (GB)", "scale to 0.5×", "scale to 2×"]);
    let mut dump = Vec::new();
    for size in [2u64, 4, 8, 16, 32] {
        let down = perf.kv_scale_time(&gpu, size * gb, size * gb / 2, size * gb / 2);
        let up = perf.kv_scale_time(&gpu, size * gb, size * gb * 2, size * gb);
        table.row(&[size.to_string(), f(down, 2), f(up, 2)]);
        dump.push((size, down, up));
    }
    r.table(&table);
    let (_, d32, u32_) = dump.last().cloned().unwrap();
    r.line(format!(
        "32 GB: down {} s (paper 0.3), up {} s (paper 1.9)",
        f(d32, 2),
        f(u32_, 2)
    ));
    r.paper_note("Fig 17: rescaling is non-trivial — the watermark policy exists to amortize it");
    r.dump_json("fig17_kv_scaling", &dump);
}
