//! Figure 28 — host-CPU usage during multi-model GPU colocation (§IX-I3).
//!
//! The paper measures that even eight colocated GPU instances barely exceed
//! one host-CPU core in total: instances take turns on the GPU, and only
//! the instance interacting with the device busy-waits. We reproduce that
//! arithmetic with the same cost model (busy-wait core while iterating +
//! negligible preprocessing), weighting by each instance's share of the
//! GPU's serialized iteration time.

use crate::cli::Cli;
use crate::report::{f, Report, Table};

/// Host-core demand of one GPU instance given its share of GPU time.
/// Busy-wait consumes a core only while the instance's iteration runs;
/// preprocessing adds <0.1 core (paper measurement).
fn host_cores(gpu_time_share: f64) -> f64 {
    gpu_time_share + 0.08 * gpu_time_share.min(1.0)
}

pub fn run(_cli: &Cli, r: &mut Report) {
    r.section("Fig 28 — total host-CPU core usage vs colocated models");
    let mut table = Table::new(&["colocated models", "total core use"]);
    let mut dump = Vec::new();
    for n in [1usize, 2, 4, 8] {
        // The GPU serializes iterations: n instances share one device, so
        // each runs ~1/n of the time (plus a small util gap when idle).
        let per_instance_share = 1.0 / n as f64;
        let total: f64 = (0..n).map(|_| host_cores(per_instance_share)).sum();
        table.row(&[n.to_string(), f(total, 2)]);
        dump.push((n, total));
    }
    r.table(&table);
    let eight = dump.last().unwrap().1;
    r.line(format!(
        "8 colocated instances use {} cores total (paper: slightly above 1)",
        f(eight, 2)
    ));
    r.paper_note("Fig 28: colocation does not contend for host CPUs — total stays ~1 core;");
    r.paper_note("preprocessing consumes <0.1 core per instance");
    r.dump_json("fig28_colocation_cpu", &dump);
}
