//! Figure 24 — CPU scalability (§IX-D).
//!
//! Starting from 2 GPU nodes (insufficient for 64 7B models), adds CPU
//! nodes or GPU nodes one at a time and plots SLO-met requests. The paper
//! finds capacity grows with CPUs, with roughly 3–4 CPU nodes matching one
//! GPU node.

use crate::cli::Cli;
use crate::report::{f, Report, Table};
use crate::runner::{world_cfg, System};
use crate::sweep::{Scenario, Sweep};
use crate::zoo;
use cluster::ClusterSpec;
use hwmodel::ModelSpec;
use workload::serverless::TraceSpec;

/// Which resource the sweep adds to the 2-GPU base cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Arm {
    AddCpu,
    AddGpu,
}

/// Sweep cells (points × systems × seeds) at the quick/full tier; keep in
/// sync with the grid arrays in [`run`]. `bench list --json` reports this.
pub fn grid(quick: bool) -> usize {
    if quick {
        4 * 2 * 3
    } else {
        9 * 2 * 3
    }
}

pub fn run(cli: &Cli, r: &mut Report) {
    let seed = cli.seed;
    let n_models: u32 = if cli.quick { 16 } else { 64 };
    let max_added: usize = if cli.quick { 3 } else { 8 };
    // Scheduling under CPU-heavy overload is sensitive to placement tipping
    // points; average 3 seeds to expose the trend the paper plots.
    let seeds = [seed, seed + 1, seed + 2];
    let points: Vec<(usize, Arm)> = (0..=max_added)
        .flat_map(|added| [(added, Arm::AddCpu), (added, Arm::AddGpu)])
        .collect();
    let res = Sweep::new()
        .points(points)
        .systems(vec![System::Slinfer(Default::default())])
        .seeds(seeds)
        .scenario(|cx| {
            let &(added, arm) = cx.point;
            let models = zoo::replicas(&ModelSpec::llama2_7b(), n_models as usize);
            Scenario::new(
                match arm {
                    Arm::AddCpu => ClusterSpec::heterogeneous(added, 2),
                    Arm::AddGpu => ClusterSpec::heterogeneous(0, 2 + added),
                },
                models,
            )
            .config(world_cfg(cx.seed))
            .workload(TraceSpec::azure_like(n_models, seed).generate())
        })
        .run_cli(cli);

    r.section(&format!(
        "Fig 24 — CPU scalability, {n_models} 7B models, base 2 GPUs"
    ));
    let trace_len = TraceSpec::azure_like(n_models, seed).generate().len();
    let mut table = Table::new(&[
        "added nodes",
        "SLO-met (add CPU)",
        "SLO-met (add GPU)",
        "total",
    ]);
    let seed_avg = |point_ix: usize| {
        (0..res.seeds.len())
            .map(|k| res.metrics(point_ix, 0, k).slo_met())
            .sum::<usize>()
            / res.seeds.len()
    };
    let mut series = Vec::new();
    for added in 0..=max_added {
        let cpu_met = seed_avg(added * 2);
        let gpu_met = seed_avg(added * 2 + 1);
        table.row(&[
            added.to_string(),
            cpu_met.to_string(),
            gpu_met.to_string(),
            trace_len.to_string(),
        ]);
        series.push((added, cpu_met, gpu_met));
    }
    r.table(&table);
    // Crossover estimate: CPUs needed to match the first added GPU.
    if series.len() > 1 {
        let one_gpu = series[1].2;
        let needed = series
            .iter()
            .find(|(_, cpu, _)| *cpu >= one_gpu)
            .map(|(n, _, _)| *n);
        match needed {
            Some(n) => r.line(format!(
                "≈{n} CPU nodes match 1 added GPU node (paper: 3–4)"
            )),
            None => r.line(format!(
                "within {max_added} CPUs, capacity reached {} vs 1-GPU {}",
                f(series.last().unwrap().1 as f64 / one_gpu.max(1) as f64, 2),
                one_gpu
            )),
        }
    }
    r.paper_note("Fig 24: adding CPUs grows capacity; ~3-4 CPU nodes ≈ 1 GPU node");
    r.dump_json("fig24_cpu_scaling", &series);
}
