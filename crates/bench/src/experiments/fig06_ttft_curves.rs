//! Figure 6 — TTFT vs input length across models and hardware (§IV-A2).
//!
//! Prefill latency of 7B/13B/34B models on the AMX CPU and the A100 against
//! the `min(max(0.5, L/512), 8)` s TTFT SLO. The paper: CPUs meet the SLO
//! for 7B/13B at short-to-moderate inputs (covering most real traffic);
//! 34B and very long inputs need the GPU.

use crate::cli::Cli;
use crate::report::{f, Report, Table};
use hwmodel::{AnalyticPerf, HardwareSpec, ModelSpec, PerfOracle};
use workload::request::Slo;

pub fn run(_cli: &Cli, r: &mut Report) {
    r.section("Fig 6 — TTFT (s) vs input length");
    let perf = AnalyticPerf::new();
    let slo = Slo::paper();
    let cpu = HardwareSpec::xeon4_amx_32c();
    let gpu = HardwareSpec::a100_80g();
    let models = [
        ("7B", ModelSpec::llama2_7b()),
        ("13B", ModelSpec::llama2_13b()),
        ("34B", ModelSpec::codellama_34b()),
    ];
    let lengths = [128u32, 256, 512, 1024, 2048, 4096, 8192];

    let mut table = Table::new(&[
        "len", "C-7B", "C-13B", "C-34B", "G-7B", "G-13B", "G-34B", "SLO",
    ]);
    let mut rows = Vec::new();
    for &len in &lengths {
        let mut row = vec![len.to_string()];
        let mut vals = Vec::new();
        for hw in [&cpu, &gpu] {
            for (_, m) in &models {
                let t = perf.prefill_time(m, hw, len, 1.0);
                vals.push(t);
                row.push(f(t, 2));
            }
        }
        let budget = slo.ttft(len).as_secs_f64();
        row.push(f(budget, 2));
        table.row(&row);
        rows.push((len, vals, budget));
    }
    r.table(&table);
    // SLO-feasibility boundary per model on CPU.
    for (name, m) in &models {
        let crossing = (1..=64)
            .map(|k| k * 512)
            .find(|&l| perf.prefill_time(m, &cpu, l, 1.0) > slo.ttft(l).as_secs_f64());
        match crossing {
            Some(l) => r.line(format!("C-{name}: first SLO violation at ~{l} tokens")),
            None => r.line(format!("C-{name}: meets TTFT SLO up to 32K tokens")),
        }
    }
    r.paper_note("Fig 6: CPUs meet 7B/13B SLOs under short inputs (97.9% of conv traffic <4K);");
    r.paper_note("13B feasible to ~5.6K tokens; 34B requires the GPU");
    r.dump_json("fig06_ttft_curves", &rows);
}
