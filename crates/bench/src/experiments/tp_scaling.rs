//! Tensor-parallel scaling sweep (scenario suite).
//!
//! ServerlessLLM treats multi-GPU tensor parallelism as the norm for large
//! models, and λScale scales across devices via multi-GPU multicast — but
//! until this experiment the simulator could only express single-slot
//! instances. Here the fleet is two 4×A100 servers ([`NodeSpec::multi_accel`])
//! and the model zoo deploys at TP ∈ {1, 2, 4}: each instance claims a
//! slot *group* and pays the per-iteration all-reduce modeled by
//! [`AnalyticPerf::tp_comm_time`], so TP=2 beats TP=1 but by strictly less
//! than 2× (the interconnect discount), while wider groups also shrink how
//! many instances fit side by side.
//!
//! Building a TP scenario is ordinary [`Scenario`] composition — only the
//! fleet and the model zoo change:
//!
//! ```
//! use bench::runner::{world_cfg, System};
//! use cluster::{ClusterSpec, NodeSpec, Scenario};
//! use hwmodel::{HardwareSpec, ModelSpec};
//! use workload::serverless::TraceSpec;
//!
//! // Fleet: one 4-GPU server; zoo: 13B models deployed at TP=2.
//! let fleet = ClusterSpec {
//!     nodes: vec![NodeSpec::multi_accel(HardwareSpec::a100_80g(), 4)],
//! };
//! let models = bench::zoo::replicas(&ModelSpec::llama2_13b().with_tp(2), 4);
//! let sc = Scenario::new(fleet, models)
//!     .config(world_cfg(7))
//!     .workload(TraceSpec::azure_like(4, 7).with_load_scale(0.2).generate());
//! let m = System::Slinfer(Default::default()).run_scenario(sc);
//! assert!(m.total() > 0);
//! assert_eq!(m.oom_incidents, 0);
//! ```

use crate::cli::Cli;
use crate::report::{f, Report, Table};
use crate::runner::{world_cfg, System};
use crate::sweep::{Scenario, Sweep};
use crate::zoo;
use cluster::{ClusterSpec, NodeSpec};
use hwmodel::{AnalyticPerf, HardwareSpec, ModelSpec, PerfOracle};
use workload::serverless::TraceSpec;

/// Devices per server in the sweep's fleet.
const GPUS_PER_NODE: usize = 4;

/// One sweep point: TP degree × model size × load.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Pt {
    tp: u32,
    size: &'static str,
    load: f64,
}

fn base_model(size: &str) -> ModelSpec {
    match size {
        "13B" => ModelSpec::llama2_13b(),
        "34B" => ModelSpec::codellama_34b(),
        other => panic!("unknown size class {other}"),
    }
}

fn build_scenario(pt: &Pt, n_models: u32, seed: u64) -> Scenario {
    let base = base_model(pt.size).with_tp(pt.tp);
    let models = zoo::replicas(&base, n_models as usize);
    let fleet = ClusterSpec {
        nodes: vec![NodeSpec::multi_accel(HardwareSpec::a100_80g(), GPUS_PER_NODE); 2],
    };
    Scenario::new(fleet, models)
        .config(world_cfg(seed))
        .workload(
            TraceSpec::azure_like(n_models, seed)
                .with_load_scale(pt.load)
                .generate(),
        )
}

/// Sweep cells (points × systems × seeds) at the quick/full tier; keep in
/// sync with the grid arrays in [`run`]. `bench list --json` reports this.
pub fn grid(quick: bool) -> usize {
    if quick {
        3 * 2 // 1 model × 1 TP degree × 3 loads × 2 systems
    } else {
        2 * 2 * 3 * 2
    }
}

pub fn run(cli: &Cli, r: &mut Report) {
    let seed = cli.seed;
    let n_models: u32 = if cli.quick { 6 } else { 12 };
    // TP degrees {1, 2, 4} always run; full mode adds the 34B class and a
    // second load level.
    let mut points: Vec<Pt> = Vec::new();
    let sizes: &[&'static str] = if cli.quick { &["13B"] } else { &["13B", "34B"] };
    let loads: &[f64] = if cli.quick { &[1.0] } else { &[0.6, 1.2] };
    for &size in sizes {
        for &load in loads {
            for tp in [1u32, 2, 4] {
                points.push(Pt { tp, size, load });
            }
        }
    }

    // Analytic side first: the interconnect discount per TP degree, from
    // the calibrated model alone (deterministic, independent of load).
    let perf = AnalyticPerf::new();
    let gang = HardwareSpec::a100_80g().ganged(GPUS_PER_NODE as u32);
    let mut analytic = Table::new(&[
        "model",
        "TP",
        "prefill 2K (s)",
        "decode bs16 (s)",
        "speedup vs TP=1",
    ]);
    let mut analytic_dump: Vec<(String, u32, f64, f64, f64)> = Vec::new();
    for &size in sizes {
        let m1 = base_model(size);
        let d_base = perf.decode_time_tp(&m1, &gang, 16, 16 * 2048, 1.0 / GPUS_PER_NODE as f64, 1);
        for tp in [1u32, 2, 4] {
            let share = tp as f64 / GPUS_PER_NODE as f64;
            let p = perf.prefill_time_tp(&m1, &gang, 2048, share, tp);
            let d = perf.decode_time_tp(&m1, &gang, 16, 16 * 2048, share, tp);
            let speedup = d_base / d;
            analytic.row(&[
                size.to_string(),
                tp.to_string(),
                f(p, 4),
                f(d, 4),
                f(speedup, 3),
            ]);
            analytic_dump.push((size.to_string(), tp, p, d, speedup));
        }
    }

    let res = Sweep::new()
        .points(points)
        .systems(vec![System::Sllm, System::Slinfer(Default::default())])
        .seeds(vec![seed])
        .scenario(|cx| build_scenario(cx.point, n_models, cx.seed))
        .run_cli(cli);

    r.section(&format!(
        "TP scaling — {n_models} models on 2 × {GPUS_PER_NODE}-GPU A100 servers"
    ));
    r.line("Interconnect-discounted iteration times (analytic):");
    r.table(&analytic);
    let mut table = Table::new(&["model", "TP", "load", "system", "SLO-met", "total"]);
    let mut sweep_dump: Vec<(String, u32, f64, String, usize, usize)> = Vec::new();
    for (pi, pt) in res.points.iter().enumerate() {
        for si in 0..res.systems.len() {
            let name = res.systems[si].name();
            let m = res.metrics(pi, si, 0);
            table.row(&[
                pt.size.to_string(),
                pt.tp.to_string(),
                f(pt.load, 1),
                name.clone(),
                m.slo_met().to_string(),
                m.total().to_string(),
            ]);
            sweep_dump.push((
                pt.size.to_string(),
                pt.tp,
                pt.load,
                name,
                m.slo_met(),
                m.total(),
            ));
        }
    }
    r.table(&table);
    r.paper_note("scenario suite: multi-GPU tensor-parallel instances (ServerlessLLM");
    r.paper_note("serves large models with TP; λScale multicasts across GPUs) —");
    r.paper_note("TP=2 outruns TP=1 by strictly less than 2x: the all-reduce discount");
    r.dump_json("tp_scaling", &(analytic_dump, sweep_dump));
}
