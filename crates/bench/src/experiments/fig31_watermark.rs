//! Figure 31 — KV-cache scaling watermark sensitivity (§IX-I5).
//!
//! Sweeps the watermark `w` over {0%, 10%, 25%, 50%, 100%}. The paper:
//! disabling the watermark (0%) makes instances spend 11.3% of their
//! lifetime rescaling; 25% already cuts that to 1.4% with a 0–0.3%
//! migration rate, while larger values only erode KV utilization.

use crate::cli::Cli;
use crate::report::{f, Report, Table};
use crate::runner::{world_cfg, System};
use crate::sweep::{Scenario, Sweep};
use crate::zoo;
use hwmodel::ModelSpec;
use slinfer::SlinferConfig;
use workload::serverless::TraceSpec;

/// Sweep cells (points × systems × seeds) at the quick/full tier; keep in
/// sync with the grid arrays in [`run`]. `bench list --json` reports this.
pub fn grid(quick: bool) -> usize {
    if quick {
        2
    } else {
        5
    }
}

pub fn run(cli: &Cli, r: &mut Report) {
    let seed = cli.seed;
    let n_models: u32 = if cli.quick { 24 } else { 64 };
    let watermarks: Vec<f64> = if cli.quick {
        vec![0.0, 0.25]
    } else {
        vec![0.0, 0.10, 0.25, 0.50, 1.00]
    };
    let res = Sweep::new()
        .points(vec![n_models])
        .systems(
            watermarks
                .iter()
                .map(|&w| System::Slinfer(SlinferConfig::default().with_watermark(w))),
        )
        .seeds(vec![seed])
        .scenario(|cx| {
            let models = zoo::replicas(&ModelSpec::llama2_7b(), *cx.point as usize);
            Scenario::new(cx.system.cluster(4, 4, &models), models)
                .config(world_cfg(cx.seed))
                .workload(TraceSpec::azure_like(*cx.point, seed).generate())
        })
        .run_cli(cli);

    r.section(&format!("Fig 31 — watermark sweep, {n_models} 7B models"));
    let mut table = Table::new(&[
        "watermark",
        "KV util (mean)",
        "scaling overhead %",
        "migration rate %",
        "scale ops",
        "SLO rate",
    ]);
    let mut results = Vec::new();
    for (si, &w) in watermarks.iter().enumerate() {
        let m = res.metrics(0, si, 0);
        let overhead = 100.0 * m.scaling_overhead_fraction();
        let mig_rate = 100.0 * m.migrated_requests() as f64 / m.total().max(1) as f64;
        table.row(&[
            format!("{:.0}%", w * 100.0),
            f(m.kv_util.mean(), 2),
            f(overhead, 1),
            f(mig_rate, 2),
            m.scale_ops.to_string(),
            f(m.slo_rate(), 3),
        ]);
        results.push((w, m.kv_util.mean(), overhead, mig_rate, m.scale_ops));
    }
    r.table(&table);
    r.paper_note("Fig 31: 0% watermark → 11.3% of lifetime spent scaling; 25% → 1.4% overhead,");
    r.paper_note("0–0.3% migration rate; higher watermarks only lower KV utilization");
    r.dump_json("fig31_watermark", &results);
}
