//! Figure 21 — Azure-trace characterization (§IX-A).
//!
//! Generates the 32/64/128-model serverless traces and reports the volume,
//! aggregate RPM, and per-model popularity skew the paper plots. Paper
//! anchors: 2 366 / 4 684 / 9 266 requests; 79 / 156 / 309 aggregate RPM;
//! "most models have few requests, while top models have many".

use crate::cli::Cli;
use crate::report::{f, Report, Table};
use workload::serverless::TraceSpec;
use workload::stats::TraceStats;

pub fn run(cli: &Cli, r: &mut Report) {
    let seed = cli.seed;
    r.section("Fig 21 — serverless trace characterization");
    let paper = [
        (32u32, 2366usize, 79.0),
        (64, 4684, 156.0),
        (128, 9266, 309.0),
    ];
    let mut table = Table::new(&[
        "models",
        "requests (paper)",
        "agg RPM (paper)",
        "median model RPM",
        "p99-model RPM",
        "top-1% share",
    ]);
    let mut dump = Vec::new();
    let mut timeline_lines = Vec::new();
    for (n, p_req, p_rpm) in paper {
        let trace = TraceSpec::azure_like(n, seed).generate();
        let stats = TraceStats::from_trace(&trace);
        let rpms = stats.model_rpms_sorted();
        let p99 = rpms[(rpms.len() as f64 * 0.99) as usize - 1];
        table.row(&[
            n.to_string(),
            format!("{} ({})", trace.len(), p_req),
            format!("{} ({})", f(trace.aggregate_rpm(), 0), f(p_rpm, 0)),
            f(stats.median_model_rpm(), 2),
            f(p99, 1),
            f(stats.top_models_share(0.01), 2),
        ]);
        // Timeline shape: min/max per-minute RPM.
        let tl = stats.timeline_rpm();
        let max_rpm = tl.iter().max().copied().unwrap_or(0);
        let min_rpm = tl.iter().min().copied().unwrap_or(0);
        timeline_lines.push(format!(
            "{n}-model timeline: per-minute requests span {min_rpm}–{max_rpm} (bursty)"
        ));
        dump.push((
            n,
            trace.len(),
            trace.aggregate_rpm(),
            stats.top_models_share(0.01),
        ));
    }
    for line in timeline_lines {
        r.line(line);
    }
    r.table(&table);
    r.paper_note("Fig 21: 2366/4684/9266 requests; 79/156/309 RPM; heavy popularity skew");
    r.dump_json("fig21_trace_stats", &dump);
}
