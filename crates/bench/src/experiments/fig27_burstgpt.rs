//! Figure 27 — BurstGPT trace at varying load levels (§IX-I2).
//!
//! Redistributes BurstGPT-style bursty arrivals across 64 models (Pareto)
//! and sweeps aggregate RPS ∈ {0.5, 1, 2, 4}. The paper: SLINFER uses fewer
//! nodes at every level; at 4 RPS `sllm+c+s` violates 7.7% of SLOs vs
//! SLINFER's 1.0%.

use crate::cli::Cli;
use crate::report::{f, Report, Table};
use crate::runner::{world_cfg, System};
use crate::sweep::{Scenario, Sweep};
use crate::zoo;
use hwmodel::{HardwareKind, ModelSpec};
use workload::burstgpt::BurstGptSpec;

/// Sweep cells (points × systems × seeds) at the quick/full tier; keep in
/// sync with the grid arrays in [`run`]. `bench list --json` reports this.
pub fn grid(quick: bool) -> usize {
    if quick {
        2 * 2
    } else {
        4 * 2
    }
}

pub fn run(cli: &Cli, r: &mut Report) {
    let seed = cli.seed;
    let rates: Vec<f64> = if cli.quick {
        vec![0.5, 2.0]
    } else {
        vec![0.5, 1.0, 2.0, 4.0]
    };
    let res = Sweep::new()
        .points(rates)
        .systems(vec![System::SllmCs, System::Slinfer(Default::default())])
        .seeds(vec![seed])
        .scenario(|cx| {
            let models = zoo::replicas(&ModelSpec::llama2_7b(), 64);
            Scenario::new(cx.system.cluster(4, 4, &models), models)
                .config(world_cfg(cx.seed))
                .workload(BurstGptSpec::paper(*cx.point, seed).generate())
        })
        .run_cli(cli);

    r.section("Fig 27 — BurstGPT load sweep (64 models, Pareto spread)");
    let mut table = Table::new(&[
        "RPS",
        "system",
        "CPU nodes",
        "GPU nodes",
        "SLO-miss %",
        "dropped",
    ]);
    let mut results = Vec::new();
    for (pi, &rps) in res.points.iter().enumerate() {
        for (si, system) in res.systems.iter().enumerate() {
            let m = res.metrics(pi, si, 0);
            let miss = 100.0 * (1.0 - m.slo_rate());
            table.row(&[
                f(rps, 1),
                system.name(),
                f(m.avg_nodes_used(HardwareKind::CpuAccel), 1),
                f(m.avg_nodes_used(HardwareKind::Gpu), 1),
                f(miss, 1),
                m.dropped.to_string(),
            ]);
            results.push((
                rps,
                system.name(),
                miss,
                m.avg_nodes_used(HardwareKind::Gpu),
            ));
        }
    }
    r.table(&table);
    r.paper_note("Fig 27: SLINFER consistently consumes fewer resources;");
    r.paper_note("at 4 RPS: sllm+c+s 7.7% SLO violations vs SLINFER 1.0%");
    r.dump_json("fig27_burstgpt", &results);
}
