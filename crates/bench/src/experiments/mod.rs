//! The experiment implementations: one module per paper figure/table (26)
//! plus the scenario suite (SLO-class mixes, fault injection, mixed
//! arrival processes) built on the composable `cluster::Scenario` API.
//!
//! Each module exposes `run(&Cli, &mut Report)` and is registered in
//! [`crate::registry::REGISTRY`]. Simulation experiments declare their grid
//! as a [`crate::sweep::Sweep`] and let the shared driver fan it out;
//! analytic experiments (cost-model tables, trace characterization,
//! wall-clock microbenchmarks) compute directly into the report.

pub mod abl_overestimate;
pub mod cold_start;
pub mod disc_quantization;
pub mod fault_drain;
pub mod fig04_sllm_capacity;
pub mod fig05_sllm_memutil;
pub mod fig06_ttft_curves;
pub mod fig07_08_tpot_curves;
pub mod fig09_12_footprint;
pub mod fig17_kv_scaling;
pub mod fig21_trace_stats;
pub mod fig22_end_to_end;
pub mod fig23_ablation;
pub mod fig24_cpu_scaling;
pub mod fig25_gpu_efficiency;
pub mod fig26_mixed_deploy;
pub mod fig27_burstgpt;
pub mod fig28_colocation_cpu;
pub mod fig29_harvested_cores;
pub mod fig30_keepalive;
pub mod fig31_watermark;
pub mod fig32_node_scaling;
pub mod fig33_sched_overhead;
pub mod fig34_datasets;
pub mod fig35_dataset_eval;
pub mod mixed_arrivals;
pub mod scale;
pub mod scale_burst;
pub mod session_reuse;
pub mod slo_mix;
pub mod tab1_xeon_gens;
pub mod tab2_partition_limits;
pub mod tab3_pd_disagg;
pub mod tp_scaling;
