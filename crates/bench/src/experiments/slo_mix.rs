//! SLO-class mix sweep (scenario suite).
//!
//! Every paper experiment holds all requests to one `Slo::paper()`. Real
//! serverless fleets mix service classes: latency-critical interactive
//! traffic (tight 100 ms TPOT), standard traffic (the paper SLO), and
//! relaxed batch traffic (0.5 s TPOT, doubled TTFT window). This sweep
//! shifts load between the three classes over a fixed fleet and reports
//! attainment *per class*: a scheduler that meets an aggregate number by
//! starving its premium class is visible here and nowhere else.
//!
//! Built entirely through the `Scenario` workload axis: one azure-like
//! segment per class, load-scaled by the mix share, interleaved by arrival.

use crate::cli::Cli;
use crate::report::{f, Report, Table};
use crate::runner::{world_cfg, System};
use crate::sweep::{Scenario, Sweep};
use crate::zoo;
use hwmodel::ModelSpec;
use slinfer::SlinferConfig;
use workload::request::{Slo, SloClass};
use workload::serverless::TraceSpec;

/// (name, standard share, interactive share, relaxed share).
type Mix = (&'static str, f64, f64, f64);

const CLASS_NAMES: [&str; 3] = ["standard", "interactive", "relaxed"];

fn build_scenario(sys: &System, n_models: u32, seed: u64, mix: &Mix) -> Scenario {
    let (_, std_share, int_share, rel_share) = *mix;
    let models = zoo::replicas(&ModelSpec::llama2_7b(), n_models as usize);
    let mut sc = Scenario::new(sys.cluster(2, 2, &models), models).config(world_cfg(seed));
    let interactive = sc.slo_class(Slo::tight());
    let relaxed = sc.slo_class(Slo::relaxed());
    debug_assert_eq!((interactive, relaxed), (SloClass(1), SloClass(2)));
    // Distinct trace seeds per class keep the segments' arrivals
    // independent; a zero share simply omits the segment.
    for (class, share, sub_seed) in [
        (SloClass::DEFAULT, std_share, seed),
        (interactive, int_share, seed ^ 0x1517),
        (relaxed, rel_share, seed ^ 0x2A2E),
    ] {
        if share > 0.0 {
            let trace = TraceSpec::azure_like(n_models, sub_seed)
                .with_load_scale(share)
                .generate();
            sc = sc.classed_workload(trace, class);
        }
    }
    sc
}

/// Sweep cells (points × systems × seeds) at the quick/full tier; keep in
/// sync with the grid arrays in [`run`]. `bench list --json` reports this.
pub fn grid(quick: bool) -> usize {
    if quick {
        2 * 2
    } else {
        4 * 2
    }
}

pub fn run(cli: &Cli, r: &mut Report) {
    let seed = cli.seed;
    let n_models: u32 = if cli.quick { 12 } else { 48 };
    let mixes: Vec<Mix> = if cli.quick {
        vec![("uniform", 1.0, 0.0, 0.0), ("3-way", 0.5, 0.25, 0.25)]
    } else {
        vec![
            ("uniform", 1.0, 0.0, 0.0),
            ("3-way", 0.5, 0.25, 0.25),
            ("premium-heavy", 0.25, 0.5, 0.25),
            ("batch-heavy", 0.25, 0.25, 0.5),
        ]
    };

    let res = Sweep::new()
        .points(mixes)
        .systems(vec![
            System::SllmC,
            System::Slinfer(SlinferConfig::default()),
        ])
        .seeds(vec![seed])
        .scenario(|cx| build_scenario(cx.system, n_models, cx.seed, cx.point))
        .run_cli(cli);

    r.section(&format!(
        "SLO-class mix — {n_models} 7B models, 2 CPU + 2 GPU nodes"
    ));
    let mut table = Table::new(&[
        "mix",
        "system",
        "class",
        "SLO-met",
        "total",
        "rate",
        "TTFT p95(s)",
    ]);
    let mut results = Vec::new();
    for (pi, mix) in res.points.iter().enumerate() {
        for si in 0..res.systems.len() {
            let name = res.systems[si].name();
            let m = res.metrics(pi, si, 0);
            let mut class_rows = Vec::new();
            for (class, met, total) in m.class_attainment() {
                let label = CLASS_NAMES
                    .get(class.0 as usize)
                    .copied()
                    .unwrap_or("other");
                let mut ttft = m.class_ttft_summary(class);
                table.row(&[
                    mix.0.to_string(),
                    name.clone(),
                    label.to_string(),
                    met.to_string(),
                    total.to_string(),
                    f(met as f64 / total.max(1) as f64, 3),
                    f(ttft.percentile(95.0), 2),
                ]);
                class_rows.push((label.to_string(), met, total));
            }
            table.row(&[
                mix.0.to_string(),
                name.clone(),
                "ALL".into(),
                m.slo_met().to_string(),
                m.total().to_string(),
                f(m.slo_rate(), 3),
                String::new(),
            ]);
            results.push((mix.0.to_string(), name, m.slo_rate(), class_rows));
        }
    }
    r.table(&table);
    r.paper_note("scenario suite: per-class attainment under mixed service classes;");
    r.paper_note("aggregate SLO rates can hide a starved premium class");
    r.dump_json("slo_mix", &results);
}
