//! Node-drain / node-failure resilience sweep (scenario suite).
//!
//! Injects a lifecycle event into an otherwise-standard azure-like run via
//! the `Scenario` environment axis: mid-trace, one GPU node either drains
//! gracefully (instances evicted, requests rerouted) or fails hard
//! (instances and in-flight iterations lost). The paper's fleets never
//! churn; this sweep measures how much attainment each scheduler gives
//! back when they do, and whether anything is lost outright.
//!
//! SLINFER reroutes parked scale-ops and queued requests off the retiring
//! node (`Slinfer::on_node_event`); baselines get the default
//! evict-and-requeue behavior.

use crate::cli::Cli;
use crate::report::{f, Report, Table};
use crate::runner::{world_cfg, System, SystemResult};
use crate::sweep::{Scenario, Sweep};
use crate::zoo;
use cluster::NodeId;
use hwmodel::ModelSpec;
use simcore::time::SimTime;
use slinfer::SlinferConfig;
use workload::serverless::TraceSpec;

/// Fault arms of the sweep.
#[derive(Clone, Copy, PartialEq)]
enum Fault {
    None,
    Drain,
    Fail,
}

impl Fault {
    fn label(self) -> &'static str {
        match self {
            Fault::None => "baseline",
            Fault::Drain => "drain",
            Fault::Fail => "fail",
        }
    }
}

const N_CPU: usize = 2;

/// Sweep cells (points × systems × seeds) at the quick/full tier; keep in
/// sync with the grid arrays in [`run`]. `bench list --json` reports this.
pub fn grid(_quick: bool) -> usize {
    3 * 2 // same sweep at both tiers
}

pub fn run(cli: &Cli, r: &mut Report) {
    let seed = cli.seed;
    let n_models: u32 = if cli.quick { 12 } else { 32 };
    let faults = vec![Fault::None, Fault::Drain, Fault::Fail];
    // The event lands at 40% of the 30-minute window — deep enough that
    // the victim node hosts warm instances.
    let event_at = SimTime::from_secs(12 * 60);

    let res = Sweep::new()
        .points(faults)
        .systems(vec![
            System::SllmC,
            System::Slinfer(SlinferConfig::default()),
        ])
        .seeds(vec![seed])
        .scenario(|cx| {
            let models = zoo::replicas(&ModelSpec::llama2_7b(), n_models as usize);
            let sc = Scenario::new(cx.system.cluster(N_CPU, 2, &models), models)
                .config(world_cfg(cx.seed))
                .workload(TraceSpec::azure_like(n_models, seed).generate());
            // The first GPU node sits right after the CPU block.
            let victim = NodeId(N_CPU as u32);
            match cx.point {
                Fault::None => sc,
                Fault::Drain => sc.drain_at(event_at, victim),
                Fault::Fail => sc.fail_at(event_at, victim),
            }
        })
        .run_cli(cli);

    r.section(&format!(
        "Fault resilience — {n_models} 7B models, GPU node retires mid-trace"
    ));
    let mut table = Table::new(&[
        "fault",
        "system",
        "SLO-met",
        "total",
        "rate",
        "dropped",
        "migrated reqs",
        "cold starts",
    ]);
    let mut results = Vec::new();
    let mut baseline_met = vec![0usize; res.systems.len()];
    for (pi, fault) in res.points.iter().enumerate() {
        for (si, baseline) in baseline_met.iter_mut().enumerate() {
            let m = res.metrics(pi, si, 0);
            let label = format!("{}@{}", res.systems[si].name(), fault.label());
            let sr = SystemResult::from_metrics(label, m);
            if *fault == Fault::None {
                *baseline = sr.slo_met;
            }
            table.row(&[
                fault.label().to_string(),
                res.systems[si].name(),
                sr.slo_met.to_string(),
                sr.total.to_string(),
                f(sr.slo_rate, 3),
                sr.dropped.to_string(),
                m.migrated_requests().to_string(),
                sr.cold_starts.to_string(),
            ]);
            results.push((fault.label(), sr));
        }
    }
    r.table(&table);
    for (si, baseline) in baseline_met.iter().enumerate() {
        let fail_m = res.metrics(2, si, 0);
        let retained = 100.0 * fail_m.slo_met() as f64 / (*baseline).max(1) as f64;
        r.line(format!(
            "{}: retains {:.0}% of baseline SLO-met through a hard GPU failure",
            res.systems[si].name(),
            retained
        ));
    }
    r.paper_note("scenario suite: graceful drains should cost little; hard failures");
    r.paper_note("lose in-flight work but every surviving request must re-place or drop");
    r.dump_json("fault_drain", &results);
}
