//! Extra ablation (DESIGN.md §5): shadow-validation overestimation factor.
//!
//! §VI-C inflates every estimated iteration by 10% to absorb runtime
//! fluctuation and context growth. This sweep shows the trade-off the
//! constant balances: no margin (1.0×) admits optimistically and violates
//! more SLOs under noise; heavy margins (1.5×+) reject work the cluster
//! could have served.

use crate::cli::Cli;
use crate::report::{f, Report, Table};
use crate::runner::{world_cfg, System};
use crate::sweep::{Scenario, Sweep};
use crate::zoo;
use hwmodel::ModelSpec;
use slinfer::SlinferConfig;
use workload::serverless::TraceSpec;

/// Sweep cells (points × systems × seeds) at the quick/full tier; keep in
/// sync with the grid arrays in [`run`]. `bench list --json` reports this.
pub fn grid(quick: bool) -> usize {
    if quick {
        2
    } else {
        6
    }
}

pub fn run(cli: &Cli, r: &mut Report) {
    let seed = cli.seed;
    let n_models: u32 = if cli.quick { 24 } else { 64 };
    let factors: Vec<f64> = if cli.quick {
        vec![1.0, 1.1]
    } else {
        vec![1.0, 1.05, 1.1, 1.25, 1.5, 2.0]
    };
    let res = Sweep::new()
        .points(vec![n_models])
        .systems(factors.iter().map(|&over| {
            System::Slinfer(SlinferConfig {
                overestimate: over,
                ..SlinferConfig::default()
            })
        }))
        .seeds(vec![seed])
        .scenario(|cx| {
            let models = zoo::replicas(&ModelSpec::llama2_7b(), *cx.point as usize);
            Scenario::new(cx.system.cluster(4, 4, &models), models)
                .config(world_cfg(cx.seed))
                .workload(TraceSpec::azure_like(*cx.point, seed).generate())
        })
        .run_cli(cli);

    r.section(&format!(
        "Ablation — shadow-validation overestimate, {n_models} 7B models"
    ));
    let mut table = Table::new(&[
        "factor",
        "SLO rate",
        "SLO-met",
        "dropped",
        "validations",
        "GPU nodes",
    ]);
    let mut results = Vec::new();
    for (si, &over) in factors.iter().enumerate() {
        let m = res.metrics(0, si, 0);
        table.row(&[
            format!("{over:.2}×"),
            f(m.slo_rate(), 3),
            m.slo_met().to_string(),
            m.dropped.to_string(),
            m.shadow_validations.to_string(),
            f(m.avg_nodes_used(hwmodel::HardwareKind::Gpu), 1),
        ]);
        results.push((over, m.slo_rate(), m.slo_met(), m.dropped));
    }
    r.table(&table);
    r.paper_note("§VI-C picks 10%: enough margin for fluctuation and growing contexts,");
    r.paper_note("without rejecting servable requests");
    r.dump_json("abl_overestimate", &results);
}
